// Scenario from the paper's introduction: an interactive task (think: an
// editor that touches 1 MB between pauses) shares the machine with an
// out-of-core scientific job. Pick the job and its treatment level on the
// command line and see both sides of the story.
//
//   ./build/examples/interactive_mix [workload] [O|P|R|B] [sleep_s] [scale]
//   e.g. ./build/examples/interactive_mix MATVEC P 5 0.25

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workloads.h"

namespace {

tmh::AppVersion ParseVersion(const char* s) {
  switch (s[0]) {
    case 'O':
      return tmh::AppVersion::kOriginal;
    case 'P':
      return tmh::AppVersion::kPrefetch;
    case 'R':
      return tmh::AppVersion::kRelease;
    case 'B':
      return tmh::AppVersion::kBuffered;
    default:
      std::fprintf(stderr, "unknown version '%s' (use O, P, R, or B)\n", s);
      std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* workload_name = argc > 1 ? argv[1] : "MATVEC";
  const tmh::AppVersion version = ParseVersion(argc > 2 ? argv[2] : "P");
  const double sleep_s = argc > 3 ? std::atof(argv[3]) : 5.0;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

  const tmh::WorkloadInfo* info = nullptr;
  for (const tmh::WorkloadInfo& w : tmh::AllWorkloads()) {
    if (w.name == workload_name) {
      info = &w;
    }
  }
  if (info == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name);
    return 2;
  }

  tmh::ExperimentSpec spec;
  spec.machine.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(spec.machine.user_memory_bytes) * scale);
  spec.workload = info->factory(scale);
  spec.version = version;
  spec.with_interactive = true;
  spec.interactive.sleep_time = static_cast<tmh::SimDuration>(sleep_s * tmh::kSec);

  std::printf("%s (version %s) vs a 1 MB interactive task sleeping %.1f s between sweeps\n\n",
              info->name.c_str(), tmh::VersionLabel(version), sleep_s);
  const tmh::ExperimentResult result = tmh::RunExperiment(spec);

  const tmh::TimeBreakdown& t = result.app.times;
  std::printf("out-of-core job:\n");
  std::printf("  execution %s  (user %s, system %s, resource stall %s, I/O stall %s)\n",
              tmh::FormatSeconds(tmh::ToSeconds(t.Execution())).c_str(),
              tmh::FormatSeconds(tmh::ToSeconds(t.user)).c_str(),
              tmh::FormatSeconds(tmh::ToSeconds(t.system)).c_str(),
              tmh::FormatSeconds(tmh::ToSeconds(t.resource_stall)).c_str(),
              tmh::FormatSeconds(tmh::ToSeconds(t.io_stall)).c_str());
  std::printf("  hard faults %llu, soft faults %llu, prefetch I/Os %llu, releases freed %llu\n\n",
              static_cast<unsigned long long>(result.app.faults.hard_faults),
              static_cast<unsigned long long>(result.app.faults.soft_faults),
              static_cast<unsigned long long>(result.kernel.prefetch_io),
              static_cast<unsigned long long>(result.kernel.releaser_pages_freed));

  const tmh::InteractiveMetrics& interactive = *result.interactive;
  std::printf("interactive task (%lld sweeps measured):\n",
              static_cast<long long>(interactive.sweeps));
  std::printf("  mean response %s, worst %s, hard faults per sweep %.1f (max 65)\n",
              tmh::FormatSeconds(interactive.mean_response_ns / 1e9).c_str(),
              tmh::FormatSeconds(interactive.max_response_ns / 1e9).c_str(),
              interactive.hard_faults_per_sweep);
  std::printf("  response series (ms):");
  for (size_t i = 0; i < interactive.responses.size() && i < 16; ++i) {
    std::printf(" %.1f", tmh::ToMillis(interactive.responses[i]));
  }
  std::printf("%s\n\n", interactive.responses.size() > 16 ? " ..." : "");

  std::printf("paging daemon: %llu activations, %llu pages stolen, %llu invalidations\n",
              static_cast<unsigned long long>(result.kernel.daemon_activations),
              static_cast<unsigned long long>(result.kernel.daemon_pages_stolen),
              static_cast<unsigned long long>(result.kernel.daemon_invalidations));
  return 0;
}
