// Bring your own kernel: define a loop nest in the IR, run the compiler pass,
// inspect where it placed prefetch and release hints, and execute the result
// on the simulated machine.
//
// The kernel here is a red-black-ish 2-D sweep:
//   for (i = 1; i < N-1; i++)
//     for (j = 0; j < M; j++)
//       out[i][j] = (grid[i-1][j] + grid[i][j] + grid[i+1][j]) / 3;
// with an out-of-core grid, so the compiler must both prefetch the leading
// stencil row and release the trailing one.

#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/report.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  // --- 1. describe the program in the loop-nest IR -----------------------------
  const int64_t rows = static_cast<int64_t>(1400 * scale);
  const int64_t cols = 16 * 1024;  // one row = 128 KB = 8 pages
  tmh::SourceProgram program;
  program.name = "smooth2d";
  program.arrays = {
      {"grid", 8, rows * cols, /*on_disk=*/true, nullptr},
      {"out", 8, rows * cols, /*on_disk=*/false, nullptr},
  };
  tmh::LoopNest nest;
  nest.label = "smooth";
  nest.loops = {tmh::Loop{"i", 1, rows - 1, 1, true}, tmh::Loop{"j", 0, cols, 1, true}};
  auto ref = [&](int32_t array, int64_t row_offset, bool write) {
    tmh::ArrayRef r;
    r.array = array;
    r.affine.coeffs = {cols, 1};
    r.affine.constant = row_offset * cols;
    r.is_write = write;
    return r;
  };
  nest.refs = {ref(0, -1, false), ref(0, 0, false), ref(0, 1, false), ref(1, 0, true)};
  nest.compute_per_iteration = 40 * tmh::kNsec;
  program.nests.push_back(nest);

  // --- 2. run the compiler pass and show its decisions --------------------------
  tmh::MachineConfig machine;
  machine.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(machine.user_memory_bytes) * scale);
  const tmh::CompiledProgram compiled =
      tmh::CompileVersion(program, machine, tmh::AppVersion::kBuffered);

  std::printf("grid: %.0f MB over %lld pages; machine: %.1f MB\n\n",
              static_cast<double>(program.arrays[0].size_bytes()) / (1024 * 1024),
              static_cast<long long>(compiled.layout.PageCount(0)),
              static_cast<double>(machine.user_memory_bytes) / (1024 * 1024));

  tmh::ReportTable hints({"directive", "reference", "distance", "priority", "per-iteration"});
  for (const tmh::HintDirective& d : compiled.nests[0].directives) {
    const tmh::ArrayRef& target = compiled.nests[0].nest.refs[static_cast<size_t>(d.ref)];
    const std::string where = program.arrays[static_cast<size_t>(target.array)].name +
                              "[i" +
                              (target.affine.constant == 0
                                   ? ""
                                   : (target.affine.constant > 0 ? "+1" : "-1")) +
                              "][j]";
    hints.AddRow({d.kind == tmh::HintDirective::Kind::kPrefetch ? "prefetch" : "release", where,
                  std::to_string(d.distance) + " pages", std::to_string(d.priority),
                  d.every_iteration ? "yes" : "no"});
  }
  hints.Print();
  std::printf(
      "\nThe pass found the group locality: grid[i+1] (leading edge) is prefetched,\n"
      "grid[i-1] (trailing edge) is released; grid[i] needs neither.\n\n");

  // --- 3. execute all four treatment levels -------------------------------------
  tmh::ReportTable results({"version", "exec", "io-stall", "hard-faults", "daemon-stolen"});
  for (const tmh::AppVersion version : tmh::AllVersions()) {
    tmh::ExperimentSpec spec;
    spec.machine = machine;
    spec.workload = program;
    spec.version = version;
    const tmh::ExperimentResult result = tmh::RunExperiment(spec);
    results.AddRow({tmh::VersionLabel(version),
                    tmh::FormatSeconds(tmh::ToSeconds(result.app.times.Execution())),
                    tmh::FormatSeconds(tmh::ToSeconds(result.app.times.io_stall)),
                    tmh::FormatCount(result.app.faults.hard_faults),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen)});
  }
  results.Print();
  return 0;
}
