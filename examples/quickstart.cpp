// Quickstart: compile MATVEC at all four treatment levels (original,
// prefetching, +aggressive releasing, +release buffering), run each on the
// simulated 75 MB machine alongside the interactive task, and print the
// execution-time breakdown plus the interactive response time.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart [scale]
// `scale` in (0,1] shrinks the data set (default 0.25 for a fast demo).

#include <cstdio>
#include <cstdlib>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  std::printf("MATVEC at scale %.2f on the simulated Origin 200 (75 MB, 10 swap disks)\n\n",
              scale);

  tmh::MachineConfig machine;  // Table 1 defaults
  // Shrink the machine with the workload so it stays out-of-core.
  machine.user_memory_bytes = static_cast<int64_t>(75.0 * 1024 * 1024 * scale);

  tmh::ReportTable table({"version", "exec", "user", "system", "res-stall", "io-stall",
                          "hard-faults", "interactive-response"});
  for (const tmh::AppVersion version : tmh::AllVersions()) {
    tmh::ExperimentSpec spec;
    spec.machine = machine;
    spec.workload = tmh::MakeMatvec(scale);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 5 * tmh::kSec;
    const tmh::ExperimentResult result = tmh::RunExperiment(spec);
    const tmh::TimeBreakdown& t = result.app.times;
    table.AddRow({tmh::VersionLabel(version), tmh::FormatSeconds(tmh::ToSeconds(t.Execution())),
                  tmh::FormatSeconds(tmh::ToSeconds(t.user)),
                  tmh::FormatSeconds(tmh::ToSeconds(t.system)),
                  tmh::FormatSeconds(tmh::ToSeconds(t.resource_stall)),
                  tmh::FormatSeconds(tmh::ToSeconds(t.io_stall)),
                  tmh::FormatCount(result.app.faults.hard_faults),
                  tmh::FormatSeconds(result.interactive->mean_response_ns / 1e9)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: P cuts O's I/O stall but inflates the interactive response;\n"
      "R and B keep the app fast AND the interactive task responsive.\n");
  return 0;
}
