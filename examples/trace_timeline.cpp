// Time-series view of the memory-hog problem: trace free memory, the two
// processes' resident sets, and reclaim activity over the run, for MATVEC-P
// (the hog at its worst) and MATVEC-B (tamed). Writes two CSVs and prints a
// coarse ASCII timeline of free memory.
//
//   ./build/examples/trace_timeline [scale] [out_dir]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.h"
#include "src/core/html_report.h"
#include "src/workloads/workloads.h"

namespace {

void AsciiTimeline(const char* label, const tmh::TraceRecorder& trace, int64_t total_pages) {
  std::printf("%s: free memory over time (each row = 1/20 of the run, '#' = in use)\n", label);
  const auto& samples = trace.samples();
  if (samples.empty()) {
    return;
  }
  const size_t stride = std::max<size_t>(1, samples.size() / 20);
  for (size_t i = 0; i < samples.size(); i += stride) {
    const double free = samples[i].values[0];
    const int used_cols =
        static_cast<int>(60.0 * (1.0 - free / static_cast<double>(total_pages)));
    std::printf("  %7.1fs |%.*s%*s| %5.0f free\n", tmh::ToSeconds(samples[i].when), used_cols,
                "############################################################",
                60 - used_cols, "", free);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  for (const tmh::AppVersion version : {tmh::AppVersion::kPrefetch, tmh::AppVersion::kBuffered}) {
    tmh::ExperimentSpec spec;
    spec.machine.user_memory_bytes =
        static_cast<int64_t>(static_cast<double>(spec.machine.user_memory_bytes) * scale);
    spec.workload = tmh::MakeMatvec(scale);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 5 * tmh::kSec;
    spec.trace_period = 100 * tmh::kMsec;
    const tmh::ExperimentResult result = tmh::RunExperiment(spec);

    const std::string html_path =
        out_dir + "/trace_matvec_" + tmh::VersionLabel(version) + ".html";
    if (tmh::WriteHtmlFile(html_path,
                           tmh::RenderKernelTraceHtml(
                               result.trace, std::string("MATVEC (") +
                                                 tmh::VersionLabel(version) + ")"))) {
      std::printf("wrote %s (open in a browser)\n", html_path.c_str());
    }
    const std::string path =
        out_dir + "/trace_matvec_" + tmh::VersionLabel(version) + ".csv";
    if (result.trace.WriteCsv(path)) {
      std::printf("wrote %s (%zu samples, columns:", path.c_str(),
                  result.trace.samples().size());
      for (const std::string& name : result.trace.series()) {
        std::printf(" %s", name.c_str());
      }
      std::printf(")\n");
    }
    AsciiTimeline(tmh::VersionLabel(version), result.trace,
                  spec.machine.user_memory_bytes / spec.machine.page_size_bytes);
    std::printf("\n");
  }
  std::printf(
      "P's timeline shows memory pinned at the floor (the daemon fighting the\n"
      "prefetcher); B's shows the releaser keeping a healthy free pool throughout.\n");
  return 0;
}
