// Figure 1 as a loadable timeline: run the out-of-core MATVEC hog next to the
// interactive task with the structured event log enabled, then export the run
// as a Chrome tracing JSON (load it in about://tracing or ui.perfetto.dev) and
// a metrics text dump. Each simulated thread gets its own row: hard-fault and
// prefetch-I/O spans, release/rescue instants, daemon sweep batches, and a
// free-memory counter track.
//
//   ./build/examples/hog_trace [scale] [out_dir] [version]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const std::string out_dir = argc > 2 ? argv[2] : ".";
  const std::string version = argc > 3 ? argv[3] : "B";

  tmh::ExperimentSpec spec;
  spec.machine.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(spec.machine.user_memory_bytes) * scale);
  spec.workload = tmh::MakeMatvec(scale);
  spec.version = version == "O"   ? tmh::AppVersion::kOriginal
                 : version == "P" ? tmh::AppVersion::kPrefetch
                 : version == "R" ? tmh::AppVersion::kRelease
                                  : tmh::AppVersion::kBuffered;
  spec.with_interactive = true;
  spec.interactive.sleep_time = 5 * tmh::kSec;
  spec.observe = true;
  const tmh::ExperimentResult result = tmh::RunExperiment(spec);

  const tmh::EventLog& log = result.event_log;
  std::printf("MATVEC-%s at scale %.2f: %zu kernel events recorded (%zu dropped)\n",
              tmh::VersionLabel(spec.version), scale, log.events().size(), log.dropped());
  for (const tmh::KernelEventType type :
       {tmh::KernelEventType::kFaultBegin, tmh::KernelEventType::kPrefetchIssue,
        tmh::KernelEventType::kPrefetchDrop, tmh::KernelEventType::kReleaseEnqueue,
        tmh::KernelEventType::kReleaseFree, tmh::KernelEventType::kReleaseRescue,
        tmh::KernelEventType::kDaemonRescue, tmh::KernelEventType::kDaemonSweep,
        tmh::KernelEventType::kMemoryWaitBegin}) {
    std::printf("  %-16s %zu\n", tmh::KernelEventName(type), log.Count(type));
  }

  const std::string trace_path = out_dir + "/hog_trace.json";
  if (log.WriteChromeTrace(trace_path)) {
    std::printf("wrote %s (load in about://tracing or ui.perfetto.dev)\n", trace_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
    return 1;
  }
  const std::string metrics_path = out_dir + "/hog_metrics.txt";
  std::FILE* out = std::fopen(metrics_path.c_str(), "w");
  if (out != nullptr) {
    std::fwrite(result.metrics_text.data(), 1, result.metrics_text.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
