// Can you fix the memory-hog problem by tuning the OS instead? This example
// sweeps the paging daemon's tunables (min_freemem, activation period, sweep
// rate) under the prefetching-only MATVEC and compares the best of them
// against simply letting the application release its own pages — the paper's
// argument that application-directed management beats policy tuning.
//
// The five configurations run on a SweepRunner (all cores, or --jobs N);
// results are rendered in submission order so the table matches a serial run
// byte for byte.
//
//   ./build/examples/policy_tuning [scale] [--jobs N]

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  double scale = 0.25;
  int jobs = 0;
  bool have_scale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (!have_scale) {
      scale = std::atof(argv[i]);
      have_scale = true;
    }
  }
  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];

  auto machine_at = [&](int64_t min_freemem, tmh::SimDuration period, double sweep) {
    tmh::MachineConfig machine;
    machine.user_memory_bytes =
        static_cast<int64_t>(static_cast<double>(machine.user_memory_bytes) * scale);
    machine.tunables.min_freemem_pages = min_freemem;
    machine.tunables.target_freemem_pages = 3 * min_freemem;
    machine.tunables.daemon_period = period;
    machine.tunables.daemon_min_sweep_fraction = sweep;
    return machine;
  };

  auto spec_at = [&](const tmh::MachineConfig& machine, tmh::AppVersion version) {
    tmh::ExperimentSpec spec;
    spec.machine = machine;
    spec.workload = matvec.factory(scale);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 5 * tmh::kSec;
    return spec;
  };

  std::printf("Tuning the OS under MATVEC-P vs letting the app release (scale %.2f)\n\n", scale);
  std::vector<std::string> labels;
  std::vector<tmh::ExperimentSpec> specs;
  labels.push_back("P, default tunables");
  specs.push_back(spec_at(machine_at(64, 250 * tmh::kMsec, 0.25), tmh::AppVersion::kPrefetch));
  labels.push_back("P, min_freemem x4");
  specs.push_back(spec_at(machine_at(256, 250 * tmh::kMsec, 0.25), tmh::AppVersion::kPrefetch));
  labels.push_back("P, daemon 4x faster");
  specs.push_back(spec_at(machine_at(64, 60 * tmh::kMsec, 0.25), tmh::AppVersion::kPrefetch));
  labels.push_back("P, gentle sweeps (5%)");
  specs.push_back(spec_at(machine_at(64, 250 * tmh::kMsec, 0.05), tmh::AppVersion::kPrefetch));
  labels.push_back("B, default tunables");
  specs.push_back(spec_at(machine_at(64, 250 * tmh::kMsec, 0.25), tmh::AppVersion::kBuffered));

  tmh::SweepRunner runner(tmh::SweepOptions{jobs});
  const std::vector<tmh::ExperimentResult> results = runner.Run(specs);

  tmh::ReportTable table({"configuration", "app exec", "interactive response",
                          "interactive hf/sweep", "daemon stolen"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({labels[i],
                  tmh::FormatSeconds(tmh::ToSeconds(result.app.times.Execution())),
                  tmh::FormatSeconds(result.interactive->mean_response_ns / 1e9),
                  tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1),
                  tmh::FormatCount(result.kernel.daemon_pages_stolen)});
  }
  table.Print();
  std::printf(
      "\nNo tunable setting rescues both sides: bigger free targets or faster sweeps\n"
      "steal the interactive task's pages even sooner, gentler sweeps starve the\n"
      "prefetcher. Compiler-inserted releases (B) win on both axes at once, without\n"
      "touching the default policy — the paper's central argument.\n");
  return 0;
}
