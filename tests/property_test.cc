// Property-based tests: randomized program structures and op mixes must
// preserve the system's core invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/compiler/compile.h"
#include "src/core/experiment.h"
#include "src/runtime/interpreter.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

constexpr int64_t kPage = 16 * 1024;

// --- Interpreter vs naive reference on random nests -----------------------------

// Builds a random (1-3)-deep nest over 1-3 arrays with random strides and
// constants; occasionally negative strides and multi-ref groups.
SourceProgram RandomProgram(uint64_t seed) {
  Rng rng(seed);
  SourceProgram p;
  p.name = "random";
  p.text_pages = 0;
  const int num_arrays = static_cast<int>(rng.NextBelow(3)) + 1;
  for (int a = 0; a < num_arrays; ++a) {
    const int64_t elements = 2048 * static_cast<int64_t>(rng.NextBelow(6) + 2);
    p.arrays.push_back({"a" + std::to_string(a), 8, elements, true, nullptr});
  }
  const int num_nests = static_cast<int>(rng.NextBelow(2)) + 1;
  for (int n = 0; n < num_nests; ++n) {
    LoopNest nest;
    const int depth = static_cast<int>(rng.NextBelow(3)) + 1;
    std::vector<int64_t> trips;
    for (int d = 0; d < depth; ++d) {
      const int64_t trip = static_cast<int64_t>(rng.NextBelow(d + 1 == depth ? 4096 : 12)) + 2;
      trips.push_back(trip);
      nest.loops.push_back(Loop{"v" + std::to_string(d), 0, trip, 1, rng.NextBelow(2) == 0});
    }
    const int num_refs = static_cast<int>(rng.NextBelow(3)) + 1;
    for (int r = 0; r < num_refs; ++r) {
      ArrayRef ref;
      ref.array = static_cast<int32_t>(rng.NextBelow(p.arrays.size()));
      const ArrayDecl& array = p.arrays[static_cast<size_t>(ref.array)];
      ref.affine.coeffs.assign(static_cast<size_t>(depth), 0);
      // Innermost coefficient: -2..2 (0 = invariant).
      ref.affine.coeffs.back() = rng.NextInRange(-2, 2);
      if (depth > 1 && rng.NextBelow(2) == 0) {
        ref.affine.coeffs[0] = rng.NextInRange(0, 3) * trips.back();
      }
      // Keep the walk inside the array.
      int64_t max_reach = std::abs(ref.affine.coeffs.back()) * trips.back();
      if (depth > 1) {
        max_reach += std::abs(ref.affine.coeffs[0]) * trips[0];
      }
      if (max_reach >= array.num_elements) {
        ref.affine.coeffs.back() = (ref.affine.coeffs.back() < 0) ? -1 : 1;
        ref.affine.coeffs[0] = 0;
      }
      ref.affine.constant =
          (ref.affine.coeffs.back() < 0) ? array.num_elements - 1 : rng.NextInRange(0, 64);
      ref.is_write = rng.NextBelow(2) == 0;
      nest.refs.push_back(ref);
    }
    nest.compute_per_iteration = static_cast<SimDuration>(rng.NextBelow(50) + 1);
    p.nests.push_back(std::move(nest));
  }
  p.repeat = static_cast<int64_t>(rng.NextBelow(2)) + 1;
  return p;
}

// Reference: per-iteration walk recording first-touch-per-page transitions.
std::vector<VPage> NaiveTouches(const SourceProgram& program, const ArrayLayout& layout) {
  std::vector<VPage> touches;
  for (int64_t rep = 0; rep < program.repeat; ++rep) {
    for (const LoopNest& nest : program.nests) {
      std::vector<int64_t> last_page(nest.refs.size(), -1);
      std::vector<int64_t> ivs;
      bool empty = false;
      for (const Loop& loop : nest.loops) {
        ivs.push_back(loop.lower);
        empty = empty || loop.upper <= loop.lower;
      }
      if (empty) {
        continue;
      }
      bool done = false;
      while (!done) {
        for (size_t r = 0; r < nest.refs.size(); ++r) {
          const ArrayRef& ref = nest.refs[r];
          const ArrayDecl& array = program.arrays[static_cast<size_t>(ref.array)];
          int64_t element = ref.affine.Eval(ivs);
          element = std::clamp<int64_t>(element, 0, array.num_elements - 1);
          const int64_t page = layout.PageOf(ref.array, element);
          if (page != last_page[r]) {
            last_page[r] = page;
            touches.push_back(page);
          }
        }
        size_t d = nest.loops.size();
        while (true) {
          if (d-- == 0) {
            done = true;
            break;
          }
          ivs[d] += nest.loops[d].step;
          if (ivs[d] < nest.loops[d].upper) {
            break;
          }
          if (d == 0) {
            done = true;
            break;
          }
          ivs[d] = nest.loops[d].lower;
        }
      }
    }
  }
  return touches;
}

class InterpreterEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterpreterEquivalenceTest, BatchedTouchSequenceMatchesNaiveWalk) {
  const SourceProgram source = RandomProgram(GetParam());
  CompilerTarget target;
  const CompiledProgram program = Compile(source, target, CompileOptions{false, false});
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  Interpreter interp(&program, as, nullptr);
  std::vector<VPage> touches;
  SimDuration compute = 0;
  for (int64_t guard = 0; guard < 100'000'000; ++guard) {
    const Op op = interp.Next(kernel);
    if (op.kind == Op::Kind::kExit) {
      break;
    }
    if (op.kind == Op::Kind::kTouch) {
      touches.push_back(op.vpage);
    } else if (op.kind == Op::Kind::kCompute) {
      compute += op.duration;
    }
  }
  EXPECT_EQ(touches, NaiveTouches(source, program.layout));
  // Total compute equals iterations * per-iteration cost.
  int64_t expected_iterations = 0;
  for (const LoopNest& nest : source.nests) {
    int64_t iterations = 1;
    for (const Loop& loop : nest.loops) {
      iterations *= std::max<int64_t>(0, loop.upper - loop.lower);
    }
    expected_iterations += iterations * source.repeat * nest.compute_per_iteration;
  }
  EXPECT_EQ(compute, expected_iterations);
}

INSTANTIATE_TEST_SUITE_P(RandomNests, InterpreterEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 33));

// --- Frame conservation under random multiprogramming ----------------------------

class FrameConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameConservationTest, FramesNeverLeakOrDuplicate) {
  MachineConfig config = TestMachine(24);
  Kernel kernel(config);
  kernel.StartDaemons();
  Rng rng(GetParam());

  // Two competing processes with random touch/release scripts.
  std::vector<std::unique_ptr<ScriptProgram>> programs;
  std::vector<Thread*> threads;
  for (int i = 0; i < 2; ++i) {
    AddressSpace* as = MakeSwapAs(kernel, "p" + std::to_string(i), 32);
    as->AttachPagingDirected(0, 32);
    std::vector<Op> ops;
    for (int step = 0; step < 300; ++step) {
      const auto page = static_cast<VPage>(rng.NextBelow(32));
      switch (rng.NextBelow(4)) {
        case 0:
        case 1:
          ops.push_back(Op::Touch(page, rng.NextBelow(2) == 0, 20 * kUsec));
          break;
        case 2:
          ops.push_back(Op::Release(page, static_cast<int64_t>(rng.NextBelow(4)) + 1,
                                    static_cast<int32_t>(rng.NextBelow(3)),
                                    static_cast<int32_t>(rng.NextBelow(5))));
          break;
        case 3:
          ops.push_back(Op::Prefetch((page + 1) % 32));
          break;
      }
    }
    programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    threads.push_back(kernel.Spawn("p" + std::to_string(i), as, programs.back().get()));
  }
  ASSERT_TRUE(kernel.RunUntilThreadsDone(threads, 10'000'000));
  // Let in-flight writebacks drain.
  kernel.RunUntilDone([&] {
    for (FrameId f = 0; f < kernel.frames().size(); ++f) {
      if (kernel.frames().at(f).io_busy) {
        return false;
      }
    }
    return true;
  });

  // Conservation: every frame is exactly one of {free, mapped}.
  int64_t mapped = 0;
  for (FrameId f = 0; f < kernel.frames().size(); ++f) {
    const Frame& frame = kernel.frames().at(f);
    EXPECT_FALSE(frame.mapped && kernel.free_list().Contains(f))
        << "frame " << f << " is both mapped and free";
    mapped += frame.mapped ? 1 : 0;
  }
  EXPECT_EQ(mapped + kernel.FreePages(), kernel.frames().size());

  // Page tables agree with the frame table.
  for (const auto& as : kernel.address_spaces()) {
    int64_t resident = 0;
    for (VPage p = 0; p < as->num_pages(); ++p) {
      const Pte& pte = as->page_table().at(p);
      if (pte.resident) {
        ++resident;
        const Frame& frame = kernel.frames().at(pte.frame);
        EXPECT_EQ(frame.owner, as->id());
        EXPECT_EQ(frame.vpage, p);
        EXPECT_TRUE(frame.mapped);
      }
    }
    EXPECT_EQ(resident, as->page_table().resident_count());
    // Bitmap agrees with residency for PM-attached spaces.
    if (as->HasPagingDirected()) {
      for (VPage p = 0; p < as->num_pages(); ++p) {
        const Pte& pte = as->page_table().at(p);
        if (pte.resident && pte.valid) {
          EXPECT_TRUE(as->bitmap()->Test(p)) << "page " << p;
        }
        if (!pte.resident && pte.frame == kNoFrame) {
          EXPECT_FALSE(as->bitmap()->Test(p)) << "page " << p;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameConservationTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- Whole-experiment determinism across every benchmark -------------------------

class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, IdenticalStatsForIdenticalRuns) {
  const WorkloadInfo& info = AllWorkloads()[static_cast<size_t>(GetParam())];
  auto run = [&] {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = info.factory(0.08);
    spec.version = AppVersion::kRelease;
    spec.with_interactive = true;
    spec.interactive.sleep_time = kSec;
    return RunExperiment(spec);
  };
  const ExperimentResult a = run();
  const ExperimentResult b = run();
  EXPECT_EQ(a.app.wall, b.app.wall) << info.name;
  EXPECT_EQ(a.swap_reads, b.swap_reads);
  EXPECT_EQ(a.swap_writes, b.swap_writes);
  EXPECT_EQ(a.kernel.daemon_pages_stolen, b.kernel.daemon_pages_stolen);
  EXPECT_EQ(a.kernel.releaser_pages_freed, b.kernel.releaser_pages_freed);
  EXPECT_EQ(a.app.faults.hard_faults, b.app.faults.hard_faults);
  EXPECT_EQ(a.app.faults.soft_faults, b.app.faults.soft_faults);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DeterminismTest, ::testing::Range(0, 6));

// --- Version monotonicity across benchmarks --------------------------------------

class VersionOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(VersionOrderingTest, PrefetchingNeverSlowsTheAppDown) {
  const WorkloadInfo& info = AllWorkloads()[static_cast<size_t>(GetParam())];
  auto run = [&](AppVersion version) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = info.factory(0.08);
    spec.version = version;
    return RunExperiment(spec);
  };
  const ExperimentResult o = run(AppVersion::kOriginal);
  const ExperimentResult p = run(AppVersion::kPrefetch);
  ASSERT_TRUE(o.completed && p.completed);
  // At this tiny test scale some data sets barely exceed memory, where
  // prefetching's overhead can rival its benefit; allow modest slack there
  // while still catching real regressions.
  EXPECT_LT(p.app.times.Execution(),
            o.app.times.Execution() + o.app.times.Execution() / 4)
      << info.name;
}

TEST_P(VersionOrderingTest, ReleasingKeepsDaemonQuieterThanPrefetchAlone) {
  const WorkloadInfo& info = AllWorkloads()[static_cast<size_t>(GetParam())];
  auto run = [&](AppVersion version) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = info.factory(0.08);
    spec.version = version;
    return RunExperiment(spec);
  };
  const ExperimentResult p = run(AppVersion::kPrefetch);
  const ExperimentResult r = run(AppVersion::kRelease);
  ASSERT_TRUE(p.completed && r.completed);
  // Table 3: the daemon steals far less when the app releases.
  EXPECT_LE(r.kernel.daemon_pages_stolen, p.kernel.daemon_pages_stolen) << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, VersionOrderingTest, ::testing::Range(0, 6));

// --- adaptive recompilation preserves program semantics ---------------------------

class AdaptiveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveEquivalenceTest, SamePageTrafficAndIterations) {
  // Re-specializing hints at nest entry must never change WHAT the program
  // touches — only how efficiently the hints are evaluated.
  const WorkloadInfo& info = AllWorkloads()[static_cast<size_t>(GetParam())];
  auto run = [&](bool adaptive) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = info.factory(0.08);
    spec.version = AppVersion::kRelease;
    spec.adaptive = adaptive;
    return RunExperiment(spec);
  };
  const ExperimentResult fixed = run(false);
  const ExperimentResult adaptive = run(true);
  ASSERT_TRUE(fixed.completed && adaptive.completed) << info.name;
  EXPECT_EQ(adaptive.app.interp.iterations, fixed.app.interp.iterations) << info.name;
  EXPECT_EQ(adaptive.app.interp.page_touches, fixed.app.interp.page_touches) << info.name;
  EXPECT_EQ(adaptive.app.interp.nests_entered, fixed.app.interp.nests_entered) << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AdaptiveEquivalenceTest, ::testing::Range(0, 6));

// --- the release machinery never loses data ----------------------------------------

class DataIntegrityTest : public ::testing::TestWithParam<int> {};

TEST_P(DataIntegrityTest, EveryDirtyEvictionIsWrittenBack) {
  // Pages dirtied by the app must reach swap before their frames are reused:
  // at any quiescent point, writes issued >= frames whose dirty contents were
  // displaced. We check the global balance: every reclaim of a dirty frame
  // accounts for exactly one swap write.
  const WorkloadInfo& info = AllWorkloads()[static_cast<size_t>(GetParam())];
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = info.factory(0.08);
  spec.version = AppVersion::kRelease;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed) << info.name;
  EXPECT_EQ(result.swap_writes, result.kernel.writebacks) << info.name;
  // And reads never exceed what was materialized on swap (initial on-disk
  // data plus written-back pages).
  int64_t on_disk_pages = 0;
  for (const ArrayDecl& array : spec.workload.arrays) {
    if (array.on_disk) {
      on_disk_pages += (array.size_bytes() + 16383) / 16384;
    }
  }
  // Each on-disk page can be read multiple times, but a page never written
  // nor preloaded cannot be read at all; sanity-bound the total.
  EXPECT_LE(result.swap_reads,
            static_cast<uint64_t>(on_disk_pages) * 50 + result.swap_writes * 50 + 1000)
      << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DataIntegrityTest, ::testing::Range(0, 6));

// --- Event queue: ordering and determinism under random churn -------------------

// The executed order of randomly-timed, randomly-cancelled events must equal a
// stable sort of the survivors by timestamp (stable = FIFO within a tick).
class EventQueueOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueOrderingTest, MatchesStableSortReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  EventQueue q;
  struct Scheduled {
    SimTime when;
    int seq;
    EventId id;
    bool cancelled = false;
  };
  std::vector<Scheduled> events;
  std::vector<int> executed;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    // Narrow time range → many collisions → the FIFO path is exercised hard.
    const SimTime when = static_cast<SimTime>(rng.NextBelow(64));
    const EventId id = q.ScheduleAt(when, [&executed, i] { executed.push_back(i); });
    events.push_back({when, i, id});
  }
  for (Scheduled& e : events) {
    if (rng.NextBelow(3) == 0) {
      EXPECT_TRUE(q.Cancel(e.id));
      e.cancelled = true;
    }
  }
  q.RunToCompletion();

  std::vector<Scheduled> survivors;
  for (const Scheduled& e : events) {
    if (!e.cancelled) {
      survivors.push_back(e);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Scheduled& a, const Scheduled& b) { return a.when < b.when; });
  ASSERT_EQ(executed.size(), survivors.size());
  for (size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(executed[i], survivors[i].seq) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderingTest, ::testing::Range(0, 8));

// Handlers that schedule and cancel more work mid-run must yield the identical
// execution trace on a re-run with the same seed (the simulator's determinism
// rests on this).
class EventQueueChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueChurnTest, DeterministicUnderScheduleCancelChurn) {
  auto run = [seed = GetParam()] {
    Rng rng(static_cast<uint64_t>(seed) * 104729 + 5);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<EventId> pending;
    int next_tag = 0;
    std::function<void(int)> handler = [&](int tag) {
      trace.emplace_back(q.Now(), tag);
      if (trace.size() > 2000) {
        return;  // bound the run
      }
      const uint64_t roll = rng.NextBelow(10);
      if (roll < 6) {
        const SimTime delta = static_cast<SimTime>(rng.NextBelow(20));
        const int t = ++next_tag;
        pending.push_back(q.ScheduleAfter(delta, [&handler, t] { handler(t); }));
      }
      if (roll >= 4 && !pending.empty()) {
        const size_t victim = rng.NextBelow(pending.size());
        q.Cancel(pending[victim]);  // may be stale: Cancel must cope either way
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(victim));
      }
    };
    for (int i = 0; i < 50; ++i) {
      const int t = ++next_tag;
      pending.push_back(
          q.ScheduleAt(static_cast<SimTime>(rng.NextBelow(30)), [&handler, t] { handler(t); }));
    }
    q.RunToCompletion(10000);
    return trace;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueChurnTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace tmh
