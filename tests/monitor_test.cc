// Tests for src/monitor: the kernel's monitoring entry points, the region
// sampler's split/merge dynamics (determinism and the region-count bound), and
// the schemes engine flowing through the standard release path under checks.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/monitor/access_monitor.h"
#include "src/sim/rng.h"
#include "src/vm/page_table.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

// --- kernel entry points ------------------------------------------------------

TEST(MonitorKernelTest, SamplePageInvalidatesAndSoftFaultRevalidates) {
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "a", 8);
  ScriptProgram prog({Op::Touch(0, /*write=*/true, kMsec)});
  Thread* t = kernel.Spawn("t", as, &prog);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));

  Pte& pte = as->page_table().at(0);
  ASSERT_TRUE(pte.resident);
  ASSERT_TRUE(pte.valid);

  EXPECT_FALSE(kernel.MonitorSamplePage(as, 5));   // never materialized
  EXPECT_FALSE(kernel.MonitorSamplePage(as, -1));  // out of range
  EXPECT_TRUE(kernel.MonitorSamplePage(as, 0));
  EXPECT_TRUE(pte.resident);
  EXPECT_FALSE(pte.valid);
  EXPECT_EQ(pte.invalid_reason, InvalidReason::kMonitorSampled);
  EXPECT_FALSE(kernel.frames().referenced(pte.frame));
  EXPECT_EQ(kernel.stats().monitor_invalidations, 1u);
  // Already invalid: not sampleable again until revalidated.
  EXPECT_FALSE(kernel.MonitorSamplePage(as, 0));

  ScriptProgram retouch({Op::Touch(0, /*write=*/false, kMsec)});
  Thread* t2 = kernel.Spawn("t2", as, &retouch);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t2}));
  EXPECT_TRUE(pte.valid);
  EXPECT_EQ(pte.invalid_reason, InvalidReason::kNone);
  EXPECT_TRUE(kernel.frames().referenced(pte.frame));
  EXPECT_EQ(kernel.stats().monitor_soft_faults, 1u);
  EXPECT_EQ(kernel.stats().soft_faults, 1u);
}

TEST(MonitorKernelTest, EnqueueReleaseFlowsThroughReleaser) {
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "a", 8);
  ScriptProgram prog({Op::Touch(0, /*write=*/true, kMsec), Op::Touch(1, /*write=*/true, kMsec)});
  Thread* t = kernel.Spawn("t", as, &prog);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));

  EXPECT_TRUE(kernel.MonitorEnqueueRelease(as, 0));
  EXPECT_FALSE(kernel.MonitorEnqueueRelease(as, 0));  // already queued
  EXPECT_FALSE(kernel.MonitorEnqueueRelease(as, 5));  // not resident
  EXPECT_EQ(as->page_table().at(0).invalid_reason, InvalidReason::kReleasePending);
  kernel.MonitorPublishReleases(as);
  EXPECT_EQ(kernel.stats().monitor_releases_enqueued, 1u);
  EXPECT_EQ(kernel.stats().release_pages_enqueued, 1u);

  // Let the woken releaser drain the queue.
  ScriptProgram sleeper({Op::Sleep(500 * kMsec)});
  Thread* ts = kernel.Spawn("s", as, &sleeper);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ts}));
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 1u);
  EXPECT_FALSE(as->page_table().at(0).resident);
  EXPECT_TRUE(as->page_table().at(1).resident);  // untouched by the monitor
}

TEST(MonitorKernelTest, EnqueueReleaseClearsPagingDirectedBitmap) {
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "a", 8);
  as->AttachPagingDirected(0, as->num_pages());
  kernel.UpdateSharedHeader(as);
  ScriptProgram prog({Op::Touch(0, /*write=*/true, kMsec)});
  Thread* t = kernel.Spawn("t", as, &prog);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(as->bitmap()->Test(0));

  EXPECT_TRUE(kernel.MonitorEnqueueRelease(as, 0));
  // Same protocol as the release syscall: bit cleared so a re-reference before
  // the releaser gets there re-sets it (rescue signal).
  EXPECT_FALSE(as->bitmap()->Test(0));
}

TEST(MonitorKernelTest, ProtectPageSetsReferenceBit) {
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "a", 8);
  ScriptProgram prog({Op::Touch(0, /*write=*/true, kMsec)});
  Thread* t = kernel.Spawn("t", as, &prog);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));

  const Pte& pte = as->page_table().at(0);
  ASSERT_TRUE(kernel.MonitorSamplePage(as, 0));  // clears the reference bit
  ASSERT_FALSE(kernel.frames().referenced(pte.frame));
  EXPECT_TRUE(kernel.MonitorProtectPage(as, 0));
  EXPECT_TRUE(kernel.frames().referenced(pte.frame));
  EXPECT_FALSE(kernel.MonitorProtectPage(as, 5));  // not resident
  EXPECT_EQ(kernel.stats().monitor_pages_protected, 1u);
}

// --- region sampler dynamics --------------------------------------------------

// Touches uniformly random pages of its address space forever.
class RandomToucher : public Program {
 public:
  RandomToucher(VPage n, uint64_t seed) : n_(n), rng_(seed) {}

  Op Next(Kernel& kernel) override {
    (void)kernel;
    return Op::Touch(static_cast<VPage>(rng_.NextBelow(static_cast<uint64_t>(n_))),
                     /*write=*/false, kMsec);
  }

 private:
  VPage n_;
  Rng rng_;
};

// Adversarial (uniform random) access keeps every region's sampled behavior
// noisy — maximal split pressure — yet the region count must respect the
// configured bound, and the regions must always partition the address space.
TEST(AccessMonitorTest, RegionCountBoundedUnderAdversarialPattern) {
  Kernel kernel(TestMachine(96));
  MonitorConfig config;
  config.sample_period = 5 * kMsec;
  config.samples_per_aggregation = 2;
  config.min_regions = 4;
  config.max_regions = 16;
  config.release_cold = false;  // isolate the split/merge dynamics
  AccessMonitor monitor(kernel, config);
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "rand", 64);
  RandomToucher prog(64, /*seed=*/7);
  kernel.Spawn("rand", as, &prog);
  monitor.Start();
  const SimTime deadline = 2 * kSec;
  kernel.RunUntilDone([&] { return kernel.Now() >= deadline; });

  EXPECT_GT(monitor.stats().aggregations, 0u);
  EXPECT_GT(monitor.stats().region_splits, 0u);
  EXPECT_LE(monitor.stats().max_regions_seen, 16u);
  const std::vector<MonitorRegion>* regions = monitor.RegionsFor(as->id());
  ASSERT_NE(regions, nullptr);
  ASSERT_GE(regions->size(), 4u);
  ASSERT_LE(regions->size(), 16u);
  // The regions partition [0, num_pages): contiguous, nonempty, gap-free.
  EXPECT_EQ(regions->front().begin, 0);
  EXPECT_EQ(regions->back().end, 64);
  for (size_t i = 0; i < regions->size(); ++i) {
    EXPECT_LT((*regions)[i].begin, (*regions)[i].end);
    if (i > 0) {
      EXPECT_EQ((*regions)[i - 1].end, (*regions)[i].begin);
    }
  }
}

TEST(AccessMonitorTest, UntargetedAddressSpaceIsNeverSampled) {
  Kernel kernel(TestMachine(96));
  MonitorConfig config;
  config.sample_period = 5 * kMsec;
  AccessMonitor monitor(kernel, config);
  kernel.StartDaemons();
  AddressSpace* target = MakeAnonAs(kernel, "target", 32);
  AddressSpace* bystander = MakeAnonAs(kernel, "bystander", 32);
  monitor.AddTarget(target);
  RandomToucher p1(32, 3);
  RandomToucher p2(32, 4);
  kernel.Spawn("t1", target, &p1);
  kernel.Spawn("t2", bystander, &p2);
  monitor.Start();
  const SimTime deadline = kSec;
  kernel.RunUntilDone([&] { return kernel.Now() >= deadline; });

  EXPECT_NE(monitor.RegionsFor(target->id()), nullptr);
  EXPECT_EQ(monitor.RegionsFor(bystander->id()), nullptr);
  EXPECT_EQ(bystander->stats().invalidations_received, 0u);
  EXPECT_GT(target->stats().invalidations_received, 0u);
}

// --- end-to-end: determinism and checks ---------------------------------------

ExperimentSpec MonitoredMatvecSpec() {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = 4 * 1024 * 1024;  // out-of-core at scale 0.05
  spec.workload = MakeMatvec(0.05);
  spec.version = AppVersion::kOriginal;
  spec.monitor = true;
  spec.monitor_config.protect_hot = true;
  return spec;
}

TEST(AccessMonitorTest, SplitMergeDeterministicAcrossRuns) {
  const ExperimentSpec spec = MonitoredMatvecSpec();
  const ExperimentResult a = RunExperiment(spec);
  const ExperimentResult b = RunExperiment(spec);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(a.monitor.has_value());
  ASSERT_TRUE(b.monitor.has_value());
  EXPECT_EQ(a.monitor->ticks, b.monitor->ticks);
  EXPECT_EQ(a.monitor->samples_armed, b.monitor->samples_armed);
  EXPECT_EQ(a.monitor->samples_hit, b.monitor->samples_hit);
  EXPECT_EQ(a.monitor->region_splits, b.monitor->region_splits);
  EXPECT_EQ(a.monitor->region_merges, b.monitor->region_merges);
  EXPECT_EQ(a.monitor->cold_pages_enqueued, b.monitor->cold_pages_enqueued);
  EXPECT_EQ(a.kernel.hard_faults, b.kernel.hard_faults);
  EXPECT_EQ(a.kernel.monitor_soft_faults, b.kernel.monitor_soft_faults);
  EXPECT_EQ(a.kernel.monitor_releases_enqueued, b.kernel.monitor_releases_enqueued);
  EXPECT_EQ(a.app.wall, b.app.wall);
  EXPECT_GT(a.monitor->samples_checked, 0u);
}

TEST(AccessMonitorTest, MonitoredRunPassesInvariantChecks) {
  ExperimentSpec spec = MonitoredMatvecSpec();
  spec.checks = true;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.check_failure.empty()) << result.check_failure;
  EXPECT_GT(result.checks_run, 0u);
  ASSERT_TRUE(result.monitor.has_value());
  EXPECT_GT(result.monitor->ticks, 0u);
}

TEST(AccessMonitorTest, NoMonitorMeansNoMonitorWork) {
  ExperimentSpec spec = MonitoredMatvecSpec();
  spec.monitor = false;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(result.monitor.has_value());
  EXPECT_EQ(result.kernel.monitor_invalidations, 0u);
  EXPECT_EQ(result.kernel.monitor_soft_faults, 0u);
  EXPECT_EQ(result.kernel.monitor_releases_enqueued, 0u);
  EXPECT_EQ(result.kernel.monitor_pages_protected, 0u);
}

}  // namespace
}  // namespace tmh
