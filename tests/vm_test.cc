// Tests for the physical-memory structures: free list (with rescue), frame
// table, page table, and residency bitmap.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/sim/rng.h"
#include "src/vm/frame_table.h"
#include "src/vm/free_list.h"
#include "src/vm/page_table.h"
#include "src/vm/residency_bitmap.h"

namespace tmh {
namespace {

TEST(FreeListTest, PopFromEmptyReturnsNoFrame) {
  FreeList list(8);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopHead(), kNoFrame);
}

TEST(FreeListTest, HeadPushesPopInLifoOrder) {
  FreeList list(8);
  list.PushHead(1);
  list.PushHead(2);
  list.PushHead(3);
  EXPECT_EQ(list.PopHead(), 3);
  EXPECT_EQ(list.PopHead(), 2);
  EXPECT_EQ(list.PopHead(), 1);
}

TEST(FreeListTest, TailPushesPopInFifoOrder) {
  FreeList list(8);
  list.PushTail(1);
  list.PushTail(2);
  list.PushTail(3);
  EXPECT_EQ(list.PopHead(), 1);
  EXPECT_EQ(list.PopHead(), 2);
  EXPECT_EQ(list.PopHead(), 3);
}

TEST(FreeListTest, TailInsertMaximizesRescueWindow) {
  // A released page (tail) outlives a daemon-stolen page (head) on the list.
  FreeList list(8);
  list.PushHead(0);  // stolen
  list.PushTail(1);  // released
  EXPECT_EQ(list.PopHead(), 0);  // the stolen page is reallocated first
  EXPECT_TRUE(list.Contains(1));
}

TEST(FreeListTest, RemoveFromMiddle) {
  FreeList list(8);
  list.PushTail(1);
  list.PushTail(2);
  list.PushTail(3);
  list.Remove(2);
  EXPECT_FALSE(list.Contains(2));
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(list.PopHead(), 1);
  EXPECT_EQ(list.PopHead(), 3);
}

TEST(FreeListTest, RemoveHeadAndTail) {
  FreeList list(8);
  list.PushTail(1);
  list.PushTail(2);
  list.PushTail(3);
  list.Remove(1);
  list.Remove(3);
  EXPECT_EQ(list.size(), 1);
  EXPECT_EQ(list.PopHead(), 2);
  EXPECT_TRUE(list.empty());
}

TEST(FreeListTest, ContainsReflectsMembership) {
  FreeList list(8);
  EXPECT_FALSE(list.Contains(3));
  list.PushTail(3);
  EXPECT_TRUE(list.Contains(3));
  list.PopHead();
  EXPECT_FALSE(list.Contains(3));
  EXPECT_FALSE(list.Contains(-1));
  EXPECT_FALSE(list.Contains(100));
}

TEST(FreeListTest, CountersTrackOperations) {
  FreeList list(8);
  list.PushHead(0);
  list.PushTail(1);
  list.PushTail(2);
  list.Remove(1);
  EXPECT_EQ(list.total_head_pushes(), 1u);
  EXPECT_EQ(list.total_tail_pushes(), 2u);
  EXPECT_EQ(list.total_rescues(), 1u);
}

// Property sweep: random push/pop/remove sequences keep the intrusive list
// consistent with a reference model.
class FreeListPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FreeListPropertyTest, MatchesReferenceModel) {
  const int kFrames = 32;
  FreeList list(kFrames);
  std::vector<FrameId> model;  // front = head
  Rng rng(GetParam());
  std::vector<bool> linked(kFrames, false);

  for (int step = 0; step < 2000; ++step) {
    const uint64_t op = rng.NextBelow(4);
    const auto f = static_cast<FrameId>(rng.NextBelow(kFrames));
    switch (op) {
      case 0:
        if (!linked[f]) {
          list.PushHead(f);
          model.insert(model.begin(), f);
          linked[f] = true;
        }
        break;
      case 1:
        if (!linked[f]) {
          list.PushTail(f);
          model.push_back(f);
          linked[f] = true;
        }
        break;
      case 2: {
        const FrameId got = list.PopHead();
        if (model.empty()) {
          ASSERT_EQ(got, kNoFrame);
        } else {
          ASSERT_EQ(got, model.front());
          linked[model.front()] = false;
          model.erase(model.begin());
        }
        break;
      }
      case 3:
        if (linked[f]) {
          list.Remove(f);
          model.erase(std::find(model.begin(), model.end(), f));
          linked[f] = false;
        }
        break;
    }
    ASSERT_EQ(list.size(), static_cast<int64_t>(model.size()));
    for (FrameId i = 0; i < kFrames; ++i) {
      ASSERT_EQ(list.Contains(i), linked[static_cast<size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreeListPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(FrameTableTest, ResetIdentityClearsEverything) {
  FrameTable frames(4);
  frames.set_owner(2, 1);
  frames.set_vpage(2, 99);
  frames.set_mapped(2, true);
  frames.set_dirty(2, true);
  frames.set_referenced(2, true);
  frames.set_contents_valid(2, true);
  frames.set_io_busy(2, true);
  frames.set_freed_by(2, FreedBy::kReleaser);
  frames.ResetIdentity(2);
  const Frame f = frames.at(2);
  EXPECT_EQ(f.owner, kNoAs);
  EXPECT_EQ(f.vpage, kNoVPage);
  EXPECT_FALSE(f.mapped);
  EXPECT_FALSE(f.dirty);
  EXPECT_FALSE(f.referenced);
  EXPECT_FALSE(f.contents_valid);
  EXPECT_FALSE(f.io_busy);
  EXPECT_EQ(f.freed_by, FreedBy::kNone);
}

TEST(PageTableTest, ResidentCountMaintained) {
  PageTable pt(10);
  EXPECT_EQ(pt.resident_count(), 0);
  pt.IncrementResident();
  pt.IncrementResident();
  EXPECT_EQ(pt.resident_count(), 2);
  pt.DecrementResident();
  EXPECT_EQ(pt.resident_count(), 1);
}

TEST(PageTableTest, FreshPteIsEmpty) {
  PageTable pt(4);
  const Pte& pte = pt.at(3);
  EXPECT_EQ(pte.frame, kNoFrame);
  EXPECT_FALSE(pte.resident);
  EXPECT_FALSE(pte.valid);
  EXPECT_EQ(pte.invalid_reason, InvalidReason::kNone);
  EXPECT_FALSE(pte.ever_materialized);
}

TEST(ResidencyBitmapTest, SetClearTest) {
  ResidencyBitmap bitmap(200);
  EXPECT_FALSE(bitmap.Test(100));
  bitmap.Set(100);
  EXPECT_TRUE(bitmap.Test(100));
  bitmap.Clear(100);
  EXPECT_FALSE(bitmap.Test(100));
}

TEST(ResidencyBitmapTest, SetAllThenClearRange) {
  ResidencyBitmap bitmap(130);
  bitmap.SetAll();
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.Test(129));
  bitmap.ClearRange(10, 20);
  EXPECT_TRUE(bitmap.Test(9));
  EXPECT_FALSE(bitmap.Test(10));
  EXPECT_FALSE(bitmap.Test(29));
  EXPECT_TRUE(bitmap.Test(30));
}

TEST(ResidencyBitmapTest, PopCountCountsSetBits) {
  ResidencyBitmap bitmap(100);
  EXPECT_EQ(bitmap.PopCount(), 0);
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(64);
  bitmap.Set(99);
  EXPECT_EQ(bitmap.PopCount(), 4);
}

TEST(ResidencyBitmapTest, HeaderWordsRoundTrip) {
  ResidencyBitmap bitmap(10);
  EXPECT_EQ(bitmap.current_usage(), 0);
  EXPECT_EQ(bitmap.upper_limit(), 0);
  bitmap.SetHeader(42, 4096);
  EXPECT_EQ(bitmap.current_usage(), 42);
  EXPECT_EQ(bitmap.upper_limit(), 4096);
}

TEST(ResidencyBitmapTest, SetRangeMatchesBitwiseSets) {
  // Exercise every head/tail alignment class against the one-bit reference.
  for (const auto& [first, count] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 64}, {0, 130}, {3, 5}, {60, 8}, {63, 1}, {64, 64}, {5, 200}, {190, 9}}) {
    ResidencyBitmap wordwise(199);
    ResidencyBitmap reference(199);
    wordwise.SetRange(first, count);
    for (int64_t p = first; p < first + count; ++p) {
      reference.Set(p);
    }
    for (VPage p = 0; p < 199; ++p) {
      EXPECT_EQ(wordwise.Test(p), reference.Test(p)) << "range [" << first << ", +" << count
                                                     << ") page " << p;
    }
    EXPECT_EQ(wordwise.PopCount(), count);
  }
}

TEST(ResidencyBitmapTest, ClearRangeMatchesBitwiseClears) {
  for (const auto& [first, count] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 64}, {0, 130}, {3, 5}, {60, 8}, {63, 1}, {64, 64}, {5, 200}, {190, 9}}) {
    ResidencyBitmap wordwise(199);
    ResidencyBitmap reference(199);
    wordwise.SetAll();
    reference.SetAll();
    wordwise.ClearRange(first, count);
    for (int64_t p = first; p < first + count; ++p) {
      reference.Clear(p);
    }
    for (VPage p = 0; p < 199; ++p) {
      EXPECT_EQ(wordwise.Test(p), reference.Test(p)) << "range [" << first << ", +" << count
                                                     << ") page " << p;
    }
    EXPECT_EQ(wordwise.PopCount(), reference.PopCount());
  }
}

TEST(ResidencyBitmapTest, FindFirstResidentScansWordWise) {
  ResidencyBitmap bitmap(512);
  EXPECT_EQ(bitmap.FindFirstResident(0, 512), kNoVPage);
  bitmap.Set(200);
  EXPECT_EQ(bitmap.FindFirstResident(0, 512), 200);
  EXPECT_EQ(bitmap.FindFirstResident(0, 200), kNoVPage);   // excludes the hit
  EXPECT_EQ(bitmap.FindFirstResident(200, 1), 200);
  EXPECT_EQ(bitmap.FindFirstResident(201, 311), kNoVPage);  // starts past it
  bitmap.Set(63);  // word-boundary bit, set after 200 but earlier in the scan
  EXPECT_EQ(bitmap.FindFirstResident(0, 512), 63);
  EXPECT_EQ(bitmap.FindFirstResident(64, 448), 200);
}

TEST(ResidencyBitmapTest, CountRangeMatchesMaskedPopCount) {
  ResidencyBitmap bitmap(300);
  for (VPage p : {0, 1, 63, 64, 65, 128, 250, 299}) {
    bitmap.Set(p);
  }
  EXPECT_EQ(bitmap.CountRange(0, 300), 8);
  EXPECT_EQ(bitmap.CountRange(0, 64), 3);    // 0, 1, 63
  EXPECT_EQ(bitmap.CountRange(64, 2), 2);    // 64, 65
  EXPECT_EQ(bitmap.CountRange(66, 62), 0);   // [66, 128): stops short of 128
  EXPECT_EQ(bitmap.CountRange(66, 63), 1);   // [66, 129): includes 128
  EXPECT_EQ(bitmap.CountRange(129, 120), 0);
  EXPECT_EQ(bitmap.CountRange(299, 1), 1);
}

TEST(ResidencyBitmapTest, WordBoundaryBitsIndependent) {
  ResidencyBitmap bitmap(256);
  for (VPage p : {62, 63, 64, 65, 127, 128, 191, 192}) {
    bitmap.Set(p);
  }
  EXPECT_FALSE(bitmap.Test(61));
  EXPECT_TRUE(bitmap.Test(62));
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_FALSE(bitmap.Test(66));
  EXPECT_EQ(bitmap.PopCount(), 8);
}

}  // namespace
}  // namespace tmh
