// Tests for the differential oracle and the kernel invariant checker:
// the oracle's own divergence detection, release/rescue adversarial paths
// under the checker, Eq. 1 conformance (maxrss clamp and min_freemem floor),
// and detection of hand-corrupted kernel state.

#include <gtest/gtest.h>

#include "src/check/invariants.h"
#include "src/check/oracle.h"
#include "src/core/experiment.h"
#include "src/os/kernel.h"
#include "src/workloads/extra.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

VmHookEvent Ev(VmHookOp op, FrameId frame, AsId as = 0, VPage vpage = 0) {
  VmHookEvent e;
  e.op = op;
  e.as = as;
  e.vpage = vpage;
  e.frame = frame;
  return e;
}

// --- oracle as a standalone model --------------------------------------------

TEST(OracleUnitTest, AllocationMustPopTheFreeListHead) {
  VmOracle oracle;
  oracle.Apply(Ev(VmHookOp::kFreePushTail, 1));
  oracle.Apply(Ev(VmHookOp::kFreePushTail, 2));
  ASSERT_TRUE(oracle.ok());
  oracle.Apply(Ev(VmHookOp::kAlloc, 2));  // head is frame 1
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.failure().find("head"), std::string::npos) << oracle.failure();
}

TEST(OracleUnitTest, DoubleFreeIsDivergence) {
  VmOracle oracle;
  oracle.Apply(Ev(VmHookOp::kFreePushTail, 3));
  oracle.Apply(Ev(VmHookOp::kFreePushHead, 3));
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.failure().find("double free"), std::string::npos) << oracle.failure();
}

TEST(OracleUnitTest, WritebackOfCleanFrameIsDivergence) {
  VmOracle oracle;
  oracle.Apply(Ev(VmHookOp::kWritebackBegin, 5));
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.failure().find("clean"), std::string::npos) << oracle.failure();
}

TEST(OracleUnitTest, FreeingAMappedFrameIsDivergence) {
  VmOracle oracle;
  oracle.Apply(Ev(VmHookOp::kFreePushTail, 7));
  oracle.Apply(Ev(VmHookOp::kAlloc, 7));
  oracle.Apply(Ev(VmHookOp::kMap, 7, /*as=*/1, /*vpage=*/4));
  ASSERT_TRUE(oracle.ok());
  oracle.Apply(Ev(VmHookOp::kFreePushTail, 7));  // never unmapped
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.failure().find("still mapped"), std::string::npos) << oracle.failure();
}

// --- release/rescue adversarial paths under the checker ----------------------

TEST(OracleKernelTest, RescueFromFreeListTailNeedsNoDiskRead) {
  // Release a clean page, let the releaser push it to the free-list tail,
  // touch it before reclaim: the rescue must pull it from mid-list with no
  // second swap read, and the oracle must agree step for step.
  Kernel kernel(TestMachine());
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  as->AttachPagingDirected(0, 2);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1),
                         Op::Sleep(10 * kMsec),  // let the releaser free it
                         Op::Touch(0, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));

  EXPECT_EQ(t->faults().rescue_faults, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);  // only the initial page-in
  EXPECT_EQ(checker.oracle().rescues(), 1u);
  EXPECT_EQ(checker.oracle().releases_enqueued(), 1u);
  EXPECT_EQ(checker.oracle().releaser_freed(), 1u);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(OracleKernelTest, DirtyReleaseWritesBackExactlyOnce) {
  // A dirtied-then-released page must be written back exactly once on the
  // release path; re-reading it and releasing again (now clean) must not.
  Kernel kernel(TestMachine());
  kernel.EnableObservability();
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  as->AttachPagingDirected(0, 2);
  ScriptProgram program({Op::Touch(0, true, 0),  // dirty it
                         Op::Release(0, 1, 0, 1),
                         Op::Sleep(50 * kMsec),  // releaser frees + writeback
                         Op::Touch(0, false, 0),  // page back in, now clean
                         Op::Release(0, 1, 0, 2),
                         Op::Sleep(50 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));

  EXPECT_EQ(kernel.stats().releaser_pages_freed, 2u);
  EXPECT_EQ(kernel.stats().writebacks, 1u);
  EXPECT_EQ(kernel.swap().writes(), 1u);
  EXPECT_EQ(checker.oracle().writebacks(), 1u);
  kernel.PublishMetrics();
  EXPECT_EQ(kernel.metrics().GetCounter("kernel.writebacks")->value(), 1u);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

// --- Eq. 1 conformance -------------------------------------------------------

TEST(Eq1Test, PublishedHeaderMatchesOracleRecomputation) {
  // The oracle re-derives Eq. 1 from its own state at every kHeaderUpdate;
  // any published header that disagrees fails the run. Drive enough faults
  // to publish many headers, then cross-check the final one by hand.
  Kernel kernel(TestMachine());
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  std::vector<Op> ops;
  for (VPage p = 0; p < 8; ++p) {
    ops.push_back(Op::Touch(p, false, kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  const int64_t expected =
      std::max<int64_t>(0, std::min(kernel.config().tunables.maxrss_pages,
                                    as->page_table().resident_count() +
                                        kernel.free_list().size() -
                                        kernel.config().tunables.min_freemem_pages));
  EXPECT_EQ(as->bitmap()->current_usage(), as->page_table().resident_count());
  EXPECT_EQ(as->bitmap()->upper_limit(), expected);
  EXPECT_EQ(checker.oracle().UpperLimit(as->id()), expected);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(Eq1Test, MaxrssClampsThePublishedUpperLimit) {
  MachineConfig config = TestMachine(32);
  config.tunables.maxrss_pages = 10;
  Kernel kernel(config);
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 20);
  as->AttachPagingDirected(0, 20);
  std::vector<Op> ops;
  for (VPage p = 0; p < 20; ++p) {
    ops.push_back(Op::Touch(p, false, 10 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  // Plenty of free memory, so without the clamp Eq. 1 would exceed 10.
  EXPECT_EQ(as->bitmap()->upper_limit(), 10);
  EXPECT_EQ(checker.oracle().UpperLimit(as->id()), 10);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(Eq1Test, MinFreememFloorClampsUpperLimitToZero) {
  // A small paging-directed task next to a hog: with free memory below
  // min_freemem, Eq. 1 goes negative and must publish as zero. No daemons,
  // so nothing reclaims behind the test's back.
  Kernel kernel(TestMachine(16));  // min_freemem = 4
  InvariantChecker checker(kernel);
  AddressSpace* small = MakeSwapAs(kernel, "small", 4);
  small->AttachPagingDirected(0, 4);
  AddressSpace* hog = MakeSwapAs(kernel, "hog", 12);
  std::vector<Op> hog_ops;
  for (VPage p = 0; p < 12; ++p) {
    hog_ops.push_back(Op::Touch(p, false, 0));
  }
  ScriptProgram hog_program(hog_ops);
  ScriptProgram small_program({Op::Sleep(500 * kMsec),  // let the hog fill memory
                               Op::Touch(0, false, 0), Op::Touch(1, false, 0)});
  Thread* th = kernel.Spawn("hog", hog, &hog_program);
  Thread* ts = kernel.Spawn("small", small, &small_program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({th, ts}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  // 14 of 16 frames resident: resident(small)=2, free=2, min_freemem=4.
  ASSERT_EQ(kernel.free_list().size(), 2);
  EXPECT_EQ(small->bitmap()->upper_limit(), 0);
  EXPECT_EQ(checker.oracle().UpperLimit(small->id()), 0);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

// --- release policies end to end under the checker ---------------------------

TEST(PolicyCheckTest, AggressiveAndBufferedReleasePoliciesPassChecks) {
  // Full compiled-workload runs at both release-policy treatment levels (and
  // both buffered drain orders) with the checker attached: every release,
  // drain, writeback, and rescue is replayed through the oracle.
  struct Case {
    AppVersion version;
    bool drain_newest_first;
  };
  const Case cases[] = {{AppVersion::kRelease, false},
                        {AppVersion::kBuffered, false},
                        {AppVersion::kBuffered, true}};
  for (const Case& c : cases) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = 6 * 1024 * 1024;
    spec.workload = FindWorkload("MATVEC")->factory(0.05);
    spec.version = c.version;
    spec.runtime.drain_newest_first = c.drain_newest_first;
    spec.checks = true;
    const ExperimentResult result = RunExperiment(spec);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.check_failure.empty())
        << VersionLabel(c.version) << ": " << result.check_failure;
    EXPECT_GT(result.checks_run, 0u);
  }
}

// --- the checker actually detects corruption ---------------------------------

TEST(DetectionTest, CorruptedResidencyBitmapIsCaught) {
  Kernel kernel(TestMachine());
  InvariantChecker checker(kernel);
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Touch(1, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.CheckNow(kernel)) << checker.failure();

  as->bitmap()->Clear(0);  // page 0 is resident: its bit must be set
  EXPECT_FALSE(checker.CheckNow(kernel));
  EXPECT_NE(checker.failure().find("I-BM"), std::string::npos) << checker.failure();
}

TEST(DetectionTest, CorruptedPteResidencyIsCaught) {
  Kernel kernel(TestMachine());
  InvariantChecker checker(kernel);
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  ScriptProgram program({Op::Touch(2, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.CheckNow(kernel)) << checker.failure();

  as->page_table().at(2).resident = false;  // frame still mapped underneath
  EXPECT_FALSE(checker.CheckNow(kernel));
  EXPECT_NE(checker.failure().find("I-"), std::string::npos) << checker.failure();
}

TEST(DetectionTest, InjectedBitmapFlipIsCaughtByTheSelfTestHook) {
  Kernel kernel(TestMachine());
  CheckOptions options;
  options.inject_bitmap_flip_after = 1;
  InvariantChecker checker(kernel, options);
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Touch(1, false, 0),
                         Op::Touch(2, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  kernel.RunUntilThreadsDone({t});
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.failure().find("I-BM"), std::string::npos) << checker.failure();
}

}  // namespace
}  // namespace tmh
