// Tests for the compiler: IR layout, reuse analysis, group locality, locality
// (exploitability) analysis, Eq. 2 priorities, and hint insertion.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/compiler/analysis.h"
#include "src/compiler/compile.h"
#include "src/compiler/ir.h"

namespace tmh {
namespace {

constexpr int64_t kPage = 16 * 1024;

CompilerTarget SmallTarget(int64_t memory_pages = 64) {
  CompilerTarget target;
  target.page_size = kPage;
  target.memory_bytes = memory_pages * kPage;
  target.fault_latency = 10 * kMsec;
  return target;
}

// A 2-deep nest over arrays A[m][n] (streaming) and x[n] (reused across i).
SourceProgram MatvecLike(int64_t m, int64_t n) {
  SourceProgram p;
  p.name = "matveclike";
  p.arrays = {{"A", 8, m * n, true, nullptr}, {"x", 8, n, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, m, 1, true}, Loop{"j", 0, n, 1, true}};
  ArrayRef a;
  a.array = 0;
  a.affine.coeffs = {n, 1};
  ArrayRef x;
  x.array = 1;
  x.affine.coeffs = {0, 1};
  nest.refs = {a, x};
  nest.compute_per_iteration = 100 * kNsec;
  p.nests.push_back(nest);
  return p;
}

TEST(ArrayLayoutTest, ArraysArePageAlignedAndDisjoint) {
  SourceProgram p;
  p.arrays = {{"a", 8, 3000, false, nullptr},   // 24000 B -> 2 pages
              {"b", 4, 100, false, nullptr},    // 400 B   -> 1 page
              {"c", 16, 2048, false, nullptr}}; // 32768 B -> 2 pages
  ArrayLayout layout(p, kPage);
  EXPECT_EQ(layout.base_page(0), 0);
  EXPECT_EQ(layout.PageCount(0), 2);
  EXPECT_EQ(layout.base_page(1), 2);
  EXPECT_EQ(layout.PageCount(1), 1);
  EXPECT_EQ(layout.base_page(2), 3);
  EXPECT_EQ(layout.PageCount(2), 2);
  EXPECT_EQ(layout.total_pages(), 5);
}

TEST(ArrayLayoutTest, PageOfMapsElementsToPages) {
  SourceProgram p;
  p.arrays = {{"a", 8, 10000, false, nullptr}};
  ArrayLayout layout(p, kPage);
  EXPECT_EQ(layout.PageOf(0, 0), 0);
  EXPECT_EQ(layout.PageOf(0, 2047), 0);  // 2048 8-byte elements per page
  EXPECT_EQ(layout.PageOf(0, 2048), 1);
  EXPECT_EQ(layout.ElementsPerPage(0), 2048);
}

TEST(AffineExprTest, EvaluatesConstantPlusCoeffs) {
  AffineExpr e;
  e.constant = 5;
  e.coeffs = {10, 1};
  EXPECT_EQ(e.Eval({3, 7}), 5 + 30 + 7);
  EXPECT_EQ(e.Eval({0, 0}), 5);
}

TEST(ReusePriorityTest, FollowsEquationTwo) {
  // priority(x) = sum over temporal loops i of 2^depth(i)
  EXPECT_EQ(ReusePriority({}), 0);
  EXPECT_EQ(ReusePriority({0}), 1);
  EXPECT_EQ(ReusePriority({1}), 2);
  EXPECT_EQ(ReusePriority({2}), 4);
  EXPECT_EQ(ReusePriority({0, 1}), 3);
  EXPECT_EQ(ReusePriority({0, 2}), 5);
}

TEST(AnalysisTest, DetectsTemporalReuseLoops) {
  SourceProgram p = MatvecLike(8, 4096);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget());
  EXPECT_TRUE(analysis.refs[0].temporal_loops.empty());      // A streams
  EXPECT_EQ(analysis.refs[1].temporal_loops, std::vector<int>{0});  // x reused over i
  EXPECT_EQ(analysis.refs[1].priority, 1);
}

TEST(AnalysisTest, SmallReuseVolumeIsExploitable) {
  // Row + x = 2 * 4096 * 8 B = 4 pages; memory = 64 pages: reuse survives.
  SourceProgram p = MatvecLike(8, 4096);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget(64));
  EXPECT_TRUE(analysis.refs[1].exploitable_temporal);
  EXPECT_FALSE(analysis.refs[1].needs_release);   // data survives in memory
  EXPECT_FALSE(analysis.refs[1].needs_prefetch);  // and stays there
}

TEST(AnalysisTest, LargeReuseVolumeForcesRelease) {
  // Row + x = 2 * 256K * 8 B = 256 pages > 64-page memory: release anyway,
  // carrying the Eq. 2 priority.
  SourceProgram p = MatvecLike(8, 256 * 1024);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget(64));
  EXPECT_FALSE(analysis.refs[1].exploitable_temporal);
  EXPECT_TRUE(analysis.refs[1].needs_release);
  EXPECT_EQ(analysis.refs[1].priority, 1);
  EXPECT_TRUE(analysis.refs[0].needs_release);  // streaming ref released too
  EXPECT_EQ(analysis.refs[0].priority, 0);
}

TEST(AnalysisTest, UnknownBoundsAssumeSmallestWorkingSet) {
  // "It is preferable to assume that only the smallest working set will fit."
  SourceProgram p = MatvecLike(8, 4096);
  p.nests[0].loops[1].upper_known = false;
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget(64));
  EXPECT_FALSE(analysis.bounds_known);
  EXPECT_FALSE(analysis.refs[1].exploitable_temporal);
  EXPECT_TRUE(analysis.refs[1].needs_release);
}

TEST(AnalysisTest, IndirectRefsPrefetchButNeverRelease) {
  SourceProgram p;
  p.arrays = {{"a", 8, 100000, true, nullptr},
              {"b", 4, 100000, true, std::make_shared<std::vector<int64_t>>(
                                          std::vector<int64_t>{1, 2, 3})}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 100000, 1, true}};
  ArrayRef indirect;
  indirect.array = 0;
  indirect.index_array = 1;
  indirect.affine.coeffs = {1};
  ArrayRef idx;
  idx.array = 1;
  idx.affine.coeffs = {1};
  nest.refs = {indirect, idx};
  p.nests.push_back(nest);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget());
  EXPECT_TRUE(analysis.refs[0].indirect);
  EXPECT_TRUE(analysis.refs[0].needs_prefetch);
  EXPECT_FALSE(analysis.refs[0].needs_release);  // "too hard to predict reuse"
  EXPECT_TRUE(analysis.refs[1].needs_release);   // the index array itself streams
}

TEST(AnalysisTest, GroupLocalityPicksLeaderAndTrailer) {
  // Stencil a[i-1], a[i], a[i+1]: one group, leader a[i+1], trailer a[i-1].
  SourceProgram p;
  p.arrays = {{"a", 8, 1 << 20, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 1, (1 << 20) - 1, 1, true}};
  for (int64_t c : {-1, 0, 1}) {
    ArrayRef ref;
    ref.array = 0;
    ref.affine.coeffs = {1};
    ref.affine.constant = c;
    nest.refs.push_back(ref);
  }
  p.nests.push_back(nest);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget());
  EXPECT_EQ(analysis.num_groups, 1);
  EXPECT_EQ(analysis.refs[0].group, analysis.refs[2].group);
  EXPECT_TRUE(analysis.refs[2].is_group_leader);   // +1 touches data first
  EXPECT_TRUE(analysis.refs[0].is_group_trailer);  // -1 touches it last
  EXPECT_FALSE(analysis.refs[1].is_group_leader);
  EXPECT_TRUE(analysis.refs[2].needs_prefetch);
  EXPECT_TRUE(analysis.refs[0].needs_release);
  EXPECT_FALSE(analysis.refs[1].needs_release);
}

TEST(AnalysisTest, DescendingTraversalFlipsLeaderAndTrailer) {
  SourceProgram p;
  p.arrays = {{"a", 8, 1 << 20, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 1, (1 << 20) - 1, 1, true}};
  for (int64_t c : {-1, 1}) {
    ArrayRef ref;
    ref.array = 0;
    ref.affine.coeffs = {-1};  // descending sweep
    ref.affine.constant = c;
    nest.refs.push_back(ref);
  }
  p.nests.push_back(nest);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget());
  EXPECT_TRUE(analysis.refs[0].is_group_leader);   // -1 leads when descending
  EXPECT_TRUE(analysis.refs[1].is_group_trailer);
}

TEST(AnalysisTest, DistantConstantsSplitIntoSeparateGroups) {
  // Two refs a[i] and a[i + BIG] are independent streams, not one group.
  SourceProgram p;
  p.arrays = {{"a", 8, 1 << 22, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 1 << 20, 1, true}};
  for (int64_t c : {0, 1 << 21}) {
    ArrayRef ref;
    ref.array = 0;
    ref.affine.coeffs = {1};
    ref.affine.constant = c;
    nest.refs.push_back(ref);
  }
  p.nests.push_back(nest);
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget());
  EXPECT_EQ(analysis.num_groups, 2);
  EXPECT_TRUE(analysis.refs[0].is_group_leader);
  EXPECT_TRUE(analysis.refs[0].is_group_trailer);
  EXPECT_TRUE(analysis.refs[1].needs_prefetch);
  EXPECT_TRUE(analysis.refs[0].needs_prefetch);
}

TEST(AnalysisTest, ReleaseAnalyzableFlagSuppressesReleases) {
  SourceProgram p = MatvecLike(8, 256 * 1024);
  p.nests[0].refs[0].release_analyzable = false;
  ArrayLayout layout(p, kPage);
  const NestAnalysis analysis = AnalyzeNest(p, p.nests[0], layout, SmallTarget(64));
  EXPECT_FALSE(analysis.refs[0].needs_release);
  EXPECT_TRUE(analysis.refs[0].needs_prefetch);  // prefetching unaffected
}

TEST(FootprintTest, StreamingRefFootprintMatchesSpan) {
  SourceProgram p = MatvecLike(8, 256 * 1024);
  ArrayLayout layout(p, kPage);
  // x over the j loop alone: 256K elements * 8 B = 2 MB = 128 pages.
  const int64_t fp = FootprintPages(p, p.nests[0], p.nests[0].refs[1], 1, layout);
  EXPECT_GE(fp, 128);
  EXPECT_LE(fp, 130);
}

TEST(FootprintTest, UnknownBoundIsConservative) {
  SourceProgram p = MatvecLike(8, 256 * 1024);
  p.nests[0].loops[1].upper_known = false;
  ArrayLayout layout(p, kPage);
  EXPECT_EQ(FootprintPages(p, p.nests[0], p.nests[0].refs[1], 1, layout), kUnknownFootprint);
}

TEST(FootprintTest, InvariantRefTouchesOnePage) {
  SourceProgram p = MatvecLike(8, 4096);
  ArrayLayout layout(p, kPage);
  // x from depth 2 (inside everything): single position.
  EXPECT_EQ(FootprintPages(p, p.nests[0], p.nests[0].refs[1], 2, layout), 1);
}

// --- Compile (hint insertion) --------------------------------------------------

TEST(CompileTest, OriginalVersionHasNoDirectives) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  const CompiledProgram compiled =
      Compile(p, SmallTarget(64), CompileOptions{false, false});
  EXPECT_TRUE(compiled.nests[0].directives.empty());
  EXPECT_EQ(compiled.stats.prefetch_directives, 0);
  EXPECT_EQ(compiled.stats.release_directives, 0);
}

TEST(CompileTest, PrefetchOnlyVersionOmitsReleases) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  const CompiledProgram compiled =
      Compile(p, SmallTarget(64), CompileOptions{true, false});
  EXPECT_GT(compiled.stats.prefetch_directives, 0);
  EXPECT_EQ(compiled.stats.release_directives, 0);
}

TEST(CompileTest, ReleaseVersionEmitsBothKinds) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, true});
  EXPECT_EQ(compiled.stats.prefetch_directives, 2);  // A and x
  EXPECT_EQ(compiled.stats.release_directives, 2);
  EXPECT_EQ(compiled.stats.release_directives_with_reuse, 1);  // x carries priority 1
}

TEST(CompileTest, TagsAreUniqueAcrossDirectives) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, true});
  std::set<int32_t> tags;
  for (const CompiledNest& nest : compiled.nests) {
    for (const HintDirective& d : nest.directives) {
      EXPECT_TRUE(tags.insert(d.tag).second) << "duplicate tag " << d.tag;
    }
  }
}

TEST(CompileTest, PrefetchDistanceCoversFaultLatency) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  CompilerTarget target = SmallTarget(64);
  const CompiledProgram compiled = Compile(p, target, CompileOptions{true, false});
  for (const HintDirective& d : compiled.nests[0].directives) {
    // One page = 2048 iterations * 100 ns = 204.8 us; latency 10 ms => ~49.
    EXPECT_GE(d.distance, 40);
    EXPECT_LE(d.distance, target.max_prefetch_distance);
  }
}

TEST(CompileTest, SlowerComputeShortensPrefetchDistance) {
  SourceProgram p = MatvecLike(8, 256 * 1024);
  p.nests[0].compute_per_iteration = 10 * kUsec;  // 20 ms per page
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, false});
  for (const HintDirective& d : compiled.nests[0].directives) {
    EXPECT_EQ(d.distance, 1);
  }
}

TEST(CompileTest, UnknownBoundsForceEveryIterationEvaluation) {
  SourceProgram p = MatvecLike(8, 256 * 1024);
  p.nests[0].loops[0].upper_known = false;
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, true});
  for (const HintDirective& d : compiled.nests[0].directives) {
    EXPECT_TRUE(d.every_iteration);
  }
  EXPECT_EQ(compiled.stats.nests_with_unknown_bounds, 1);
}

TEST(CompileTest, KnownBoundsStripMineToPageCrossings) {
  const SourceProgram p = MatvecLike(8, 256 * 1024);
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, true});
  for (const HintDirective& d : compiled.nests[0].directives) {
    EXPECT_FALSE(d.every_iteration);
  }
}

TEST(CompileTest, DeceptiveRuntimeAffineKeepsCompilerViewPriorities) {
  // FFTPDE-style: compiler sees no k-dependence, so it claims temporal reuse
  // and attaches a nonzero priority to a reference that actually streams.
  SourceProgram p;
  p.arrays = {{"X", 16, 1 << 22, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"k", 0, 1024, 1, false}, Loop{"j", 0, 2048, 1, false}};
  ArrayRef ref;
  ref.array = 0;
  ref.affine.coeffs = {0, 1};  // compiler's (wrong) view
  ref.runtime_affine = std::make_shared<AffineExpr>();
  ref.runtime_affine->coeffs = {4096, 1};  // the truth
  nest.refs = {ref};
  p.nests.push_back(nest);
  const CompiledProgram compiled = Compile(p, SmallTarget(64), CompileOptions{true, true});
  ASSERT_EQ(compiled.nests[0].directives.size(), 2u);
  const HintDirective& release = compiled.nests[0].directives[1];
  EXPECT_EQ(release.kind, HintDirective::Kind::kRelease);
  EXPECT_EQ(release.priority, 1);  // false reuse in loop k (depth 0)
}

}  // namespace
}  // namespace tmh
