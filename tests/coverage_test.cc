// Additional targeted coverage: the disk elevator, software-pipelining
// prologue, per-nest adaptive compilation, release-policy interplay, frame-
// pool wrap-order fallback, and ring-buffer growth edges that the broader
// suites only exercise indirectly.

#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/disk/disk.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/runtime_layer.h"
#include "src/sim/ring_buffer.h"
#include "src/vm/frame_pool.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

constexpr int64_t kPage = 16 * 1024;

TEST(DiskElevatorTest, LookaheadContinuesSequentialStreak) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;  // default lookahead 8
  Disk disk(&q, &controller, params, "d0");
  std::vector<int> order;
  // FIFO order would be 10, 999, 11; the elevator serves 10, 11, 999.
  disk.Submit(IoRequest{.block = 10, .bytes = kPage, .done = [&] { order.push_back(10); }});
  disk.Submit(IoRequest{.block = 999, .bytes = kPage, .done = [&] { order.push_back(999); }});
  disk.Submit(IoRequest{.block = 11, .bytes = kPage, .done = [&] { order.push_back(11); }});
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 999}));
}

TEST(DiskElevatorTest, ZeroLookaheadIsStrictFifo) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  params.queue_lookahead = 0;
  Disk disk(&q, &controller, params, "d0");
  std::vector<int> order;
  disk.Submit(IoRequest{.block = 10, .bytes = kPage, .done = [&] { order.push_back(10); }});
  disk.Submit(IoRequest{.block = 999, .bytes = kPage, .done = [&] { order.push_back(999); }});
  disk.Submit(IoRequest{.block = 11, .bytes = kPage, .done = [&] { order.push_back(11); }});
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{10, 999, 11}));
}

TEST(DiskElevatorTest, LookaheadIsBounded) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  params.queue_lookahead = 2;
  Disk disk(&q, &controller, params, "d0");
  std::vector<int> order;
  // The contiguous request sits beyond the lookahead window: FIFO applies.
  disk.Submit(IoRequest{.block = 10, .bytes = kPage, .done = [&] { order.push_back(10); }});
  for (int i = 0; i < 4; ++i) {
    disk.Submit(IoRequest{.block = 500 + 10 * i, .bytes = kPage,
                          .done = [&order, i] { order.push_back(500 + 10 * i); }});
  }
  disk.Submit(IoRequest{.block = 11, .bytes = kPage, .done = [&] { order.push_back(11); }});
  q.RunToCompletion();
  EXPECT_EQ(order.front(), 10);
  EXPECT_NE(order[1], 11);  // block 11 was outside the window at pick time
}

TEST(PrologueTest, NestEntryPrefetchesTheSoftwarePipelineWindow) {
  // A single streaming ref with distance D must see pages 0..D hinted before
  // the first touch (loop-splitting prologue).
  SourceProgram p;
  p.name = "stream";
  p.text_pages = 0;
  p.arrays = {{"a", 8, 64 * 2048, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 64 * 2048, 1, true}};
  ArrayRef ref;
  ref.array = 0;
  ref.affine.coeffs = {1};
  nest.refs = {ref};
  nest.compute_per_iteration = 100 * kNsec;
  p.nests.push_back(nest);

  Kernel kernel(TestMachine(256));
  kernel.StartDaemons();
  CompilerTarget target;
  target.memory_bytes = 256 * kPage;
  const CompiledProgram program = Compile(p, target, CompileOptions{true, false});
  ASSERT_EQ(program.nests[0].directives.size(), 1u);
  const int64_t distance = program.nests[0].directives[0].distance;
  ASSERT_GT(distance, 1);

  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  RuntimeLayer runtime(&kernel, as, options);
  Interpreter interp(&program, as, &runtime);
  // Pull ops until the first touch appears; the prologue hints precede it.
  for (int guard = 0; guard < 100; ++guard) {
    const Op op = interp.Next(kernel);
    if (op.kind == Op::Kind::kTouch) {
      break;
    }
  }
  // Prologue hints pages 0..distance (distance+1 of them); the first touch's
  // page crossing immediately adds one steady-state hint for page distance,
  // which the pool deduplicates.
  EXPECT_EQ(runtime.stats().prefetch_hints, static_cast<uint64_t>(distance) + 2);
  EXPECT_EQ(runtime.pool().enqueued(), static_cast<uint64_t>(distance) + 1);
  EXPECT_EQ(runtime.pool().duplicates(), 1u);
}

TEST(AdaptiveCompileTest, CompileNestSpecializesDirectly) {
  // The exposed per-nest entry point turns every-iteration hints into
  // strip-mined ones once bounds are marked known.
  SourceProgram p;
  p.arrays = {{"a", 8, 1 << 20, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 1 << 20, 1, /*known=*/false}};
  ArrayRef ref;
  ref.array = 0;
  ref.affine.coeffs = {1};
  nest.refs = {ref};
  nest.compute_per_iteration = 100 * kNsec;
  p.nests.push_back(nest);
  ArrayLayout layout(p, kPage);
  CompilerTarget target;

  int32_t tag = 0;
  const CompiledNest unknown =
      CompileNest(p, nest, layout, target, CompileOptions{true, true}, &tag, nullptr);
  ASSERT_FALSE(unknown.directives.empty());
  EXPECT_TRUE(unknown.directives[0].every_iteration);

  LoopNest specialized = nest;
  specialized.loops[0].upper_known = true;
  const CompiledNest known =
      CompileNest(p, specialized, layout, target, CompileOptions{true, true}, &tag, nullptr);
  ASSERT_FALSE(known.directives.empty());
  for (const HintDirective& d : known.directives) {
    EXPECT_FALSE(d.every_iteration);
  }
  // Tags advanced monotonically across both calls.
  EXPECT_GT(known.directives[0].tag, unknown.directives.back().tag);
}

TEST(ReleasePolicyInterplayTest, BufferedDrainFollowedByRetouchIsSafe) {
  // A page drained from the buffer, released, then re-touched before the
  // releaser runs must be saved by the re-reference check, end to end.
  MachineConfig config = TestMachine(64);
  config.num_cpus = 1;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  ScriptProgram program({
      Op::Touch(0, false, kUsec),
      Op::Release(0, 1, 1, 42),
      Op::Touch(0, false, kUsec),  // cancels the pending release
      Op::Sleep(20 * kMsec),
      Op::Touch(0, false, kUsec),  // still resident: no I/O
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.swap().reads(), 1u);
  EXPECT_EQ(t->faults().release_saves, 1u);
  EXPECT_TRUE(as->page_table().at(0).resident);
}

TEST(ReleasePolicyInterplayTest, ZeroPriorityNeverBuffers) {
  Kernel kernel(TestMachine(128));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 32);
  as->AttachPagingDirected(0, 32);
  RuntimeOptions options;
  options.buffered = true;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < 16; ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  for (VPage p = 0; p < 8; ++p) {
    layer.OnReleaseHint(p, 0, 1, out);
  }
  EXPECT_EQ(layer.buffered_pages(), 0u);
  EXPECT_EQ(out.size(), 7u);  // everything except the tag filter's holdback
}

TEST(ReadAheadTest, ClusteredPagesArriveUnvalidated) {
  MachineConfig config = TestMachine(64);
  config.tunables.fault_readahead_pages = 3;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 16);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Sleep(50 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().readahead_reads, 3u);
  EXPECT_EQ(kernel.swap().reads(), 4u);  // the fault plus three neighbors
  for (VPage p = 1; p <= 3; ++p) {
    EXPECT_TRUE(as->page_table().at(p).resident) << p;
    EXPECT_FALSE(as->page_table().at(p).valid) << p;  // unvalidated, like prefetch
  }
  EXPECT_FALSE(as->page_table().at(4).resident);
}

TEST(ReadAheadTest, DisabledByDefault) {
  Kernel kernel(TestMachine(64));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 16);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Sleep(20 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().readahead_reads, 0u);
  EXPECT_EQ(kernel.swap().reads(), 1u);
  EXPECT_FALSE(as->page_table().at(1).resident);
}

TEST(ReadAheadTest, TouchOfClusteredPageCollapsesOrValidatesCheaply) {
  MachineConfig config = TestMachine(64);
  config.tunables.fault_readahead_pages = 2;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 16);
  std::vector<Op> ops;
  for (VPage p = 0; p < 6; ++p) {
    ops.push_back(Op::Touch(p, false, 10 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // Six pages touched with at most 6 reads, but fewer full hard faults: the
  // clustered ones were already (or nearly) in memory.
  EXPECT_LT(t->faults().hard_faults, 6u);
  EXPECT_GT(t->faults().fresh_prefetch_touches + t->faults().collapsed_faults, 0u);
  EXPECT_GT(t->fault_service().count(), 0u);  // service-time accounting is live
}

TEST(FramePoolCoverageTest, PopHeadWrapOrderAtNonPowerOfTwoNodeCount) {
  // PopHead's fallback rotates a 64-bit occupancy mask and takes countr_zero;
  // with a non-power-of-two node count (6) the wrapped bits land at positions
  // >= 64 - shift, so a nonempty node BELOW the preferred one must still be
  // found, and in wrap order (home, home+1, ..., N-1, 0, ...), never by raw
  // bit index. 48 frames / 6 nodes = 8 per node; frame 8*n belongs to node n.
  FramePool pool(48, 6);
  for (int node = 0; node < 6; ++node) {
    pool.PushTail(static_cast<FrameId>(8 * node));
  }
  // Preferred node 3: full wrap order is 3, 4, 5, 0, 1, 2.
  for (const int node : {3, 4, 5, 0, 1, 2}) {
    EXPECT_EQ(pool.PopHead(3), static_cast<FrameId>(8 * node)) << node;
  }
  EXPECT_EQ(pool.PopHead(3), kNoFrame);  // every node drained

  // The wrapped-bit edge in isolation: only node 1 nonempty, preferred 4.
  // rotr(mask, 4) parks node 1's bit at position 61; countr_zero must still
  // resolve to node 1 ((4 + 61) & 63), not to a nonexistent high node.
  pool.PushTail(8);
  EXPECT_EQ(pool.PopHead(4), 8);
  EXPECT_TRUE(pool.empty());
}

TEST(RingBufferCoverageTest, GrowthAtExactCapacityWithWrappedWindow) {
  // Fill to exactly kInitialCapacity (64), pop a prefix, refill so the live
  // window wraps the arena end, then push once more: Grow() relocates the
  // wrapped window into the doubled arena and must preserve FIFO order.
  RingBuffer<int> ring;
  for (int i = 0; i < 64; ++i) {
    ring.push_back(i);
  }
  ASSERT_EQ(ring.size(), 64u);
  for (int i = 0; i < 10; ++i) {
    ring.pop_front();
  }
  for (int i = 64; i < 74; ++i) {
    ring.push_back(i);  // head_ = 10, size_ = 64: window wraps, arena full
  }
  ASSERT_EQ(ring.size(), 64u);
  ring.push_back(74);  // grows with the window wrapped at exact capacity
  ASSERT_EQ(ring.size(), 65u);
  EXPECT_EQ(ring.front(), 10);
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i), 10 + static_cast<int>(i)) << i;
  }
  int expect = 10;
  for (const int v : ring) {
    EXPECT_EQ(v, expect++);
  }
}

TEST(SchedulerCoverageTest, ManyShortThreadsAllComplete) {
  MachineConfig config = TestMachine(64);
  config.num_cpus = 3;
  Kernel kernel(config);
  std::vector<std::unique_ptr<ScriptProgram>> programs;
  std::vector<Thread*> threads;
  for (int i = 0; i < 24; ++i) {
    programs.push_back(std::make_unique<ScriptProgram>(
        std::vector<Op>{Op::Compute(kMsec), Op::Yield(), Op::Compute(kMsec)}));
    threads.push_back(kernel.Spawn("t" + std::to_string(i), nullptr, programs.back().get()));
  }
  ASSERT_TRUE(kernel.RunUntilThreadsDone(threads));
  for (Thread* t : threads) {
    EXPECT_EQ(t->times().user, 2 * kMsec);
  }
  // 48 ms of work on 3 CPUs: at least 16 ms of wall time.
  EXPECT_GE(kernel.Now(), 16 * kMsec);
}

}  // namespace
}  // namespace tmh
