// Differential tests for the fused touch-run fast path: the interpreter's
// batched kTouchRun stream must be bit-for-bit equivalent to the per-touch
// stream — identical time breakdowns, fault counts, kernel counters, and
// event totals — and every observer (checker, monitor) must force the exact
// per-touch replay so its view of the run is unchanged.

#include <cstring>

#include <gtest/gtest.h>

#include "src/check/fuzz_scenario.h"
#include "src/core/experiment.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  return config;
}

ExperimentSpec MatvecSpec(AppVersion version, bool fuse) {
  ExperimentSpec spec;
  spec.machine = SmallMachine();
  spec.workload = MakeMatvec(0.1);
  spec.version = version;
  spec.fuse_touch_runs = fuse;
  return spec;
}

// KernelStats minus the touch_runs_* counters, which exist precisely to tell
// the two paths apart. Everything else must match exactly.
KernelStats WithoutRunCounters(KernelStats stats) {
  stats.touch_runs_bulk = 0;
  stats.touch_runs_replayed = 0;
  return stats;
}

void ExpectIdentical(const ExperimentResult& fused, const ExperimentResult& plain,
                     const char* label) {
  SCOPED_TRACE(label);
  ASSERT_TRUE(fused.completed);
  ASSERT_TRUE(plain.completed);
  // Time breakdown, to the nanosecond.
  EXPECT_EQ(fused.app.times.user, plain.app.times.user);
  EXPECT_EQ(fused.app.times.system, plain.app.times.system);
  EXPECT_EQ(fused.app.times.resource_stall, plain.app.times.resource_stall);
  EXPECT_EQ(fused.app.times.io_stall, plain.app.times.io_stall);
  EXPECT_EQ(fused.app.wall, plain.app.wall);
  // Fault classes.
  EXPECT_EQ(fused.app.faults.hard_faults, plain.app.faults.hard_faults);
  EXPECT_EQ(fused.app.faults.soft_faults, plain.app.faults.soft_faults);
  EXPECT_EQ(fused.app.faults.rescue_faults, plain.app.faults.rescue_faults);
  EXPECT_EQ(fused.app.faults.release_saves, plain.app.faults.release_saves);
  EXPECT_EQ(fused.app.faults.zero_fill_faults, plain.app.faults.zero_fill_faults);
  // The interpreter does the same logical work either way.
  EXPECT_EQ(fused.app.interp.iterations, plain.app.interp.iterations);
  EXPECT_EQ(fused.app.interp.page_touches, plain.app.interp.page_touches);
  // Kernel-wide counters (all uint64_t, so a byte compare is exact).
  const KernelStats a = WithoutRunCounters(fused.kernel);
  const KernelStats b = WithoutRunCounters(plain.kernel);
  EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(KernelStats)));
  EXPECT_EQ(fused.swap_reads, plain.swap_reads);
  EXPECT_EQ(fused.swap_writes, plain.swap_writes);
  EXPECT_EQ(fused.free_list_rescues, plain.free_list_rescues);
  EXPECT_EQ(fused.daemon_activations, plain.daemon_activations);
  // Fusion batches ops, not events: slice boundaries, faults, I/O, and wakes
  // all land at the same instants, so the event total is preserved too.
  EXPECT_EQ(fused.sim_events, plain.sim_events);
}

TEST(RunFusionTest, FusedMatchesUnfusedExactly) {
  for (const AppVersion version : AllVersions()) {
    const ExperimentResult fused = RunExperiment(MatvecSpec(version, true));
    const ExperimentResult plain = RunExperiment(MatvecSpec(version, false));
    ExpectIdentical(fused, plain, VersionLabel(version));
    EXPECT_EQ(plain.kernel.touch_runs_bulk + plain.kernel.touch_runs_replayed, 0u)
        << VersionLabel(version);
  }
  // The toggle is real for the uninstrumented program, which plans spans
  // straight through non-resident pages (replay reproduces the faults).
  // Instrumented versions fire hints at plan time and so may only span
  // already-valid pages — out of core at this footprint, the just-crossed
  // page is still in flight, so their streams stay per-touch here (covered
  // in core by BulkPathEngagesWhenResident).
  const ExperimentResult original = RunExperiment(MatvecSpec(AppVersion::kOriginal, true));
  EXPECT_GT(original.kernel.touch_runs_bulk + original.kernel.touch_runs_replayed, 0u);
}

TEST(RunFusionTest, BulkPathEngagesWhenResident) {
  // An in-core run (default 75MB machine, 3.75MB workload) never faults after
  // warm-up, so whole spans must validate word-parallel and charge in bulk.
  ExperimentSpec spec;
  spec.workload = MakeMatvec(0.05);
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.kernel.touch_runs_bulk, 0u);
}

TEST(RunFusionTest, CheckedRunTakesPerTouchPathAndStaysClean) {
  ExperimentSpec spec = MatvecSpec(AppVersion::kOriginal, true);
  spec.checks = true;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.check_failure, "");
  EXPECT_GT(result.checks_run, 0u);
  // The checker needs the per-op narration: no bulk validation may run, and
  // the fused ops the interpreter still emits must all degrade to replay.
  EXPECT_EQ(result.kernel.touch_runs_bulk, 0u);
  EXPECT_GT(result.kernel.touch_runs_replayed, 0u);
}

TEST(RunFusionTest, MonitoredRunTakesPerTouchPath) {
  ExperimentSpec spec = MatvecSpec(AppVersion::kOriginal, true);
  spec.monitor = true;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.monitor.has_value());
  // Monitor sampling hooks fire per touch; the bulk path must stand down.
  EXPECT_EQ(result.kernel.touch_runs_bulk, 0u);
  EXPECT_GT(result.kernel.touch_runs_replayed, 0u);
}

TEST(RunFusionTest, FuzzScenarioCountersIdenticalAcrossRunPaths) {
  // Multiprogrammed scenarios from the fuzz generator (no checker attached,
  // so the bulk path is live): per-app and kernel-wide counters must be
  // identical with the fusion toggled per app.
  for (const uint64_t seed : {401u, 402u, 403u}) {
    SCOPED_TRACE(seed);
    MultiExperimentSpec fused_spec = ToSpec(MakeScenario(seed));
    MultiExperimentSpec plain_spec = ToSpec(MakeScenario(seed));
    for (MultiAppSpec& app : plain_spec.apps) {
      app.fuse_touch_runs = false;
    }
    const MultiExperimentResult fused = RunMultiExperiment(fused_spec);
    const MultiExperimentResult plain = RunMultiExperiment(plain_spec);
    ASSERT_EQ(fused.completed, plain.completed);
    ASSERT_EQ(fused.apps.size(), plain.apps.size());
    for (size_t i = 0; i < fused.apps.size(); ++i) {
      EXPECT_EQ(fused.apps[i].wall, plain.apps[i].wall) << "app " << i;
      EXPECT_EQ(fused.apps[i].times.user, plain.apps[i].times.user) << "app " << i;
      EXPECT_EQ(fused.apps[i].faults.hard_faults, plain.apps[i].faults.hard_faults)
          << "app " << i;
      EXPECT_EQ(fused.apps[i].interp.page_touches, plain.apps[i].interp.page_touches)
          << "app " << i;
    }
    const KernelStats a = WithoutRunCounters(fused.kernel);
    const KernelStats b = WithoutRunCounters(plain.kernel);
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(KernelStats)));
    EXPECT_EQ(fused.sim_events, plain.sim_events);
    EXPECT_EQ(fused.swap_reads, plain.swap_reads);
    EXPECT_EQ(fused.swap_writes, plain.swap_writes);
  }
}

}  // namespace
}  // namespace tmh
