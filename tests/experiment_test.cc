// Integration tests: end-to-end experiments at reduced scale must reproduce
// the paper's headline claims in direction (who wins), if not in magnitude.

#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

// A scaled-down machine + workload pair that stays out-of-core.
MachineConfig SmallMachine() {
  MachineConfig config;
  config.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  return config;
}

ExperimentResult RunMatvec(AppVersion version, bool with_interactive = false,
                     SimDuration sleep = 2 * kSec) {
  ExperimentSpec spec;
  spec.machine = SmallMachine();
  spec.workload = MakeMatvec(0.1);
  spec.version = version;
  spec.with_interactive = with_interactive;
  spec.interactive.sleep_time = sleep;
  return RunExperiment(spec);
}

TEST(ExperimentTest, AllVersionsRunToCompletion) {
  for (const AppVersion version : AllVersions()) {
    const ExperimentResult result = RunMatvec(version);
    EXPECT_TRUE(result.completed) << VersionLabel(version);
    EXPECT_GT(result.app.interp.iterations, 0u);
    EXPECT_GT(result.app.wall, 0);
  }
}

TEST(ExperimentTest, PrefetchingEliminatesMostIoStall) {
  const ExperimentResult o = RunMatvec(AppVersion::kOriginal);
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch);
  EXPECT_LT(p.app.times.io_stall, o.app.times.io_stall / 4);
  EXPECT_LT(p.app.times.Execution(), o.app.times.Execution());
  // Most pages now arrive via prefetch instead of demand faults.
  EXPECT_LT(p.app.faults.hard_faults, o.app.faults.hard_faults / 2);
  EXPECT_GT(p.kernel.prefetch_io, static_cast<uint64_t>(p.app.faults.hard_faults));
}

TEST(ExperimentTest, ReleasingKeepsThePagingDaemonIdle) {
  // Table 3's central claim: with releasing, the daemon barely runs.
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch);
  const ExperimentResult r = RunMatvec(AppVersion::kRelease);
  EXPECT_GT(p.kernel.daemon_pages_stolen, 0u);
  EXPECT_LT(r.kernel.daemon_pages_stolen, p.kernel.daemon_pages_stolen / 2);
  EXPECT_GT(r.kernel.releaser_pages_freed, 0u);
}

TEST(ExperimentTest, ReleasingEliminatesSoftFaults) {
  // Figure 8: reference-bit invalidation soft faults vanish with releasing.
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch);
  const ExperimentResult r = RunMatvec(AppVersion::kRelease);
  const ExperimentResult b = RunMatvec(AppVersion::kBuffered);
  EXPECT_GT(p.app.faults.soft_faults + p.kernel.daemon_invalidations, 0u);
  EXPECT_LT(r.app.faults.soft_faults, p.app.faults.soft_faults / 2 + 1);
  EXPECT_LT(b.app.faults.soft_faults, p.app.faults.soft_faults / 2 + 1);
}

TEST(ExperimentTest, BufferingBeatsAggressiveForMatvec) {
  // MATVEC's reused vector is evicted by aggressive releasing but retained by
  // the buffered policy (Section 4.3's dramatic buffering win).
  const ExperimentResult r = RunMatvec(AppVersion::kRelease);
  const ExperimentResult b = RunMatvec(AppVersion::kBuffered);
  EXPECT_LT(b.app.times.Execution(), r.app.times.Execution());
  EXPECT_LT(b.swap_reads, r.swap_reads);  // the vector is not re-fetched per row
  if (b.app.runtime.has_value()) {
    EXPECT_GT(b.app.runtime->releases_buffered, 0u);
  }
}

TEST(ExperimentTest, PrefetchAloneHurtsInteractiveResponse) {
  // Figure 1: prefetching without releasing makes the interactive task's
  // response time worse than even the original program does.
  const ExperimentResult o = RunMatvec(AppVersion::kOriginal, true);
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch, true);
  ASSERT_TRUE(o.interactive.has_value() && p.interactive.has_value());
  ASSERT_GT(o.interactive->sweeps, 1);
  ASSERT_GT(p.interactive->sweeps, 1);
  EXPECT_GT(p.interactive->mean_response_ns, o.interactive->mean_response_ns);
}

TEST(ExperimentTest, ReleasingRestoresInteractiveResponse) {
  // Figure 10: with releasing, the interactive task responds almost as if it
  // had the machine to itself.
  const InteractiveMetrics alone = RunInteractiveAlone(SmallMachine(), InteractiveConfig{}, 10);
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch, true);
  const ExperimentResult r = RunMatvec(AppVersion::kRelease, true);
  ASSERT_TRUE(r.interactive.has_value());
  EXPECT_LT(r.interactive->mean_response_ns, p.interactive->mean_response_ns / 5);
  EXPECT_LT(r.interactive->mean_response_ns, 20 * alone.mean_response_ns);
  // Hard faults per sweep drop to (near) zero (Figure 10c).
  EXPECT_LT(r.interactive->hard_faults_per_sweep, 2.0);
}

TEST(ExperimentTest, ReleasedPagesGoToFreeListTailAndGetRescued) {
  // Figure 9 mechanics at small scale: the rescue path is live.
  ExperimentSpec spec;
  spec.machine = SmallMachine();
  spec.workload = MakeMgrid(0.22);
  spec.version = AppVersion::kRelease;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.kernel.releaser_pages_freed, 0u);
  EXPECT_GT(result.free_list_rescues, 0u);
}

TEST(ExperimentTest, VersionOHasNoRuntimeLayer) {
  const ExperimentResult o = RunMatvec(AppVersion::kOriginal);
  EXPECT_FALSE(o.app.runtime.has_value());
  EXPECT_EQ(o.kernel.prefetch_requests, 0u);
  EXPECT_EQ(o.kernel.release_requests, 0u);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const ExperimentResult a = RunMatvec(AppVersion::kRelease, true);
  const ExperimentResult b = RunMatvec(AppVersion::kRelease, true);
  EXPECT_EQ(a.app.wall, b.app.wall);
  EXPECT_EQ(a.app.faults.hard_faults, b.app.faults.hard_faults);
  EXPECT_EQ(a.kernel.daemon_pages_stolen, b.kernel.daemon_pages_stolen);
  EXPECT_EQ(a.swap_reads, b.swap_reads);
  ASSERT_TRUE(a.interactive.has_value() && b.interactive.has_value());
  EXPECT_EQ(a.interactive->responses, b.interactive->responses);
}

TEST(ExperimentTest, CompilerStatsReportedPerVersion) {
  const ExperimentResult o = RunMatvec(AppVersion::kOriginal);
  const ExperimentResult p = RunMatvec(AppVersion::kPrefetch);
  const ExperimentResult r = RunMatvec(AppVersion::kRelease);
  EXPECT_EQ(o.app.compile.prefetch_directives, 0);
  EXPECT_GT(p.app.compile.prefetch_directives, 0);
  EXPECT_EQ(p.app.compile.release_directives, 0);
  EXPECT_GT(r.app.compile.release_directives, 0);
}

TEST(ExperimentTest, InteractiveAloneBaselineIsFast) {
  const InteractiveMetrics alone = RunInteractiveAlone(SmallMachine(), InteractiveConfig{}, 10);
  EXPECT_EQ(alone.sweeps, 10);
  // Warm sweeps take ~65 * 10us; allow the cold first sweep to skew the mean.
  EXPECT_LT(alone.mean_response_ns, 10.0 * kMsec);
  EXPECT_LT(alone.hard_faults_per_sweep, 1.0);
}

TEST(ExperimentTest, EveryBenchmarkCompletesAtTestScale) {
  for (const WorkloadInfo& info : AllWorkloads()) {
    ExperimentSpec spec;
    spec.machine = SmallMachine();
    spec.workload = info.factory(0.08);
    spec.version = AppVersion::kBuffered;
    const ExperimentResult result = RunExperiment(spec);
    EXPECT_TRUE(result.completed) << info.name;
    EXPECT_GT(result.app.interp.iterations, 0u) << info.name;
  }
}

}  // namespace
}  // namespace tmh
