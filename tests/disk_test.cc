// Tests for the disk, SCSI-controller, and striped-swap models.

#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/disk/swap_space.h"
#include "src/sim/event_queue.h"

namespace tmh {
namespace {

constexpr int64_t kPage = 16 * 1024;

TEST(DiskTest, SingleReadTakesSeekRotationTransfer) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  Disk disk(&q, &controller, params, "d0");

  SimTime completed = -1;
  disk.Submit(IoRequest{.block = 100, .bytes = kPage, .done = [&] { completed = q.Now(); }});
  q.RunToCompletion();
  const SimDuration expected = params.avg_seek + params.half_rotation +
                               params.TransferTime(kPage) + params.controller_overhead;
  EXPECT_EQ(completed, expected);
  EXPECT_EQ(disk.requests_served(), 1u);
}

TEST(DiskTest, SequentialBlockSkipsSeek) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  Disk disk(&q, &controller, params, "d0");

  SimTime first = -1;
  SimTime second = -1;
  disk.Submit(IoRequest{.block = 5, .bytes = kPage, .done = [&] { first = q.Now(); }});
  disk.Submit(IoRequest{.block = 6, .bytes = kPage, .done = [&] { second = q.Now(); }});
  q.RunToCompletion();
  const SimDuration sequential = second - first;
  const SimDuration expected = params.sequential_seek + params.TransferTime(kPage) +
                               params.controller_overhead;
  EXPECT_EQ(sequential, expected);
  EXPECT_LT(sequential, params.avg_seek);  // far cheaper than a random access
}

TEST(DiskTest, NonAdjacentBlockPaysFullPositioning) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  Disk disk(&q, &controller, params, "d0");

  SimTime first = -1;
  SimTime second = -1;
  disk.Submit(IoRequest{.block = 5, .bytes = kPage, .done = [&] { first = q.Now(); }});
  disk.Submit(IoRequest{.block = 500, .bytes = kPage, .done = [&] { second = q.Now(); }});
  q.RunToCompletion();
  EXPECT_GE(second - first, params.avg_seek + params.half_rotation);
}

TEST(DiskTest, RequestsAreServedFifo) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  Disk disk(&q, &controller, DiskParams{}, "d0");

  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    disk.Submit(
        IoRequest{.block = i * 100, .bytes = kPage, .done = [&order, i] { order.push_back(i); }});
  }
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DiskTest, LatencyIncludesQueueWait) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  Disk disk(&q, &controller, DiskParams{}, "d0");
  for (int i = 0; i < 3; ++i) {
    disk.Submit(IoRequest{.block = i * 50, .bytes = kPage, .done = [] {}});
  }
  q.RunToCompletion();
  // The third request waited behind two others, so max latency > 2x min.
  EXPECT_GT(disk.latency_stats().max(), 2 * disk.latency_stats().min());
}

TEST(ScsiControllerTest, SerializesTransfersOfItsDisks) {
  EventQueue q;
  ScsiController controller(&q, "scsi0");
  DiskParams params;
  Disk d0(&q, &controller, params, "d0");
  Disk d1(&q, &controller, params, "d1");

  SimTime done0 = -1;
  SimTime done1 = -1;
  d0.Submit(IoRequest{.block = 0, .bytes = kPage, .done = [&] { done0 = q.Now(); }});
  d1.Submit(IoRequest{.block = 0, .bytes = kPage, .done = [&] { done1 = q.Now(); }});
  q.RunToCompletion();
  // Positioning overlaps, but the two bus transfers cannot: completions are
  // separated by at least one transfer time.
  const SimDuration transfer = params.TransferTime(kPage) + params.controller_overhead;
  EXPECT_GE(std::max(done0, done1) - std::min(done0, done1), transfer);
  EXPECT_EQ(controller.transfers(), 2u);
}

TEST(SwapSpaceTest, StripesConsecutivePagesAcrossDisks) {
  EventQueue q;
  SwapConfig config;
  config.num_disks = 4;
  config.disks_per_controller = 2;
  SwapSpace swap(&q, config, kPage);
  for (int i = 0; i < 4; ++i) {
    swap.ReadPage(i, [] {});
  }
  // Each disk got exactly one request.
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(swap.disk(d).queue_depth(), 1u);
  }
  q.RunToCompletion();
  EXPECT_EQ(swap.reads(), 4u);
}

TEST(SwapSpaceTest, ParallelismBeatsSingleDiskOnRandomReads) {
  const int kPages = 16;
  auto run = [&](int disks) {
    EventQueue q;
    SwapConfig config;
    config.num_disks = disks;
    config.disks_per_controller = 2;
    SwapSpace swap(&q, config, kPage);
    for (int i = 0; i < kPages; ++i) {
      swap.ReadPage((i * 37 + 3) % 512, [] {});  // scattered: no sequential credit
    }
    q.RunToCompletion();
    return q.Now();
  };
  EXPECT_LT(run(8), run(1) / 3);  // wide stripe is far faster
  // Even on sequential reads (where one disk streams), striping still wins.
  auto run_seq = [&](int disks) {
    EventQueue q;
    SwapConfig config;
    config.num_disks = disks;
    config.disks_per_controller = 2;
    SwapSpace swap(&q, config, kPage);
    for (int i = 0; i < kPages; ++i) {
      swap.ReadPage(i, [] {});
    }
    q.RunToCompletion();
    return q.Now();
  };
  EXPECT_LT(run_seq(8), run_seq(1));
}

TEST(SwapSpaceTest, StripedSequentialReadsHitSequentialPath) {
  EventQueue q;
  SwapConfig config;
  config.num_disks = 2;
  config.disks_per_controller = 2;
  SwapSpace swap(&q, config, kPage);
  // Pages 0,2,4 all land on disk 0 as blocks 0,1,2.
  SimTime last = 0;
  std::vector<SimTime> completions;
  for (int i = 0; i < 6; i += 2) {
    swap.ReadPage(i, [&] { completions.push_back(q.Now()); });
  }
  q.RunToCompletion();
  (void)last;
  ASSERT_EQ(completions.size(), 3u);
  const DiskParams params;
  // Back-to-back stripes on the same disk complete a sequential-seek apart.
  EXPECT_LT(completions[2] - completions[1],
            params.avg_seek + params.half_rotation + params.TransferTime(kPage) +
                params.controller_overhead);
}

TEST(SwapSpaceTest, CountsReadsAndWritesSeparately) {
  EventQueue q;
  SwapConfig two_disks;
  two_disks.num_disks = 2;
  SwapSpace swap(&q, two_disks, kPage);
  swap.ReadPage(0, [] {});
  swap.WritePage(1, [] {});
  swap.WritePage(3, [] {});
  q.RunToCompletion();
  EXPECT_EQ(swap.reads(), 1u);
  EXPECT_EQ(swap.writes(), 2u);
}

TEST(SwapSpaceTest, TotalQueueDepthAggregates) {
  EventQueue q;
  SwapConfig two_disks;
  two_disks.num_disks = 2;
  SwapSpace swap(&q, two_disks, kPage);
  EXPECT_EQ(swap.TotalQueueDepth(), 0u);
  for (int i = 0; i < 5; ++i) {
    swap.ReadPage(i, [] {});
  }
  EXPECT_EQ(swap.TotalQueueDepth(), 5u);
  q.RunToCompletion();
  EXPECT_EQ(swap.TotalQueueDepth(), 0u);
}

TEST(DiskParamsTest, TransferTimeScalesWithBytes) {
  DiskParams params;
  EXPECT_EQ(params.TransferTime(0), 0);
  EXPECT_EQ(params.TransferTime(2 * kPage), 2 * params.TransferTime(kPage));
  // 16 MB/s: a 16 KB page takes ~1 ms.
  EXPECT_NEAR(static_cast<double>(params.TransferTime(kPage)), 1.024 * kMsec, 1.0 * kUsec);
}

}  // namespace
}  // namespace tmh
