// Tests for the extension workloads (RELAX, SHUFFLE, SORTMERGE) and the
// workload registry lookup.

#include "src/workloads/extra.h"

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

constexpr int64_t kMemoryBytes = 75ll * 1024 * 1024;

TEST(ExtraWorkloadsTest, AllAreOutOfCoreAtFullScale) {
  for (const WorkloadInfo& info : ExtraWorkloads()) {
    EXPECT_GT(info.factory(1.0).TotalBytes(), kMemoryBytes) << info.name;
  }
}

TEST(ExtraWorkloadsTest, FindWorkloadCoversBothRegistries) {
  EXPECT_NE(FindWorkload("MATVEC"), nullptr);
  EXPECT_NE(FindWorkload("RELAX"), nullptr);
  EXPECT_NE(FindWorkload("SHUFFLE"), nullptr);
  EXPECT_NE(FindWorkload("SORTMERGE"), nullptr);
  EXPECT_EQ(FindWorkload("NOPE"), nullptr);
}

TEST(ExtraWorkloadsTest, RelaxMatchesSection24Analysis) {
  // The paper's worked example: nine references in one group per plane-row
  // triple; the leading plane is prefetched, the trailing plane released, and
  // the middle plane needs neither.
  const SourceProgram program = MakeRelax(1.0);
  MachineConfig machine;
  const CompiledProgram compiled = CompileVersion(program, machine, AppVersion::kBuffered);
  const CompiledNest& nest = compiled.nests[0];
  ASSERT_EQ(nest.nest.refs.size(), 9u);
  // One group: all nine refs share coefficients and nearby constants (the
  // row span makes +-cols "nearby" under the known-bounds span rule).
  EXPECT_EQ(nest.analysis.num_groups, 1);
  int prefetches = 0;
  int releases = 0;
  for (const HintDirective& d : nest.directives) {
    if (d.kind == HintDirective::Kind::kPrefetch) {
      ++prefetches;
      // The leading reference is the +cols+1 one (largest constant).
      EXPECT_EQ(nest.nest.refs[static_cast<size_t>(d.ref)].affine.constant,
                16 * 1024 + 1);
    } else {
      ++releases;
      EXPECT_EQ(nest.nest.refs[static_cast<size_t>(d.ref)].affine.constant,
                -(16 * 1024) - 1);
    }
  }
  EXPECT_EQ(prefetches, 1);
  EXPECT_EQ(releases, 1);
}

TEST(ExtraWorkloadsTest, ShuffleScatterIsNeverReleased) {
  const SourceProgram program = MakeShuffle(1.0);
  MachineConfig machine;
  const CompiledProgram compiled = CompileVersion(program, machine, AppVersion::kRelease);
  for (const CompiledNest& nest : compiled.nests) {
    for (const HintDirective& d : nest.directives) {
      if (d.kind == HintDirective::Kind::kRelease) {
        EXPECT_FALSE(nest.nest.refs[static_cast<size_t>(d.ref)].IsIndirect());
      }
    }
  }
  // The permutation values are valid output indices.
  const auto& perm = *program.arrays[1].index_values;
  for (size_t i = 0; i < perm.size(); i += 997) {
    EXPECT_GE(perm[i], 0);
    EXPECT_LT(perm[i], program.arrays[2].num_elements);
  }
}

TEST(ExtraWorkloadsTest, SortMergeReleasesAllStreamsWithPriorityZero) {
  const SourceProgram program = MakeSortMerge(1.0);
  MachineConfig machine;
  const CompiledProgram compiled = CompileVersion(program, machine, AppVersion::kRelease);
  EXPECT_GT(compiled.stats.release_directives, 0);
  EXPECT_EQ(compiled.stats.release_directives_with_reuse, 0);
}

class ExtraWorkloadEndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtraWorkloadEndToEndTest, AllVersionsCompleteAndReleasingProtects) {
  const WorkloadInfo& info = ExtraWorkloads()[static_cast<size_t>(GetParam())];
  auto run = [&](AppVersion version) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = info.factory(0.08);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 2 * kSec;
    return RunExperiment(spec);
  };
  const ExperimentResult p = run(AppVersion::kPrefetch);
  const ExperimentResult r = run(AppVersion::kRelease);
  ASSERT_TRUE(p.completed) << info.name;
  ASSERT_TRUE(r.completed) << info.name;
  EXPECT_LE(r.kernel.daemon_pages_stolen, p.kernel.daemon_pages_stolen) << info.name;
  EXPECT_LE(r.interactive->mean_response_ns, p.interactive->mean_response_ns * 1.05)
      << info.name;
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtraWorkloadEndToEndTest, ::testing::Range(0, 3));

}  // namespace
}  // namespace tmh
