// SweepRunner / CompileCache: the parallel sweep engine must be a pure
// performance optimization — every observable output (stats, metrics text,
// event logs, rendered tables) byte-identical to the serial run, for any jobs
// count, with observed runs never sharing observability state.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/workloads/extra.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

constexpr double kScale = 0.05;

MachineConfig TestMachine() {
  MachineConfig config;
  config.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(config.user_memory_bytes) * kScale);
  return config;
}

// The satellite grid from the issue: two workloads x three versions.
std::vector<ExperimentSpec> TestGrid(bool observe) {
  std::vector<ExperimentSpec> specs;
  for (const char* name : {"EMBAR", "CGM"}) {
    const WorkloadInfo* info = FindWorkload(name);
    for (const AppVersion version :
         {AppVersion::kOriginal, AppVersion::kRelease, AppVersion::kBuffered}) {
      ExperimentSpec spec;
      spec.machine = TestMachine();
      spec.workload = info->factory(kScale);
      spec.version = version;
      spec.observe = observe;
      specs.push_back(spec);
    }
  }
  return specs;
}

// A fig07-style table over the grid, rendered to a string.
std::string RenderTable(const std::vector<ExperimentResult>& results) {
  ReportTable table({"run", "exec(s)", "io-stall(s)", "hard-faults", "swap-reads"});
  for (size_t i = 0; i < results.size(); ++i) {
    table.AddRow({std::to_string(i),
                  FormatDouble(ToSeconds(results[i].app.times.Execution()), 1),
                  FormatDouble(ToSeconds(results[i].app.times.io_stall), 1),
                  FormatCount(results[i].app.faults.hard_faults),
                  FormatCount(results[i].swap_reads)});
  }
  return table.ToString();
}

TEST(SweepRunnerTest, DeterministicAcrossJobCounts) {
  const std::vector<ExperimentSpec> specs = TestGrid(/*observe=*/true);

  SweepRunner serial(SweepOptions{1});
  const std::vector<ExperimentResult> a = serial.Run(specs);
  SweepRunner parallel(SweepOptions{8});
  const std::vector<ExperimentResult> b = parallel.Run(specs);

  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].app.times.Execution(), b[i].app.times.Execution());
    EXPECT_EQ(a[i].app.times.io_stall, b[i].app.times.io_stall);
    EXPECT_EQ(a[i].app.faults.hard_faults, b[i].app.faults.hard_faults);
    EXPECT_EQ(a[i].kernel.daemon_pages_stolen, b[i].kernel.daemon_pages_stolen);
    EXPECT_EQ(a[i].kernel.releaser_pages_freed, b[i].kernel.releaser_pages_freed);
    EXPECT_EQ(a[i].swap_reads, b[i].swap_reads);
    EXPECT_EQ(a[i].swap_writes, b[i].swap_writes);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
    // Observability must be byte-identical, not merely statistically close.
    EXPECT_EQ(a[i].metrics_text, b[i].metrics_text);
    EXPECT_EQ(a[i].event_log.events(), b[i].event_log.events());
  }
  EXPECT_EQ(RenderTable(a), RenderTable(b));
}

TEST(SweepRunnerTest, SubmissionOrderMatchesSerialLoop) {
  const std::vector<ExperimentSpec> specs = TestGrid(/*observe=*/false);

  std::vector<ExperimentResult> reference;
  for (const ExperimentSpec& spec : specs) {
    reference.push_back(RunExperiment(spec));
  }
  SweepRunner runner(SweepOptions{4});
  const std::vector<ExperimentResult> swept = runner.Run(specs);

  ASSERT_EQ(swept.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(swept[i].app.times.Execution(), reference[i].app.times.Execution());
    EXPECT_EQ(swept[i].swap_reads, reference[i].swap_reads);
    EXPECT_EQ(swept[i].sim_events, reference[i].sim_events);
  }
}

// Two concurrently observed runs must record into independent EventLogs and
// MetricsRegistries: each parallel log is exactly the log the same spec
// produces when run alone, so events can never interleave across runs.
TEST(SweepRunnerTest, ObservedRunsNeverInterleave) {
  std::vector<ExperimentSpec> specs;
  for (const char* name : {"EMBAR", "CGM"}) {
    ExperimentSpec spec;
    spec.machine = TestMachine();
    spec.workload = FindWorkload(name)->factory(kScale);
    spec.version = AppVersion::kBuffered;
    spec.observe = true;
    specs.push_back(spec);
  }

  SweepRunner runner(SweepOptions{2});
  const std::vector<ExperimentResult> swept = runner.Run(specs);

  ASSERT_EQ(swept.size(), 2u);
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].workload.name);
    const ExperimentResult alone = RunExperiment(specs[i]);
    ASSERT_TRUE(swept[i].event_log.enabled());
    EXPECT_FALSE(swept[i].event_log.events().empty());
    EXPECT_EQ(swept[i].event_log.events(), alone.event_log.events());
    EXPECT_EQ(swept[i].metrics_text, alone.metrics_text);
  }
  // Distinct logs, not two views of one buffer.
  EXPECT_NE(swept[0].event_log.events().data(), swept[1].event_log.events().data());
  EXPECT_NE(swept[0].event_log.events(), swept[1].event_log.events());
}

TEST(SweepRunnerTest, RunTasksPropagatesExceptions) {
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    SweepRunner runner(SweepOptions{jobs});
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([] {});
    tasks.emplace_back([] { throw std::runtime_error("boom"); });
    tasks.emplace_back([] {});
    EXPECT_THROW(runner.RunTasks(std::move(tasks)), std::runtime_error);
  }
}

TEST(SweepRunnerTest, MultiExperimentsDeterministicAcrossJobCounts) {
  std::vector<MultiExperimentSpec> specs;
  for (const AppVersion version : {AppVersion::kOriginal, AppVersion::kBuffered}) {
    MultiExperimentSpec spec;
    spec.machine = TestMachine();
    for (const char* name : {"EMBAR", "CGM"}) {
      MultiAppSpec app;
      app.workload = FindWorkload(name)->factory(kScale);
      app.version = version;
      spec.apps.push_back(app);
    }
    spec.observe = true;
    specs.push_back(spec);
  }

  SweepRunner serial(SweepOptions{1});
  const std::vector<MultiExperimentResult> a = serial.RunMulti(specs);
  SweepRunner parallel(SweepOptions{4});
  const std::vector<MultiExperimentResult> b = parallel.RunMulti(specs);

  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("multi-run " + std::to_string(i));
    EXPECT_EQ(a[i].completed, b[i].completed);
    ASSERT_EQ(a[i].apps.size(), b[i].apps.size());
    for (size_t j = 0; j < a[i].apps.size(); ++j) {
      EXPECT_EQ(a[i].apps[j].times.Execution(), b[i].apps[j].times.Execution());
      EXPECT_EQ(a[i].apps[j].faults.hard_faults, b[i].apps[j].faults.hard_faults);
    }
    EXPECT_EQ(a[i].swap_reads, b[i].swap_reads);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
    EXPECT_EQ(a[i].metrics_text, b[i].metrics_text);
    EXPECT_EQ(a[i].event_log.events(), b[i].event_log.events());
  }
}

TEST(CompileCacheTest, VersionsWithIdenticalOptionsShareOneProgram) {
  const WorkloadInfo* embar = FindWorkload("EMBAR");
  const SourceProgram source = embar->factory(kScale);
  const MachineConfig machine = TestMachine();

  CompileCache cache;
  const auto released = cache.GetOrCompile(source, machine, AppVersion::kRelease);
  const auto buffered = cache.GetOrCompile(source, machine, AppVersion::kBuffered);
  const auto reactive = cache.GetOrCompile(source, machine, AppVersion::kReactive);
  // R, B and V differ only in RuntimeOptions, not compiler output.
  EXPECT_EQ(released.get(), buffered.get());
  EXPECT_EQ(released.get(), reactive.get());

  const auto original = cache.GetOrCompile(source, machine, AppVersion::kOriginal);
  const auto prefetch = cache.GetOrCompile(source, machine, AppVersion::kPrefetch);
  EXPECT_NE(original.get(), released.get());
  EXPECT_NE(prefetch.get(), released.get());
  EXPECT_NE(original.get(), prefetch.get());

  const CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CompileCacheTest, KeyDistinguishesMachineAndFlags) {
  const WorkloadInfo* embar = FindWorkload("EMBAR");
  const SourceProgram source = embar->factory(kScale);
  const MachineConfig machine = TestMachine();

  CompileCache cache;
  const auto plain = cache.GetOrCompile(source, machine, AppVersion::kBuffered);
  const auto oracle =
      cache.GetOrCompile(source, machine, AppVersion::kBuffered, /*adaptive=*/false,
                         /*oracle=*/true);
  EXPECT_NE(plain.get(), oracle.get());

  MachineConfig smaller = machine;
  smaller.user_memory_bytes /= 2;
  const auto tighter = cache.GetOrCompile(source, smaller, AppVersion::kBuffered);
  EXPECT_NE(plain.get(), tighter.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

// The compiler never reads index-array contents, but the interpreter does (it
// executes a[b[i]] through the program's embedded source). Two workloads that
// differ only in those contents must therefore not share a cached program.
TEST(CompileCacheTest, KeyHashesIndexArrayContents) {
  const WorkloadInfo* buk = FindWorkload("BUK");
  const SourceProgram source = buk->factory(kScale);
  SourceProgram mutated = source;
  bool found_index_array = false;
  for (ArrayDecl& array : mutated.arrays) {
    if (array.index_values != nullptr && !array.index_values->empty()) {
      // Deep-copy before mutating: the factory hands out shared_ptr state.
      array.index_values = std::make_shared<std::vector<int64_t>>(*array.index_values);
      array.index_values->front() ^= 1;
      found_index_array = true;
      break;
    }
  }
  ASSERT_TRUE(found_index_array) << "BUK no longer carries index arrays";

  CompileCache cache;
  const auto a = cache.GetOrCompile(source, TestMachine(), AppVersion::kBuffered);
  const auto b = cache.GetOrCompile(mutated, TestMachine(), AppVersion::kBuffered);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CompileCacheTest, CachedProgramsProduceIdenticalResults) {
  const WorkloadInfo* embar = FindWorkload("EMBAR");
  ExperimentSpec spec;
  spec.machine = TestMachine();
  spec.workload = embar->factory(kScale);
  spec.version = AppVersion::kBuffered;

  const ExperimentResult uncached = RunExperiment(spec);
  CompileCache cache;
  const ExperimentResult first = RunExperiment(spec, &cache);
  const ExperimentResult second = RunExperiment(spec, &cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  EXPECT_EQ(uncached.app.times.Execution(), first.app.times.Execution());
  EXPECT_EQ(first.app.times.Execution(), second.app.times.Execution());
  EXPECT_EQ(uncached.swap_reads, first.swap_reads);
  EXPECT_EQ(uncached.sim_events, second.sim_events);
}

TEST(SweepRunnerTest, JobsResolution) {
  EXPECT_GE(DefaultJobs(), 1);
  SweepRunner defaulted;
  EXPECT_EQ(defaulted.jobs(), DefaultJobs());
  SweepRunner pinned(SweepOptions{3});
  EXPECT_EQ(pinned.jobs(), 3);
}

}  // namespace
}  // namespace tmh
