// Shared fixtures and helpers for the test suite.

#ifndef TMH_TESTS_TESTUTIL_H_
#define TMH_TESTS_TESTUTIL_H_

#include <initializer_list>
#include <utility>
#include <vector>

#include "src/os/config.h"
#include "src/os/kernel.h"
#include "src/os/thread.h"

namespace tmh {

// A small, fast machine for unit tests: 64 frames (1 MB at 16 KB pages),
// 2 CPUs, 4 swap disks, snappy daemon.
inline MachineConfig TestMachine(int64_t frames = 64) {
  MachineConfig config;
  config.num_cpus = 2;
  config.user_memory_bytes = frames * config.page_size_bytes;
  config.swap.num_disks = 4;
  config.swap.disks_per_controller = 2;
  config.tunables.min_freemem_pages = 4;
  config.tunables.target_freemem_pages = 12;
  config.tunables.daemon_period = 50 * kMsec;
  return config;
}

// Runs a fixed list of Ops, then exits.
class ScriptProgram : public Program {
 public:
  explicit ScriptProgram(std::vector<Op> ops) : ops_(std::move(ops)) {}
  ScriptProgram(std::initializer_list<Op> ops) : ops_(ops) {}

  Op Next(Kernel& kernel) override {
    (void)kernel;
    if (next_ < ops_.size()) {
      return ops_[next_++];
    }
    return Op::Exit();
  }

  // Appends another op; only safe before the program reaches its end.
  void Append(Op op) { ops_.push_back(op); }

 private:
  std::vector<Op> ops_;
  size_t next_ = 0;
};

// Touches pages [0, n) of its address space forever, `gap` apart in time.
class SweeperProgram : public Program {
 public:
  SweeperProgram(VPage n, SimDuration gap) : n_(n), gap_(gap) {}

  Op Next(Kernel& kernel) override {
    (void)kernel;
    const VPage page = cursor_;
    cursor_ = (cursor_ + 1) % n_;
    return Op::Touch(page, /*write=*/false, gap_);
  }

 private:
  VPage n_;
  SimDuration gap_;
  VPage cursor_ = 0;
};

// Creates an address space with one swap-backed region covering all pages.
inline AddressSpace* MakeSwapAs(Kernel& kernel, const std::string& name, VPage pages) {
  AddressSpace* as =
      kernel.CreateAddressSpace(name, pages * kernel.config().page_size_bytes);
  as->AddRegion(Region{"data", 0, pages, Backing::kSwap});
  return as;
}

// Creates an address space with one anonymous (zero-fill) region.
inline AddressSpace* MakeAnonAs(Kernel& kernel, const std::string& name, VPage pages) {
  AddressSpace* as =
      kernel.CreateAddressSpace(name, pages * kernel.config().page_size_bytes);
  as->AddRegion(Region{"data", 0, pages, Backing::kZeroFill});
  return as;
}

}  // namespace tmh

#endif  // TMH_TESTS_TESTUTIL_H_
