// Tests for the observability layer: MetricsRegistry semantics, EventLog
// recording and capacity behavior, the Chrome-trace JSON export (validated by
// an embedded JSON parser plus span-pairing checks on a real observed run),
// zero-cost disabled mode, and determinism of the event stream.

#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/sim/event_log.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterFindOrCreateIsStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("kernel.hard_faults");
  Counter* b = reg.GetCounter("kernel.hard_faults");
  EXPECT_EQ(a, b);
  a->Inc();
  a->Inc(4);
  EXPECT_EQ(b->value(), 5u);
  b->Set(42);
  EXPECT_EQ(a->value(), 42u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, LabelsDistinguishMetrics) {
  MetricsRegistry reg;
  Counter* hog = reg.GetCounter("as.pages_released", {{"as", "hog"}});
  Counter* other = reg.GetCounter("as.pages_released", {{"as", "interactive"}});
  EXPECT_NE(hog, other);
  hog->Inc();
  EXPECT_EQ(other->value(), 0u);
  EXPECT_EQ(MetricsRegistry::Key("as.pages_released", {{"as", "hog"}}),
            "as.pages_released{as=\"hog\"}");
  EXPECT_EQ(MetricsRegistry::Key("x", {}), "x");
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("kernel.free_pages");
  g->Set(100);
  g->Add(-25);
  EXPECT_DOUBLE_EQ(g->value(), 75.0);
  EXPECT_EQ(reg.GetGauge("kernel.free_pages"), g);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat", {10.0, 100.0});
  Histogram* again = reg.GetHistogram("lat", {99.0});  // bounds ignored
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->bounds().size(), 2u);
  h->Add(5);
  h->Add(50);
  h->Add(5000);  // overflow bucket
  EXPECT_EQ(h->total(), 3u);
}

TEST(MetricsRegistryTest, TextDumpCarriesEveryKind) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Set(7);
  reg.GetCounter("a.count", {{"as", "hog"}})->Set(3);
  reg.GetGauge("level")->Set(1.5);
  Histogram* h = reg.GetHistogram("wait_ns", ExponentialBounds(1000.0, 2.0, 8));
  h->Add(1500.0);
  h->Add(3000.0);
  const std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("# tmh-metrics-v1"), std::string::npos);
  EXPECT_NE(dump.find("counter a.count{as=\"hog\"} 3"), std::string::npos);
  EXPECT_NE(dump.find("counter b.count 7"), std::string::npos);
  EXPECT_NE(dump.find("gauge level 1.5"), std::string::npos);
  EXPECT_NE(dump.find("histogram wait_ns total=2"), std::string::npos);
  // Sorted within each kind: the labeled a.count precedes b.count.
  EXPECT_LT(dump.find("a.count"), dump.find("b.count"));
}

// --- EventLog ----------------------------------------------------------------

TEST(EventLogTest, DisabledRecordIsANoOp) {
  EventLog log;
  log.Record(100, KernelEventType::kFaultBegin, 1, 0, 42);
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, CapacityDropsAndCounts) {
  EventLog log;
  log.Enable(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Record(i, KernelEventType::kReleaseEnqueue, 1, 0, i);
  }
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.Count(KernelEventType::kReleaseEnqueue), 3u);
  EXPECT_EQ(log.Count(KernelEventType::kFaultBegin), 0u);
}

TEST(EventLogTest, EventNamesAreStable) {
  EXPECT_STREQ(KernelEventName(KernelEventType::kFaultBegin), "hard_fault");
  EXPECT_STREQ(KernelEventName(KernelEventType::kDaemonSweep), "daemon_sweep");
  EXPECT_STREQ(KernelEventName(KernelEventType::kFreePagesSample), "free_pages");
}

// --- A minimal JSON parser (no third-party dependency) -----------------------
// Enough of RFC 8259 to round-trip the Chrome trace export: objects, arrays,
// strings with escapes, numbers, true/false/null. Parse failures fail the test.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) {
      return false;
    }
    if (Consume('}')) {
      return true;
    }
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) {
      return false;
    }
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;       // control characters only in our exporter;
            *out += '?';     // the exact code point does not matter here
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Chrome trace export on a real observed run -------------------------------

ExperimentResult RunObservedMatvec(AppVersion version) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);
  spec.version = version;
  spec.observe = true;
  return RunExperiment(spec);
}

TEST(ChromeTraceTest, ExportParsesAndSpansPair) {
  const ExperimentResult result = RunObservedMatvec(AppVersion::kBuffered);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.event_log.events().empty());
  EXPECT_EQ(result.event_log.dropped(), 0u);

  const std::string json = result.event_log.ToChromeTrace();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << "export is not valid JSON";
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const auto events_it = root.object.find("traceEvents");
  ASSERT_NE(events_it, root.object.end());
  ASSERT_EQ(events_it->second.kind, JsonValue::Kind::kArray);
  const std::vector<JsonValue>& events = events_it->second.array;
  ASSERT_GT(events.size(), 2u);

  // Every B on a thread must close with an E of the same name, properly
  // nested (a stack per tid), and timestamps must be monotone per thread.
  std::map<int, std::vector<std::string>> open_spans;
  std::map<int, double> last_ts;
  size_t metadata = 0;
  size_t spans_closed = 0;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const auto ph_it = e.object.find("ph");
    ASSERT_NE(ph_it, e.object.end());
    const std::string& ph = ph_it->second.str;
    ASSERT_NE(e.object.find("name"), e.object.end());
    ASSERT_NE(e.object.find("pid"), e.object.end());
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const auto tid_it = e.object.find("tid");
    const auto ts_it = e.object.find("ts");
    ASSERT_NE(tid_it, e.object.end());
    ASSERT_NE(ts_it, e.object.end());
    const int tid = static_cast<int>(tid_it->second.number);
    const double ts = ts_it->second.number;
    EXPECT_GE(ts, last_ts[tid]) << "timestamps not monotone on tid " << tid;
    last_ts[tid] = ts;
    const std::string& name = e.object.find("name")->second.str;
    if (ph == "B") {
      open_spans[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(open_spans[tid].empty())
          << "E '" << name << "' with no open span on tid " << tid;
      EXPECT_EQ(open_spans[tid].back(), name) << "mismatched span nesting";
      open_spans[tid].pop_back();
      ++spans_closed;
    } else if (ph == "X") {
      ASSERT_NE(e.object.find("dur"), e.object.end());
    } else {
      EXPECT_TRUE(ph == "i" || ph == "C") << "unexpected phase " << ph;
    }
  }
  for (const auto& [tid, stack] : open_spans) {
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed span(s) on tid " << tid;
  }
  EXPECT_GT(metadata, 1u);  // process_name + at least one thread_name
  EXPECT_GT(spans_closed, 0u);

  // The B run must show the release pipeline end to end.
  const EventLog& log = result.event_log;
  EXPECT_GT(log.Count(KernelEventType::kFaultBegin), 0u);
  EXPECT_EQ(log.Count(KernelEventType::kFaultBegin), log.Count(KernelEventType::kFaultEnd));
  EXPECT_GT(log.Count(KernelEventType::kPrefetchIssue), 0u);
  EXPECT_GT(log.Count(KernelEventType::kReleaseEnqueue), 0u);
  EXPECT_GT(log.Count(KernelEventType::kReleaseFree), 0u);
  EXPECT_GT(log.Count(KernelEventType::kFreePagesSample), 0u);

  // The metrics dump came along and carries both counters and histograms.
  EXPECT_NE(result.metrics_text.find("# tmh-metrics-v1"), std::string::npos);
  EXPECT_NE(result.metrics_text.find("counter kernel.hard_faults"), std::string::npos);
  EXPECT_NE(result.metrics_text.find("histogram kernel.fault_service_ns"), std::string::npos);
  EXPECT_NE(result.metrics_text.find("prefetch.queue_wait_ns"), std::string::npos);
}

TEST(ChromeTraceTest, DisabledRunRecordsNothing) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);
  spec.version = AppVersion::kBuffered;
  spec.observe = false;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.event_log.events().empty());
  EXPECT_TRUE(result.metrics_text.empty());
}

TEST(ChromeTraceTest, EventStreamIsDeterministic) {
  const ExperimentResult a = RunObservedMatvec(AppVersion::kRelease);
  const ExperimentResult b = RunObservedMatvec(AppVersion::kRelease);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  ASSERT_EQ(a.event_log.events().size(), b.event_log.events().size());
  EXPECT_TRUE(a.event_log.events() == b.event_log.events());
  EXPECT_EQ(a.metrics_text, b.metrics_text);
  EXPECT_EQ(a.event_log.ToChromeTrace(), b.event_log.ToChromeTrace());
}

}  // namespace
}  // namespace tmh
