// Tests for the paging daemon (clock sweep, reference-bit sampling, stealing)
// and the releaser daemon (re-check, writeback, tail insertion).

#include <gtest/gtest.h>

#include "src/os/kernel.h"
#include "src/os/paging_daemon.h"
#include "src/os/releaser.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TEST(PagingDaemonTest, IdleWhileMemoryIsAmple) {
  Kernel kernel(TestMachine(64));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  std::vector<Op> ops;
  for (VPage p = 0; p < 8; ++p) {
    ops.push_back(Op::Touch(p, false, kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().daemon_activations, 0u);
  EXPECT_EQ(kernel.stats().daemon_pages_stolen, 0u);
}

TEST(PagingDaemonTest, ActivatesBelowMinFreemem) {
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 20);
  std::vector<Op> ops;
  for (VPage p = 0; p < 20; ++p) {
    ops.push_back(Op::Touch(p, false, 50 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_GT(kernel.stats().daemon_activations, 0u);
  EXPECT_GT(kernel.stats().daemon_invalidations, 0u);
}

TEST(PagingDaemonTest, InvalidatesBeforeStealing) {
  // Referenced pages are invalidated on the first encounter (soft-fault seed)
  // and stolen only on a later pass if still untouched.
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 40);
  std::vector<Op> ops;
  for (VPage p = 0; p < 40; ++p) {
    ops.push_back(Op::Touch(p, false, 50 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // Both phases happened, and every steal was preceded by an invalidation.
  EXPECT_GT(kernel.stats().daemon_invalidations, 0u);
  EXPECT_GT(kernel.stats().daemon_pages_stolen, 0u);
  EXPECT_GE(kernel.stats().daemon_invalidations + 16,
            kernel.stats().daemon_pages_stolen);
}

TEST(PagingDaemonTest, StolenIdlePagesCauseHardFaultsOnReuse) {
  // A sleeping task's pages get eroded under sustained pressure (Figure 1).
  MachineConfig config = TestMachine(32);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* hog_as = MakeSwapAs(kernel, "hog", 256);
  AddressSpace* idle_as = MakeAnonAs(kernel, "idle", 4);

  ScriptProgram idle_program({
      Op::Touch(0, true, 0), Op::Touch(1, true, 0), Op::Touch(2, true, 0),
      Op::Touch(3, true, 0),
      Op::Sleep(4 * kSec),  // long sleep while the hog churns memory
      Op::Touch(0, false, 0), Op::Touch(1, false, 0), Op::Touch(2, false, 0),
      Op::Touch(3, false, 0),
  });
  Thread* idle = kernel.Spawn("idle", idle_as, &idle_program);

  SweeperProgram hog_program(256, 200 * kUsec);
  Thread* hog = kernel.Spawn("hog", hog_as, &hog_program);
  (void)hog;

  ASSERT_TRUE(kernel.RunUntilThreadsDone({idle}, 20'000'000));
  // The idle task's pages were reclaimed while it slept: re-touching them
  // needed I/O (hard fault) or a rescue.
  EXPECT_GT(idle->faults().hard_faults + idle->faults().rescue_faults, 0u);
  EXPECT_GT(idle_as->stats().pages_stolen_from, 0u);
}

TEST(PagingDaemonTest, MaxrssTrimsOversizedProcess) {
  MachineConfig config = TestMachine(64);
  config.tunables.maxrss_pages = 8;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 32);
  std::vector<Op> ops;
  for (VPage p = 0; p < 32; ++p) {
    ops.push_back(Op::Touch(p, false, 100 * kUsec));
  }
  ops.push_back(Op::Sleep(2 * config.tunables.daemon_period));
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // Despite ample free memory, the daemon trimmed the process toward maxrss.
  EXPECT_GT(as->stats().pages_stolen_from, 0u);
  EXPECT_LE(as->page_table().resident_count(), 3 * config.tunables.maxrss_pages);
}

TEST(PagingDaemonTest, HoldsAddressSpaceLockWhileSweeping) {
  // Lock contention: a fault during a daemon batch waits for the lock. Make
  // the daemon's per-page work expensive so its lock holds are long.
  MachineConfig config = TestMachine(16);
  config.tunables.daemon_batch = 16;
  config.costs.daemon_scan_per_page = 2 * kMsec;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 64);
  std::vector<Op> ops;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (VPage p = 0; p < 64; ++p) {
      ops.push_back(Op::Touch(p, false, 30 * kUsec));
    }
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_GT(as->memory_lock().contended_acquisitions(), 0u);
  EXPECT_GT(t->times().resource_stall, 0);
}

TEST(ReleaserTest, FreesReleasedPagesToTail) {
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  std::vector<Op> ops;
  for (VPage p = 0; p < 4; ++p) {
    ops.push_back(Op::Touch(p, false, kUsec));
  }
  ops.push_back(Op::Release(0, 4, 0, 1));
  ops.push_back(Op::Sleep(10 * kMsec));
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 4u);
  EXPECT_EQ(as->page_table().resident_count(), 0);
  // Bits cleared for the released range.
  for (VPage p = 0; p < 4; ++p) {
    EXPECT_FALSE(as->bitmap()->Test(p));
  }
}

TEST(ReleaserTest, SkipsPagesReferencedAgainBeforeProcessing) {
  // A touch between the release request and the releaser's run revalidates
  // the page; the releaser must skip it.
  MachineConfig config = TestMachine(32);
  config.num_cpus = 1;  // keep the releaser off-CPU until the app sleeps
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({
      Op::Touch(0, false, kUsec),
      Op::Release(0, 1, 0, 1),
      Op::Touch(0, false, kUsec),  // re-reference cancels the pending release
      Op::Sleep(20 * kMsec),
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 0u);
  EXPECT_EQ(kernel.stats().releaser_skipped, 1u);
  EXPECT_EQ(t->faults().release_saves, 1u);
  EXPECT_TRUE(as->page_table().at(0).resident);
}

TEST(ReleaserTest, WritesBackDirtyPagesBeforeFreeing) {
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({
      Op::Touch(0, true, kUsec),  // dirty it
      Op::Release(0, 1, 0, 1),
      Op::Sleep(50 * kMsec),
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().writebacks, 1u);
  EXPECT_EQ(kernel.swap().writes(), 1u);
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 1u);
}

TEST(ReleaserTest, ReleaseOfNonResidentPageIsIgnored) {
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Release(2, 1, 0, 1), Op::Sleep(10 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().release_pages_enqueued, 0u);
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 0u);
}

TEST(ReleaserTest, ReleasedDataSurvivesRoundTrip) {
  // Released (dirty) page is written to swap; a later touch reads it back.
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({
      Op::Touch(0, true, kUsec),
      Op::Release(0, 1, 0, 1),
      Op::Sleep(60 * kMsec),  // releaser frees (with writeback)
      Op::Touch(0, false, kUsec),
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // Either rescued from the free list or re-read from swap; never zero-filled
  // twice (the data exists now).
  EXPECT_EQ(t->faults().zero_fill_faults, 1u);
  EXPECT_EQ(t->faults().rescue_faults + t->faults().hard_faults, 1u);
}

}  // namespace
}  // namespace tmh
