// Tests for the run-time layer: hint filtering, the one-behind tag filter,
// the aggressive and buffered release policies, and the prefetch pool.

#include "src/runtime/runtime_layer.h"

#include <gtest/gtest.h>

#include <set>

#include "src/runtime/prefetch_pool.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

class RuntimeLayerTest : public ::testing::Test {
 protected:
  RuntimeLayerTest() : kernel_(TestMachine(128)) {
    kernel_.StartDaemons();
    as_ = MakeSwapAs(kernel_, "app", 64);
    as_->AttachPagingDirected(0, 64);
    kernel_.UpdateSharedHeader(as_);
  }

  RuntimeLayer& Layer(bool buffered, int batch = 10) {
    RuntimeOptions options;
    options.buffered = buffered;
    options.release_batch = batch;
    options.num_prefetch_threads = 2;
    layer_ = std::make_unique<RuntimeLayer>(&kernel_, as_, options);
    return *layer_;
  }

  // Marks pages [first, first+count) resident in the bitmap (as the OS would).
  void MarkResident(VPage first, VPage count) {
    for (VPage p = first; p < first + count; ++p) {
      as_->bitmap()->Set(p);
    }
  }

  Kernel kernel_;
  AddressSpace* as_ = nullptr;
  std::unique_ptr<RuntimeLayer> layer_;
};

TEST_F(RuntimeLayerTest, PrefetchHintFiltersResidentPages) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(3, 1);
  layer.OnPrefetchHint(3);
  EXPECT_EQ(layer.stats().prefetch_filtered_resident, 1u);
  EXPECT_EQ(layer.stats().prefetch_enqueued, 0u);
  EXPECT_EQ(layer.pool().enqueued(), 0u);
}

TEST_F(RuntimeLayerTest, PrefetchHintEnqueuesColdPages) {
  RuntimeLayer& layer = Layer(false);
  layer.OnPrefetchHint(5);
  EXPECT_EQ(layer.stats().prefetch_enqueued, 1u);
  EXPECT_EQ(layer.pool().enqueued(), 1u);
}

TEST_F(RuntimeLayerTest, PrefetchHintIgnoresOutOfRangePages) {
  RuntimeLayer& layer = Layer(false);
  layer.OnPrefetchHint(-1);
  layer.OnPrefetchHint(1 << 20);
  EXPECT_EQ(layer.stats().prefetch_enqueued, 0u);
}

TEST_F(RuntimeLayerTest, PoolDeduplicatesQueuedPages) {
  RuntimeLayer& layer = Layer(false);
  layer.OnPrefetchHint(5);
  layer.OnPrefetchHint(5);
  EXPECT_EQ(layer.pool().enqueued(), 1u);
  EXPECT_EQ(layer.pool().duplicates(), 1u);
}

TEST_F(RuntimeLayerTest, TagFilterHoldsFirstReleaseBack) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, /*tag=*/1, out);
  EXPECT_TRUE(out.empty());  // first request for the tag is only recorded
}

TEST_F(RuntimeLayerTest, TagFilterDropsRepeatOfSamePage) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, 1, out);
  layer.OnReleaseHint(0, 0, 1, out);
  layer.OnReleaseHint(0, 0, 1, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(layer.stats().release_filtered_same_page, 2u);
}

TEST_F(RuntimeLayerTest, TagFilterRunsOnePageBehind) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, 1, out);  // recorded
  layer.OnReleaseHint(1, 0, 1, out);  // issues page 0
  layer.OnReleaseHint(2, 0, 1, out);  // issues page 1
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vpage, 0);
  EXPECT_EQ(out[1].vpage, 1);
  EXPECT_EQ(out[0].kind, Op::Kind::kRelease);
}

TEST_F(RuntimeLayerTest, SeparateTagsFilterIndependently) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 16);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, 1, out);
  layer.OnReleaseHint(8, 0, 2, out);  // different tag: no interference
  EXPECT_TRUE(out.empty());
  layer.OnReleaseHint(1, 0, 1, out);
  layer.OnReleaseHint(9, 0, 2, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vpage, 0);
  EXPECT_EQ(out[1].vpage, 8);
}

TEST_F(RuntimeLayerTest, NonResidentReleaseTargetIsFiltered) {
  RuntimeLayer& layer = Layer(false);
  // Page 0 is NOT resident: the policy must drop it when it surfaces.
  MarkResident(1, 1);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, 1, out);
  layer.OnReleaseHint(1, 0, 1, out);  // surfaces page 0
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(layer.stats().release_filtered_not_resident, 1u);
}

TEST_F(RuntimeLayerTest, FlushTagIssuesHeldBackPage) {
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(4, 0, 1, out);
  EXPECT_TRUE(out.empty());
  layer.FlushTag(1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vpage, 4);
  // Flushing again is a no-op.
  out.clear();
  layer.FlushTag(1, out);
  EXPECT_TRUE(out.empty());
}

TEST_F(RuntimeLayerTest, AggressivePolicyIssuesImmediately) {
  RuntimeLayer& layer = Layer(/*buffered=*/false);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(0, /*priority=*/3, 1, out);  // even with reuse priority
  layer.OnReleaseHint(1, 3, 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(layer.stats().releases_issued_immediate, 1u);
  EXPECT_EQ(layer.buffered_pages(), 0u);
}

TEST_F(RuntimeLayerTest, BufferedPolicyIssuesPriorityZeroImmediately) {
  RuntimeLayer& layer = Layer(/*buffered=*/true);
  MarkResident(0, 8);
  std::vector<Op> out;
  layer.OnReleaseHint(0, 0, 1, out);
  layer.OnReleaseHint(1, 0, 1, out);
  ASSERT_EQ(out.size(), 1u);  // no-reuse releases skip the buffer
  EXPECT_EQ(layer.stats().releases_issued_immediate, 1u);
}

TEST_F(RuntimeLayerTest, BufferedPolicyBuffersReuseReleasesUntilNearLimit) {
  RuntimeLayer& layer = Layer(/*buffered=*/true);
  MarkResident(0, 16);
  // Plenty of headroom: usage far below the limit.
  as_->bitmap()->SetHeader(/*current=*/16, /*upper=*/1000);
  std::vector<Op> out;
  for (VPage p = 0; p < 6; ++p) {
    layer.OnReleaseHint(p, /*priority=*/1, 1, out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(layer.buffered_pages(), 5u);  // one held by the tag filter
  EXPECT_EQ(layer.stats().releases_buffered, 5u);
}

TEST_F(RuntimeLayerTest, NearLimitDrainsLowestPriorityFirst) {
  RuntimeLayer& layer = Layer(/*buffered=*/true, /*batch=*/3);
  MarkResident(0, 32);
  as_->bitmap()->SetHeader(16, 1000);  // far from limit: buffer freely
  std::vector<Op> out;
  for (VPage p = 0; p < 5; ++p) {
    layer.OnReleaseHint(p, /*priority=*/2, /*tag=*/1, out);       // early reuse
    layer.OnReleaseHint(16 + p, /*priority=*/1, /*tag=*/2, out);  // later reuse
  }
  ASSERT_TRUE(out.empty());
  // Now approach the limit and trigger one more hint.
  as_->bitmap()->SetHeader(999, 1000);
  layer.OnReleaseHint(5, 2, 1, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(layer.stats().release_drains, 1u);
  // All issued pages come from the priority-1 queue (pages 16..).
  for (const Op& op : out) {
    EXPECT_GE(op.vpage, 16);
  }
  EXPECT_LE(out.size(), 3u);  // bounded by the batch parameter
}

TEST_F(RuntimeLayerTest, DrainRespectsBatchSize) {
  RuntimeLayer& layer = Layer(/*buffered=*/true, /*batch=*/4);
  MarkResident(0, 32);
  as_->bitmap()->SetHeader(16, 1000);
  std::vector<Op> out;
  for (VPage p = 0; p < 20; ++p) {
    layer.OnReleaseHint(p, 1, 1, out);
  }
  as_->bitmap()->SetHeader(999, 1000);
  layer.OnReleaseHint(20, 1, 1, out);
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(RuntimeLayerTest, DrainOldestFirstByDefault) {
  RuntimeLayer& layer = Layer(/*buffered=*/true, /*batch=*/2);
  MarkResident(0, 32);
  as_->bitmap()->SetHeader(16, 1000);
  std::vector<Op> out;
  for (VPage p = 0; p < 6; ++p) {
    layer.OnReleaseHint(p, 1, 1, out);
  }
  as_->bitmap()->SetHeader(999, 1000);
  layer.OnReleaseHint(6, 1, 1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vpage, 0);  // FIFO: oldest buffered first
  EXPECT_EQ(out[1].vpage, 1);
}

TEST_F(RuntimeLayerTest, DrainNewestFirstWhenConfigured) {
  RuntimeOptions options;
  options.buffered = true;
  options.release_batch = 2;
  options.drain_newest_first = true;
  options.num_prefetch_threads = 2;
  layer_ = std::make_unique<RuntimeLayer>(&kernel_, as_, options);
  MarkResident(0, 32);
  as_->bitmap()->SetHeader(16, 1000);
  std::vector<Op> out;
  for (VPage p = 0; p < 6; ++p) {
    layer_->OnReleaseHint(p, 1, 1, out);
  }
  as_->bitmap()->SetHeader(999, 1000);
  layer_->OnReleaseHint(6, 1, 1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vpage, 5);  // MRU: newest buffered first
  EXPECT_EQ(out[1].vpage, 4);
}

TEST_F(RuntimeLayerTest, DrainDropsStaleBufferedPages) {
  RuntimeLayer& layer = Layer(/*buffered=*/true, /*batch=*/8);
  MarkResident(0, 8);
  as_->bitmap()->SetHeader(16, 1000);
  std::vector<Op> out;
  for (VPage p = 0; p < 6; ++p) {
    layer.OnReleaseHint(p, 1, 1, out);
  }
  // Pages 0..2 get reclaimed behind the layer's back (daemon steal).
  for (VPage p = 0; p <= 2; ++p) {
    as_->bitmap()->Clear(p);
  }
  as_->bitmap()->SetHeader(999, 1000);
  layer.OnReleaseHint(6, 1, 1, out);
  EXPECT_EQ(layer.stats().buffer_stale_dropped, 3u);
  for (const Op& op : out) {
    EXPECT_GT(op.vpage, 2);
  }
}

TEST_F(RuntimeLayerTest, BatchFormsMatchRepeatedSingles) {
  RuntimeLayer& a = Layer(false);
  MarkResident(0, 8);
  std::vector<Op> out;
  const SimDuration batch_cost = a.OnReleaseHintBatch(0, 0, 1, 5, out);
  EXPECT_EQ(a.stats().release_hints, 5u);
  EXPECT_EQ(a.stats().release_filtered_same_page, 4u);
  EXPECT_GT(batch_cost, 0);
  EXPECT_TRUE(out.empty());

  const SimDuration pf_cost = a.OnPrefetchHintBatch(20, 3);  // page 20 is cold
  EXPECT_EQ(a.stats().prefetch_hints, 3u);
  EXPECT_EQ(a.pool().enqueued(), 1u);
  EXPECT_GT(pf_cost, 0);
}

TEST_F(RuntimeLayerTest, TagFilterNeverDropsALivePage) {
  // The one-behind filter may only hold back the single most recent hint per
  // tag; everything older must surface, and the flush must emit the holdout.
  RuntimeLayer& layer = Layer(false);
  MarkResident(0, 32);
  std::vector<Op> out;
  for (VPage p = 0; p < 32; ++p) {
    layer.OnReleaseHint(p, 0, /*tag=*/1, out);
    // The page named by the newest hint (still live inside the loop nest)
    // must never be among the issued releases.
    for (const Op& op : out) {
      EXPECT_LT(op.vpage, p);
    }
  }
  layer.FlushTag(1, out);
  ASSERT_EQ(out.size(), 32u);
  std::set<VPage> released;
  for (const Op& op : out) {
    EXPECT_EQ(op.kind, Op::Kind::kRelease);
    released.insert(op.vpage);
  }
  EXPECT_EQ(released.size(), 32u);  // every page surfaced, none dropped
}

TEST_F(RuntimeLayerTest, BatchResolutionMatchesEquivalentSingles) {
  // OnReleaseHintBatch(page, n) is the compiled form of n identical single
  // hints; the emitted ops and every counter must match the single-call path.
  RuntimeLayer& batch = Layer(false);
  RuntimeOptions options;
  options.buffered = false;
  options.num_prefetch_threads = 2;
  RuntimeLayer singles(&kernel_, as_, options);
  MarkResident(0, 16);

  const struct { VPage page; int64_t repeats; } hints[] = {
      {0, 3}, {1, 1}, {2, 4}, {5, 2}, {7, 1}};
  std::vector<Op> out_batch;
  std::vector<Op> out_singles;
  for (const auto& h : hints) {
    batch.OnReleaseHintBatch(h.page, 0, /*tag=*/1, h.repeats, out_batch);
    for (int64_t i = 0; i < h.repeats; ++i) {
      singles.OnReleaseHint(h.page, 0, /*tag=*/1, out_singles);
    }
  }
  ASSERT_EQ(out_batch.size(), out_singles.size());
  for (size_t i = 0; i < out_batch.size(); ++i) {
    EXPECT_EQ(out_batch[i].kind, out_singles[i].kind);
    EXPECT_EQ(out_batch[i].vpage, out_singles[i].vpage);
  }
  EXPECT_EQ(batch.stats().release_hints, singles.stats().release_hints);
  EXPECT_EQ(batch.stats().release_filtered_same_page,
            singles.stats().release_filtered_same_page);
  EXPECT_EQ(batch.stats().release_filtered_not_resident,
            singles.stats().release_filtered_not_resident);
  EXPECT_EQ(batch.stats().releases_issued_immediate,
            singles.stats().releases_issued_immediate);
}

TEST_F(RuntimeLayerTest, BufferedBatchResolutionMatchesSinglesThroughDrain) {
  RuntimeLayer& batch = Layer(/*buffered=*/true, /*batch=*/4);
  RuntimeOptions options;
  options.buffered = true;
  options.release_batch = 4;
  options.num_prefetch_threads = 2;
  RuntimeLayer singles(&kernel_, as_, options);
  MarkResident(0, 16);
  as_->bitmap()->SetHeader(16, 1000);  // headroom: buffer reuse releases

  std::vector<Op> out_batch;
  std::vector<Op> out_singles;
  for (VPage p = 0; p < 8; ++p) {
    batch.OnReleaseHintBatch(p, /*priority=*/1, /*tag=*/1, 2, out_batch);
    singles.OnReleaseHint(p, 1, 1, out_singles);
    singles.OnReleaseHint(p, 1, 1, out_singles);
  }
  EXPECT_EQ(batch.buffered_pages(), singles.buffered_pages());
  // Near the limit both must drain the same pages in the same order.
  as_->bitmap()->SetHeader(999, 1000);
  batch.OnReleaseHintBatch(8, 1, 1, 2, out_batch);
  singles.OnReleaseHint(8, 1, 1, out_singles);
  singles.OnReleaseHint(8, 1, 1, out_singles);
  ASSERT_EQ(out_batch.size(), out_singles.size());
  for (size_t i = 0; i < out_batch.size(); ++i) {
    EXPECT_EQ(out_batch[i].vpage, out_singles[i].vpage);
  }
  EXPECT_EQ(batch.stats().release_drains, singles.stats().release_drains);
  EXPECT_EQ(batch.stats().releases_buffered, singles.stats().releases_buffered);
}

TEST_F(RuntimeLayerTest, PoolWorkersIssuePrefetchesToKernel) {
  RuntimeLayer& layer = Layer(false);
  layer.OnPrefetchHint(2);
  layer.OnPrefetchHint(3);
  // Drive the simulation so the pool threads run.
  kernel_.RunUntilDone([&] {
    return as_->page_table().at(2).resident && as_->page_table().at(3).resident;
  });
  EXPECT_EQ(kernel_.stats().prefetch_io, 2u);
  EXPECT_FALSE(as_->page_table().at(2).valid);  // prefetch does not validate
}

TEST_F(RuntimeLayerTest, PoolQueueCapDropsOverflow) {
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  layer_ = std::make_unique<RuntimeLayer>(&kernel_, as_, options);
  // The pool's internal cap is 1024; push past it without running the sim.
  for (VPage p = 0; p < static_cast<VPage>(2000); ++p) {
    layer_->pool().Enqueue(p % 64);
  }
  EXPECT_GT(layer_->pool().duplicates(), 0u);
  EXPECT_LE(layer_->pool().queue_depth(), 1024u);
}

}  // namespace
}  // namespace tmh
