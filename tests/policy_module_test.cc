// Tests for the PagingDirected policy module's prefetch and release
// operations (Section 3.1.2): drop-on-no-memory, no-TLB-validation on
// completion, rescue via prefetch, in-flight dedup, and the lazily updated
// shared page.

#include <gtest/gtest.h>

#include "src/os/kernel.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TEST(PolicyModuleTest, PrefetchBringsPageInWithoutValidating) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Prefetch(1)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  const Pte& pte = as->page_table().at(1);
  EXPECT_TRUE(pte.resident);
  EXPECT_FALSE(pte.valid);  // "the prefetched page is not fully validated"
  EXPECT_EQ(pte.invalid_reason, InvalidReason::kFreshPrefetch);
  EXPECT_TRUE(as->bitmap()->Test(1));
  EXPECT_EQ(kernel.stats().prefetch_io, 1u);
}

TEST(PolicyModuleTest, TouchAfterPrefetchIsCheapValidation) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Prefetch(1), Op::Touch(1, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().fresh_prefetch_touches, 1u);
  EXPECT_EQ(t->faults().hard_faults, 0u);
  EXPECT_TRUE(as->page_table().at(1).valid);
  EXPECT_EQ(kernel.swap().reads(), 1u);  // one read total
}

TEST(PolicyModuleTest, PrefetchOfResidentPageIsNoop) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(2, false, 0), Op::Prefetch(2)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().prefetch_noop, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);
}

TEST(PolicyModuleTest, PrefetchDroppedWhenNoFreeMemory) {
  // Fill all of memory with another process, then prefetch: the request is
  // "discarded immediately" rather than stealing pages.
  MachineConfig config = TestMachine(8);
  Kernel kernel(config);  // no daemons: nothing replenishes the free list
  AddressSpace* hog = MakeAnonAs(kernel, "hog", 8);
  std::vector<Op> hog_ops;
  for (VPage p = 0; p < 8; ++p) {
    hog_ops.push_back(Op::Touch(p, true, 0));
  }
  ScriptProgram hog_program(hog_ops);
  Thread* hog_thread = kernel.Spawn("hog", hog, &hog_program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({hog_thread}));
  ASSERT_EQ(kernel.FreePages(), 0);

  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Prefetch(0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().prefetch_dropped, 1u);
  EXPECT_FALSE(as->page_table().at(0).resident);
  EXPECT_EQ(kernel.swap().reads(), 0u);
}

TEST(PolicyModuleTest, DuplicatePrefetchOfInflightPageIsNoop) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram p1({Op::Prefetch(1)});
  ScriptProgram p2({Op::Prefetch(1)});
  Thread* t1 = kernel.Spawn("t1", as, &p1);
  Thread* t2 = kernel.Spawn("t2", as, &p2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  EXPECT_EQ(kernel.stats().prefetch_io, 1u);
  EXPECT_EQ(kernel.stats().prefetch_noop, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);
}

TEST(PolicyModuleTest, PrefetchOfNeverMaterializedAnonymousPageIsNoop) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Prefetch(0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().prefetch_noop, 1u);
  EXPECT_EQ(kernel.swap().reads(), 0u);
}

TEST(PolicyModuleTest, PrefetchRescuesFromFreeList) {
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({
      Op::Touch(0, false, 0),
      Op::Release(0, 1, 0, 7),
      Op::Sleep(10 * kMsec),  // releaser frees the clean page to the tail
      Op::Prefetch(0),        // prefetch rescues it: no I/O
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().rescued_release_freed, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);  // only the original page-in
  EXPECT_TRUE(as->page_table().at(0).resident);
  EXPECT_FALSE(as->page_table().at(0).valid);  // rescue-by-prefetch stays unvalidated
}

TEST(PolicyModuleTest, ReleaseRequestInvalidatesAndClearsBit) {
  MachineConfig config = TestMachine(32);
  config.num_cpus = 1;  // the releaser cannot run until the app yields
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1), Op::Compute(kUsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilDone([&] { return t->state() == Thread::State::kDone; }));
  // At the instant the app finished (releaser may or may not have run), the
  // request was recorded.
  EXPECT_EQ(kernel.stats().release_requests, 1u);
  EXPECT_EQ(kernel.stats().release_pages_enqueued, 1u);
  EXPECT_EQ(as->stats().release_requests, 1u);
}

TEST(PolicyModuleTest, ReleaseRangeCoversMultiplePages) {
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  std::vector<Op> ops;
  for (VPage p = 0; p < 6; ++p) {
    ops.push_back(Op::Touch(p, false, 0));
  }
  ops.push_back(Op::Release(1, 4, 0, 1));  // pages 1..4
  ops.push_back(Op::Sleep(20 * kMsec));
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 4u);
  EXPECT_TRUE(as->page_table().at(0).resident);
  EXPECT_FALSE(as->page_table().at(2).resident);
  EXPECT_TRUE(as->page_table().at(5).resident);
}

TEST(PolicyModuleTest, SharedHeaderUpdatesAreLazy) {
  // The header reflects the last memory activity, not asynchronous changes.
  Kernel kernel(TestMachine(32));
  AddressSpace* a = MakeSwapAs(kernel, "a", 8);
  a->AttachPagingDirected(0, 8);
  ScriptProgram pa({Op::Touch(0, false, 0)});
  Thread* ta = kernel.Spawn("ta", a, &pa);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta}));
  const int64_t limit_before = a->bitmap()->upper_limit();

  // Another process consumes memory; A has no activity, so its header is stale.
  AddressSpace* b = MakeAnonAs(kernel, "b", 16);
  std::vector<Op> ops;
  for (VPage p = 0; p < 16; ++p) {
    ops.push_back(Op::Touch(p, true, 0));
  }
  ScriptProgram pb(ops);
  Thread* tb = kernel.Spawn("tb", b, &pb);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({tb}));
  EXPECT_EQ(a->bitmap()->upper_limit(), limit_before);  // still stale

  // A's next activity refreshes it downward.
  ScriptProgram pa2({Op::Touch(1, false, 0)});
  Thread* ta2 = kernel.Spawn("ta2", a, &pa2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta2}));
  EXPECT_LT(a->bitmap()->upper_limit(), limit_before);
}

TEST(PolicyModuleTest, UpperLimitCappedByMaxrss) {
  MachineConfig config = TestMachine(64);
  config.tunables.maxrss_pages = 10;
  Kernel kernel(config);
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  ScriptProgram program({Op::Touch(0, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(as->bitmap()->upper_limit(), 10);
}

}  // namespace
}  // namespace tmh
