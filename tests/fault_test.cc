// Tests for the page-fault paths: zero-fill, hard faults, soft faults,
// rescues, collapse onto in-flight I/O, memory waits, and the shared-page
// bookkeeping (Eq. 1).

#include <gtest/gtest.h>

#include "src/os/kernel.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TEST(FaultTest, FirstTouchOfAnonymousPageIsZeroFill) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  ScriptProgram program({Op::Touch(0, false, kUsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().zero_fill_faults, 1u);
  EXPECT_EQ(t->faults().hard_faults, 0u);
  EXPECT_EQ(kernel.swap().reads(), 0u);  // no I/O for zero-fill
  EXPECT_TRUE(as->page_table().at(0).resident);
  EXPECT_TRUE(as->page_table().at(0).valid);
}

TEST(FaultTest, SwapBackedPageTakesHardFaultWithIo) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  ScriptProgram program({Op::Touch(2, false, kUsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().hard_faults, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);
  EXPECT_GT(t->times().io_stall, 5 * kMsec);  // waited out the disk
  EXPECT_GT(t->times().system, 0);
}

TEST(FaultTest, SecondTouchOfResidentPageIsFree) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  ScriptProgram program({Op::Touch(1, false, 0), Op::Touch(1, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().hard_faults, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);
}

TEST(FaultTest, ZeroFillPageIsDirtyAndWritesBackOnEviction) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 2);
  ScriptProgram program({Op::Touch(0, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  const FrameId f = as->page_table().at(0).frame;
  EXPECT_TRUE(kernel.frames().at(f).dirty);
}

TEST(FaultTest, WriteTouchMarksFrameDirty) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  ScriptProgram program({Op::Touch(0, true, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_TRUE(kernel.frames().at(as->page_table().at(0).frame).dirty);
}

TEST(FaultTest, InvalidatedPageRevalidatesWithSoftFault) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Sleep(10 * kMsec), Op::Touch(0, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  // Run until the page is resident, then invalidate the mapping mid-sleep,
  // exactly as the paging daemon's reference-bit sampling would.
  ASSERT_TRUE(kernel.RunUntilDone([&] { return as->page_table().at(0).resident; }));
  Pte& pte = as->page_table().at(0);
  pte.valid = false;
  pte.invalid_reason = InvalidReason::kDaemonInvalidated;
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().soft_faults, 1u);
  EXPECT_EQ(t->faults().hard_faults, 1u);
  EXPECT_TRUE(pte.valid);
}

TEST(FaultTest, MemoryExhaustionBlocksUntilDaemonFrees) {
  // 16 frames, app wants 24 pages: the daemon must reclaim to let it finish.
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 24);
  std::vector<Op> ops;
  for (VPage p = 0; p < 24; ++p) {
    ops.push_back(Op::Touch(p, false, 10 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().hard_faults, 24u);
  EXPECT_GT(kernel.stats().daemon_pages_stolen, 0u);
  EXPECT_GT(kernel.stats().daemon_activations, 0u);
}

TEST(FaultTest, RescueRecoversReleasedPageWithoutIo) {
  // Release a clean page, let the releaser free it to the free-list tail,
  // then touch it again: the rescue path restores it with no disk read.
  Kernel kernel(TestMachine());
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  as->AttachPagingDirected(0, 2);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1),
                         Op::Sleep(10 * kMsec),  // let the releaser run
                         Op::Touch(0, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 1u);
  EXPECT_EQ(t->faults().hard_faults, 1u);  // only the initial page-in
  EXPECT_EQ(t->faults().rescue_faults, 1u);
  EXPECT_EQ(kernel.swap().reads(), 1u);  // the rescue needed no second read
  EXPECT_EQ(kernel.stats().rescued_release_freed, 1u);
}

TEST(FaultTest, CollapsedFaultWaitsForInflightPageIn) {
  // Two threads touch the same cold page; only one disk read happens.
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  ScriptProgram p1({Op::Touch(0, false, 0)});
  ScriptProgram p2({Op::Touch(0, false, 0)});
  Thread* t1 = kernel.Spawn("t1", as, &p1);
  Thread* t2 = kernel.Spawn("t2", as, &p2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  EXPECT_EQ(kernel.swap().reads(), 1u);
  EXPECT_EQ(t1->faults().hard_faults + t2->faults().hard_faults, 1u);
  EXPECT_EQ(t1->faults().collapsed_faults + t2->faults().collapsed_faults, 1u);
}

TEST(FaultTest, SharedHeaderFollowsEquationOne) {
  MachineConfig config = TestMachine(32);
  Kernel kernel(config);
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Touch(1, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  const ResidencyBitmap& bitmap = *as->bitmap();
  EXPECT_EQ(bitmap.current_usage(), 2);
  // upper = min(maxrss, current + free - min_freemem)
  const int64_t expected =
      std::min(config.tunables.maxrss_pages,
               2 + kernel.FreePages() - config.tunables.min_freemem_pages);
  EXPECT_EQ(bitmap.upper_limit(), expected);
}

TEST(FaultTest, BitmapTracksResidency) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  ScriptProgram program({Op::Touch(3, false, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  EXPECT_FALSE(as->bitmap()->Test(3));
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_TRUE(as->bitmap()->Test(3));
  EXPECT_FALSE(as->bitmap()->Test(2));
}

TEST(FaultTest, AttachClearsRangeAndSetsRestInitially) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 16);
  as->AttachPagingDirected(0, 8);  // attach PM to the first half only
  EXPECT_FALSE(as->bitmap()->Test(0));
  EXPECT_FALSE(as->bitmap()->Test(7));
  EXPECT_TRUE(as->bitmap()->Test(8));  // outside the attached range: bits stay set
}

TEST(FaultTest, TouchDurationChargedAsUserTime) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 2);
  ScriptProgram program({Op::Touch(0, false, 3 * kMsec), Op::Touch(0, false, 2 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->times().user, 5 * kMsec);
}

TEST(FaultTest, FaultStatsConservation) {
  // Every touch resolves through exactly one fault category or a hit.
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 32);
  std::vector<Op> ops;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (VPage p = 0; p < 32; ++p) {
      ops.push_back(Op::Touch(p, p % 3 == 0, 20 * kUsec));
    }
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  const FaultStats& f = t->faults();
  // All 96 touches happened; the page-in work is split across categories.
  EXPECT_GE(f.hard_faults, 32u);  // at least the cold pass
  EXPECT_EQ(f.zero_fill_faults, 0u);
  // Frame conservation: free + mapped + in-flight == total.
  int64_t mapped = 0;
  int64_t busy = 0;
  for (FrameId i = 0; i < kernel.frames().size(); ++i) {
    const Frame& frame = kernel.frames().at(i);
    mapped += frame.mapped ? 1 : 0;
    busy += (!frame.mapped && frame.io_busy) ? 1 : 0;
  }
  EXPECT_EQ(mapped + busy + kernel.FreePages(), kernel.frames().size());
}

}  // namespace
}  // namespace tmh
