// Tests for the RNG, statistics, and ring-buffer primitives.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/sim/ring_buffer.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace tmh {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(17);
  int counts[10] = {};
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.NextBelow(10)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(5);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(5);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(AccumulatorTest, TracksSumMinMaxMean) {
  Accumulator acc;
  acc.Add(2.0);
  acc.Add(8.0);
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 8.0);
}

TEST(AccumulatorTest, ResetClears) {
  Accumulator acc;
  acc.Add(1.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.sum(), 0.0);
}

TEST(HistogramTest, BucketsSamplesByUpperBound) {
  Histogram h({10.0, 100.0, 1000.0});
  h.Add(5);     // < 10
  h.Add(10);    // < 100 (bounds are exclusive uppers)
  h.Add(99);    // < 100
  h.Add(5000);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) {
    h.Add(5.0);  // all in first bucket
  }
  EXPECT_GT(h.Quantile(0.5), 0.0);
  EXPECT_LE(h.Quantile(0.5), 10.0);
  EXPECT_LE(h.Quantile(0.99), 10.0);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetClearsCounts) {
  Histogram h({1.0, 2.0});
  h.Add(0.5);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.counts()[0], 0u);
}

TEST(HistogramTest, QuantileSaturatesAtLastBoundForOverflow) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) {
    h.Add(1e9);  // everything in the overflow bucket
  }
  // The overflow bucket has no upper edge: every quantile saturates to the
  // documented sentinel, bounds().back(), instead of an interpolated guess.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 20.0);

  Histogram mixed({10.0, 20.0});
  mixed.Add(5.0);
  mixed.Add(1e9);
  EXPECT_LE(mixed.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(mixed.Quantile(0.99), 20.0);
}

TEST(HistogramTest, QuantileZeroReturnsObservedMinimum) {
  // All samples land in the first bucket but sit near its upper edge: the
  // interpolated q=0 would be the bucket's lower edge, 0.0. The documented
  // semantics are the observed minimum instead.
  Histogram h({1000.0, 2000.0});
  h.Add(900.0);
  h.Add(950.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 900.0);

  // Samples in a later bucket: q=0 is still the exact minimum, not the
  // bucket's lower edge (1000.0).
  Histogram later({1000.0, 2000.0});
  later.Add(1500.0);
  EXPECT_DOUBLE_EQ(later.Quantile(0.0), 1500.0);

  // Even in the overflow bucket, where every other quantile saturates at
  // bounds().back(), q=0 reports the true minimum.
  Histogram overflow({10.0, 20.0});
  overflow.Add(5000.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.0), 5000.0);

  // Reset forgets the minimum along with the counts.
  overflow.Reset();
  overflow.Add(30.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.0), 30.0);

  // Empty histogram stays 0.0 at every q, including 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.0), 0.0);
}

TEST(HistogramTest, ExponentialBoundsGrowByRatio) {
  const auto bounds = ExponentialBounds(1.0, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
}

TEST(TraceRecorderTest, SummarizeBoundsChecksTheSeriesIndex) {
  TraceRecorder trace;
  const int free = trace.AddSeries("free_pages");
  trace.Record(0, {100.0});
  trace.Record(kSec, {40.0});
  trace.Record(2 * kSec, {70.0});

  const TraceRecorder::SeriesSummary ok = trace.Summarize(free);
  EXPECT_DOUBLE_EQ(ok.min, 40.0);
  EXPECT_DOUBLE_EQ(ok.max, 100.0);
  EXPECT_DOUBLE_EQ(ok.final, 70.0);

  // Out-of-range indices (negative or past the registered series) yield the
  // all-zero summary instead of reading past the sample rows.
  for (const int bad : {-1, 1, 99}) {
    const TraceRecorder::SeriesSummary summary = trace.Summarize(bad);
    EXPECT_DOUBLE_EQ(summary.min, 0.0) << bad;
    EXPECT_DOUBLE_EQ(summary.max, 0.0) << bad;
    EXPECT_DOUBLE_EQ(summary.final, 0.0) << bad;
  }
}

TEST(RingBufferTest, FifoOrderAndIndexing) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) {
    rb.push_back(i);
  }
  EXPECT_EQ(rb.size(), 10u);
  for (size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb.at(i), static_cast<int>(i));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

// Regression for the Grow() relocation: force growth at EVERY head_ offset of
// the initial 64-slot arena — including the offsets where the live window
// wraps the arena end — and verify FIFO order and at(i) indexing survive.
TEST(RingBufferTest, GrowPreservesWindowAtEveryHeadOffset) {
  constexpr int kInitialCapacity = 64;
  for (int offset = 0; offset < kInitialCapacity; ++offset) {
    RingBuffer<int> rb;
    // Interleaved push/pop history: advance head_ to `offset` while leaving
    // the buffer non-empty, so the live window starts mid-arena.
    for (int i = 0; i < offset; ++i) {
      rb.push_back(-1);
    }
    for (int i = 0; i < offset; ++i) {
      rb.pop_front();
    }
    // Fill to capacity: for any offset > 0 the window now wraps the arena.
    std::vector<int> expect;
    for (int i = 0; i < kInitialCapacity; ++i) {
      rb.push_back(offset * 1000 + i);
      expect.push_back(offset * 1000 + i);
    }
    // This push triggers Grow() with head_ == offset.
    rb.push_back(offset * 1000 + kInitialCapacity);
    expect.push_back(offset * 1000 + kInitialCapacity);

    ASSERT_EQ(rb.size(), expect.size()) << "offset " << offset;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(rb.at(i), expect[i]) << "offset " << offset << " index " << i;
    }
    for (const int want : expect) {
      EXPECT_EQ(rb.front(), want) << "offset " << offset;
      rb.pop_front();
    }
    EXPECT_TRUE(rb.empty()) << "offset " << offset;
  }
}

// push_back takes its argument by value so a push of the buffer's own element
// survives the relocation a full-capacity push triggers.
TEST(RingBufferTest, PushOfOwnElementSurvivesGrowth) {
  RingBuffer<int> rb;
  for (int i = 0; i < 64; ++i) {
    rb.push_back(i + 100);
  }
  rb.push_back(rb.front());  // grows exactly here
  EXPECT_EQ(rb.size(), 65u);
  EXPECT_EQ(rb.at(64), 100);
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(kUsec, 1000 * kNsec);
  EXPECT_EQ(kMsec, 1000 * kUsec);
  EXPECT_EQ(kSec, 1000 * kMsec);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSec), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(3 * kMsec), 3.0);
  EXPECT_DOUBLE_EQ(ToMicros(7 * kUsec), 7.0);
}

}  // namespace
}  // namespace tmh
