// Tests for the HTML trace report and the oracle compile mode.

#include "src/core/html_report.h"

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TraceRecorder SmallTrace() {
  TraceRecorder trace;
  trace.AddSeries("free_pages");
  trace.AddSeries("app_rss");
  trace.AddSeries("daemon_stolen");
  trace.AddSeries("releaser_freed");
  trace.AddSeries("hard_faults");
  trace.AddSeries("soft_faults");
  trace.AddSeries("swap_queue");
  for (int i = 0; i < 50; ++i) {
    trace.Record(i * 100 * kMsec,
                 {100.0 - i, static_cast<double>(i), i * 2.0, i * 3.0, i * 1.0, 0.0,
                  static_cast<double>(i % 5)});
  }
  return trace;
}

TEST(HtmlReportTest, KernelTraceRendersThreeCharts) {
  const std::string html = RenderKernelTraceHtml(SmallTrace(), "test run");
  EXPECT_EQ(html.find("<!doctype html>"), 0u);
  EXPECT_EQ(std::count(html.begin(), html.end(), '\0'), 0);
  size_t charts = 0;
  for (size_t pos = html.find("<section class=\"chart\">"); pos != std::string::npos;
       pos = html.find("<section class=\"chart\">", pos + 1)) {
    ++charts;
  }
  EXPECT_EQ(charts, 3u);
  EXPECT_NE(html.find("Resident sets and free memory"), std::string::npos);
  EXPECT_NE(html.find("Swap queue depth"), std::string::npos);
}

TEST(HtmlReportTest, FixedSlotPaletteWithDarkMode) {
  const std::string html = RenderKernelTraceHtml(SmallTrace(), "t");
  EXPECT_NE(html.find("--series-1: #2a78d6"), std::string::npos);  // slot 1, light
  EXPECT_NE(html.find("--series-1: #3987e5"), std::string::npos);  // slot 1, dark
  EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);
}

TEST(HtmlReportTest, HoverLayerAndTableViewPresent) {
  const std::string html = RenderKernelTraceHtml(SmallTrace(), "t");
  EXPECT_NE(html.find("class=\"tooltip\""), std::string::npos);
  EXPECT_NE(html.find("class=\"crosshair\""), std::string::npos);
  EXPECT_NE(html.find("mousemove"), std::string::npos);
  EXPECT_NE(html.find("Data table"), std::string::npos);
  EXPECT_NE(html.find("application/json"), std::string::npos);
}

TEST(HtmlReportTest, TitleIsEscaped) {
  TraceRecorder trace;
  trace.AddSeries("x");
  trace.Record(0, {1.0});
  const std::string html =
      RenderTraceHtml(trace, "<script>alert(1)</script>", {{"c", "y", {0}}});
  EXPECT_EQ(html.find("<script>alert(1)</script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(HtmlReportTest, EmptyTraceProducesNotes) {
  TraceRecorder trace;
  trace.AddSeries("x");
  const std::string html = RenderTraceHtml(trace, "t", {{"c", "y", {0}}});
  EXPECT_NE(html.find("(no samples)"), std::string::npos);
}

TEST(HtmlReportTest, WriteHtmlFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/tmh_report_test.html";
  ASSERT_TRUE(WriteHtmlFile(path, RenderKernelTraceHtml(SmallTrace(), "t")));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[32] = {};
  std::fread(head, 1, 15, f);
  std::fclose(f);
  EXPECT_EQ(std::string(head), "<!doctype html>");
}

// --- oracle compile mode -----------------------------------------------------------

TEST(OracleTest, PerfectKnowledgeStripMinesAndSeesTrueStrides) {
  const SourceProgram fftpde = MakeFftpde(1.0);
  MachineConfig machine;
  const CompiledProgram normal =
      CompileVersion(fftpde, machine, AppVersion::kBuffered, false, false);
  const CompiledProgram oracle =
      CompileVersion(fftpde, machine, AppVersion::kBuffered, false, true);
  // The deception disappears: no false-reuse priorities, no unknown bounds.
  EXPECT_GT(normal.stats.release_directives_with_reuse, 0);
  EXPECT_EQ(oracle.stats.release_directives_with_reuse, 0);
  EXPECT_GT(normal.stats.nests_with_unknown_bounds, 0);
  EXPECT_EQ(oracle.stats.nests_with_unknown_bounds, 0);
  for (const CompiledNest& nest : oracle.nests) {
    for (const HintDirective& d : nest.directives) {
      EXPECT_FALSE(d.every_iteration);
    }
    for (const ArrayRef& ref : nest.nest.refs) {
      EXPECT_EQ(ref.runtime_affine, nullptr);  // folded into the visible expr
    }
  }
}

TEST(OracleTest, MatchesCompilerOnFullyAnalyzableWorkloads) {
  // For MATVEC the analysis is already perfect: the oracle changes nothing.
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);
  spec.version = AppVersion::kBuffered;
  const ExperimentResult normal = RunExperiment(spec);
  spec.oracle = true;
  const ExperimentResult oracle = RunExperiment(spec);
  ASSERT_TRUE(normal.completed && oracle.completed);
  EXPECT_EQ(normal.app.wall, oracle.app.wall);
  EXPECT_EQ(normal.swap_reads, oracle.swap_reads);
}

TEST(OracleTest, SamePageTrafficAsNormalCompilation) {
  // Perfect knowledge changes hints, never the program's own touches.
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeFftpde(0.08);
  spec.version = AppVersion::kRelease;
  const ExperimentResult normal = RunExperiment(spec);
  spec.oracle = true;
  const ExperimentResult oracle = RunExperiment(spec);
  ASSERT_TRUE(normal.completed && oracle.completed);
  EXPECT_EQ(oracle.app.interp.iterations, normal.app.interp.iterations);
  EXPECT_EQ(oracle.app.interp.page_touches, normal.app.interp.page_touches);
}

}  // namespace
}  // namespace tmh
