// Tests for the report-formatting helpers.

#include "src/core/report.h"

#include <gtest/gtest.h>

namespace tmh {
namespace {

TEST(ReportTableTest, RendersHeaderUnderlineAndRows) {
  ReportTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Four lines: header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(ReportTableTest, ColumnsWidenToFitContent) {
  ReportTable table({"x"});
  table.AddRow({"a-very-long-cell"});
  const std::string out = table.ToString();
  // Underline must cover the widest cell.
  EXPECT_NE(out.find("----------------"), std::string::npos);
}

TEST(ReportTableTest, ShortRowsArePadded) {
  ReportTable table({"a", "b", "c"});
  table.AddRow({"only-one"});
  EXPECT_NO_FATAL_FAILURE(table.ToString());
}

TEST(ReportTableTest, NumericCellsRightAligned) {
  ReportTable table({"name", "count"});
  table.AddRow({"x", "5"});
  table.AddRow({"y", "12345"});
  const std::string out = table.ToString();
  // The short number is padded on the left (right-aligned under "count").
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(FormatTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(123456789), "123456789");
}

TEST(FormatTest, FormatSecondsPicksUnit) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(0.025), "25.00 ms");
  EXPECT_EQ(FormatSeconds(0.000004), "4.0 us");
}

}  // namespace
}  // namespace tmh
