// Tests for the extensions beyond the paper's headline system: time-series
// tracing and the reactive (VINO-style) eviction mode.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/runtime/runtime_layer.h"
#include "src/sim/trace.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

// --- TraceRecorder --------------------------------------------------------------

TEST(TraceRecorderTest, RecordsSamplesInOrder) {
  TraceRecorder trace;
  const int a = trace.AddSeries("a");
  const int b = trace.AddSeries("b");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  trace.Record(10, {1.0, 2.0});
  trace.Record(20, {3.0, 4.0});
  ASSERT_EQ(trace.samples().size(), 2u);
  EXPECT_EQ(trace.samples()[1].when, 20);
  EXPECT_EQ(trace.samples()[1].values[1], 4.0);
}

TEST(TraceRecorderTest, CsvHasHeaderAndRows) {
  TraceRecorder trace;
  trace.AddSeries("free");
  trace.Record(kSec, {42.0});
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time_s,free\n"), std::string::npos);
  EXPECT_NE(csv.find("1.000000,42"), std::string::npos);
}

TEST(TraceRecorderTest, SummarizeFindsMinMaxFinal) {
  TraceRecorder trace;
  trace.AddSeries("x");
  for (const double v : {5.0, 1.0, 9.0, 3.0}) {
    trace.Record(0, {v});
  }
  const auto summary = trace.Summarize(0);
  EXPECT_EQ(summary.min, 1.0);
  EXPECT_EQ(summary.max, 9.0);
  EXPECT_EQ(summary.final, 3.0);
}

TEST(TraceRecorderTest, WriteCsvRoundTrips) {
  TraceRecorder trace;
  trace.AddSeries("v");
  trace.Record(0, {7.0});
  const std::string path = ::testing::TempDir() + "/tmh_trace_test.csv";
  ASSERT_TRUE(trace.WriteCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[128] = {};
  std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_NE(std::string(buf).find("time_s,v"), std::string::npos);
}

TEST(TraceTest, KernelTracingSamplesFreeMemory) {
  MachineConfig config = TestMachine(32);
  Kernel kernel(config);
  AddressSpace* as = MakeSwapAs(kernel, "app", 16);
  kernel.StartTracing(10 * kMsec);
  std::vector<Op> ops;
  for (VPage p = 0; p < 16; ++p) {
    ops.push_back(Op::Touch(p, false, 5 * kMsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  const TraceRecorder& trace = kernel.trace();
  ASSERT_GT(trace.samples().size(), 3u);
  EXPECT_EQ(trace.series()[0], "free_pages");
  EXPECT_EQ(trace.series()[1], "app_rss");
  // Free memory fell from 32 toward 16 as the app faulted pages in.
  const auto free_summary = trace.Summarize(0);
  EXPECT_EQ(free_summary.max, 32.0);
  EXPECT_LE(free_summary.final, 17.0);
  const auto rss_summary = trace.Summarize(1);
  // The final sample may land just before the last page-in completes.
  EXPECT_GE(rss_summary.final, 15.0);
}

TEST(TraceTest, ExperimentTracePopulatedOnRequest) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);
  spec.version = AppVersion::kBuffered;
  spec.trace_period = 100 * kMsec;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.trace.samples().size(), 5u);
  // The default (no trace_period) leaves the trace empty.
  spec.trace_period = 0;
  EXPECT_TRUE(RunExperiment(spec).trace.empty());
}

// --- reactive eviction mode -------------------------------------------------------

TEST(ReactiveTest, CandidatesServedLowestPriorityFirst) {
  Kernel kernel(TestMachine(128));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "app", 64);
  as->AttachPagingDirected(0, 64);
  RuntimeOptions options;
  options.reactive = true;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < 32; ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  // Tag 1 carries reuse priority 2, tag 2 carries 0: candidates with the
  // least expected reuse must be evicted first.
  for (VPage p = 0; p < 4; ++p) {
    layer.OnReleaseHint(p, /*priority=*/2, /*tag=*/1, out);
    layer.OnReleaseHint(16 + p, /*priority=*/0, /*tag=*/2, out);
  }
  EXPECT_TRUE(out.empty());  // reactive mode never issues releases itself
  const std::vector<VPage> victims = layer.TakeEvictionCandidates(3);
  ASSERT_EQ(victims.size(), 3u);
  for (const VPage page : victims) {
    EXPECT_GE(page, 16);  // all from the priority-0 pool
  }
  EXPECT_EQ(layer.stats().reactive_served, 3u);
}

TEST(ReactiveTest, StaleCandidatesAreSkipped) {
  Kernel kernel(TestMachine(128));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "app", 64);
  as->AttachPagingDirected(0, 64);
  RuntimeOptions options;
  options.reactive = true;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < 8; ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  for (VPage p = 0; p < 5; ++p) {
    layer.OnReleaseHint(p, 0, 1, out);
  }
  as->bitmap()->Clear(0);  // page 0 reclaimed behind the layer's back
  as->bitmap()->Clear(1);
  const std::vector<VPage> victims = layer.TakeEvictionCandidates(2);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 2);
  EXPECT_EQ(victims[1], 3);
}

TEST(ReactiveTest, DaemonPullsVictimsThroughHandler) {
  // A memory-hungry process with an eviction handler surrenders self-chosen
  // pages; the daemon's clock never invalidates its mappings.
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "app", 48);
  as->AttachPagingDirected(0, 48);
  // Handler: always offer the lowest-numbered resident pages (the app has
  // swept past them).
  as->set_eviction_handler([&](int64_t count) {
    std::vector<VPage> victims;
    for (VPage p = 0; p < as->num_pages() && static_cast<int64_t>(victims.size()) < count;
         ++p) {
      if (as->page_table().at(p).resident && as->page_table().at(p).valid) {
        victims.push_back(p);
      }
    }
    return victims;
  });
  std::vector<Op> ops;
  for (VPage p = 0; p < 48; ++p) {
    ops.push_back(Op::Touch(p, false, 50 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_GT(kernel.stats().reactive_evictions, 0u);
  // The daemon reclaimed through the handler, not by aging this process.
  EXPECT_EQ(t->faults().soft_faults, 0u);
}

TEST(ReactiveTest, EndToEndReactiveVersionCompletes) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);
  spec.version = AppVersion::kReactive;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.kernel.reactive_evictions, 0u);
  EXPECT_EQ(result.kernel.releaser_pages_freed, 0u);  // nothing released pro-actively
  ASSERT_TRUE(result.app.runtime.has_value());
  EXPECT_GT(result.app.runtime->reactive_candidates, 0u);
}

TEST(ReactiveTest, ReactiveDoesNotProtectTheInteractiveTask) {
  // The paper's Section 2.2 claim, as a regression test.
  auto run = [](AppVersion version) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = MakeMatvec(0.1);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 2 * kSec;
    return RunExperiment(spec);
  };
  const ExperimentResult reactive = run(AppVersion::kReactive);
  const ExperimentResult proactive = run(AppVersion::kRelease);
  ASSERT_TRUE(reactive.completed && proactive.completed);
  EXPECT_GT(reactive.interactive->mean_response_ns,
            10 * proactive.interactive->mean_response_ns);
  EXPECT_GT(reactive.kernel.daemon_pages_stolen, 0u);
  EXPECT_EQ(proactive.kernel.daemon_pages_stolen, 0u);
}

// --- adaptive recompilation --------------------------------------------------------

TEST(AdaptiveTest, UnknownBoundNestsAreRespecializedOnEntry) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeCgm(0.08, 1);
  spec.version = AppVersion::kBuffered;
  spec.adaptive = true;
  const ExperimentResult adaptive = RunExperiment(spec);
  ASSERT_TRUE(adaptive.completed);
  EXPECT_GT(adaptive.app.interp.adaptive_recompiles, 0u);

  spec.adaptive = false;
  const ExperimentResult fixed = RunExperiment(spec);
  ASSERT_TRUE(fixed.completed);
  EXPECT_EQ(fixed.app.interp.adaptive_recompiles, 0u);
  // Strip-mined hint emission checks far fewer hints than per-iteration.
  const uint64_t adaptive_hints =
      adaptive.app.runtime->prefetch_hints + adaptive.app.runtime->release_hints;
  const uint64_t fixed_hints =
      fixed.app.runtime->prefetch_hints + fixed.app.runtime->release_hints;
  EXPECT_LT(adaptive_hints, fixed_hints / 2);
  // And the user-time overhead shrinks while page traffic stays comparable.
  EXPECT_LT(adaptive.app.times.user, fixed.app.times.user);
  EXPECT_LT(adaptive.swap_reads, fixed.swap_reads * 3 / 2 + 100);
}

TEST(AdaptiveTest, KnownBoundWorkloadsAreUnaffected) {
  ExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.workload = MakeMatvec(0.1);  // bounds known: nothing to respecialize
  spec.version = AppVersion::kBuffered;
  spec.adaptive = true;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.app.interp.adaptive_recompiles, 0u);
}

// --- threshold notification ----------------------------------------------------------

TEST(ThresholdNotifyTest, HeaderRefreshesWhenFreeMemoryMovesPastThreshold) {
  MachineConfig config = TestMachine(64);
  config.tunables.shared_header_notify_threshold = 8;
  Kernel kernel(config);
  AddressSpace* a = MakeSwapAs(kernel, "a", 8);
  a->AttachPagingDirected(0, 8);
  ScriptProgram pa({Op::Touch(0, false, 0)});
  Thread* ta = kernel.Spawn("ta", a, &pa);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta}));
  const int64_t limit_before = a->bitmap()->upper_limit();

  // Another process consumes 16 pages (> threshold): A's header refreshes
  // WITHOUT any activity of its own — unlike the paper's lazy default.
  AddressSpace* b = MakeAnonAs(kernel, "b", 16);
  std::vector<Op> ops;
  for (VPage p = 0; p < 16; ++p) {
    ops.push_back(Op::Touch(p, true, 0));
  }
  ScriptProgram pb(ops);
  Thread* tb = kernel.Spawn("tb", b, &pb);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({tb}));
  EXPECT_LT(a->bitmap()->upper_limit(), limit_before);
}

TEST(ThresholdNotifyTest, SmallChangesDoNotTriggerRefresh) {
  MachineConfig config = TestMachine(64);
  config.tunables.shared_header_notify_threshold = 8;
  Kernel kernel(config);
  AddressSpace* a = MakeSwapAs(kernel, "a", 8);
  a->AttachPagingDirected(0, 8);
  ScriptProgram pa({Op::Touch(0, false, 0)});
  Thread* ta = kernel.Spawn("ta", a, &pa);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta}));
  const int64_t limit_before = a->bitmap()->upper_limit();

  AddressSpace* b = MakeAnonAs(kernel, "b", 4);  // below the threshold
  std::vector<Op> ops;
  for (VPage p = 0; p < 4; ++p) {
    ops.push_back(Op::Touch(p, true, 0));
  }
  ScriptProgram pb(ops);
  Thread* tb = kernel.Spawn("tb", b, &pb);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({tb}));
  EXPECT_EQ(a->bitmap()->upper_limit(), limit_before);  // still stale, as lazily
}

// --- local replacement ----------------------------------------------------------------

TEST(LocalReplacementTest, ProcessAtPartitionEvictsItself) {
  MachineConfig config = TestMachine(64);
  config.tunables.local_partition_pages = 8;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 24);
  std::vector<Op> ops;
  for (VPage p = 0; p < 24; ++p) {
    ops.push_back(Op::Touch(p, false, 10 * kUsec));
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_LE(as->page_table().resident_count(), 8);
  EXPECT_GT(kernel.stats().local_evictions, 0u);
  // Memory was never short, so global replacement stayed out of it.
  EXPECT_EQ(kernel.stats().daemon_pages_stolen, 0u);
}

TEST(LocalReplacementTest, OtherProcessesPagesAreNeverTouched) {
  MachineConfig config = TestMachine(64);
  config.tunables.local_partition_pages = 8;
  Kernel kernel(config);
  kernel.StartDaemons();
  // A small process establishes its working set first.
  AddressSpace* small = MakeAnonAs(kernel, "small", 4);
  std::vector<Op> small_ops;
  for (VPage p = 0; p < 4; ++p) {
    small_ops.push_back(Op::Touch(p, true, 0));
  }
  ScriptProgram small_program(small_ops);
  Thread* ts = kernel.Spawn("small", small, &small_program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ts}));

  AddressSpace* hog = MakeSwapAs(kernel, "hog", 48);
  std::vector<Op> hog_ops;
  for (VPage p = 0; p < 48; ++p) {
    hog_ops.push_back(Op::Touch(p, false, 10 * kUsec));
  }
  ScriptProgram hog_program(hog_ops);
  Thread* th = kernel.Spawn("hog", hog, &hog_program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({th}));
  // The small process kept every page; the hog only ever evicted itself.
  EXPECT_EQ(small->page_table().resident_count(), 4);
  EXPECT_EQ(small->stats().pages_stolen_from, 0u);
  EXPECT_GT(hog->stats().pages_stolen_from, 0u);
}

TEST(LocalReplacementTest, PrefetchesBeyondPartitionAreDropped) {
  MachineConfig config = TestMachine(64);
  config.tunables.local_partition_pages = 4;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 16);
  as->AttachPagingDirected(0, 16);
  std::vector<Op> ops;
  for (VPage p = 0; p < 4; ++p) {
    ops.push_back(Op::Touch(p, false, 0));
  }
  ops.push_back(Op::Prefetch(10));  // at the cap: must be dropped, not evict
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().prefetch_dropped, 1u);
  EXPECT_EQ(as->page_table().resident_count(), 4);
  EXPECT_EQ(kernel.stats().local_evictions, 0u);
}

// --- multiprogrammed experiments --------------------------------------------------------

TEST(MultiExperimentTest, TwoAppsRunToCompletionWithPerAppMetrics) {
  MultiExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.apps.push_back({MakeEmbar(0.08), AppVersion::kBuffered, {}, false});
  spec.apps.push_back({MakeBuk(0.08, 3), AppVersion::kBuffered, {}, false});
  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_GT(result.apps[0].interp.iterations, 0u);
  EXPECT_GT(result.apps[1].interp.iterations, 0u);
  EXPECT_GT(result.apps[0].wall, 0);
}

TEST(MultiExperimentTest, TwoReleasingHogsKeepDaemonIdle) {
  MultiExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.apps.push_back({MakeMatvec(0.08), AppVersion::kRelease, {}, false});
  spec.apps.push_back({MakeEmbar(0.08), AppVersion::kRelease, {}, false});
  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.kernel.daemon_pages_stolen, 0u);
  EXPECT_GT(result.kernel.releaser_pages_freed, 0u);
}

TEST(MultiExperimentTest, DuplicateWorkloadNamesAreDisambiguated) {
  MultiExperimentSpec spec;
  spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
  spec.apps.push_back({MakeEmbar(0.05), AppVersion::kBuffered, {}, false});
  spec.apps.push_back({MakeEmbar(0.05), AppVersion::kBuffered, {}, false});
  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.apps.size(), 2u);
}

}  // namespace
}  // namespace tmh
