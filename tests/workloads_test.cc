// Tests for the benchmark programs: each must exhibit the Table 2 access
// features its paper counterpart is chosen for, and must be out-of-core at
// full scale.

#include "src/workloads/workloads.h"

#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/core/experiment.h"
#include "src/workloads/interactive.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

constexpr int64_t kMemoryBytes = 75ll * 1024 * 1024;

CompiledProgram CompileFull(const SourceProgram& program) {
  MachineConfig machine;
  return CompileVersion(program, machine, AppVersion::kBuffered);
}

TEST(WorkloadsTest, AllWorkloadsAreOutOfCoreAtFullScale) {
  for (const WorkloadInfo& info : AllWorkloads()) {
    const SourceProgram program = info.factory(1.0);
    EXPECT_GT(program.TotalBytes(), kMemoryBytes)
        << info.name << " must exceed the 75 MB machine";
  }
}

TEST(WorkloadsTest, RegistryHasSixBenchmarksInPaperOrder) {
  const auto& all = AllWorkloads();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "EMBAR");
  EXPECT_EQ(all[1].name, "MATVEC");
  EXPECT_EQ(all[2].name, "BUK");
  EXPECT_EQ(all[3].name, "CGM");
  EXPECT_EQ(all[4].name, "MGRID");
  EXPECT_EQ(all[5].name, "FFTPDE");
}

TEST(WorkloadsTest, ScalingShrinksDataSets) {
  for (const WorkloadInfo& info : AllWorkloads()) {
    const SourceProgram full = info.factory(1.0);
    const SourceProgram small = info.factory(0.1);
    EXPECT_LT(small.TotalBytes(), full.TotalBytes()) << info.name;
  }
}

TEST(WorkloadsTest, MatvecVectorGetsReusePriorityRelease) {
  const CompiledProgram compiled = CompileFull(MakeMatvec(1.0));
  // Exactly one release directive carries a nonzero priority: the vector x.
  EXPECT_EQ(compiled.stats.release_directives_with_reuse, 1);
  int found = 0;
  for (const HintDirective& d : compiled.nests[0].directives) {
    if (d.kind == HintDirective::Kind::kRelease && d.priority > 0) {
      EXPECT_EQ(d.priority, 1);  // Eq. 2: temporal reuse in loop i (depth 0)
      EXPECT_EQ(compiled.source.arrays[static_cast<size_t>(
                    compiled.nests[0].nest.refs[static_cast<size_t>(d.ref)].array)].name,
                "x");
      ++found;
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(WorkloadsTest, MatvecBoundsAreKnown) {
  const CompiledProgram compiled = CompileFull(MakeMatvec(1.0));
  EXPECT_EQ(compiled.stats.nests_with_unknown_bounds, 0);
  for (const HintDirective& d : compiled.nests[0].directives) {
    EXPECT_FALSE(d.every_iteration);
  }
}

TEST(WorkloadsTest, EmbarHasOnlyPriorityZeroReleases) {
  const CompiledProgram compiled = CompileFull(MakeEmbar(1.0));
  EXPECT_GT(compiled.stats.release_directives, 0);
  EXPECT_EQ(compiled.stats.release_directives_with_reuse, 0);
}

TEST(WorkloadsTest, BukIndirectArraysAreNeverReleased) {
  const SourceProgram program = MakeBuk(1.0, 1);
  const CompiledProgram compiled = CompileFull(program);
  EXPECT_GT(compiled.stats.indirect_refs, 0);
  for (const CompiledNest& nest : compiled.nests) {
    for (const HintDirective& d : nest.directives) {
      if (d.kind == HintDirective::Kind::kRelease) {
        EXPECT_FALSE(nest.nest.refs[static_cast<size_t>(d.ref)].IsIndirect())
            << "indirect references must not be released";
      }
    }
  }
}

TEST(WorkloadsTest, BukIndexValuesAreDeterministicPerSeed) {
  const SourceProgram a = MakeBuk(1.0, 42);
  const SourceProgram b = MakeBuk(1.0, 42);
  const SourceProgram c = MakeBuk(1.0, 43);
  EXPECT_EQ(*a.arrays[0].index_values, *b.arrays[0].index_values);
  EXPECT_NE(*a.arrays[0].index_values, *c.arrays[0].index_values);
}

TEST(WorkloadsTest, BukIndexValuesAreValidBucketIds) {
  const SourceProgram program = MakeBuk(0.2, 7);
  const int64_t buckets = program.arrays[1].num_elements;
  for (const int64_t v : *program.arrays[0].index_values) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, buckets);
  }
}

TEST(WorkloadsTest, CgmHasUnknownBoundsAndIndirection) {
  const CompiledProgram compiled = CompileFull(MakeCgm(1.0, 1));
  EXPECT_GT(compiled.stats.nests_with_unknown_bounds, 0);
  EXPECT_GT(compiled.stats.indirect_refs, 0);
  // Unknown bounds force every-iteration hint evaluation (the CGM flood).
  bool any_every_iteration = false;
  for (const CompiledNest& nest : compiled.nests) {
    for (const HintDirective& d : nest.directives) {
      any_every_iteration = any_every_iteration || d.every_iteration;
    }
  }
  EXPECT_TRUE(any_every_iteration);
}

TEST(WorkloadsTest, MgridInterGridTransfersAreNotReleased) {
  const SourceProgram program = MakeMgrid(1.0);
  const CompiledProgram compiled = CompileFull(program);
  for (const CompiledNest& nest : compiled.nests) {
    for (const HintDirective& d : nest.directives) {
      if (d.kind == HintDirective::Kind::kRelease) {
        EXPECT_TRUE(nest.nest.refs[static_cast<size_t>(d.ref)].release_analyzable);
      }
    }
  }
}

TEST(WorkloadsTest, MgridStencilFormsGroupsWithLeaderAndTrailer) {
  const SourceProgram program = MakeMgrid(1.0);
  const CompiledProgram compiled = CompileFull(program);
  const NestAnalysis& smooth = compiled.nests[0].analysis;
  // The +-1 and +-d0 offsets cluster around the center; the far +-d0^2 planes
  // are separate streams. Either way there are both leaders and trailers.
  int leaders = 0;
  int trailers = 0;
  for (const RefReuse& reuse : smooth.refs) {
    leaders += reuse.is_group_leader ? 1 : 0;
    trailers += reuse.is_group_trailer ? 1 : 0;
  }
  EXPECT_GT(smooth.num_groups, 1);
  EXPECT_EQ(leaders, smooth.num_groups);
  EXPECT_EQ(trailers, smooth.num_groups);
}

TEST(WorkloadsTest, FftpdeDeceptiveStagesCarryFalseReusePriorities) {
  const CompiledProgram compiled = CompileFull(MakeFftpde(1.0));
  // The strided stages' X releases claim reuse (priority > 0) although the
  // runtime expressions actually march.
  EXPECT_GT(compiled.stats.release_directives_with_reuse, 0);
  bool deceptive_found = false;
  for (const CompiledNest& nest : compiled.nests) {
    for (const ArrayRef& ref : nest.nest.refs) {
      if (ref.runtime_affine != nullptr) {
        deceptive_found = true;
        EXPECT_NE(ref.runtime_affine->coeffs, ref.affine.coeffs);
      }
    }
  }
  EXPECT_TRUE(deceptive_found);
}

TEST(WorkloadsTest, Table2FeatureMatrix) {
  // EMBAR: 1-D known. MATVEC: multi-dim known. BUK/CGM: unknown + indirect.
  // MGRID: multi-dim unknown. FFTPDE: deceptive strides.
  const SourceProgram embar = MakeEmbar(1.0);
  for (const LoopNest& nest : embar.nests) {
    EXPECT_EQ(nest.depth(), 1);
    for (const Loop& loop : nest.loops) {
      EXPECT_TRUE(loop.upper_known);
    }
  }
  const SourceProgram matvec = MakeMatvec(1.0);
  EXPECT_GT(matvec.nests[0].depth(), 1);
  const SourceProgram mgrid = MakeMgrid(1.0);
  for (const LoopNest& nest : mgrid.nests) {
    EXPECT_GT(nest.depth(), 1);
    for (const Loop& loop : nest.loops) {
      EXPECT_FALSE(loop.upper_known);
    }
  }
}

TEST(InteractiveTaskTest, SweepsTouchDataAndTextThenSleep) {
  Kernel kernel(TestMachine(128));
  AddressSpace* as = MakeAnonAs(kernel, "i", 65);
  InteractiveConfig config;
  config.data_pages = 64;
  config.text_pages = 1;
  config.sleep_time = 100 * kMsec;
  config.max_sweeps = 3;
  InteractiveTask task(as, config);
  Thread* t = kernel.Spawn("i", as, &task);
  task.BindThread(t);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(task.sweeps_completed(), 3);
  EXPECT_EQ(task.response_series().size(), 3u);
  // Two full sleeps between three sweeps.
  EXPECT_GE(t->times().sleep, 200 * kMsec);
  EXPECT_EQ(t->faults().zero_fill_faults, 65u);
}

TEST(InteractiveTaskTest, WarmSweepsAreFast) {
  Kernel kernel(TestMachine(128));
  AddressSpace* as = MakeAnonAs(kernel, "i", 65);
  InteractiveConfig config;
  config.sleep_time = 10 * kMsec;
  config.max_sweeps = 5;
  InteractiveTask task(as, config);
  Thread* t = kernel.Spawn("i", as, &task);
  task.BindThread(t);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // Later sweeps hit resident pages: response == pure compute.
  const auto& series = task.response_series();
  const double warm = static_cast<double>(series.back());
  const double cold = static_cast<double>(series.front());
  EXPECT_LT(warm, cold);
  EXPECT_NEAR(warm, 65.0 * 10 * kUsec, 65.0 * 10 * kUsec);
}

TEST(InteractiveTaskTest, ResponseTimeExcludesSleep) {
  Kernel kernel(TestMachine(128));
  AddressSpace* as = MakeAnonAs(kernel, "i", 65);
  InteractiveConfig config;
  config.sleep_time = 5 * kSec;  // long sleeps
  config.max_sweeps = 3;
  InteractiveTask task(as, config);
  Thread* t = kernel.Spawn("i", as, &task);
  task.BindThread(t);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  for (const SimDuration response : task.response_series()) {
    EXPECT_LT(response, kSec);  // far below the sleep time
  }
}

}  // namespace
}  // namespace tmh
