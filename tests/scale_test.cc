// Datacenter-scale structure tests: the sharded frame pool, the per-node
// allocation paths, the O(1) over-maxrss index, and the kernel's per-frame
// memory footprint at 10^7 frames.
//
// The unit tests pin the FramePool's contract (contiguous partition, wrap-
// order fallback, FreeList-identical single-node behavior); the kernel tests
// drive the same paths through real faults; the scale tests construct the
// full 10^7-frame machine and hold footprint and per-op cost to their
// documented bounds — generous wall-clock ceilings that an O(frames) scan on
// any per-op path would blow by orders of magnitude.

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/fuzz_scenario.h"
#include "src/core/experiment.h"
#include "src/vm/frame_pool.h"
#include "src/vm/free_list.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

// --- FramePool unit tests ----------------------------------------------------

TEST(FramePoolTest, ContiguousPartitionWithUnevenTail) {
  FramePool pool(10, 4);  // ceil(10/4) = 3 frames per node; node 3 holds 1
  EXPECT_EQ(pool.num_nodes(), 4);
  EXPECT_EQ(pool.frames_per_node(), 3);
  EXPECT_EQ(pool.NodeOf(0), 0);
  EXPECT_EQ(pool.NodeOf(2), 0);
  EXPECT_EQ(pool.NodeOf(3), 1);
  EXPECT_EQ(pool.NodeOf(9), 3);
  EXPECT_EQ(pool.NodeBegin(0), 0);
  EXPECT_EQ(pool.NodeEnd(0), 3);
  EXPECT_EQ(pool.NodeBegin(3), 9);
  EXPECT_EQ(pool.NodeEnd(3), 10);  // short final node
}

TEST(FramePoolTest, NodeCountClamped) {
  EXPECT_EQ(FramePool(100, 0).num_nodes(), 1);
  EXPECT_EQ(FramePool(100, -3).num_nodes(), 1);
  EXPECT_EQ(FramePool(100, 1000).num_nodes(), FramePool::kMaxNodes);
}

TEST(FramePoolTest, SingleNodeMatchesFreeListExactly) {
  const int64_t frames = 32;
  FreeList flat(frames);
  FramePool pool(frames, 1);
  for (FrameId f = 0; f < frames; ++f) {
    flat.PushTail(f);
    pool.PushTail(f);
  }
  // Interleave pops, head pushes, tail pushes, and a mid-list rescue; the
  // orders must stay byte-identical throughout.
  for (int round = 0; round < 3; ++round) {
    const FrameId a = flat.PopHead();
    EXPECT_EQ(pool.PopHead(0), a);
    const FrameId b = flat.PopHead();
    EXPECT_EQ(pool.PopHead(0), b);
    flat.PushHead(a);
    pool.PushHead(a);
    flat.PushTail(b);
    pool.PushTail(b);
    const FrameId victim = static_cast<FrameId>(7 + round);
    if (flat.Contains(victim)) {
      flat.Remove(victim);
      ASSERT_TRUE(pool.Contains(victim));
      pool.Remove(victim);
      flat.PushTail(victim);
      pool.PushTail(victim);
    }
    EXPECT_EQ(pool.ToVector(), flat.ToVector());
  }
}

TEST(FramePoolTest, PopPrefersHomeThenWrapsAscending) {
  FramePool pool(8, 4);  // 2 frames per node
  for (FrameId f = 0; f < 8; ++f) {
    pool.PushTail(f);
  }
  // Home node served first, in list order.
  EXPECT_EQ(pool.PopHead(2), 4);
  EXPECT_EQ(pool.PopHead(2), 5);
  // Node 2 empty: fallback wraps ascending to node 3.
  EXPECT_EQ(pool.PopHead(2), 6);
  EXPECT_EQ(pool.PopHead(2), 7);
  // Nodes 2 and 3 empty: wrap past the end to node 0.
  EXPECT_EQ(pool.PopHead(2), 0);
  EXPECT_EQ(pool.PopHead(3), 1);  // home 3 empty -> wraps to node 0's remainder
  EXPECT_EQ(pool.PopHead(0), 2);  // node 0 empty -> node 1
  EXPECT_EQ(pool.PopHead(0), 3);
  EXPECT_EQ(pool.PopHead(0), kNoFrame);  // everything empty
  EXPECT_TRUE(pool.empty());
}

TEST(FramePoolTest, RemoveUnlinksAndCountsRescue) {
  FramePool pool(6, 2);
  for (FrameId f = 0; f < 6; ++f) {
    pool.PushTail(f);
  }
  ASSERT_TRUE(pool.Contains(4));
  pool.Remove(4);  // mid-list removal in node 1
  EXPECT_FALSE(pool.Contains(4));
  EXPECT_EQ(pool.total_rescues(), 1u);
  EXPECT_EQ(pool.node_size(1), 2);
  EXPECT_EQ(pool.NodeToVector(1), (std::vector<FrameId>{3, 5}));
  EXPECT_EQ(pool.node_size(0), 3);
}

// --- kernel integration: per-node allocation ---------------------------------

TEST(ScaleKernelTest, HomeNodeAllocationIsolation) {
  MachineConfig machine = TestMachine(64);
  machine.num_nodes = 4;  // 16 frames per node
  Kernel kernel(machine);
  std::vector<ScriptProgram> programs;
  programs.reserve(4);
  std::vector<Thread*> threads;
  for (int i = 0; i < 4; ++i) {
    AddressSpace* as = MakeAnonAs(kernel, "as" + std::to_string(i), 8);
    EXPECT_EQ(as->home_node(), i);  // id % nodes
    std::vector<Op> ops;
    for (VPage p = 0; p < 4; ++p) {
      ops.push_back(Op::Touch(p, /*write=*/false, 0));
    }
    programs.emplace_back(std::move(ops));
  }
  for (int i = 0; i < 4; ++i) {
    threads.push_back(kernel.Spawn("t" + std::to_string(i),
                                   kernel.address_spaces()[static_cast<size_t>(i)].get(),
                                   &programs[static_cast<size_t>(i)]));
  }
  ASSERT_TRUE(kernel.RunUntilThreadsDone(threads));
  // With every home list non-empty, no allocation ever crossed nodes.
  const std::vector<uint64_t>& per_node = kernel.node_allocations();
  ASSERT_EQ(per_node.size(), 4u);
  for (int node = 0; node < 4; ++node) {
    EXPECT_EQ(per_node[static_cast<size_t>(node)], 4u) << "node " << node;
  }
  // Every frame left on a node's free list belongs to that node's range.
  const FramePool& pool = kernel.free_list();
  for (int node = 0; node < pool.num_nodes(); ++node) {
    for (const FrameId f : pool.NodeToVector(node)) {
      EXPECT_EQ(pool.NodeOf(f), node);
    }
  }
}

TEST(ScaleKernelTest, ExhaustedHomeNodeFallsBackToNextInWrapOrder) {
  MachineConfig machine = TestMachine(16);
  machine.num_nodes = 4;  // 4 frames per node
  machine.tunables.min_freemem_pages = 0;  // keep the daemon out of the way
  Kernel kernel(machine);
  AddressSpace* as = MakeAnonAs(kernel, "as0", 8);
  ASSERT_EQ(as->home_node(), 0);
  std::vector<Op> ops;
  for (VPage p = 0; p < 6; ++p) {
    ops.push_back(Op::Touch(p, /*write=*/false, 0));
  }
  ScriptProgram program(std::move(ops));
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  // First 4 allocations drain node 0; the next 2 spill into node 1.
  const std::vector<uint64_t>& per_node = kernel.node_allocations();
  EXPECT_EQ(per_node[0], 4u);
  EXPECT_EQ(per_node[1], 2u);
  EXPECT_EQ(per_node[2], 0u);
  EXPECT_EQ(per_node[3], 0u);
}

TEST(ScaleKernelTest, FirstOverMaxrssTracksLowestId) {
  MachineConfig machine = TestMachine(64);
  machine.tunables.min_freemem_pages = 0;
  machine.tunables.maxrss_pages = 4;
  Kernel kernel(machine);
  AddressSpace* a = MakeAnonAs(kernel, "a", 16);
  AddressSpace* b = MakeAnonAs(kernel, "b", 16);
  EXPECT_EQ(kernel.FirstOverMaxrss(), nullptr);

  auto touch_range = [&kernel](AddressSpace* as, VPage first, VPage count) {
    std::vector<Op> ops;
    for (VPage p = first; p < first + count; ++p) {
      ops.push_back(Op::Touch(p, /*write=*/false, 0));
    }
    ScriptProgram program(std::move(ops));
    Thread* t = kernel.Spawn("t", as, &program);
    ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  };

  touch_range(a, 0, 3);  // a under maxrss
  EXPECT_EQ(kernel.FirstOverMaxrss(), nullptr);
  touch_range(b, 0, 6);  // b over
  EXPECT_EQ(kernel.FirstOverMaxrss(), b);
  touch_range(a, 3, 4);  // both over: lowest id wins (creation order)
  EXPECT_EQ(kernel.FirstOverMaxrss(), a);
}

// --- multi-node end-to-end under the checker ---------------------------------

TEST(ScaleKernelTest, MultiNodeCheckedExperimentStaysClean) {
  MultiExperimentSpec spec;
  spec.machine = TestMachine(384);
  spec.machine.num_nodes = 4;
  spec.checks = true;
  spec.check_options.full_check_period = 64;
  spec.max_events = 30'000'000;
  for (int i = 0; i < 3; ++i) {
    MultiAppSpec app;
    app.workload = MakeMatvec(0.02);
    app.version = i == 0 ? AppVersion::kOriginal : AppVersion::kBuffered;
    // Staggered arrivals: tenant churn under the per-node oracle.
    app.start_delay = i * 40 * kMsec;
    spec.apps.push_back(std::move(app));
  }
  const MultiExperimentResult result = RunMultiExperiment(spec);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.check_failure, "") << result.check_failure;
  EXPECT_GT(result.checks_run, 0u);
}

TEST(ScaleKernelTest, StartDelayChargesSleepBeforeFirstInstruction) {
  MultiExperimentSpec spec;
  spec.machine = TestMachine(256);
  spec.max_events = 30'000'000;
  const SimDuration delay = 200 * kMsec;
  for (int i = 0; i < 2; ++i) {
    MultiAppSpec app;
    app.workload = MakeMatvec(0.02);
    app.version = AppVersion::kRelease;
    app.start_delay = i == 1 ? delay : 0;
    spec.apps.push_back(std::move(app));
  }
  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_LT(result.apps[0].times.sleep, delay);
  EXPECT_GE(result.apps[1].times.sleep, delay);
}

TEST(ScaleKernelTest, FuzzScenarioMultiTenantDrawsReachTheSpec) {
  Scenario s;
  s.num_nodes = 4;
  s.storm_delay = 100 * kMsec;
  FuzzApp app;
  app.workload = "MATVEC";
  s.apps = {app, app, app};
  MultiExperimentSpec spec = ToSpec(s);
  EXPECT_EQ(spec.machine.num_nodes, 4);
  ASSERT_EQ(spec.apps.size(), 3u);
  EXPECT_EQ(spec.apps[0].start_delay, 0);  // first tenant is the incumbent
  EXPECT_EQ(spec.apps[1].start_delay, 100 * kMsec);
  EXPECT_EQ(spec.apps[2].start_delay, 100 * kMsec);

  s.storm_delay = 0;
  s.churn_stagger = 60 * kMsec;
  spec = ToSpec(s);
  EXPECT_EQ(spec.apps[0].start_delay, 0);
  EXPECT_EQ(spec.apps[1].start_delay, 60 * kMsec);
  EXPECT_EQ(spec.apps[2].start_delay, 120 * kMsec);
}

// --- 10^7-frame scale --------------------------------------------------------

constexpr int64_t kTenMillion = 10'000'000;

TEST(ScaleTest, TenMillionFrameKernelFitsFootprintBound) {
  MachineConfig machine;
  machine.page_size_bytes = 4 * 1024;
  machine.user_memory_bytes = kTenMillion * machine.page_size_bytes;
  machine.num_nodes = 8;
  ASSERT_EQ(machine.num_frames(), kTenMillion);
  Kernel kernel(machine);
  const int64_t bytes = kernel.frames().MemoryFootprintBytes() +
                        kernel.free_list().MemoryFootprintBytes();
  // Documented bound: FrameTable ~13.6 B/frame + FramePool 8 B/frame < 24.
  EXPECT_LT(static_cast<double>(bytes) / static_cast<double>(kTenMillion), 24.0);
  EXPECT_EQ(kernel.free_list().size(), kTenMillion);
  EXPECT_EQ(kernel.free_list().num_nodes(), 8);
}

TEST(ScaleTest, PoolOpsStayConstantTimeAtTenMillionFrames) {
  FramePool pool(kTenMillion, 8);
  for (FrameId f = 0; f < kTenMillion; ++f) {
    pool.PushTail(f);
  }
  // 1M mixed alloc/free/rescue ops. Any O(frames) scan inside one of these
  // ops would turn this loop into ~10^13 work; the 5 s ceiling is thousands
  // of times above what the O(1) implementation needs.
  const double start = NowSeconds();
  uint64_t x = 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < 1'000'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const FrameId f = pool.PopHead(static_cast<int>(x % 8));
    ASSERT_NE(f, kNoFrame);
    if ((x & 3) == 0) {
      // Rescue path: push, remove from mid-list, push back.
      pool.PushTail(f);
      pool.Remove(f);
      pool.PushHead(f);
    } else if ((x & 1) != 0) {
      pool.PushTail(f);
    } else {
      pool.PushHead(f);
    }
  }
  const double elapsed = NowSeconds() - start;
  EXPECT_LT(elapsed, 5.0) << "per-frame ops are not O(1)";
  EXPECT_EQ(pool.size(), kTenMillion);
}

}  // namespace
}  // namespace tmh
