// Tests for the interpreter: the op stream it generates must match a naive
// per-iteration walk of the loop nest, and the compiler's hint sites must fire
// at the right places.

#include "src/runtime/interpreter.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/compiler/compile.h"
#include "src/sim/rng.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

constexpr int64_t kPage = 16 * 1024;

CompilerTarget Target() {
  CompilerTarget target;
  target.memory_bytes = 64 * kPage;
  return target;
}

// Collects the interpreter's op stream without running a kernel.
struct OpTrace {
  std::vector<VPage> touches;
  SimDuration total_compute = 0;
  std::vector<VPage> releases;
  int64_t ops = 0;
};

OpTrace Drain(const CompiledProgram& program, Kernel& kernel, AddressSpace* as,
              RuntimeLayer* runtime) {
  Interpreter interp(&program, as, runtime);
  OpTrace trace;
  for (int64_t guard = 0; guard < 50'000'000; ++guard) {
    const Op op = interp.Next(kernel);
    if (op.kind == Op::Kind::kExit) {
      return trace;
    }
    ++trace.ops;
    switch (op.kind) {
      case Op::Kind::kTouch:
        trace.touches.push_back(op.vpage);
        trace.total_compute += op.duration;
        break;
      case Op::Kind::kCompute:
        trace.total_compute += op.duration;
        break;
      case Op::Kind::kRelease:
        trace.releases.push_back(op.vpage);
        break;
      default:
        break;
    }
  }
  ADD_FAILURE() << "interpreter did not terminate";
  return trace;
}

// Naive reference: the page-touch sequence a one-iteration-at-a-time walk
// would produce (first touch of each page per ref, in iteration order).
std::vector<VPage> NaiveTouches(const SourceProgram& program, const ArrayLayout& layout) {
  std::vector<VPage> touches;
  std::vector<int64_t> last_page;
  for (int64_t rep = 0; rep < program.repeat; ++rep) {
    for (const LoopNest& nest : program.nests) {
      last_page.assign(nest.refs.size(), -1);
      std::vector<int64_t> ivs;
      bool empty = false;
      for (const Loop& loop : nest.loops) {
        ivs.push_back(loop.lower);
        empty = empty || loop.upper <= loop.lower;
      }
      if (empty) {
        continue;
      }
      while (true) {
        for (size_t r = 0; r < nest.refs.size(); ++r) {
          const ArrayRef& ref = nest.refs[r];
          const AffineExpr& expr =
              ref.runtime_affine != nullptr ? *ref.runtime_affine : ref.affine;
          int64_t element = expr.Eval(ivs);
          if (ref.IsIndirect()) {
            const auto& values =
                *program.arrays[static_cast<size_t>(ref.index_array)].index_values;
            element = values[static_cast<size_t>(
                std::clamp<int64_t>(element, 0, static_cast<int64_t>(values.size()) - 1))];
          }
          const ArrayDecl& array = program.arrays[static_cast<size_t>(ref.array)];
          element = std::clamp<int64_t>(element, 0, array.num_elements - 1);
          const int64_t page = layout.PageOf(ref.array, element);
          if (page != last_page[r]) {
            last_page[r] = page;
            touches.push_back(page);
          }
        }
        // Odometer.
        size_t d = nest.loops.size();
        while (d-- > 0) {
          ivs[d] += nest.loops[d].step;
          if (ivs[d] < nest.loops[d].upper) {
            break;
          }
          if (d == 0) {
            goto nest_done;
          }
          ivs[d] = nest.loops[d].lower;
        }
      }
    nest_done:;
    }
  }
  return touches;
}

SourceProgram TwoArrayProgram(bool known_bounds) {
  SourceProgram p;
  p.name = "two";
  p.arrays = {{"a", 8, 3 * 2048, true, nullptr}, {"b", 8, 3 * 2048, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 3 * 2048, 1, known_bounds}};
  ArrayRef a;
  a.array = 0;
  a.affine.coeffs = {1};
  ArrayRef b;
  b.array = 1;
  b.affine.coeffs = {1};
  b.is_write = true;
  nest.refs = {a, b};
  nest.compute_per_iteration = 10 * kNsec;
  p.nests.push_back(nest);
  p.text_pages = 0;  // keep traces exact
  return p;
}

TEST(InterpreterTest, TouchSequenceMatchesNaiveWalk) {
  Kernel kernel(TestMachine());
  const SourceProgram source = TwoArrayProgram(true);
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches, NaiveTouches(source, program.layout));
  // 3 pages per array, interleaved a,b per crossing.
  EXPECT_EQ(trace.touches.size(), 6u);
}

TEST(InterpreterTest, TotalComputeMatchesIterationCount) {
  Kernel kernel(TestMachine());
  const SourceProgram source = TwoArrayProgram(true);
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.total_compute, 3 * 2048 * 10 * kNsec);
}

TEST(InterpreterTest, BatchingDoesNotChangeSemanticsForUnknownBounds) {
  Kernel kernel(TestMachine());
  const SourceProgram source = TwoArrayProgram(false);
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches, NaiveTouches(source, program.layout));
}

TEST(InterpreterTest, MultiDimNestMatchesNaiveWalk) {
  SourceProgram p;
  p.name = "grid";
  p.arrays = {{"g", 8, 64 * 700, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 64, 1, true}, Loop{"j", 0, 700, 1, true}};
  ArrayRef center;
  center.array = 0;
  center.affine.coeffs = {700, 1};
  ArrayRef next_row = center;
  next_row.affine.constant = 700;
  nest.refs = {center, next_row};
  nest.compute_per_iteration = kNsec;
  p.nests.push_back(nest);
  p.text_pages = 0;

  Kernel kernel(TestMachine());
  const CompiledProgram program = Compile(p, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches, NaiveTouches(p, program.layout));
}

TEST(InterpreterTest, NegativeStrideMatchesNaiveWalk) {
  SourceProgram p;
  p.name = "reverse";
  p.arrays = {{"a", 8, 4 * 2048, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 4 * 2048, 1, true}};
  ArrayRef ref;
  ref.array = 0;
  ref.affine.coeffs = {-1};
  ref.affine.constant = 4 * 2048 - 1;  // sweep from the end downward
  nest.refs = {ref};
  nest.compute_per_iteration = kNsec;
  p.nests.push_back(nest);
  p.text_pages = 0;

  Kernel kernel(TestMachine());
  const CompiledProgram program = Compile(p, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches, NaiveTouches(p, program.layout));
  EXPECT_EQ(trace.touches.size(), 4u);
  EXPECT_EQ(trace.touches.front(), 3);  // last page first
}

TEST(InterpreterTest, IndirectRefsFollowIndexArrayValues) {
  SourceProgram p;
  p.name = "indirect";
  const int64_t n = 64;
  auto values = std::make_shared<std::vector<int64_t>>();
  Rng rng(99);
  for (int64_t i = 0; i < n; ++i) {
    values->push_back(static_cast<int64_t>(rng.NextBelow(8 * 2048)));
  }
  p.arrays = {{"data", 8, 8 * 2048, true, nullptr}, {"idx", 8, n, true, values}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, n, 1, false}};
  ArrayRef indirect;
  indirect.array = 0;
  indirect.index_array = 1;
  indirect.affine.coeffs = {1};
  ArrayRef idx;
  idx.array = 1;
  idx.affine.coeffs = {1};
  nest.refs = {indirect, idx};
  nest.compute_per_iteration = kNsec;
  p.nests.push_back(nest);
  p.text_pages = 0;

  Kernel kernel(TestMachine());
  const CompiledProgram program = Compile(p, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches, NaiveTouches(p, program.layout));
}

TEST(InterpreterTest, RuntimeAffineOverridesCompilerView) {
  // Compiler-visible expression says "always page 0"; the runtime expression
  // marches. Touches must follow the truth.
  SourceProgram p;
  p.name = "deceptive";
  p.arrays = {{"a", 8, 4 * 2048, true, nullptr}};
  LoopNest nest;
  nest.loops = {Loop{"i", 0, 4 * 2048, 1, false}};
  ArrayRef ref;
  ref.array = 0;
  ref.affine.coeffs = {0};
  ref.runtime_affine = std::make_shared<AffineExpr>();
  ref.runtime_affine->coeffs = {1};
  nest.refs = {ref};
  nest.compute_per_iteration = kNsec;
  p.nests.push_back(nest);
  p.text_pages = 0;

  Kernel kernel(TestMachine());
  const CompiledProgram program = Compile(p, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches.size(), 4u);  // marched through all four pages
}

TEST(InterpreterTest, RepeatRunsProgramAgain) {
  Kernel kernel(TestMachine());
  SourceProgram source = TwoArrayProgram(true);
  source.repeat = 3;
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_EQ(trace.touches.size(), 18u);  // 6 pages x 3 repeats
}

TEST(InterpreterTest, ZeroTripNestIsSkipped) {
  Kernel kernel(TestMachine());
  SourceProgram source = TwoArrayProgram(true);
  source.nests[0].loops[0].upper = 0;  // empty loop
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  EXPECT_TRUE(trace.touches.empty());
}

TEST(InterpreterTest, TextPagesAreTouchedPeriodically) {
  Kernel kernel(TestMachine());
  SourceProgram source = TwoArrayProgram(true);
  source.text_pages = 2;
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(
      kernel, "as", program.layout.total_pages() + source.text_pages);
  const OpTrace trace = Drain(program, kernel, as, nullptr);
  const int64_t text_base = program.layout.total_pages();
  int64_t text_touches = 0;
  for (const VPage page : trace.touches) {
    text_touches += (page >= text_base) ? 1 : 0;
  }
  EXPECT_GT(text_touches, 0);
}

TEST(InterpreterTest, EpilogueFlushesTagFilter) {
  // With releases enabled, the final page of a swept array is released at
  // nest exit (the tag filter would otherwise hold it forever).
  Kernel kernel(TestMachine(128));
  SourceProgram source = TwoArrayProgram(true);
  const CompiledProgram program = Compile(source, Target(), CompileOptions{true, true});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  RuntimeLayer runtime(&kernel, as, options);
  // Mark everything resident so release hints survive the bitmap filter.
  for (VPage page = 0; page < as->num_pages(); ++page) {
    as->bitmap()->Set(page);
  }
  const OpTrace trace = Drain(program, kernel, as, &runtime);
  // Every page of both arrays is eventually released (3 + 3).
  std::map<VPage, int> released;
  for (const VPage page : trace.releases) {
    released[page]++;
  }
  EXPECT_EQ(released.size(), 6u);
  EXPECT_GT(runtime.stats().tag_flushes, 0u);
}

TEST(InterpreterTest, StatsCountIterationsAndNests) {
  Kernel kernel(TestMachine());
  SourceProgram source = TwoArrayProgram(true);
  const CompiledProgram program = Compile(source, Target(), CompileOptions{false, false});
  AddressSpace* as = MakeSwapAs(kernel, "as", program.layout.total_pages());
  Interpreter interp(&program, as, nullptr);
  while (interp.Next(kernel).kind != Op::Kind::kExit) {
  }
  EXPECT_EQ(interp.stats().iterations, 3u * 2048u);
  EXPECT_EQ(interp.stats().nests_entered, 1u);
  EXPECT_EQ(interp.stats().repeats_done, 1u);
}

}  // namespace
}  // namespace tmh
