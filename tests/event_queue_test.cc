#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tmh {
namespace {

TEST(EventQueueTest, StartsAtTimeZero) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, SameTimeEventsRunInFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime observed = -1;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(50, [&] { observed = q.Now(); }); });
  q.RunToCompletion();
  EXPECT_EQ(observed, 150);
}

TEST(EventQueueTest, NowAdvancesOnlyWhenEventsRun) {
  EventQueue q;
  q.ScheduleAt(42, [] {});
  EXPECT_EQ(q.Now(), 0);
  q.RunOne();
  EXPECT_EQ(q.Now(), 42);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunToCompletion();
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(10, [] {});
  q.RunToCompletion();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelOwnEventDuringDispatchReturnsFalse) {
  // By the time a handler runs, its event has been retired (the generation
  // stamp advances before the callable is invoked), so self-cancel is a no-op.
  EventQueue q;
  EventId id = kInvalidEventId;
  bool self_cancel_result = true;
  id = q.ScheduleAt(10, [&] { self_cancel_result = q.Cancel(id); });
  q.RunToCompletion();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(q.ExecutedCount(), 1u);
}

TEST(EventQueueTest, CancelPendingEventDuringDispatch) {
  // A handler cancelling a later event at the same timestamp must win: the
  // victim is already in the dispatch bucket but has not run yet.
  EventQueue q;
  bool victim_ran = false;
  EventId victim = kInvalidEventId;
  bool cancel_result = false;
  q.ScheduleAt(10, [&] { cancel_result = q.Cancel(victim); });
  victim = q.ScheduleAt(10, [&] { victim_ran = true; });
  q.RunToCompletion();
  EXPECT_TRUE(cancel_result);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(q.ExecutedCount(), 1u);
}

TEST(EventQueueTest, SlotReuseInvalidatesOldIds) {
  // After an event runs, its slot is recycled for new events; the stale
  // EventId must not cancel the slot's new occupant.
  EventQueue q;
  const EventId old_id = q.ScheduleAt(5, [] {});
  q.RunToCompletion();
  bool ran = false;
  const EventId new_id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_FALSE(q.Cancel(old_id));  // stale generation
  q.RunToCompletion();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(q.Cancel(new_id));  // already ran
}

TEST(EventQueueTest, FifoPreservedAcrossCancelsAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.ScheduleAt(5, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 10; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.ScheduleAt(30, [&] { order.push_back(3); });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockPastEmptyStretch) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.Now(), 500);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.ScheduleAfter(10, chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.Now(), 40);
}

TEST(EventQueueTest, RunToCompletionHonorsEventCap) {
  EventQueue q;
  std::function<void()> forever = [&] { q.ScheduleAfter(1, forever); };
  q.ScheduleAt(0, forever);
  EXPECT_EQ(q.RunToCompletion(100), 100u);
}

TEST(EventQueueTest, NextEventTimeReportsEarliestPending) {
  EventQueue q;
  EXPECT_EQ(q.NextEventTime(777), 777);
  q.ScheduleAt(50, [] {});
  const EventId early = q.ScheduleAt(25, [] {});
  EXPECT_EQ(q.NextEventTime(0), 25);
  q.Cancel(early);
  EXPECT_EQ(q.NextEventTime(0), 50);
}

TEST(EventQueueTest, ExecutedCountTracksEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.ScheduleAt(i, [] {});
  }
  q.RunToCompletion();
  EXPECT_EQ(q.ExecutedCount(), 7u);
}

TEST(EventQueueTest, DeterministicAcrossRuns) {
  auto run = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      q.ScheduleAt((i * 37) % 50, [&order, i] { order.push_back(i); });
    }
    q.RunToCompletion();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tmh
