// Tests for the kernel's scheduling, blocking primitives, and time accounting.

#include "src/os/kernel.h"

#include <gtest/gtest.h>

#include "src/os/lock.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TEST(KernelTest, ComputeOpChargesUserTime) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Compute(5 * kMsec), Op::Compute(3 * kMsec)});
  Thread* t = kernel.Spawn("t", nullptr, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->times().user, 8 * kMsec);
  EXPECT_EQ(t->times().system, 0);
  EXPECT_EQ(t->state(), Thread::State::kDone);
}

TEST(KernelTest, SleepChargesSleepBucketNotExecution) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Sleep(100 * kMsec), Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("t", nullptr, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_GE(t->times().sleep, 100 * kMsec);
  EXPECT_EQ(t->times().user, kMsec);
  EXPECT_GE(t->finished_at(), 101 * kMsec);
}

TEST(KernelTest, ExitFinishesThreadAtElapsedTime) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Compute(7 * kMsec)});
  Thread* t = kernel.Spawn("t", nullptr, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->finished_at() - t->started_at(), 7 * kMsec);
}

TEST(KernelTest, MoreThreadsThanCpusCausesResourceStall) {
  MachineConfig config = TestMachine();
  config.num_cpus = 1;
  Kernel kernel(config);
  ScriptProgram p1({Op::Compute(50 * kMsec)});
  ScriptProgram p2({Op::Compute(50 * kMsec)});
  Thread* t1 = kernel.Spawn("t1", nullptr, &p1);
  Thread* t2 = kernel.Spawn("t2", nullptr, &p2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  // One of the two waited for the CPU for a significant stretch.
  const SimDuration total_stall = t1->times().resource_stall + t2->times().resource_stall;
  EXPECT_GT(total_stall, 20 * kMsec);
}

TEST(KernelTest, TwoCpusRunTwoThreadsInParallel) {
  MachineConfig config = TestMachine();
  config.num_cpus = 2;
  Kernel kernel(config);
  ScriptProgram p1({Op::Compute(50 * kMsec)});
  ScriptProgram p2({Op::Compute(50 * kMsec)});
  Thread* t1 = kernel.Spawn("t1", nullptr, &p1);
  Thread* t2 = kernel.Spawn("t2", nullptr, &p2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  // Both finish around 50ms, not 100ms.
  EXPECT_LT(kernel.Now(), 70 * kMsec);
}

TEST(KernelTest, WaitBlocksUntilSignal) {
  Kernel kernel(TestMachine());
  WaitQueue wq;
  ScriptProgram waiter({Op::Wait(&wq), Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("waiter", nullptr, &waiter);
  kernel.event_queue().ScheduleAt(30 * kMsec, [&] { kernel.Signal(&wq); });
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_GE(t->finished_at(), 30 * kMsec);
  EXPECT_GE(t->times().sleep, 25 * kMsec);  // queue wait counted as sleep
}

TEST(KernelTest, PendingSignalPreventsLostWakeup) {
  Kernel kernel(TestMachine());
  WaitQueue wq;
  kernel.Signal(&wq);  // nobody waiting: remembered
  ScriptProgram waiter({Op::Wait(&wq), Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("waiter", nullptr, &waiter);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));  // completes without a second signal
  EXPECT_EQ(t->state(), Thread::State::kDone);
}

TEST(KernelTest, LockIsExclusiveAndFifo) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  MemoryLock& lock = as->memory_lock();
  ScriptProgram holder({Op::Acquire(&lock), Op::Compute(40 * kMsec), Op::ReleaseL(&lock)});
  ScriptProgram contender({Op::Compute(kMsec), Op::Acquire(&lock), Op::ReleaseL(&lock)});
  Thread* t1 = kernel.Spawn("holder", as, &holder);
  Thread* t2 = kernel.Spawn("contender", as, &contender);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  // The contender stalled on the lock for most of the holder's compute.
  EXPECT_GT(t2->times().resource_stall, 30 * kMsec);
  EXPECT_EQ(lock.holder(), nullptr);
  EXPECT_EQ(lock.contended_acquisitions(), 1u);
}

TEST(KernelTest, LockHandoffWakesWaiterOnce) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  MemoryLock& lock = as->memory_lock();
  ScriptProgram a({Op::Acquire(&lock), Op::Compute(5 * kMsec), Op::ReleaseL(&lock)});
  ScriptProgram b({Op::Compute(kMsec), Op::Acquire(&lock), Op::Compute(5 * kMsec),
                   Op::ReleaseL(&lock)});
  ScriptProgram c({Op::Compute(2 * kMsec), Op::Acquire(&lock), Op::ReleaseL(&lock)});
  Thread* ta = kernel.Spawn("a", as, &a);
  Thread* tb = kernel.Spawn("b", as, &b);
  Thread* tc = kernel.Spawn("c", as, &c);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta, tb, tc}));
  EXPECT_EQ(lock.holder(), nullptr);
  EXPECT_EQ(lock.acquisitions(), 3u);
}

TEST(KernelTest, YieldKeepsThreadRunnable) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Compute(kMsec), Op::Yield(), Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("t", nullptr, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->times().user, 2 * kMsec);
}

TEST(KernelTest, DaemonThreadsExcludedFlag) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Compute(kMsec)});
  Thread* daemon = kernel.Spawn("d", nullptr, &program, /*is_daemon=*/true);
  EXPECT_TRUE(daemon->is_daemon());
}

TEST(KernelTest, RunUntilDoneStopsOnPredicate) {
  Kernel kernel(TestMachine());
  ScriptProgram program({Op::Compute(kMsec), Op::Sleep(10 * kSec), Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("t", nullptr, &program);
  EXPECT_TRUE(kernel.RunUntilDone([&] { return kernel.Now() >= 5 * kSec; }));
  EXPECT_NE(t->state(), Thread::State::kDone);
}

TEST(KernelTest, MaxEventsBoundsRunaway) {
  Kernel kernel(TestMachine());
  SweeperProgram sweeper(4, kMsec);  // never exits
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  Thread* t = kernel.Spawn("t", as, &sweeper);
  EXPECT_FALSE(kernel.RunUntilThreadsDone({t}, /*max_events=*/1000));
}

TEST(KernelTest, CreateAddressSpaceAssignsDisjointSwapExtents) {
  Kernel kernel(TestMachine());
  AddressSpace* a = kernel.CreateAddressSpace("a", 10 * 16 * 1024);
  AddressSpace* b = kernel.CreateAddressSpace("b", 10 * 16 * 1024);
  EXPECT_EQ(a->SwapSlot(0) + a->num_pages(), b->SwapSlot(0));
  EXPECT_NE(a->id(), b->id());
}

TEST(KernelTest, FreshMachineHasAllFramesFree) {
  Kernel kernel(TestMachine(48));
  EXPECT_EQ(kernel.FreePages(), 48);
  EXPECT_EQ(kernel.frames().size(), 48);
}

TEST(KernelTest, QuantumSlicingInterleavesThreads) {
  MachineConfig config = TestMachine();
  config.num_cpus = 1;
  config.quantum = 5 * kMsec;
  Kernel kernel(config);
  // Many small ops so the quantum (not op granularity) decides slice ends.
  std::vector<Op> ops(20, Op::Compute(kMsec));
  ScriptProgram p1(ops);
  ScriptProgram p2(ops);
  Thread* t1 = kernel.Spawn("t1", nullptr, &p1);
  Thread* t2 = kernel.Spawn("t2", nullptr, &p2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t1, t2}));
  // Round-robin: both finish near the end, not one at 20ms and one at 40ms.
  EXPECT_GT(t1->finished_at(), 30 * kMsec);
  EXPECT_GT(t2->finished_at(), 30 * kMsec);
}

}  // namespace
}  // namespace tmh
