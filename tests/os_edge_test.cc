// Edge-case tests for the OS substrate: stale rescue identities, duplicate
// releases, release-range clipping, writeback hazards, and prefetch-pipeline
// corner cases.

#include <gtest/gtest.h>

#include "src/os/kernel.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

TEST(OsEdgeTest, ReallocationBreaksStaleRescueIdentity) {
  // Process A's released page gets reallocated to process B; A's later touch
  // must NOT rescue B's frame — it must page in from swap.
  // Keep the paging daemon dormant (it would otherwise replenish the list
  // head and shield the tail frame): B's allocations must drain the whole
  // free list, so the tail frame (A's released page) is guaranteed recycled.
  MachineConfig config = TestMachine(10);
  config.tunables.min_freemem_pages = 0;
  config.tunables.target_freemem_pages = 0;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* a = MakeSwapAs(kernel, "a", 8);
  a->AttachPagingDirected(0, 8);
  AddressSpace* b = MakeSwapAs(kernel, "b", 16);
  b->AttachPagingDirected(0, 16);

  ScriptProgram pa({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1), Op::Sleep(20 * kMsec)});
  Thread* ta = kernel.Spawn("a", a, &pa);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta}));
  ASSERT_FALSE(a->page_table().at(0).resident);
  const FrameId freed_frame = a->page_table().at(0).frame;
  ASSERT_TRUE(kernel.free_list().Contains(freed_frame));

  // B touches exactly as many pages as there are frames, so every free frame
  // — including the tail one holding A's data — is reallocated; it then
  // releases one page so A has a frame to fault into.
  std::vector<Op> ops;
  for (VPage p = 0; p < 10; ++p) {
    ops.push_back(Op::Touch(p, false, 0));
  }
  ops.push_back(Op::Release(3, 1, 0, 1));
  ops.push_back(Op::Sleep(20 * kMsec));  // let the releaser free it
  ScriptProgram pb(ops);
  Thread* tb = kernel.Spawn("b", b, &pb);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({tb}));

  ScriptProgram pa2({Op::Touch(0, false, 0)});
  Thread* ta2 = kernel.Spawn("a2", a, &pa2);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta2}));
  EXPECT_EQ(ta2->faults().rescue_faults, 0u);
  EXPECT_EQ(ta2->faults().hard_faults, 1u);  // honest page-in
}

TEST(OsEdgeTest, DuplicateReleaseRequestIsIdempotent) {
  MachineConfig config = TestMachine(32);
  config.num_cpus = 1;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1),
                         Op::Release(0, 1, 0, 1),  // duplicate while pending
                         Op::Sleep(20 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().release_pages_enqueued, 1u);  // second was a no-op
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 1u);
}

TEST(OsEdgeTest, ReleaseRangeClippedToAddressSpace) {
  Kernel kernel(TestMachine(32));
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(3, false, 0),
                         Op::Release(2, 100, 0, 1),  // range runs off the end
                         Op::Sleep(20 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().release_pages_enqueued, 1u);  // only page 3 qualified
}

TEST(OsEdgeTest, TouchDuringWritebackWaitsForCompletion) {
  // A page released dirty is mid-writeback when re-touched: the touch must
  // wait for the write and then rescue, not read stale data from swap.
  MachineConfig config = TestMachine(32);
  config.num_cpus = 1;
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeAnonAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({
      Op::Touch(0, true, 0),       // dirty zero-fill page
      Op::Release(0, 1, 0, 1),
      Op::Sleep(2 * kMsec),        // releaser starts the writeback (~1.5 ms I/O)
      Op::Touch(0, false, 0),      // arrives while the write is in flight
  });
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(kernel.stats().writebacks, 1u);
  // The page came back via rescue (after the writeback) or collapse; either
  // way no second swap READ happened.
  EXPECT_EQ(kernel.swap().reads(), 0u);
  EXPECT_TRUE(as->page_table().at(0).resident);
}

TEST(OsEdgeTest, PrefetchedButNeverTouchedPageGetsInvalidatedThenStolen) {
  // A fresh prefetched page is protected for one clock pass (treated as
  // possibly referenced), then stolen if still untouched.
  MachineConfig config = TestMachine(16);
  Kernel kernel(config);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 24);
  as->AttachPagingDirected(0, 24);
  std::vector<Op> ops;
  ops.push_back(Op::Prefetch(23));  // prefetched, never used
  for (VPage p = 0; p < 23; ++p) {
    ops.push_back(Op::Touch(p, false, 100 * kUsec));  // pressure
  }
  ops.push_back(Op::Sleep(4 * config.tunables.daemon_period));
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_FALSE(as->page_table().at(23).resident);  // eventually reclaimed
}

TEST(OsEdgeTest, InterleavedProcessesKeepSeparateBitmaps) {
  Kernel kernel(TestMachine(64));
  AddressSpace* a = MakeSwapAs(kernel, "a", 8);
  a->AttachPagingDirected(0, 8);
  AddressSpace* b = MakeSwapAs(kernel, "b", 8);
  b->AttachPagingDirected(0, 8);
  ScriptProgram pa({Op::Touch(1, false, 0)});
  ScriptProgram pb({Op::Touch(2, false, 0)});
  Thread* ta = kernel.Spawn("a", a, &pa);
  Thread* tb = kernel.Spawn("b", b, &pb);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({ta, tb}));
  EXPECT_TRUE(a->bitmap()->Test(1));
  EXPECT_FALSE(a->bitmap()->Test(2));
  EXPECT_TRUE(b->bitmap()->Test(2));
  EXPECT_FALSE(b->bitmap()->Test(1));
}

TEST(OsEdgeTest, ZeroPageAddressSpaceTouchFaultsOnce) {
  Kernel kernel(TestMachine());
  AddressSpace* as = MakeSwapAs(kernel, "as", 1);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Touch(0, true, 0)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  EXPECT_EQ(t->faults().hard_faults, 1u);
}

TEST(OsEdgeTest, ManyProcessesShareMemoryFairlyEnoughToFinish) {
  // Four sweeping processes over 4x the physical memory all complete.
  MachineConfig config = TestMachine(32);
  Kernel kernel(config);
  kernel.StartDaemons();
  std::vector<std::unique_ptr<ScriptProgram>> programs;
  std::vector<Thread*> threads;
  for (int i = 0; i < 4; ++i) {
    AddressSpace* as = MakeSwapAs(kernel, "p" + std::to_string(i), 32);
    std::vector<Op> ops;
    for (VPage p = 0; p < 32; ++p) {
      ops.push_back(Op::Touch(p, false, 50 * kUsec));
    }
    programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    threads.push_back(kernel.Spawn("p" + std::to_string(i), as, programs.back().get()));
  }
  ASSERT_TRUE(kernel.RunUntilThreadsDone(threads, 20'000'000));
  EXPECT_GT(kernel.stats().daemon_pages_stolen, 0u);
}

}  // namespace
}  // namespace tmh
