// Tests for the memory-tiering extension: releases demote pages into slow
// tiers (Eq. 2 priority picks the depth), re-touches promote them back, and
// full tiers evict by cascading down the hierarchy (disk from the last tier).
// Every scenario here runs with the InvariantChecker attached, so the tier
// planes are cross-validated against the oracle's per-tier reference model
// (I-TIER) as the migrations happen; a dedicated suite then tier-thrashes
// fresh fuzz seeds and proves deterministic replay by digest.

#include <gtest/gtest.h>

#include "src/check/fuzz_scenario.h"
#include "src/check/invariants.h"
#include "src/core/experiment.h"
#include "src/os/kernel.h"
#include "src/workloads/extra.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

// TestMachine plus `slow_tiers` slow tiers of `tier_frames` pages each.
MachineConfig TieredMachine(int slow_tiers, int64_t tier_frames,
                            int64_t dram_frames = 64) {
  MachineConfig config = TestMachine(dram_frames);
  config.tiers.push_back(TierSpec{});  // tiers[0] = DRAM
  for (int t = 0; t < slow_tiers; ++t) {
    TierSpec tier;
    tier.frames = tier_frames;
    config.tiers.push_back(tier);
  }
  return config;
}

TEST(TieringTest, ReleaseDemotesInsteadOfFreeing) {
  Kernel kernel(TieredMachine(1, 16));
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  as->AttachPagingDirected(0, 2);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Release(0, 1, 0, 1),
                         Op::Sleep(50 * kMsec)});  // releaser demotes
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  EXPECT_EQ(kernel.stats().tier_demotions, 1u);
  EXPECT_EQ(kernel.stats().releaser_pages_freed, 1u);
  const Pte& pte = as->page_table().at(0);
  EXPECT_FALSE(pte.resident);
  EXPECT_EQ(pte.frame, kNoFrame);
  EXPECT_EQ(pte.tier, 1);
  const Kernel::TierPlane& plane = kernel.tier_planes()[0];
  ASSERT_GE(pte.tier_frame, 0);
  ASSERT_LT(pte.tier_frame, plane.frames);
  EXPECT_EQ(plane.owner[static_cast<size_t>(pte.tier_frame)], as->id());
  EXPECT_EQ(plane.vpage[static_cast<size_t>(pte.tier_frame)], 0);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(TieringTest, RoundTripPreservesContentsAndDirtyBit) {
  // Dirty a page, demote it, touch it back: the promotion must be a soft
  // fault (contents migrate through the tier, no disk read) and the dirty
  // bit must come back with it — silently, not as a second kDirty event.
  Kernel kernel(TieredMachine(1, 16));
  kernel.EnableObservability();
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 2);
  as->AttachPagingDirected(0, 2);
  ScriptProgram program({Op::Touch(0, true, 0),  // dirty it
                         Op::Release(0, 1, 0, 1),
                         Op::Sleep(50 * kMsec),   // releaser demotes
                         Op::Touch(0, false, 0),  // promote (read: no MarkDirty)
                         Op::Compute(kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  EXPECT_EQ(kernel.stats().tier_demotions, 1u);
  EXPECT_EQ(kernel.stats().tier_promotions, 1u);
  // Demotion is a memory-to-memory migration: no writeback, no swap write.
  EXPECT_EQ(kernel.stats().writebacks, 0u);
  EXPECT_EQ(kernel.swap().writes(), 0u);
  // Promotion re-validated the contents without a disk read.
  EXPECT_EQ(kernel.swap().reads(), 1u);  // only the initial page-in
  EXPECT_EQ(t->faults().hard_faults, 1u);
  EXPECT_GE(t->faults().soft_faults, 1u);
  const Pte& pte = as->page_table().at(0);
  ASSERT_TRUE(pte.resident);
  EXPECT_EQ(pte.tier, 0);
  EXPECT_EQ(pte.tier_frame, kNoFrame);
  // The carried dirty bit survived the round trip.
  EXPECT_TRUE(kernel.frames().dirty(pte.frame));
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(TieringTest, Eq2PriorityPicksTheDemotionDepth) {
  // Two slow tiers: priority 0 (cold, per Eq. 2) sinks to the deepest tier,
  // a warmer priority lands one level up.
  Kernel kernel(TieredMachine(2, 16));
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  ScriptProgram program({Op::Touch(0, false, 0), Op::Touch(1, false, 0),
                         Op::Release(0, 1, /*prio=*/0, 1),
                         Op::Release(1, 1, /*prio=*/1, 2),
                         Op::Sleep(50 * kMsec)});
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  EXPECT_EQ(kernel.stats().tier_demotions, 2u);
  EXPECT_EQ(as->page_table().at(0).tier, 2);  // coldest: deepest tier
  EXPECT_EQ(as->page_table().at(1).tier, 1);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(TieringTest, FullTierEvictsToDiskWithOneWriteback) {
  // A 4-frame slow tier fed 8 dirty demotions: the overflow evicts the
  // clock-hand victims out of the hierarchy, each dirty eviction counting
  // exactly one tier writeback. Tier writebacks are charged as migration-
  // engine CPU cost, not routed through the swap disks, so the kernel-wide
  // swap_writes == writebacks identity is untouched.
  Kernel kernel(TieredMachine(1, 4));
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 8);
  as->AttachPagingDirected(0, 8);
  std::vector<Op> ops;
  for (VPage p = 0; p < 8; ++p) {
    ops.push_back(Op::Touch(p, true, 0));  // dirty
    ops.push_back(Op::Release(p, 1, 0, 1));
    ops.push_back(Op::Sleep(20 * kMsec));  // demote before the next fills DRAM
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  EXPECT_EQ(kernel.stats().tier_demotions, 8u);
  EXPECT_EQ(kernel.stats().tier_evictions, 4u);
  EXPECT_EQ(kernel.stats().tier_writebacks, 4u);
  EXPECT_EQ(kernel.stats().writebacks, 0u);
  EXPECT_EQ(kernel.swap().writes(), 0u);
  // Evicted pages fell all the way out of the hierarchy...
  EXPECT_EQ(as->page_table().at(0).tier, 0);
  EXPECT_FALSE(as->page_table().at(0).resident);
  // ...while the last demotions still sit in the tier.
  EXPECT_EQ(as->page_table().at(7).tier, 1);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(TieringTest, PingPongPromotionStormConverges) {
  // Release/touch the same pages dozens of times: every demotion must be
  // matched by a promotion, with zero disk traffic beyond the initial
  // page-ins, and the checker must stay clean through the whole storm.
  Kernel kernel(TieredMachine(1, 16));
  InvariantChecker checker(kernel);
  kernel.StartDaemons();
  AddressSpace* as = MakeSwapAs(kernel, "as", 4);
  as->AttachPagingDirected(0, 4);
  std::vector<Op> ops;
  for (VPage p = 0; p < 4; ++p) {
    ops.push_back(Op::Touch(p, false, 0));
  }
  for (int round = 0; round < 25; ++round) {
    for (VPage p = 0; p < 4; ++p) {
      ops.push_back(Op::Release(p, 1, 0, 1));
    }
    ops.push_back(Op::Sleep(50 * kMsec));  // demote all four
    for (VPage p = 0; p < 4; ++p) {
      ops.push_back(Op::Touch(p, false, 0));  // promote all four
    }
  }
  ScriptProgram program(ops);
  Thread* t = kernel.Spawn("t", as, &program);
  ASSERT_TRUE(kernel.RunUntilThreadsDone({t}));
  ASSERT_TRUE(checker.ok()) << checker.failure();

  EXPECT_EQ(kernel.stats().tier_demotions, 100u);
  EXPECT_EQ(kernel.stats().tier_promotions, 100u);
  EXPECT_EQ(kernel.stats().tier_evictions, 0u);
  EXPECT_EQ(kernel.swap().reads(), 4u);  // initial page-ins only
  EXPECT_EQ(kernel.swap().writes(), 0u);
  // Converged: all four pages resident in DRAM, tier fully drained.
  for (VPage p = 0; p < 4; ++p) {
    EXPECT_TRUE(as->page_table().at(p).resident);
    EXPECT_EQ(as->page_table().at(p).tier, 0);
  }
  EXPECT_EQ(kernel.tier_planes()[0].pool->size(), 16);
  EXPECT_TRUE(checker.CheckNow(kernel)) << checker.failure();
}

TEST(TieringTest, CheckedTieredWorkloadRunsStayClean) {
  // Full compiled-workload runs on 2- and 3-tier machines at both release
  // treatment levels, with the checker replaying every migration through the
  // oracle's tier model.
  for (const int slow_tiers : {1, 2}) {
    for (const AppVersion version : {AppVersion::kRelease, AppVersion::kBuffered}) {
      ExperimentSpec spec;
      spec.machine.user_memory_bytes = 6 * 1024 * 1024;
      spec.machine.tiers.push_back(TierSpec{});
      for (int t = 0; t < slow_tiers; ++t) {
        TierSpec tier;
        tier.frames = spec.machine.num_frames() / 2;
        spec.machine.tiers.push_back(tier);
      }
      spec.workload = FindWorkload("MATVEC")->factory(0.05);
      spec.version = version;
      spec.checks = true;
      const ExperimentResult result = RunExperiment(spec);
      ASSERT_TRUE(result.completed);
      EXPECT_TRUE(result.check_failure.empty())
          << slow_tiers + 1 << " tiers, " << VersionLabel(version) << ": "
          << result.check_failure;
      EXPECT_GT(result.checks_run, 0u);
      EXPECT_GT(result.kernel.tier_demotions, 0u);
    }
  }
}

// Tier-thrash armor: fresh fuzz seeds (disjoint from fuzz_smoke's 1..6 and
// the chaos soak's 101..112) forced onto a tiered machine, each run twice to
// prove deterministic replay by digest.
class TieringFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TieringFuzzTest, ForcedTierScenarioIsCleanAndDeterministic) {
  const uint64_t seed = GetParam();
  Scenario scenario = MakeScenario(seed);
  if (scenario.num_slow_tiers == 0) {
    // Same forced geometry as `tmh_fuzz --force-tiers`.
    scenario.num_slow_tiers = 2;
    scenario.tier_frames = 128;
    scenario.tier_promote_cost = 20 * kUsec;
    scenario.tier_demote_cost = 20 * kUsec;
  }

  const ScenarioOutcome first = RunScenario(scenario);
  ASSERT_TRUE(first.completed) << Describe(scenario);
  ASSERT_TRUE(first.ok) << first.failure << "\n" << Describe(scenario);
  EXPECT_GT(first.checks_run, 0u);

  const ScenarioOutcome second = RunScenario(scenario);
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_EQ(first.digest, second.digest) << Describe(scenario);
  EXPECT_EQ(first.sim_events, second.sim_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TieringFuzzTest,
                         ::testing::Range<uint64_t>(501, 509));

}  // namespace
}  // namespace tmh
