// Chaos testing: randomized multiprogrammed mixes across every feature
// dimension (versions including reactive, adaptive/oracle compilation, local
// partitions, drain orders, page sizes) must complete and preserve the
// kernel's structural invariants.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/sim/rng.h"
#include "src/workloads/extra.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace tmh {
namespace {

const WorkloadInfo& PickWorkload(Rng& rng) {
  const auto& paper = AllWorkloads();
  const auto& extra = ExtraWorkloads();
  const uint64_t index = rng.NextBelow(paper.size() + extra.size());
  return index < paper.size() ? paper[index] : extra[index - paper.size()];
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, RandomFeatureMixCompletesWithSaneAccounting) {
  Rng rng(GetParam() * 7919 + 13);

  MultiExperimentSpec spec;
  spec.machine.user_memory_bytes =
      static_cast<int64_t>((5.0 + rng.NextDouble() * 5.0) * 1024 * 1024);
  if (rng.NextBelow(4) == 0) {
    spec.machine.page_size_bytes = 8 * 1024;
  }
  if (rng.NextBelow(4) == 0) {
    spec.machine.tunables.local_partition_pages =
        spec.machine.num_frames() / static_cast<int64_t>(2 + rng.NextBelow(3));
  }
  if (rng.NextBelow(3) == 0) {
    spec.machine.tunables.shared_header_notify_threshold = 16;
  }
  if (rng.NextBelow(3) == 0) {
    spec.machine.tunables.release_to_tail = false;
  }

  const int num_apps = 1 + static_cast<int>(rng.NextBelow(2));
  const AppVersion versions[] = {AppVersion::kOriginal, AppVersion::kPrefetch,
                                 AppVersion::kRelease, AppVersion::kBuffered,
                                 AppVersion::kReactive};
  for (int i = 0; i < num_apps; ++i) {
    MultiAppSpec app;
    app.workload = PickWorkload(rng).factory(0.05);
    app.version = versions[rng.NextBelow(5)];
    app.adaptive = rng.NextBelow(3) == 0;
    app.oracle = rng.NextBelow(4) == 0;
    app.runtime.release_batch = static_cast<int>(10 + rng.NextBelow(200));
    app.runtime.drain_newest_first = rng.NextBelow(2) == 0;
    app.runtime.num_prefetch_threads = static_cast<int>(1 + rng.NextBelow(8));
    spec.apps.push_back(std::move(app));
  }
  spec.with_interactive = rng.NextBelow(2) == 0;
  spec.interactive.sleep_time = static_cast<SimDuration>((1 + rng.NextBelow(4)) * kSec);

  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed);

  // Structural sanity on the aggregate counters.
  for (const AppMetrics& app : result.apps) {
    EXPECT_GT(app.interp.iterations, 0u);
    EXPECT_GE(app.wall, app.times.user);
    EXPECT_EQ(app.times.Execution(),
              app.times.user + app.times.system + app.times.resource_stall +
                  app.times.io_stall);
  }
  // Dirty-eviction balance holds in every configuration.
  EXPECT_EQ(result.swap_writes, result.kernel.writebacks);
  // Rescues can never exceed frees.
  EXPECT_LE(result.kernel.rescued_daemon_freed + result.kernel.rescued_release_freed,
            result.kernel.daemon_pages_stolen + result.kernel.releaser_pages_freed +
                result.kernel.local_evictions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace tmh
