// Chaos soak: each seed derives a full multiprogramming scenario (random
// machine geometry, feature mix across versions/adaptive/oracle/partitions/
// drain orders/page sizes) and runs it with the InvariantChecker attached, so
// every simulation event is replayed through the reference oracle and the
// kernel's structures are cross-validated as the run progresses. Any failure
// names its seed; `tmh_fuzz --seed N` replays the identical run outside
// gtest, shrinks it, and prints the minimized scenario.

#include <gtest/gtest.h>

#include "src/check/fuzz_scenario.h"
#include "src/check/invariants.h"
#include "src/core/experiment.h"

namespace tmh {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, RandomScenarioPassesInvariantChecks) {
  const uint64_t seed = GetParam();
  const ScenarioOptions options;
  const Scenario scenario = MakeScenario(seed, options);

  // Expand the scenario exactly the way tmh_fuzz does, so a failure here
  // replays bit-for-bit under the standalone driver.
  MultiExperimentSpec spec = ToSpec(scenario);
  spec.checks = true;
  spec.check_options.full_check_period = options.full_check_period;

  const MultiExperimentResult result = RunMultiExperiment(spec);
  ASSERT_TRUE(result.completed) << Describe(scenario);
  ASSERT_TRUE(result.check_failure.empty())
      << result.check_failure << "\nreplay: tmh_fuzz --seed " << seed << "\n"
      << Describe(scenario);
  EXPECT_GT(result.checks_run, 0u);

  // Structural sanity on the aggregate counters.
  for (const AppMetrics& app : result.apps) {
    EXPECT_GT(app.interp.iterations, 0u);
    EXPECT_GE(app.wall, app.times.user);
    EXPECT_EQ(app.times.Execution(),
              app.times.user + app.times.system + app.times.resource_stall +
                  app.times.io_stall);
  }
  // Dirty-eviction balance holds in every configuration.
  EXPECT_EQ(result.swap_writes, result.kernel.writebacks);
  // Rescues can never exceed frees.
  EXPECT_LE(result.kernel.rescued_daemon_freed + result.kernel.rescued_release_freed,
            result.kernel.daemon_pages_stolen + result.kernel.releaser_pages_freed +
                result.kernel.local_evictions);
}

// Seeds 1..6 are fuzz_smoke's fixture; the soak takes a disjoint range so the
// two suites together cover more of the scenario space.
INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<uint64_t>(101, 113));

}  // namespace
}  // namespace tmh
