// Residency bitmap shared between the OS and an application.
//
// Models the 16 KB shared page of the PagingDirected policy module
// (Section 3.1.1): a bitmap indexed by virtual page number whose bits the OS
// sets when a physical page is allocated for the virtual page and clears when
// the page is reclaimed, plus two header words — the current number of pages
// in use and the recommended upper limit. The header words are updated lazily,
// only when the process experiences memory-system activity.

#ifndef TMH_SRC_VM_RESIDENCY_BITMAP_H_
#define TMH_SRC_VM_RESIDENCY_BITMAP_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

class ResidencyBitmap {
 public:
  explicit ResidencyBitmap(VPage num_pages)
      : bits_((static_cast<size_t>(num_pages) + 63) / 64, 0),
        num_pages_(num_pages) {}

  [[nodiscard]] VPage size() const { return num_pages_; }

  void Set(VPage vpage) {
    assert(InRange(vpage));
    bits_[Word(vpage)] |= Mask(vpage);
  }

  void Clear(VPage vpage) {
    assert(InRange(vpage));
    bits_[Word(vpage)] &= ~Mask(vpage);
  }

  [[nodiscard]] bool Test(VPage vpage) const {
    assert(InRange(vpage));
    return (bits_[Word(vpage)] & Mask(vpage)) != 0;
  }

  void SetAll() {
    for (auto& w : bits_) {
      w = ~0ULL;
    }
    MaskTail();
  }

  // Word-wise range ops: one masked store for each partial edge word and
  // whole-word stores in between, instead of a bit-by-bit loop.
  void ClearRange(VPage first, VPage count) { ApplyRange<false>(first, count); }
  void SetRange(VPage first, VPage count) { ApplyRange<true>(first, count); }

  // First resident page in [first, first + count), or -1 if none. Scans a
  // word at a time with ctz on the first nonzero word.
  [[nodiscard]] VPage FindFirstResident(VPage first, VPage count) const {
    if (count <= 0) {
      return -1;
    }
    assert(InRange(first) && InRange(first + count - 1));
    const size_t w0 = Word(first);
    const size_t w1 = Word(first + count - 1);
    uint64_t w = bits_[w0] & (~0ULL << (static_cast<uint64_t>(first) % 64));
    for (size_t i = w0; i <= w1; w = (++i <= w1) ? bits_[i] : 0) {
      if (i == w1) {
        w &= LowMask(static_cast<uint64_t>(first + count) - i * 64);
      }
      if (w != 0) {
        const VPage page = static_cast<VPage>(i * 64 + static_cast<size_t>(__builtin_ctzll(w)));
        return page;
      }
    }
    return -1;
  }

  // True iff every page in [first, first + count) is resident. Word-parallel
  // counterpart of Test() for run-granular checks (e.g. cross-checking a
  // fused touch run's span for a PagingDirected address space).
  [[nodiscard]] bool AllSetRange(VPage first, VPage count) const {
    if (count <= 0) {
      return true;
    }
    assert(InRange(first) && InRange(first + count - 1));
    const size_t w0 = Word(first);
    const size_t w1 = Word(first + count - 1);
    uint64_t need = ~0ULL << (static_cast<uint64_t>(first) % 64);
    const uint64_t tail = LowMask(static_cast<uint64_t>(first + count) - w1 * 64);
    if (w0 == w1) {
      need &= tail;
      return (bits_[w0] & need) == need;
    }
    if ((bits_[w0] & need) != need) {
      return false;
    }
    for (size_t i = w0 + 1; i < w1; ++i) {
      if (bits_[i] != ~0ULL) {
        return false;
      }
    }
    return (bits_[w1] & tail) == tail;
  }

  // Number of resident pages in [first, first + count).
  [[nodiscard]] int64_t CountRange(VPage first, VPage count) const {
    if (count <= 0) {
      return 0;
    }
    assert(InRange(first) && InRange(first + count - 1));
    const size_t w0 = Word(first);
    const size_t w1 = Word(first + count - 1);
    int64_t n = 0;
    for (size_t i = w0; i <= w1; ++i) {
      uint64_t w = bits_[i];
      if (i == w0) {
        w &= ~0ULL << (static_cast<uint64_t>(first) % 64);
      }
      if (i == w1) {
        w &= LowMask(static_cast<uint64_t>(first + count) - i * 64);
      }
      n += __builtin_popcountll(w);
    }
    return n;
  }

  [[nodiscard]] int64_t PopCount() const {
    int64_t n = 0;
    for (uint64_t w : bits_) {
      n += __builtin_popcountll(w);
    }
    return n;
  }

  // Header words of the shared page (Section 3.1.1). The OS writes them; the
  // run-time layer reads them. Values may be stale between memory activity.
  [[nodiscard]] int64_t current_usage() const { return current_usage_; }
  [[nodiscard]] int64_t upper_limit() const { return upper_limit_; }
  void SetHeader(int64_t current_usage, int64_t upper_limit) {
    current_usage_ = current_usage;
    upper_limit_ = upper_limit;
  }

 private:
  [[nodiscard]] bool InRange(VPage vpage) const { return vpage >= 0 && vpage < num_pages_; }
  static size_t Word(VPage vpage) { return static_cast<size_t>(vpage) / 64; }
  static uint64_t Mask(VPage vpage) { return 1ULL << (static_cast<uint64_t>(vpage) % 64); }

  // Mask with the low `n` bits set, for n in [1, 64].
  static uint64_t LowMask(uint64_t n) { return (n >= 64) ? ~0ULL : (1ULL << n) - 1; }

  template <bool kSet>
  void ApplyRange(VPage first, VPage count) {
    if (count <= 0) {
      return;
    }
    assert(InRange(first) && InRange(first + count - 1));
    const size_t w0 = Word(first);
    const size_t w1 = Word(first + count - 1);
    uint64_t head = ~0ULL << (static_cast<uint64_t>(first) % 64);
    const uint64_t tail = LowMask(static_cast<uint64_t>(first + count) - w1 * 64);
    if (w0 == w1) {
      head &= tail;
      if constexpr (kSet) {
        bits_[w0] |= head;
      } else {
        bits_[w0] &= ~head;
      }
      return;
    }
    if constexpr (kSet) {
      bits_[w0] |= head;
      for (size_t i = w0 + 1; i < w1; ++i) {
        bits_[i] = ~0ULL;
      }
      bits_[w1] |= tail;
    } else {
      bits_[w0] &= ~head;
      for (size_t i = w0 + 1; i < w1; ++i) {
        bits_[i] = 0;
      }
      bits_[w1] &= ~tail;
    }
  }

  // Clears bits beyond num_pages_ in the last word so PopCount() and word
  // scans never see phantom pages.
  void MaskTail() {
    const uint64_t used = static_cast<uint64_t>(num_pages_) % 64;
    if (used != 0 && !bits_.empty()) {
      bits_.back() &= LowMask(used);
    }
  }

  std::vector<uint64_t> bits_;
  VPage num_pages_;
  int64_t current_usage_ = 0;
  int64_t upper_limit_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_RESIDENCY_BITMAP_H_
