// Residency bitmap shared between the OS and an application.
//
// Models the 16 KB shared page of the PagingDirected policy module
// (Section 3.1.1): a bitmap indexed by virtual page number whose bits the OS
// sets when a physical page is allocated for the virtual page and clears when
// the page is reclaimed, plus two header words — the current number of pages
// in use and the recommended upper limit. The header words are updated lazily,
// only when the process experiences memory-system activity.

#ifndef TMH_SRC_VM_RESIDENCY_BITMAP_H_
#define TMH_SRC_VM_RESIDENCY_BITMAP_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

class ResidencyBitmap {
 public:
  explicit ResidencyBitmap(VPage num_pages)
      : bits_((static_cast<size_t>(num_pages) + 63) / 64, 0),
        num_pages_(num_pages) {}

  [[nodiscard]] VPage size() const { return num_pages_; }

  void Set(VPage vpage) {
    assert(InRange(vpage));
    bits_[Word(vpage)] |= Mask(vpage);
  }

  void Clear(VPage vpage) {
    assert(InRange(vpage));
    bits_[Word(vpage)] &= ~Mask(vpage);
  }

  [[nodiscard]] bool Test(VPage vpage) const {
    assert(InRange(vpage));
    return (bits_[Word(vpage)] & Mask(vpage)) != 0;
  }

  void SetAll() {
    for (auto& w : bits_) {
      w = ~0ULL;
    }
  }

  void ClearRange(VPage first, VPage count) {
    for (VPage p = first; p < first + count; ++p) {
      Clear(p);
    }
  }

  [[nodiscard]] int64_t PopCount() const {
    int64_t n = 0;
    for (uint64_t w : bits_) {
      n += __builtin_popcountll(w);
    }
    return n;
  }

  // Header words of the shared page (Section 3.1.1). The OS writes them; the
  // run-time layer reads them. Values may be stale between memory activity.
  [[nodiscard]] int64_t current_usage() const { return current_usage_; }
  [[nodiscard]] int64_t upper_limit() const { return upper_limit_; }
  void SetHeader(int64_t current_usage, int64_t upper_limit) {
    current_usage_ = current_usage;
    upper_limit_ = upper_limit;
  }

 private:
  [[nodiscard]] bool InRange(VPage vpage) const { return vpage >= 0 && vpage < num_pages_; }
  static size_t Word(VPage vpage) { return static_cast<size_t>(vpage) / 64; }
  static uint64_t Mask(VPage vpage) { return 1ULL << (static_cast<uint64_t>(vpage) % 64); }

  std::vector<uint64_t> bits_;
  VPage num_pages_;
  int64_t current_usage_ = 0;
  int64_t upper_limit_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_RESIDENCY_BITMAP_H_
