// Shared identifier types for the virtual-memory substrate.

#ifndef TMH_SRC_VM_TYPES_H_
#define TMH_SRC_VM_TYPES_H_

#include <cstdint>

namespace tmh {

// Index of a physical page frame in the frame table.
using FrameId = int32_t;
inline constexpr FrameId kNoFrame = -1;

// Virtual page number within one address space.
using VPage = int64_t;
inline constexpr VPage kNoVPage = -1;

// Address-space identifier (one per simulated process).
using AsId = int32_t;
inline constexpr AsId kNoAs = -1;

}  // namespace tmh

#endif  // TMH_SRC_VM_TYPES_H_
