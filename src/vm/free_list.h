// Free list of physical frames with O(1) rescue.
//
// Allocation pops from the head. The paging daemon pushes stolen pages at the
// head; the releaser daemon pushes explicitly released pages at the *tail*,
// "giving pages that were released too early a chance to be rescued"
// (Section 3.1.2). Rescue removes a frame from the middle of the list, so the
// list is an intrusive doubly-linked list indexed by FrameId.

#ifndef TMH_SRC_VM_FREE_LIST_H_
#define TMH_SRC_VM_FREE_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

class FreeList {
 public:
  explicit FreeList(int64_t num_frames);

  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;

  // Pushes a frame at the head (next to be reallocated).
  void PushHead(FrameId id);

  // Pushes a frame at the tail (last to be reallocated; maximizes rescue odds).
  void PushTail(FrameId id);

  // Pops the frame at the head, or kNoFrame if empty.
  FrameId PopHead();

  // Removes `id` from anywhere in the list (rescue path). `id` must be linked.
  void Remove(FrameId id);

  // O(1): one load and compare against the unlinked sentinel. This is the
  // releaser/rescue fast path — the kernel probes it on every fault for a
  // page whose frame may still be on the free list (Section 3.1.2).
  [[nodiscard]] bool Contains(FrameId id) const {
    return id >= 0 && id < static_cast<FrameId>(prev_.size()) &&
           prev_[static_cast<size_t>(id)] != kUnlinked;
  }

  [[nodiscard]] int64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Snapshot of the list head-to-tail, for checkers and tests. Walks the
  // intrusive links, so it also validates their consistency against size().
  [[nodiscard]] std::vector<FrameId> ToVector() const;

  // Lifetime counters for Figure 9's freed-page outcome breakdown.
  [[nodiscard]] uint64_t total_head_pushes() const { return head_pushes_; }
  [[nodiscard]] uint64_t total_tail_pushes() const { return tail_pushes_; }
  [[nodiscard]] uint64_t total_rescues() const { return rescues_; }

 private:
  // Sentinel stored in prev_ for frames not on the list. Distinct from
  // kNoFrame, which marks the head's (valid) lack of a predecessor.
  static constexpr FrameId kUnlinked = -2;

  void Link(FrameId id, FrameId prev, FrameId next);
  void Unlink(FrameId id);

  // head_/tail_ plus per-frame prev/next; kNoFrame terminates. A frame not on
  // the list has prev_[id] == kUnlinked (no separate membership bitmap).
  FrameId head_ = kNoFrame;
  FrameId tail_ = kNoFrame;
  std::vector<FrameId> prev_;
  std::vector<FrameId> next_;
  int64_t size_ = 0;

  uint64_t head_pushes_ = 0;
  uint64_t tail_pushes_ = 0;
  uint64_t rescues_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_FREE_LIST_H_
