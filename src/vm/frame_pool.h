// Sharded (NUMA-style) pool of free physical frames.
//
// The physical frame range is partitioned contiguously into up to 64 nodes;
// each node owns an independent free list with the exact semantics of
// FreeList (head pops for allocation, head pushes for daemon steals, tail
// pushes for releases so too-early releases can be rescued, O(1) mid-list
// removal for rescue). All nodes share ONE pair of prev_/next_ link arrays —
// a frame is on at most one node's list, namely the node that owns its frame
// range — so the footprint is 2*sizeof(FrameId) bytes/frame regardless of
// node count, and membership (Contains) stays one load against the sentinel.
//
// Allocation prefers the caller's home node and falls back to the nearest
// (by index, wrapping) non-empty node. The fallback is O(1): a 64-bit
// occupancy mask rotated so the home node is bit 0, then countr_zero. This
// is why num_nodes is capped at 64.
//
// With num_nodes == 1 every operation degenerates to exactly the single
// FreeList behavior (one anchor, same link discipline), so golden outputs
// and fuzz digests of 1-node configurations are unchanged by construction.

#ifndef TMH_SRC_VM_FRAME_POOL_H_
#define TMH_SRC_VM_FRAME_POOL_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

class FramePool {
 public:
  static constexpr int kMaxNodes = 64;

  FramePool(int64_t num_frames, int num_nodes)
      : num_frames_(num_frames),
        num_nodes_(num_nodes < 1 ? 1 : (num_nodes > kMaxNodes ? kMaxNodes : num_nodes)),
        frames_per_node_((num_frames + num_nodes_ - 1) / num_nodes_),
        prev_(static_cast<size_t>(num_frames), kUnlinked),
        next_(static_cast<size_t>(num_frames), kUnlinked),
        head_(static_cast<size_t>(num_nodes_), kNoFrame),
        tail_(static_cast<size_t>(num_nodes_), kNoFrame),
        node_size_(static_cast<size_t>(num_nodes_), 0) {
    assert(num_frames_ > 0);
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int64_t frames_per_node() const { return frames_per_node_; }

  // The node owning frame `id`'s range. Contiguous partition: frames
  // [n*frames_per_node, (n+1)*frames_per_node) belong to node n.
  [[nodiscard]] int NodeOf(FrameId id) const {
    return static_cast<int>(id / frames_per_node_);
  }

  // First frame of `node`'s range (the daemon's per-node clock origin).
  [[nodiscard]] FrameId NodeBegin(int node) const {
    return static_cast<FrameId>(node * frames_per_node_);
  }
  // One past the last frame of `node`'s range (the range may be short on the
  // final node when num_frames doesn't divide evenly).
  [[nodiscard]] FrameId NodeEnd(int node) const {
    const int64_t end = (node + 1) * frames_per_node_;
    return static_cast<FrameId>(end < num_frames_ ? end : num_frames_);
  }

  // Pushes a frame at the head of its owning node's list.
  void PushHead(FrameId id) {
    const int node = NodeOf(id);
    Link(id, kNoFrame, head_[static_cast<size_t>(node)], node);
    ++head_pushes_;
  }

  // Pushes a frame at the tail of its owning node's list (maximizes rescue
  // odds, Section 3.1.2).
  void PushTail(FrameId id) {
    const int node = NodeOf(id);
    Link(id, tail_[static_cast<size_t>(node)], kNoFrame, node);
    ++tail_pushes_;
  }

  // Pops the head of `preferred_node`'s list; if that node is exhausted,
  // falls back to the nearest non-empty node by ascending index, wrapping
  // (home, home+1, ..., N-1, 0, ...). Returns kNoFrame only when every node
  // is empty. O(1): rotate the occupancy mask + countr_zero.
  FrameId PopHead(int preferred_node) {
    if (nonempty_mask_ == 0) return kNoFrame;
    const auto shift = static_cast<unsigned>(preferred_node);
    const uint64_t rotated = std::rotr(nonempty_mask_, static_cast<int>(shift));
    // Wrapped-around bits land at positions >= 64 - shift, above every
    // unwrapped candidate (< num_nodes - shift), so countr_zero picks the
    // nearest node in wrap order.
    const int node =
        (preferred_node + std::countr_zero(rotated)) & (kMaxNodes - 1);
    return PopHeadFromNode(node);
  }

  // Pops the head of exactly `node`'s list, or kNoFrame if it is empty.
  FrameId PopHeadFromNode(int node) {
    const FrameId id = head_[static_cast<size_t>(node)];
    if (id == kNoFrame) return kNoFrame;
    Unlink(id, node);
    return id;
  }

  // Removes `id` from anywhere in its node's list (rescue path). `id` must
  // be linked.
  void Remove(FrameId id) {
    Unlink(id, NodeOf(id));
    ++rescues_;
  }

  // O(1): one load and compare against the unlinked sentinel. This is the
  // releaser/rescue fast path — the kernel probes it on every fault for a
  // page whose frame may still be on the free list (Section 3.1.2).
  [[nodiscard]] bool Contains(FrameId id) const {
    return id >= 0 && id < num_frames_ &&
           prev_[static_cast<size_t>(id)] != kUnlinked;
  }

  [[nodiscard]] int64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] int64_t node_size(int node) const {
    return node_size_[static_cast<size_t>(node)];
  }

  // Snapshot of one node's list head-to-tail, for checkers and tests. Walks
  // the intrusive links, so it also validates their consistency.
  [[nodiscard]] std::vector<FrameId> NodeToVector(int node) const {
    std::vector<FrameId> out;
    out.reserve(static_cast<size_t>(node_size_[static_cast<size_t>(node)]));
    for (FrameId id = head_[static_cast<size_t>(node)]; id != kNoFrame;
         id = next_[static_cast<size_t>(id)]) {
      out.push_back(id);
    }
    return out;
  }

  // All nodes concatenated in node order (node 0 head..tail, node 1, ...).
  // With one node this is exactly FreeList::ToVector().
  [[nodiscard]] std::vector<FrameId> ToVector() const {
    std::vector<FrameId> out;
    out.reserve(static_cast<size_t>(size_));
    for (int node = 0; node < num_nodes_; ++node) {
      for (FrameId id = head_[static_cast<size_t>(node)]; id != kNoFrame;
           id = next_[static_cast<size_t>(id)]) {
        out.push_back(id);
      }
    }
    return out;
  }

  // Lifetime counters for Figure 9's freed-page outcome breakdown
  // (aggregated across nodes).
  [[nodiscard]] uint64_t total_head_pushes() const { return head_pushes_; }
  [[nodiscard]] uint64_t total_tail_pushes() const { return tail_pushes_; }
  [[nodiscard]] uint64_t total_rescues() const { return rescues_; }

  // Host memory consumed by the pool's per-frame structures. The scale tests
  // hold this to a documented bound (2*sizeof(FrameId)/frame + O(nodes)).
  [[nodiscard]] int64_t MemoryFootprintBytes() const {
    return static_cast<int64_t>(prev_.capacity() * sizeof(FrameId) +
                                next_.capacity() * sizeof(FrameId) +
                                head_.capacity() * sizeof(FrameId) +
                                tail_.capacity() * sizeof(FrameId) +
                                node_size_.capacity() * sizeof(int64_t));
  }

 private:
  // Sentinel stored in prev_ for frames not on any list. Distinct from
  // kNoFrame, which marks a head's (valid) lack of a predecessor.
  static constexpr FrameId kUnlinked = -2;

  void Link(FrameId id, FrameId prev, FrameId next, int node) {
    const auto n = static_cast<size_t>(node);
    prev_[static_cast<size_t>(id)] = prev;
    next_[static_cast<size_t>(id)] = next;
    if (prev == kNoFrame) {
      head_[n] = id;
    } else {
      next_[static_cast<size_t>(prev)] = id;
    }
    if (next == kNoFrame) {
      tail_[n] = id;
    } else {
      prev_[static_cast<size_t>(next)] = id;
    }
    ++size_;
    if (++node_size_[n] == 1) nonempty_mask_ |= uint64_t{1} << n;
  }

  void Unlink(FrameId id, int node) {
    const auto n = static_cast<size_t>(node);
    const FrameId prev = prev_[static_cast<size_t>(id)];
    const FrameId next = next_[static_cast<size_t>(id)];
    if (prev == kNoFrame) {
      head_[n] = next;
    } else {
      next_[static_cast<size_t>(prev)] = next;
    }
    if (next == kNoFrame) {
      tail_[n] = prev;
    } else {
      prev_[static_cast<size_t>(next)] = prev;
    }
    prev_[static_cast<size_t>(id)] = kUnlinked;
    next_[static_cast<size_t>(id)] = kUnlinked;
    --size_;
    if (--node_size_[n] == 0) nonempty_mask_ &= ~(uint64_t{1} << n);
  }

  int64_t num_frames_;
  int num_nodes_;
  int64_t frames_per_node_;
  std::vector<FrameId> prev_;
  std::vector<FrameId> next_;
  std::vector<FrameId> head_;
  std::vector<FrameId> tail_;
  std::vector<int64_t> node_size_;
  uint64_t nonempty_mask_ = 0;
  int64_t size_ = 0;

  uint64_t head_pushes_ = 0;
  uint64_t tail_pushes_ = 0;
  uint64_t rescues_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_FRAME_POOL_H_
