// Per-address-space page table.
//
// The MIPS TLB has no hardware reference bits, so IRIX approximates reference
// information by periodically *invalidating* mappings: the next touch of an
// invalidated page takes a soft fault whose handler re-validates the mapping
// and thereby proves the page is live (Section 4.3). The PTE therefore keeps
// `resident` (a frame holds the data) separate from `valid` (a touch proceeds
// without faulting). Prefetched pages arrive resident-but-not-valid because
// prefetch completion deliberately skips TLB/PTE validation (Section 3.1.2).

#ifndef TMH_SRC_VM_PAGE_TABLE_H_
#define TMH_SRC_VM_PAGE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

// Why a resident page is currently invalid — determines the fault flavor
// charged when it is next touched.
enum class InvalidReason : uint8_t {
  kNone = 0,          // page is valid
  kFreshPrefetch,     // never validated since prefetch completion (cheap refill)
  kDaemonInvalidated, // paging daemon cleared it to sample the reference bit
  kReleasePending,    // a release request cleared it; re-touch cancels the release
  kMonitorSampled,    // access monitor cleared it to sample for an access
};

struct Pte {
  FrameId frame = kNoFrame;
  bool resident = false;
  bool valid = false;
  InvalidReason invalid_reason = InvalidReason::kNone;
  // True once the page has been written at least once; a never-written page is
  // zero-filled on first touch instead of paged in from swap.
  bool ever_materialized = false;
};

class PageTable {
 public:
  explicit PageTable(VPage num_pages) : ptes_(static_cast<size_t>(num_pages)) {}

  [[nodiscard]] VPage size() const { return static_cast<VPage>(ptes_.size()); }

  [[nodiscard]] Pte& at(VPage vpage) {
    assert(vpage >= 0 && vpage < size());
    return ptes_[static_cast<size_t>(vpage)];
  }
  [[nodiscard]] const Pte& at(VPage vpage) const {
    assert(vpage >= 0 && vpage < size());
    return ptes_[static_cast<size_t>(vpage)];
  }

  // Number of resident pages (the process's RSS in pages). Maintained by the
  // kernel on map/unmap, kept here for cheap Eq. 1 evaluation.
  [[nodiscard]] int64_t resident_count() const { return resident_count_; }
  void IncrementResident() { ++resident_count_; }
  void DecrementResident() {
    assert(resident_count_ > 0);
    --resident_count_;
  }

 private:
  std::vector<Pte> ptes_;
  int64_t resident_count_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_PAGE_TABLE_H_
