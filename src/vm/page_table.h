// Per-address-space page table.
//
// The MIPS TLB has no hardware reference bits, so IRIX approximates reference
// information by periodically *invalidating* mappings: the next touch of an
// invalidated page takes a soft fault whose handler re-validates the mapping
// and thereby proves the page is live (Section 4.3). The PTE therefore keeps
// `resident` (a frame holds the data) separate from `valid` (a touch proceeds
// without faulting). Prefetched pages arrive resident-but-not-valid because
// prefetch completion deliberately skips TLB/PTE validation (Section 3.1.2).

#ifndef TMH_SRC_VM_PAGE_TABLE_H_
#define TMH_SRC_VM_PAGE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

// Why a resident page is currently invalid — determines the fault flavor
// charged when it is next touched.
enum class InvalidReason : uint8_t {
  kNone = 0,          // page is valid
  kFreshPrefetch,     // never validated since prefetch completion (cheap refill)
  kDaemonInvalidated, // paging daemon cleared it to sample the reference bit
  kReleasePending,    // a release request cleared it; re-touch cancels the release
  kMonitorSampled,    // access monitor cleared it to sample for an access
};

struct Pte {
  FrameId frame = kNoFrame;
  bool resident = false;
  bool valid = false;
  InvalidReason invalid_reason = InvalidReason::kNone;
  // True once the page has been written at least once; a never-written page is
  // zero-filled on first touch instead of paged in from swap.
  bool ever_materialized = false;
  // Slow-tier residency (memory-tiering extension). 0 = not held in a slow
  // tier; k > 0 = the page's contents live in slow tier k (1-based), in that
  // tier's frame `tier_frame`. A tiered page is never `resident`: promotion
  // back to DRAM goes through the normal fault path.
  uint8_t tier = 0;
  FrameId tier_frame = kNoFrame;
};

class PageTable {
 public:
  explicit PageTable(VPage num_pages)
      : ptes_(static_cast<size_t>(num_pages)),
        valid_words_((static_cast<size_t>(num_pages) + 63) / 64, 0) {}

  [[nodiscard]] VPage size() const { return static_cast<VPage>(ptes_.size()); }

  [[nodiscard]] Pte& at(VPage vpage) {
    assert(vpage >= 0 && vpage < size());
    return ptes_[static_cast<size_t>(vpage)];
  }
  [[nodiscard]] const Pte& at(VPage vpage) const {
    assert(vpage >= 0 && vpage < size());
    return ptes_[static_cast<size_t>(vpage)];
  }

  // Number of resident pages (the process's RSS in pages). Maintained by the
  // kernel on map/unmap, kept here for cheap Eq. 1 evaluation.
  [[nodiscard]] int64_t resident_count() const { return resident_count_; }
  void IncrementResident() { ++resident_count_; }
  void DecrementResident() {
    assert(resident_count_ > 0);
    --resident_count_;
  }

  // --- word-parallel touchable plane -----------------------------------------
  // Bit v mirrors `at(v).resident && at(v).valid` — the exact predicate of
  // DoTouch's no-fault fast path. The kernel re-syncs a page's bit after every
  // mutation of the PTE's resident/valid fields; the invariant checker
  // cross-checks the plane bit-for-bit against the PTE array. DoTouchRun's
  // bulk path proves a whole run touchable in a few word scans of this plane
  // instead of one PTE load per page.

  void SyncValid(VPage vpage) {
    assert(vpage >= 0 && vpage < size());
    const Pte& pte = ptes_[static_cast<size_t>(vpage)];
    if (pte.resident && pte.valid) {
      valid_words_[Word(vpage)] |= Mask(vpage);
    } else {
      valid_words_[Word(vpage)] &= ~Mask(vpage);
    }
  }

  // True iff every page in [first, first + count) is resident-and-valid.
  [[nodiscard]] bool AllValid(VPage first, VPage count) const {
    if (count <= 0) {
      return true;
    }
    assert(first >= 0 && first + count <= size());
    const size_t w0 = Word(first);
    const size_t w1 = Word(first + count - 1);
    uint64_t need = ~0ULL << (static_cast<uint64_t>(first) % 64);
    const uint64_t tail = LowMask(static_cast<uint64_t>(first + count) - w1 * 64);
    if (w0 == w1) {
      need &= tail;
      return (valid_words_[w0] & need) == need;
    }
    if ((valid_words_[w0] & need) != need) {
      return false;
    }
    for (size_t i = w0 + 1; i < w1; ++i) {
      if (valid_words_[i] != ~0ULL) {
        return false;
      }
    }
    return (valid_words_[w1] & tail) == tail;
  }

  [[nodiscard]] const uint64_t* valid_words() const { return valid_words_.data(); }
  [[nodiscard]] size_t num_valid_words() const { return valid_words_.size(); }

 private:
  static size_t Word(VPage vpage) { return static_cast<size_t>(vpage) / 64; }
  static uint64_t Mask(VPage vpage) { return 1ULL << (static_cast<uint64_t>(vpage) % 64); }
  static uint64_t LowMask(uint64_t n) { return (n >= 64) ? ~0ULL : (1ULL << n) - 1; }

  std::vector<Pte> ptes_;
  std::vector<uint64_t> valid_words_;
  int64_t resident_count_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_PAGE_TABLE_H_
