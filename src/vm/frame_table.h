// Physical frame table, stored structure-of-arrays.
//
// Each frame records which (address space, virtual page) it currently backs,
// whether its contents are dirty, and the software-simulated reference
// information that IRIX's paging daemon maintains in lieu of hardware
// reference bits (Section 4.3 of the paper). A freed frame keeps its identity
// until it is reallocated so that a process faulting on a too-early-freed page
// can *rescue* it from the free list without disk I/O.
//
// Layout: the boolean fields live in per-field bit planes (one uint64_t word
// per 64 frames) and the identity fields in dense parallel arrays. The paging
// daemon's clock hand and the releaser's batch re-checks are the simulator's
// hottest scans, and against the planes they run word-parallel: a single
// `mapped & ~io_busy` word classifies 64 frames, and ctz jumps straight to
// the next candidate. At the simulated machine sizes (hundreds to a few
// thousand frames) every plane fits in one or two L1 lines. Individual-field
// reads and writes stay O(1) single-bit operations, so the fault paths pay
// nothing for the scan-friendly layout.

#ifndef TMH_SRC_VM_FRAME_TABLE_H_
#define TMH_SRC_VM_FRAME_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

// Which reclaim path put a frame on the free list — distinguishes Figure 9's
// rescue categories.
enum class FreedBy : uint8_t { kNone = 0, kDaemon, kReleaser };

// Point-in-time snapshot of one frame's metadata, assembled from the planes.
// Checkers and tests consume these; the kernel's hot paths use the per-field
// accessors below and never materialize a snapshot.
struct Frame {
  AsId owner = kNoAs;    // address space whose data the frame holds (or last held)
  VPage vpage = kNoVPage;
  bool mapped = false;         // currently installed in the owner's page table
  bool dirty = false;          // contents differ from the swap copy
  bool referenced = false;     // software reference bit (set on touch/validate)
  bool contents_valid = false; // frame still holds (owner, vpage)'s data (rescue possible)
  bool io_busy = false;        // page-in or page-out in flight
  FreedBy freed_by = FreedBy::kNone;
};

class FrameTable {
 public:
  explicit FrameTable(int64_t num_frames)
      : size_(num_frames),
        owner_(static_cast<size_t>(num_frames), kNoAs),
        vpage_(static_cast<size_t>(num_frames), kNoVPage),
        freed_by_(static_cast<size_t>(num_frames), FreedBy::kNone),
        mapped_(NumWords(num_frames), 0),
        dirty_(NumWords(num_frames), 0),
        referenced_(NumWords(num_frames), 0),
        contents_valid_(NumWords(num_frames), 0),
        io_busy_(NumWords(num_frames), 0) {}

  [[nodiscard]] int64_t size() const { return size_; }

  // --- per-field accessors (hot paths) ---------------------------------------

  [[nodiscard]] AsId owner(FrameId id) const { return owner_[Index(id)]; }
  [[nodiscard]] VPage vpage(FrameId id) const { return vpage_[Index(id)]; }
  [[nodiscard]] bool mapped(FrameId id) const { return Test(mapped_, id); }
  [[nodiscard]] bool dirty(FrameId id) const { return Test(dirty_, id); }
  [[nodiscard]] bool referenced(FrameId id) const { return Test(referenced_, id); }
  [[nodiscard]] bool contents_valid(FrameId id) const { return Test(contents_valid_, id); }
  [[nodiscard]] bool io_busy(FrameId id) const { return Test(io_busy_, id); }
  [[nodiscard]] FreedBy freed_by(FrameId id) const { return freed_by_[Index(id)]; }

  void set_owner(FrameId id, AsId owner) { owner_[Index(id)] = owner; }
  void set_vpage(FrameId id, VPage vpage) { vpage_[Index(id)] = vpage; }
  void set_mapped(FrameId id, bool v) { Write(mapped_, id, v); }
  void set_dirty(FrameId id, bool v) { Write(dirty_, id, v); }
  void set_referenced(FrameId id, bool v) { Write(referenced_, id, v); }
  void set_contents_valid(FrameId id, bool v) { Write(contents_valid_, id, v); }
  void set_io_busy(FrameId id, bool v) { Write(io_busy_, id, v); }
  void set_freed_by(FrameId id, FreedBy v) { freed_by_[Index(id)] = v; }

  // True when the frame still carries (as, vpage)'s identity — the common
  // predicate of the collapse/rescue paths.
  [[nodiscard]] bool IsPage(FrameId id, AsId as, VPage vpage) const {
    return owner_[Index(id)] == as && vpage_[Index(id)] == vpage;
  }

  // --- snapshot accessor (checkers, tests, reports) --------------------------

  [[nodiscard]] Frame at(FrameId id) const {
    Frame f;
    f.owner = owner(id);
    f.vpage = vpage(id);
    f.mapped = mapped(id);
    f.dirty = dirty(id);
    f.referenced = referenced(id);
    f.contents_valid = contents_valid(id);
    f.io_busy = io_busy(id);
    f.freed_by = freed_by(id);
    return f;
  }

  // Resets a frame to the unowned state (on reallocation to a new page).
  void ResetIdentity(FrameId id) {
    const size_t i = Index(id);
    owner_[i] = kNoAs;
    vpage_[i] = kNoVPage;
    freed_by_[i] = FreedBy::kNone;
    const uint64_t clear = ~Mask(id);
    mapped_[Word(id)] &= clear;
    dirty_[Word(id)] &= clear;
    referenced_[Word(id)] &= clear;
    contents_valid_[Word(id)] &= clear;
    io_busy_[Word(id)] &= clear;
  }

  // --- word views (64 frames per word) for word-parallel scans ---------------
  // Bits at positions >= size() in the last word are always zero.

  [[nodiscard]] size_t num_words() const { return mapped_.size(); }
  [[nodiscard]] const uint64_t* mapped_words() const { return mapped_.data(); }
  [[nodiscard]] const uint64_t* dirty_words() const { return dirty_.data(); }
  [[nodiscard]] const uint64_t* referenced_words() const { return referenced_.data(); }
  [[nodiscard]] const uint64_t* io_busy_words() const { return io_busy_.data(); }

  // Host memory consumed by the table's per-frame structures. The scale tests
  // hold this to a documented bound: sizeof(AsId)+sizeof(VPage)+1 dense bytes
  // plus 5 plane bits per frame (~13.6 B/frame at the default type widths).
  [[nodiscard]] int64_t MemoryFootprintBytes() const {
    return static_cast<int64_t>(owner_.capacity() * sizeof(AsId) +
                                vpage_.capacity() * sizeof(VPage) +
                                freed_by_.capacity() * sizeof(FreedBy) +
                                (mapped_.capacity() + dirty_.capacity() +
                                 referenced_.capacity() + contents_valid_.capacity() +
                                 io_busy_.capacity()) *
                                    sizeof(uint64_t));
  }

 private:
  [[nodiscard]] size_t Index(FrameId id) const {
    assert(id >= 0 && id < size_);
    return static_cast<size_t>(id);
  }
  static size_t NumWords(int64_t frames) {
    return (static_cast<size_t>(frames) + 63) / 64;
  }
  static size_t Word(FrameId id) { return static_cast<size_t>(id) >> 6; }
  static uint64_t Mask(FrameId id) { return 1ULL << (static_cast<uint64_t>(id) & 63); }

  [[nodiscard]] bool Test(const std::vector<uint64_t>& plane, FrameId id) const {
    assert(id >= 0 && id < size_);
    return (plane[Word(id)] & Mask(id)) != 0;
  }
  void Write(std::vector<uint64_t>& plane, FrameId id, bool v) {
    assert(id >= 0 && id < size_);
    if (v) {
      plane[Word(id)] |= Mask(id);
    } else {
      plane[Word(id)] &= ~Mask(id);
    }
  }

  int64_t size_;
  std::vector<AsId> owner_;
  std::vector<VPage> vpage_;
  std::vector<FreedBy> freed_by_;
  // Bit planes, one bit per frame.
  std::vector<uint64_t> mapped_;
  std::vector<uint64_t> dirty_;
  std::vector<uint64_t> referenced_;
  std::vector<uint64_t> contents_valid_;
  std::vector<uint64_t> io_busy_;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_FRAME_TABLE_H_
