// Physical frame table.
//
// Each frame records which (address space, virtual page) it currently backs,
// whether its contents are dirty, and the software-simulated reference
// information that IRIX's paging daemon maintains in lieu of hardware
// reference bits (Section 4.3 of the paper). A freed frame keeps its identity
// until it is reallocated so that a process faulting on a too-early-freed page
// can *rescue* it from the free list without disk I/O.

#ifndef TMH_SRC_VM_FRAME_TABLE_H_
#define TMH_SRC_VM_FRAME_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace tmh {

// Which reclaim path put a frame on the free list — distinguishes Figure 9's
// rescue categories.
enum class FreedBy : uint8_t { kNone = 0, kDaemon, kReleaser };

struct Frame {
  AsId owner = kNoAs;    // address space whose data the frame holds (or last held)
  VPage vpage = kNoVPage;
  bool mapped = false;         // currently installed in the owner's page table
  bool dirty = false;          // contents differ from the swap copy
  bool referenced = false;     // software reference bit (set on touch/validate)
  bool contents_valid = false; // frame still holds (owner, vpage)'s data (rescue possible)
  bool io_busy = false;        // page-in or page-out in flight
  FreedBy freed_by = FreedBy::kNone;
};

class FrameTable {
 public:
  explicit FrameTable(int64_t num_frames) : frames_(static_cast<size_t>(num_frames)) {}

  [[nodiscard]] int64_t size() const { return static_cast<int64_t>(frames_.size()); }

  [[nodiscard]] Frame& at(FrameId id) {
    assert(id >= 0 && id < size());
    return frames_[static_cast<size_t>(id)];
  }
  [[nodiscard]] const Frame& at(FrameId id) const {
    assert(id >= 0 && id < size());
    return frames_[static_cast<size_t>(id)];
  }

  // Resets a frame to the unowned state (on reallocation to a new page).
  void ResetIdentity(FrameId id) {
    Frame& f = at(id);
    f.owner = kNoAs;
    f.vpage = kNoVPage;
    f.mapped = false;
    f.dirty = false;
    f.referenced = false;
    f.contents_valid = false;
    f.io_busy = false;
    f.freed_by = FreedBy::kNone;
  }

 private:
  std::vector<Frame> frames_;
};

}  // namespace tmh

#endif  // TMH_SRC_VM_FRAME_TABLE_H_
