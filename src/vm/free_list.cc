#include "src/vm/free_list.h"

#include <cassert>

namespace tmh {

FreeList::FreeList(int64_t num_frames)
    : prev_(static_cast<size_t>(num_frames), kNoFrame),
      next_(static_cast<size_t>(num_frames), kNoFrame),
      linked_(static_cast<size_t>(num_frames), false) {}

void FreeList::PushHead(FrameId id) {
  assert(!linked_[static_cast<size_t>(id)] && "frame already on free list");
  Link(id, kNoFrame, head_);
  ++head_pushes_;
}

void FreeList::PushTail(FrameId id) {
  assert(!linked_[static_cast<size_t>(id)] && "frame already on free list");
  Link(id, tail_, kNoFrame);
  ++tail_pushes_;
}

FrameId FreeList::PopHead() {
  if (head_ == kNoFrame) {
    return kNoFrame;
  }
  const FrameId id = head_;
  Unlink(id);
  return id;
}

void FreeList::Remove(FrameId id) {
  assert(linked_[static_cast<size_t>(id)] && "rescue of a frame not on the free list");
  Unlink(id);
  ++rescues_;
}

bool FreeList::Contains(FrameId id) const {
  return id >= 0 && id < static_cast<FrameId>(linked_.size()) &&
         linked_[static_cast<size_t>(id)];
}

void FreeList::Link(FrameId id, FrameId prev, FrameId next) {
  prev_[static_cast<size_t>(id)] = prev;
  next_[static_cast<size_t>(id)] = next;
  if (prev != kNoFrame) {
    next_[static_cast<size_t>(prev)] = id;
  } else {
    head_ = id;
  }
  if (next != kNoFrame) {
    prev_[static_cast<size_t>(next)] = id;
  } else {
    tail_ = id;
  }
  linked_[static_cast<size_t>(id)] = true;
  ++size_;
}

void FreeList::Unlink(FrameId id) {
  const FrameId prev = prev_[static_cast<size_t>(id)];
  const FrameId next = next_[static_cast<size_t>(id)];
  if (prev != kNoFrame) {
    next_[static_cast<size_t>(prev)] = next;
  } else {
    head_ = next;
  }
  if (next != kNoFrame) {
    prev_[static_cast<size_t>(next)] = prev;
  } else {
    tail_ = prev;
  }
  prev_[static_cast<size_t>(id)] = kNoFrame;
  next_[static_cast<size_t>(id)] = kNoFrame;
  linked_[static_cast<size_t>(id)] = false;
  --size_;
}

}  // namespace tmh
