#include "src/vm/free_list.h"

#include <cassert>

namespace tmh {

FreeList::FreeList(int64_t num_frames)
    : prev_(static_cast<size_t>(num_frames), kUnlinked),
      next_(static_cast<size_t>(num_frames), kNoFrame) {}

void FreeList::PushHead(FrameId id) {
  assert(!Contains(id) && "frame already on free list");
  Link(id, kNoFrame, head_);
  ++head_pushes_;
}

void FreeList::PushTail(FrameId id) {
  assert(!Contains(id) && "frame already on free list");
  Link(id, tail_, kNoFrame);
  ++tail_pushes_;
}

FrameId FreeList::PopHead() {
  if (head_ == kNoFrame) {
    return kNoFrame;
  }
  const FrameId id = head_;
  Unlink(id);
  return id;
}

void FreeList::Remove(FrameId id) {
  assert(Contains(id) && "rescue of a frame not on the free list");
  Unlink(id);
  ++rescues_;
}

std::vector<FrameId> FreeList::ToVector() const {
  std::vector<FrameId> out;
  out.reserve(static_cast<size_t>(size_));
  for (FrameId f = head_; f != kNoFrame; f = next_[static_cast<size_t>(f)]) {
    out.push_back(f);
    if (out.size() > prev_.size()) {
      break;  // corrupted links: bail instead of looping forever
    }
  }
  return out;
}

void FreeList::Link(FrameId id, FrameId prev, FrameId next) {
  prev_[static_cast<size_t>(id)] = prev;
  next_[static_cast<size_t>(id)] = next;
  if (prev != kNoFrame) {
    next_[static_cast<size_t>(prev)] = id;
  } else {
    head_ = id;
  }
  if (next != kNoFrame) {
    prev_[static_cast<size_t>(next)] = id;
  } else {
    tail_ = id;
  }
  ++size_;
}

void FreeList::Unlink(FrameId id) {
  const FrameId prev = prev_[static_cast<size_t>(id)];
  const FrameId next = next_[static_cast<size_t>(id)];
  if (prev != kNoFrame) {
    next_[static_cast<size_t>(prev)] = next;
  } else {
    head_ = next;
  }
  if (next != kNoFrame) {
    prev_[static_cast<size_t>(next)] = prev;
  } else {
    tail_ = prev;
  }
  prev_[static_cast<size_t>(id)] = kUnlinked;
  next_[static_cast<size_t>(id)] = kNoFrame;
  --size_;
}

}  // namespace tmh
