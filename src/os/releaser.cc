#include "src/os/releaser.h"

#include <algorithm>

#include "src/os/kernel.h"

namespace tmh {

Op Releaser::Next(Kernel& kernel) {
  (void)kernel;
  switch (phase_) {
    case Phase::kIdle: {
      AddressSpace* as = GatherBatch();
      if (as == nullptr) {
        return Op::Wait(&wq_);
      }
      batch_as_ = as;
      phase_ = Phase::kLocked;
      return Op::Acquire(&as->memory_lock());
    }
    case Phase::kLocked: {
      const SimDuration cost = ProcessBatch();
      phase_ = Phase::kUnlock;
      return Op::Compute(cost);
    }
    case Phase::kUnlock:
      phase_ = Phase::kIdle;
      return Op::ReleaseL(&batch_as_->memory_lock());
  }
  return Op::Exit();
}

AddressSpace* Releaser::GatherBatch() {
  Kernel& k = *kernel_;
  batch_.clear();
  if (k.release_work_.empty()) {
    return nullptr;
  }
  AddressSpace* as = k.release_work_.front().as;
  const int batch_limit = k.config_.tunables.releaser_batch;
  while (!k.release_work_.empty() && static_cast<int>(batch_.size()) < batch_limit &&
         k.release_work_.front().as == as) {
    batch_.push_back(BatchEntry{k.release_work_.front().vpage,
                                k.release_work_.front().depth});
    k.release_work_.pop_front();
  }
  batch_resolved_ = false;
  return as;
}

SimDuration Releaser::ProcessBatch() {
  Kernel& k = *kernel_;
  const CostModel& costs = k.config_.costs;
  // One batch touches one address space (GatherBatch stops at a boundary), so
  // resolve its tables and counters once for the whole ~batch_limit pass.
  PageTable& page_table = batch_as_->page_table();
  AsStats& as_stats = batch_as_->stats();
  FrameTable& frames = k.frames_;
  const bool release_to_tail = k.config_.tunables.release_to_tail;
  SimDuration cost = 0;
  int64_t freed = 0;
  ++k.stats_.releaser_batches;
  for (const BatchEntry& entry : batch_) {
    const VPage p = entry.vpage;
    cost += costs.releaser_per_page;
    Pte& pte = page_table.at(p);
    // Re-check that the page has not been referenced again (a re-touch
    // revalidated the mapping and re-set the bitmap bit) and is still ours.
    if (!pte.resident || pte.valid ||
        pte.invalid_reason != InvalidReason::kReleasePending) {
      ++k.stats_.releaser_skipped;
      ++as_stats.releases_skipped;
      k.Hook(VmHookOp::kReleaseSkip, batch_as_->id(), p, pte.frame);
      continue;
    }
    if (!frames.mapped(pte.frame) || frames.io_busy(pte.frame)) {
      ++k.stats_.releaser_skipped;
      ++as_stats.releases_skipped;
      k.Hook(VmHookOp::kReleaseSkip, batch_as_->id(), p, pte.frame);
      continue;
    }
    const FrameId f = pte.frame;
    if (TMH_UNLIKELY(entry.depth > 0)) {
      // Tiered machine: the release is a demotion hint — migrate the page
      // into its Eq. 2-chosen tier instead of dropping it to the free list.
      cost += k.DemotePage(batch_as_, p, entry.depth);
    } else {
      k.UnmapFrame(batch_as_, p, FreedBy::kReleaser);
      k.FreeFrame(f, /*at_tail=*/release_to_tail);
    }
    ++k.stats_.releaser_pages_freed;
    ++as_stats.pages_released;
    ++freed;
    if (TMH_UNLIKELY(k.observing_)) {
      k.event_log_.Record(k.Now(), KernelEventType::kReleaseFree,
                          k.releaser_thread_->id(), batch_as_->id(), p);
    }
  }
  k.UpdateSharedHeader(batch_as_);
  batch_resolved_ = true;
  k.Hook(VmHookOp::kReleaserBatch, batch_as_->id(), kNoVPage, kNoFrame, freed);
  const SimDuration total = std::max<SimDuration>(cost, 1);
  if (TMH_UNLIKELY(k.observing_)) {
    k.event_log_.Record(k.Now(), KernelEventType::kReleaserBatch,
                        k.releaser_thread_->id(), batch_as_->id(),
                        static_cast<VPage>(freed), total);
  }
  return total;
}

}  // namespace tmh
