#include "src/os/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/os/paging_daemon.h"
#include "src/os/releaser.h"

namespace tmh {
namespace {

// Shortest CPU slice we simulate; bounds the skew introduced by executing a
// slice's operations at its start time.
constexpr SimDuration kMinSlice = 100 * kUsec;

// Safety cap on operations per slice (guards against zero-cost op loops).
constexpr int kMaxOpsPerSlice = 1 << 20;

}  // namespace

Kernel::Kernel(const MachineConfig& config)
    : config_(config),
      frames_(config.num_frames()),
      free_list_(config.num_frames(), config.num_nodes) {
  swap_ = std::make_unique<SwapSpace>(&queue_, config.swap, config.page_size_bytes);
  // All frames start free; freshly booted machine. Tail pushes in ascending
  // frame order so each node's list starts as its own frame range in order
  // (and the 1-node list is exactly the historical 0..n-1 sequence).
  for (FrameId f = 0; f < config.num_frames(); ++f) {
    free_list_.PushTail(f);
  }
  node_allocations_.assign(static_cast<size_t>(free_list_.num_nodes()), 0);
  // Slow-tier planes (memory-tiering extension). tiers[0] is DRAM (capacity
  // comes from user_memory_bytes, handled above); each further entry gets its
  // own frame pool, identity arrays, and clock hand. With no slow tiers this
  // loop builds nothing and no tier code runs anywhere.
  if (TMH_UNLIKELY(config.has_slow_tiers())) {
    tier_planes_.reserve(config.tiers.size() - 1);
    for (size_t t = 1; t < config.tiers.size(); ++t) {
      const TierSpec& spec = config.tiers[t];
      TierPlane plane;
      plane.frames = spec.frames > 0 ? spec.frames : 1;
      plane.pool = std::make_unique<FramePool>(plane.frames, /*num_nodes=*/1);
      for (FrameId tf = 0; tf < plane.frames; ++tf) {
        plane.pool->PushTail(tf);
      }
      plane.owner.assign(static_cast<size_t>(plane.frames), kNoAs);
      plane.vpage.assign(static_cast<size_t>(plane.frames), kNoVPage);
      plane.dirty.assign(static_cast<size_t>(plane.frames), 0);
      plane.promote_cost = spec.promote_cost;
      plane.demote_cost = spec.demote_cost;
      tier_planes_.push_back(std::move(plane));
    }
  }
}

Kernel::~Kernel() = default;

AddressSpace* Kernel::CreateAddressSpace(const std::string& name, int64_t bytes) {
  const VPage pages = config_.BytesToPages(bytes);
  auto as = std::make_unique<AddressSpace>(static_cast<AsId>(address_spaces_.size()), name,
                                           pages, next_swap_slot_);
  // Fixed deterministic placement (id % nodes) so the differential oracle can
  // replicate the home-node choice without being told.
  as->set_home_node(static_cast<int>(as->id() % free_list_.num_nodes()));
  next_swap_slot_ += pages;
  address_spaces_.push_back(std::move(as));
  if (TMH_UNLIKELY(observing_)) {
    event_log_.SetAddressSpaceName(address_spaces_.back()->id(), name);
  }
  return address_spaces_.back().get();
}

Thread* Kernel::Spawn(const std::string& name, AddressSpace* as, Program* program,
                      bool is_daemon) {
  auto thread = std::make_unique<Thread>(next_thread_id_++, name, as, program, is_daemon);
  Thread* t = thread.get();
  threads_.push_back(std::move(thread));
  if (TMH_UNLIKELY(observing_)) {
    event_log_.SetThreadName(t->id(), name);
  }
  t->started_at_ = Now();
  t->block_start = Now();  // measures initial CPU-queue wait
  run_queue_.push_back(t);
  // Defer dispatch to an event so Spawn can be called from outside the run loop.
  queue_.ScheduleAfter(0, [this]() { TryDispatch(); });
  return t;
}

void Kernel::StartDaemons() {
  assert(paging_daemon_ == nullptr && "daemons already started");
  paging_daemon_ = std::make_unique<PagingDaemon>(this);
  releaser_ = std::make_unique<Releaser>(this);
  daemon_thread_ = Spawn("vhand", nullptr, paging_daemon_.get(), /*is_daemon=*/true);
  releaser_thread_ = Spawn("releaser", nullptr, releaser_.get(), /*is_daemon=*/true);
  DaemonTickChain(config_.tunables.daemon_period);
}

void Kernel::DaemonTickChain(SimDuration period) {
  queue_.ScheduleAfter(period, [this, period]() {
    if (TMH_UNLIKELY(observing_)) {
      // Free-memory counter track for the Chrome trace, on the daemon beat.
      event_log_.Record(Now(), KernelEventType::kFreePagesSample, 0, kNoAs, kNoVPage,
                        free_list_.size());
      gauge_free_pages_->Set(static_cast<double>(free_list_.size()));
    }
    Signal(&paging_daemon_->wait_queue());
    DaemonTickChain(period);
  });
}

void Kernel::EnableObservability(size_t max_events) {
  assert(threads_.empty() && address_spaces_.empty() &&
         "enable observability before creating address spaces or threads");
  observing_ = true;
  event_log_.Enable(max_events);
  event_log_.SetThreadName(0, "kernel");
  // 1 us .. ~34 s exponential bounds cover every latency this machine produces.
  const std::vector<double> bounds = ExponentialBounds(1000.0, 2.0, 26);
  hist_fault_service_ = metrics_.GetHistogram("kernel.fault_service_ns", bounds);
  hist_rescue_release_ =
      metrics_.GetHistogram("kernel.rescue_distance_ns", bounds, {{"freed_by", "releaser"}});
  hist_rescue_daemon_ =
      metrics_.GetHistogram("kernel.rescue_distance_ns", bounds, {{"freed_by", "daemon"}});
  gauge_free_pages_ = metrics_.GetGauge("kernel.free_pages");
}

void Kernel::PublishMetrics() {
  if (!observing_) {
    return;
  }
  const auto pub = [this](const char* name, uint64_t v) {
    metrics_.GetCounter(name)->Set(v);
  };
  pub("kernel.daemon_activations", stats_.daemon_activations);
  pub("kernel.daemon_pages_stolen", stats_.daemon_pages_stolen);
  pub("kernel.daemon_invalidations", stats_.daemon_invalidations);
  pub("kernel.releaser_batches", stats_.releaser_batches);
  pub("kernel.releaser_pages_freed", stats_.releaser_pages_freed);
  pub("kernel.releaser_skipped", stats_.releaser_skipped);
  pub("kernel.rescued_daemon_freed", stats_.rescued_daemon_freed);
  pub("kernel.rescued_release_freed", stats_.rescued_release_freed);
  pub("kernel.allocations", stats_.allocations);
  pub("kernel.zero_fills", stats_.zero_fills);
  pub("kernel.writebacks", stats_.writebacks);
  pub("kernel.hard_faults", stats_.hard_faults);
  pub("kernel.soft_faults", stats_.soft_faults);
  pub("kernel.prefetch_requests", stats_.prefetch_requests);
  pub("kernel.prefetch_dropped", stats_.prefetch_dropped);
  pub("kernel.prefetch_noop", stats_.prefetch_noop);
  pub("kernel.prefetch_io", stats_.prefetch_io);
  pub("kernel.release_requests", stats_.release_requests);
  pub("kernel.release_pages_enqueued", stats_.release_pages_enqueued);
  pub("kernel.memory_waits", stats_.memory_waits);
  pub("kernel.reactive_evictions", stats_.reactive_evictions);
  pub("kernel.local_evictions", stats_.local_evictions);
  pub("kernel.readahead_reads", stats_.readahead_reads);
  pub("kernel.monitor_invalidations", stats_.monitor_invalidations);
  pub("kernel.monitor_soft_faults", stats_.monitor_soft_faults);
  pub("kernel.monitor_releases_enqueued", stats_.monitor_releases_enqueued);
  pub("kernel.monitor_pages_protected", stats_.monitor_pages_protected);
  pub("kernel.tier_demotions", stats_.tier_demotions);
  pub("kernel.tier_promotions", stats_.tier_promotions);
  pub("kernel.tier_evictions", stats_.tier_evictions);
  pub("kernel.tier_writebacks", stats_.tier_writebacks);
  pub("kernel.swap_reads", swap_->reads());
  pub("kernel.swap_writes", swap_->writes());
  pub("kernel.trace_events_dropped", event_log_.dropped());
  gauge_free_pages_->Set(static_cast<double>(free_list_.size()));
  for (const auto& as : address_spaces_) {
    const MetricLabels labels = {{"as", as->name()}};
    const AsStats& s = as->stats();
    metrics_.GetCounter("as.pages_stolen_from", labels)->Set(s.pages_stolen_from);
    metrics_.GetCounter("as.pages_released", labels)->Set(s.pages_released);
    metrics_.GetCounter("as.releases_skipped", labels)->Set(s.releases_skipped);
    metrics_.GetCounter("as.rescued_from_steal", labels)->Set(s.rescued_from_steal);
    metrics_.GetCounter("as.rescued_from_release", labels)->Set(s.rescued_from_release);
    metrics_.GetCounter("as.invalidations_received", labels)->Set(s.invalidations_received);
    metrics_.GetGauge("as.resident_pages", labels)
        ->Set(static_cast<double>(as->page_table().resident_count()));
  }
}

void Kernel::StartTracing(SimDuration period) {
  assert(trace_.empty() && "tracing already started");
  trace_.AddSeries("free_pages");
  for (const auto& as : address_spaces_) {
    trace_.AddSeries(as->name() + "_rss");
  }
  trace_.AddSeries("daemon_stolen");
  trace_.AddSeries("releaser_freed");
  trace_.AddSeries("hard_faults");
  trace_.AddSeries("soft_faults");
  trace_.AddSeries("swap_queue");
  TraceTick(period);
}

void Kernel::TraceTick(SimDuration period) {
  // Only the address spaces that existed at StartTracing have series.
  const size_t traced_as = trace_.series().size() - 6;
  std::vector<double> row;
  row.reserve(traced_as + 6);
  row.push_back(static_cast<double>(free_list_.size()));
  for (size_t a = 0; a < traced_as && a < address_spaces_.size(); ++a) {
    row.push_back(static_cast<double>(address_spaces_[a]->page_table().resident_count()));
  }
  row.push_back(static_cast<double>(stats_.daemon_pages_stolen));
  row.push_back(static_cast<double>(stats_.releaser_pages_freed));
  row.push_back(static_cast<double>(stats_.hard_faults));
  row.push_back(static_cast<double>(stats_.soft_faults));
  row.push_back(static_cast<double>(swap_->TotalQueueDepth()));
  trace_.Record(Now(), std::move(row));
  queue_.ScheduleAfter(period, [this, period]() { TraceTick(period); });
}

bool Kernel::RunUntilDone(const std::function<bool()>& done, uint64_t max_events) {
  if (TMH_UNLIKELY(checker_ != nullptr)) {
    // Checked runs stay on the one-event-at-a-time loop: the checker needs a
    // quiescent point between events, which the batched dispatch elides.
    uint64_t events = 0;
    while (!done()) {
      if (events >= max_events || !queue_.RunOne()) {
        return done();
      }
      ++events;
      checker_->OnQuiescent(*this);
    }
    return true;
  }
  // The predicate is checked before the first event and after every executed
  // event — the same stop boundary as the per-event loop — but dispatch
  // drains whole same-time buckets between wheel scans.
  if (done()) {
    return true;
  }
  bool stopped = false;
  const std::function<bool()>* prev_hint = stop_hint_;
  const bool prev_fired = stop_hint_fired_;
  stop_hint_ = &done;
  stop_hint_fired_ = false;
  queue_.RunWhile([&]() { return (stopped = (stop_hint_fired_ || done())); }, max_events);
  stop_hint_ = prev_hint;
  stop_hint_fired_ = prev_fired;
  return stopped || done();
}

bool Kernel::RunUntilThreadsDone(const std::vector<Thread*>& threads, uint64_t max_events) {
  auto all_done = [&threads]() {
    for (const Thread* t : threads) {
      if (t->state() != Thread::State::kDone) {
        return false;
      }
    }
    return true;
  };
  if (TMH_UNLIKELY(checker_ != nullptr)) {
    return RunUntilDone(all_done, max_events);
  }
  // Threads only ever enter kDone (never leave), and every such transition
  // bumps done_generation_, so the predicate is re-evaluated only when it
  // could possibly have flipped. The per-event cost is one counter compare.
  if (all_done()) {
    return true;
  }
  uint64_t seen_gen = done_generation_;
  bool stopped = false;
  queue_.RunWhile(
      [&]() {
        if (done_generation_ == seen_gen) {
          return false;
        }
        seen_gen = done_generation_;
        return (stopped = all_done());
      },
      max_events);
  return stopped || all_done();
}

// --- scheduling -------------------------------------------------------------

void Kernel::MakeRunnable(Thread* t) {
  t->state_ = Thread::State::kRunnable;
  t->block_reason_ = Thread::BlockReason::kNone;
  t->block_start = Now();  // start of CPU-queue wait
  run_queue_.push_back(t);
  TryDispatch();
}

bool Kernel::StopHintFires() {
  if (stop_hint_ == nullptr) {
    return false;
  }
  if (!stop_hint_fired_ && (*stop_hint_)()) {
    stop_hint_fired_ = true;
  }
  return stop_hint_fired_;
}

void Kernel::TryDispatch() {
  // Fast path: run the slice inline instead of via a zero-delay event. Legal
  // only when (a) we are not already inside a slice (an op's wake must not
  // reorder the woken thread ahead of pending events), (b) no checker needs a
  // quiescent point per event, and (c) no other event is pending at the
  // current instant — with an empty now-bucket the queued path would run the
  // dispatch event next anyway, so the inline order is identical. Dispatches
  // one thread at a time and re-checks, because an inline slice may append
  // same-time events (which must then run before any further dispatch).
  // A fired stop hint forces the queued path: RunUntilDone's predicate must
  // get its between-events check before the slice runs.
  if (config_.inline_dispatch && !in_slice_ && TMH_LIKELY(checker_ == nullptr)) {
    while (busy_cpus_ < config_.num_cpus && !run_queue_.empty() &&
           queue_.NextEventTime(Now() + 1) > Now() && !StopHintFires()) {
      Thread* t = run_queue_.front();
      run_queue_.pop_front();
      assert(t->state_ == Thread::State::kRunnable);
      t->times_.resource_stall += Now() - t->block_start;
      t->state_ = Thread::State::kRunning;
      ++busy_cpus_;
      RunSlice(t);
    }
  }
  while (busy_cpus_ < config_.num_cpus && !run_queue_.empty()) {
    Thread* t = run_queue_.front();
    run_queue_.pop_front();
    assert(t->state_ == Thread::State::kRunnable);
    // Time spent waiting for a CPU is a resource stall.
    t->times_.resource_stall += Now() - t->block_start;
    t->state_ = Thread::State::kRunning;
    ++busy_cpus_;
    queue_.ScheduleAfter(0, [this, t]() { RunSlice(t); });
  }
}

void Kernel::RunSlice(Thread* t) {
  assert(t->state_ == Thread::State::kRunning);
  assert(!in_slice_);
  in_slice_ = true;
  const SimTime now = Now();
  const SimTime next_event = queue_.NextEventTime(now + config_.quantum);
  const SimDuration budget =
      std::clamp<SimDuration>(next_event - now, kMinSlice, config_.quantum);

  SimDuration elapsed = 0;
  for (int ops = 0; ops < kMaxOpsPerSlice; ++ops) {
    if (!t->has_pending_) {
      slice_budget_left_ = budget - elapsed;
      t->pending_op_ = t->program_->Next(*this);
      slice_budget_left_ = 0;
      t->has_pending_ = true;
    }
    if (t->pending_op_.kind == Op::Kind::kExit) {
      t->has_pending_ = false;
      t->state_ = Thread::State::kDone;
      ++done_generation_;
      t->finished_at_ = now + elapsed;
      in_slice_ = false;
      EndSlice(t, elapsed, /*requeue=*/false);
      return;
    }
    if (t->pending_op_.kind == Op::Kind::kYield) {
      t->has_pending_ = false;
      in_slice_ = false;
      EndSlice(t, elapsed, /*requeue=*/true);
      return;
    }
    const ExecResult result = ExecuteOp(t, &elapsed, budget, &ops);
    if (result == ExecResult::kBlocked) {
      in_slice_ = false;
      EndSlice(t, elapsed, /*requeue=*/false);
      return;
    }
    if (result == ExecResult::kPreempted) {
      // Mid-run preemption: the op stays pending and resumes from its cursor.
      in_slice_ = false;
      EndSlice(t, elapsed, /*requeue=*/true);
      return;
    }
    t->has_pending_ = false;
    if (elapsed >= budget) {
      in_slice_ = false;
      EndSlice(t, elapsed, /*requeue=*/true);
      return;
    }
  }
  in_slice_ = false;
  EndSlice(t, elapsed, /*requeue=*/true);
}

void Kernel::EndSlice(Thread* t, SimDuration elapsed, bool requeue) {
  // The CPU stays busy until the consumed time has elapsed; the thread's next
  // turn (or its blocking) begins then.
  queue_.ScheduleAfter(elapsed, [this, t, requeue]() {
    --busy_cpus_;
    if (requeue && t->state_ == Thread::State::kRunning) {
      t->state_ = Thread::State::kRunnable;
      t->block_start = Now();
      run_queue_.push_back(t);
    }
    TryDispatch();
  });
}

void Kernel::Block(Thread* t, Thread::BlockReason reason, SimDuration elapsed) {
  assert(t->state_ == Thread::State::kRunning);
  t->state_ = Thread::State::kBlocked;
  t->block_reason_ = reason;
  t->block_start = Now() + elapsed;
}

void Kernel::Wake(Thread* t) {
  if (t->state_ != Thread::State::kBlocked) {
    return;  // already woken by another path (e.g. lock handoff + memory wake)
  }
  const SimDuration waited = std::max<SimDuration>(0, Now() - t->block_start);
  switch (t->block_reason_) {
    case Thread::BlockReason::kIo:
      t->times_.io_stall += waited;
      t->fault_service_.Add(static_cast<double>(waited));
      if (TMH_UNLIKELY(observing_) && !t->is_daemon()) {
        hist_fault_service_->Add(static_cast<double>(waited));
      }
      break;
    case Thread::BlockReason::kLock:
      t->times_.resource_stall += waited;
      break;
    case Thread::BlockReason::kMemory:
      t->times_.resource_stall += waited;
      if (TMH_UNLIKELY(observing_)) {
        event_log_.Record(Now(), KernelEventType::kMemoryWaitEnd, t->id());
      }
      break;
    case Thread::BlockReason::kSleep:
    case Thread::BlockReason::kWaitQueue:
      t->times_.sleep += waited;
      // A sleep or queue wait is satisfied by the wake itself; the pending op
      // is complete (kIo/kLock/kMemory ops instead re-execute to finish the
      // fault or acquisition).
      t->has_pending_ = false;
      break;
    case Thread::BlockReason::kNone:
      break;
  }
  MakeRunnable(t);
}

void Kernel::Signal(WaitQueue* q) {
  if (Thread* t = q->Dequeue()) {
    Wake(t);
  } else {
    q->AddPendingSignal();
  }
}

void Kernel::WakeDaemon() {
  if (paging_daemon_ != nullptr) {
    Signal(&paging_daemon_->wait_queue());
  }
}

void Kernel::WakeReleaser() {
  if (releaser_ != nullptr) {
    Signal(&releaser_->wait_queue());
  }
}

// --- op execution -----------------------------------------------------------

void Kernel::Charge(Thread* t, SimDuration* elapsed, SimDuration d,
                    SimDuration TimeBreakdown::*bucket) {
  t->times_.*bucket += d;
  *elapsed += d;
}

Kernel::ExecResult Kernel::ExecuteOp(Thread* t, SimDuration* elapsed, SimDuration budget,
                                     int* ops) {
  Op& op = t->pending_op_;
  switch (op.kind) {
    case Op::Kind::kCompute:
      Charge(t, elapsed, op.duration, &TimeBreakdown::user);
      return ExecResult::kCompleted;
    case Op::Kind::kTouch:
      return DoTouch(t, op, elapsed);
    case Op::Kind::kTouchRun:
      return DoTouchRun(t, op, elapsed, budget, ops);
    case Op::Kind::kSleep: {
      Block(t, Thread::BlockReason::kSleep, *elapsed);
      queue_.ScheduleAt(Now() + *elapsed + op.duration, [this, t]() { Wake(t); });
      return ExecResult::kBlocked;
    }
    case Op::Kind::kPrefetch:
      return DoPrefetch(t, op, elapsed);
    case Op::Kind::kRelease:
      return DoRelease(t, op, elapsed);
    case Op::Kind::kWait: {
      if (op.wait->ConsumeSignal()) {
        return ExecResult::kCompleted;
      }
      op.wait->Enqueue(t);
      Block(t, Thread::BlockReason::kWaitQueue, *elapsed);
      return ExecResult::kBlocked;
    }
    case Op::Kind::kAcquireLock: {
      if (!AcquireOrBlock(t, *op.lock, elapsed)) {
        return ExecResult::kBlocked;
      }
      return ExecResult::kCompleted;
    }
    case Op::Kind::kReleaseLock:
      ReleaseLock(t, *op.lock);
      return ExecResult::kCompleted;
    case Op::Kind::kYield:
    case Op::Kind::kExit:
      // Handled in RunSlice.
      return ExecResult::kCompleted;
  }
  return ExecResult::kCompleted;
}

bool Kernel::AcquireOrBlock(Thread* t, MemoryLock& lock, SimDuration* elapsed) {
  if (lock.IsHeldBy(t)) {
    return true;  // handed off while we were blocked
  }
  if (lock.TryAcquire(t)) {
    Charge(t, elapsed, config_.costs.lock_acquire, &TimeBreakdown::system);
    return true;
  }
  lock.EnqueueWaiter(t);
  Block(t, Thread::BlockReason::kLock, *elapsed);
  return false;
}

void Kernel::ReleaseLock(Thread* t, MemoryLock& lock) {
  if (Thread* next = lock.Release(t)) {
    Wake(next);
  }
}

// --- memory helpers ----------------------------------------------------------

FrameId Kernel::AllocateFrame(AddressSpace* as, VPage vpage) {
  const FrameId f = free_list_.PopHead(as->home_node());
  if (f == kNoFrame) {
    return kNoFrame;
  }
  ++node_allocations_[static_cast<size_t>(free_list_.NodeOf(f))];
  if (TMH_UNLIKELY(observing_)) {
    freed_at_.erase(f);  // handed out, not rescued: forget the free timestamp
  }
  const AsId old_owner = frames_.owner(f);
  if (old_owner != kNoAs) {
    // Break the stale rescue identity of the page that last lived here.
    AddressSpace* old_as = address_spaces_[static_cast<size_t>(old_owner)].get();
    Pte& old_pte = old_as->page_table().at(frames_.vpage(f));
    if (old_pte.frame == f && !old_pte.resident) {
      old_pte.frame = kNoFrame;
    }
  }
  frames_.ResetIdentity(f);
  frames_.set_owner(f, as->id());
  frames_.set_vpage(f, vpage);
  ++stats_.allocations;
  Hook(VmHookOp::kAlloc, as->id(), vpage, f);
  if (free_list_.size() < config_.tunables.min_freemem_pages) {
    WakeDaemon();
  }
  MaybeNotifySharedHeaders();
  return f;
}

void Kernel::MapFrame(AddressSpace* as, VPage vpage, FrameId f, bool validate) {
  Pte& pte = as->page_table().at(vpage);
  assert(!pte.resident);
  pte.frame = f;
  pte.resident = true;
  pte.valid = validate;
  pte.invalid_reason = validate ? InvalidReason::kNone : InvalidReason::kFreshPrefetch;
  pte.ever_materialized = true;
  as->page_table().SyncValid(vpage);
  frames_.set_mapped(f, true);
  frames_.set_contents_valid(f, true);
  frames_.set_freed_by(f, FreedBy::kNone);
  as->page_table().IncrementResident();
  UpdateOverMaxrss(as);
  if (as->HasPagingDirected()) {
    as->bitmap()->Set(vpage);
  }
  Hook(VmHookOp::kMap, as->id(), vpage, f, validate ? 1 : 0);
}

void Kernel::UnmapFrame(AddressSpace* as, VPage vpage, FreedBy freed_by) {
  Pte& pte = as->page_table().at(vpage);
  assert(pte.resident);
  const FrameId f = pte.frame;
  pte.resident = false;
  pte.valid = false;
  pte.invalid_reason = InvalidReason::kNone;
  as->page_table().SyncValid(vpage);
  // pte.frame intentionally kept: it is the rescue link.
  frames_.set_mapped(f, false);
  frames_.set_referenced(f, false);
  frames_.set_contents_valid(f, true);
  frames_.set_freed_by(f, freed_by);
  as->page_table().DecrementResident();
  UpdateOverMaxrss(as);
  if (as->HasPagingDirected()) {
    as->bitmap()->Clear(vpage);
  }
  Hook(VmHookOp::kUnmap, as->id(), vpage, pte.frame, static_cast<int64_t>(freed_by));
}

void Kernel::FreeFrame(FrameId f, bool at_tail) {
  assert(!frames_.mapped(f));
  if (frames_.dirty(f)) {
    frames_.set_io_busy(f, true);
    ++stats_.writebacks;
    Hook(VmHookOp::kWritebackBegin, frames_.owner(f), frames_.vpage(f), f);
    AddressSpace* as = address_spaces_[static_cast<size_t>(frames_.owner(f))].get();
    swap_->WritePage(as->SwapSlot(frames_.vpage(f)), [this, f, at_tail]() {
      frames_.set_dirty(f, false);
      frames_.set_io_busy(f, false);
      Hook(VmHookOp::kWritebackEnd, frames_.owner(f), frames_.vpage(f), f);
      if (at_tail) {
        free_list_.PushTail(f);
      } else {
        free_list_.PushHead(f);
      }
      Hook(at_tail ? VmHookOp::kFreePushTail : VmHookOp::kFreePushHead, frames_.owner(f),
           frames_.vpage(f), f);
      if (TMH_UNLIKELY(observing_)) {
        freed_at_[f] = Now();
      }
      WakeMemoryWaiters();
      WakeFrameWaiters(f);  // touches that arrived mid-writeback can now rescue
      MaybeNotifySharedHeaders();
    });
    return;
  }
  if (at_tail) {
    free_list_.PushTail(f);
  } else {
    free_list_.PushHead(f);
  }
  Hook(at_tail ? VmHookOp::kFreePushTail : VmHookOp::kFreePushHead, frames_.owner(f),
       frames_.vpage(f), f);
  if (TMH_UNLIKELY(observing_)) {
    freed_at_[f] = Now();
  }
  WakeMemoryWaiters();
  MaybeNotifySharedHeaders();
}

void Kernel::WakeMemoryWaiters() {
  // Wake everyone; re-blocking is cheap and the waiter count is tiny.
  while (Thread* t = memory_wait_.Dequeue()) {
    Wake(t);
  }
}

void Kernel::WaitOnFrame(Thread* t, FrameId f, SimDuration elapsed) {
  frame_waiters_[f].push_back(t);
  Block(t, Thread::BlockReason::kIo, elapsed);
}

void Kernel::RecordRescue(Thread* t, AddressSpace* as, VPage vpage, FrameId f,
                          FreedBy freed_by) {
  const bool by_daemon = freed_by == FreedBy::kDaemon;
  if (const auto it = freed_at_.find(f); it != freed_at_.end()) {
    (by_daemon ? hist_rescue_daemon_ : hist_rescue_release_)
        ->Add(static_cast<double>(Now() - it->second));
    freed_at_.erase(it);
  }
  event_log_.Record(Now(),
                    by_daemon ? KernelEventType::kDaemonRescue
                              : KernelEventType::kReleaseRescue,
                    t->id(), as->id(), vpage);
}

void Kernel::WakeFrameWaiters(FrameId f) {
  const auto it = frame_waiters_.find(f);
  if (it == frame_waiters_.end()) {
    return;
  }
  std::vector<Thread*> waiters = std::move(it->second);
  frame_waiters_.erase(it);
  for (Thread* t : waiters) {
    Wake(t);
  }
}

void Kernel::UpdateSharedHeader(AddressSpace* as) {
  if (!as->HasPagingDirected()) {
    return;
  }
  const int64_t current = as->page_table().resident_count();
  const int64_t upper =
      std::min(config_.tunables.maxrss_pages,
               current + free_list_.size() - config_.tunables.min_freemem_pages);
  as->bitmap()->SetHeader(current, std::max<int64_t>(upper, 0));
  as->set_header_free_snapshot(free_list_.size());
  Hook(VmHookOp::kHeaderUpdate, as->id(), kNoVPage, kNoFrame, current,
       std::max<int64_t>(upper, 0));
}

void Kernel::IssueReadAhead(AddressSpace* as, VPage vpage) {
  const FrameId f = AllocateFrame(as, vpage);
  if (f == kNoFrame) {
    return;
  }
  frames_.set_io_busy(f, true);
  Pte& pte = as->page_table().at(vpage);
  pte.frame = f;  // collapse/rescue link while the read is in flight
  pte.ever_materialized = true;
  if (as->HasPagingDirected()) {
    as->bitmap()->Set(vpage);
  }
  ++stats_.readahead_reads;
  const AsId as_id = as->id();
  swap_->ReadPage(as->SwapSlot(vpage), [this, as_id, vpage, f]() {
    frames_.set_io_busy(f, false);
    AddressSpace* as = address_spaces_[static_cast<size_t>(as_id)].get();
    if (frames_.IsPage(f, as_id, vpage) && !as->page_table().at(vpage).resident) {
      // Like a prefetch: resident but unvalidated (no TLB entry).
      MapFrame(as, vpage, f, /*validate=*/false);
      UpdateSharedHeader(as);
    }
    WakeFrameWaiters(f);
  });
}

bool Kernel::EvictLocalVictim(AddressSpace* as) {
  const VPage pages = as->num_pages();
  VPage cursor = as->local_clock_cursor();
  for (VPage scanned = 0; scanned < pages; ++scanned) {
    const VPage v = (cursor + scanned) % pages;
    const Pte& pte = as->page_table().at(v);
    if (!pte.resident || frames_.io_busy(pte.frame)) {
      continue;
    }
    const FrameId f = pte.frame;
    as->set_local_clock_cursor((v + 1) % pages);
    UnmapFrame(as, v, FreedBy::kDaemon);
    FreeFrame(f, /*at_tail=*/false);
    ++stats_.local_evictions;
    ++as->stats().pages_stolen_from;
    return true;
  }
  return false;
}

// --- memory-tiering migration (extension) -------------------------------------

FrameId Kernel::TierTakeFrame(int tier, SimDuration* cost) {
  TierPlane& plane = tier_planes_[static_cast<size_t>(tier - 1)];
  FrameId tf = plane.pool->PopHeadFromNode(0);
  if (tf != kNoFrame) {
    return tf;
  }
  // Capacity eviction: the clock hand picks the victim (with an empty pool
  // every tier frame is occupied, so the hand's frame is it). The victim
  // cascades one tier deeper, or drops to disk from the last tier; either way
  // its frame lands on the pool head and is popped right back for the caller.
  FrameId victim = plane.clock_hand;
  for (int64_t scanned = 0; scanned < plane.frames; ++scanned) {
    if (plane.owner[static_cast<size_t>(victim)] != kNoAs) {
      break;
    }
    victim = (victim + 1) % plane.frames;
  }
  plane.clock_hand = (victim + 1) % plane.frames;
  const AsId vas = plane.owner[static_cast<size_t>(victim)];
  const VPage vp = plane.vpage[static_cast<size_t>(victim)];
  const bool vdirty = plane.dirty[static_cast<size_t>(victim)] != 0;
  AddressSpace* as = address_spaces_[static_cast<size_t>(vas)].get();
  Pte& vpte = as->page_table().at(vp);
  const int num_slow = static_cast<int>(tier_planes_.size());
  if (tier < num_slow) {
    const FrameId dest = TierTakeFrame(tier + 1, cost);
    TierPlane& deeper = tier_planes_[static_cast<size_t>(tier)];
    deeper.owner[static_cast<size_t>(dest)] = vas;
    deeper.vpage[static_cast<size_t>(dest)] = vp;
    deeper.dirty[static_cast<size_t>(dest)] = vdirty ? 1 : 0;
    vpte.tier = static_cast<uint8_t>(tier + 1);
    vpte.tier_frame = dest;
    *cost += deeper.demote_cost;
    Hook(VmHookOp::kTierEvict, vas, vp, dest, tier, tier + 1);
  } else {
    // Last tier: the page falls out of the hierarchy. Its contents survive on
    // swap only if clean there already; a dirty victim charges a synchronous
    // page-out cost (the migration engine's write queue, modeled CPU-side).
    vpte.tier = 0;
    vpte.tier_frame = kNoFrame;
    if (vdirty) {
      ++stats_.tier_writebacks;
      *cost += plane.demote_cost;
    }
    Hook(VmHookOp::kTierEvict, vas, vp, kNoFrame, tier, 0);
  }
  plane.owner[static_cast<size_t>(victim)] = kNoAs;
  plane.vpage[static_cast<size_t>(victim)] = kNoVPage;
  plane.dirty[static_cast<size_t>(victim)] = 0;
  plane.pool->PushHead(victim);
  ++stats_.tier_evictions;
  return plane.pool->PopHeadFromNode(0);
}

SimDuration Kernel::DemotePage(AddressSpace* as, VPage vpage, int depth) {
  SimDuration cost = 0;
  Pte& pte = as->page_table().at(vpage);
  const FrameId f = pte.frame;
  TierPlane& plane = tier_planes_[static_cast<size_t>(depth - 1)];
  const FrameId tf = TierTakeFrame(depth, &cost);
  // Hook order matters for the oracle: kDemote sees the page still resident
  // on `f` and pops the tier pool's head, then the ordinary kUnmap/kFreePush
  // stream follows with the frame already clean (the contents moved, so no
  // writeback happens and the free push passes the oracle's dirty check).
  Hook(VmHookOp::kDemote, as->id(), vpage, f, depth, tf);
  UnmapFrame(as, vpage, FreedBy::kReleaser);
  plane.owner[static_cast<size_t>(tf)] = as->id();
  plane.vpage[static_cast<size_t>(tf)] = vpage;
  plane.dirty[static_cast<size_t>(tf)] = frames_.dirty(f) ? 1 : 0;
  pte.frame = kNoFrame;  // no DRAM rescue: the authoritative copy moved away
  pte.tier = static_cast<uint8_t>(depth);
  pte.tier_frame = tf;
  frames_.set_dirty(f, false);           // contents migrated, not written back
  frames_.set_contents_valid(f, false);  // the DRAM copy is dead
  FreeFrame(f, /*at_tail=*/config_.tunables.release_to_tail);
  cost += plane.demote_cost;
  ++stats_.tier_demotions;
  return cost;
}

void Kernel::MaybeNotifySharedHeaders() {
  const int64_t threshold = config_.tunables.shared_header_notify_threshold;
  if (threshold <= 0) {
    return;  // the paper's lazy behavior
  }
  const int64_t free = free_list_.size();
  for (const auto& as : address_spaces_) {
    if (as->HasPagingDirected() &&
        std::abs(free - as->header_free_snapshot()) > threshold) {
      UpdateSharedHeader(as.get());
    }
  }
}

// --- fault handling (kTouch) --------------------------------------------------

Kernel::ExecResult Kernel::DoTouch(Thread* t, Op& op, SimDuration* elapsed) {
  AddressSpace* as = op.as != nullptr ? op.as : t->as_;
  assert(as != nullptr);
  PageTable& pt = as->page_table();
  Pte& pte = pt.at(op.vpage);
  MemoryLock& lock = as->memory_lock();
  const CostModel& costs = config_.costs;

  // Fast path: valid mapping, no trap, no locking.
  if (t->fault_phase_ == Thread::FaultPhase::kNone && !lock.IsHeldBy(t) && pte.resident &&
      pte.valid) {
    Charge(t, elapsed, costs.touch_hit + op.duration, &TimeBreakdown::user);
    if (op.is_write) {
      MarkDirty(pte.frame);
    }
    return ExecResult::kCompleted;
  }

  if (!AcquireOrBlock(t, lock, elapsed)) {
    return ExecResult::kBlocked;
  }

  // Resumption after page-in I/O: finalize the mapping.
  if (t->fault_phase_ == Thread::FaultPhase::kIoDone) {
    const FrameId f = t->fault_frame_;
    frames_.set_io_busy(f, false);
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kFaultEnd, t->id(), as->id(), op.vpage);
    }
    MapFrame(as, op.vpage, f, /*validate=*/true);
    frames_.set_referenced(f, true);
    if (op.is_write) {
      MarkDirty(f);
    }
    t->fault_phase_ = Thread::FaultPhase::kNone;
    t->fault_frame_ = kNoFrame;
    Charge(t, elapsed, costs.hard_fault_service, &TimeBreakdown::system);
    ++t->faults_.hard_faults;
    ++stats_.hard_faults;
    UpdateSharedHeader(as);
    ReleaseLock(t, lock);
    WakeFrameWaiters(f);  // other threads that collapsed onto this page-in
    Charge(t, elapsed, op.duration, &TimeBreakdown::user);
    return ExecResult::kCompleted;
  }

  // Re-examine under the lock: state may have changed while we waited.
  if (pte.resident && pte.valid) {
    ReleaseLock(t, lock);
    Charge(t, elapsed, costs.touch_hit + op.duration, &TimeBreakdown::user);
    if (op.is_write) {
      MarkDirty(pte.frame);
    }
    return ExecResult::kCompleted;
  }

  // Soft-fault family: resident but invalid mapping; revalidate.
  if (pte.resident) {
    const InvalidReason old_reason = pte.invalid_reason;
    switch (pte.invalid_reason) {
      case InvalidReason::kFreshPrefetch:
        Charge(t, elapsed, costs.fresh_prefetch_validate, &TimeBreakdown::system);
        ++t->faults_.fresh_prefetch_touches;
        break;
      case InvalidReason::kDaemonInvalidated:
        Charge(t, elapsed, costs.soft_fault, &TimeBreakdown::system);
        ++t->faults_.soft_faults;
        ++stats_.soft_faults;
        break;
      case InvalidReason::kMonitorSampled:
        // Same soft-fault flavor as a daemon sample; tracked separately so the
        // monitor's imposed overhead is attributable.
        Charge(t, elapsed, costs.soft_fault, &TimeBreakdown::system);
        ++t->faults_.soft_faults;
        ++stats_.soft_faults;
        ++stats_.monitor_soft_faults;
        break;
      case InvalidReason::kReleasePending:
        // Touch cancels the pending release (the releaser will see the bit).
        Charge(t, elapsed, costs.soft_fault, &TimeBreakdown::system);
        ++t->faults_.release_saves;
        break;
      case InvalidReason::kNone:
        Charge(t, elapsed, costs.soft_fault, &TimeBreakdown::system);
        break;
    }
    pte.valid = true;
    pte.invalid_reason = InvalidReason::kNone;
    pt.SyncValid(op.vpage);
    frames_.set_referenced(pte.frame, true);
    Hook(VmHookOp::kValidate, as->id(), op.vpage, pte.frame,
         static_cast<int64_t>(old_reason));
    if (op.is_write) {
      MarkDirty(pte.frame);
    }
    if (as->HasPagingDirected()) {
      as->bitmap()->Set(op.vpage);
    }
    UpdateSharedHeader(as);
    ReleaseLock(t, lock);
    Charge(t, elapsed, op.duration, &TimeBreakdown::user);
    return ExecResult::kCompleted;
  }

  // Collapse onto in-flight I/O: a prefetch (or another thread's fault, or a
  // writeback) is already moving this page; wait for that I/O instead of
  // issuing a duplicate read.
  if (pte.frame != kNoFrame) {
    if (frames_.IsPage(pte.frame, as->id(), op.vpage) && frames_.io_busy(pte.frame)) {
      ++t->faults_.collapsed_faults;
      ReleaseLock(t, lock);
      WaitOnFrame(t, pte.frame, *elapsed);
      return ExecResult::kBlocked;
    }
  }

  // Rescue: the frame that last held this page is still on the free list.
  if (pte.frame != kNoFrame) {
    if (frames_.IsPage(pte.frame, as->id(), op.vpage) && frames_.contents_valid(pte.frame) &&
        !frames_.io_busy(pte.frame) && free_list_.Contains(pte.frame)) {
      const FreedBy freed_by = frames_.freed_by(pte.frame);
      free_list_.Remove(pte.frame);
      Hook(VmHookOp::kRescue, as->id(), op.vpage, pte.frame,
           static_cast<int64_t>(freed_by));
      if (freed_by == FreedBy::kDaemon) {
        ++stats_.rescued_daemon_freed;
        ++as->stats().rescued_from_steal;
      } else {
        ++stats_.rescued_release_freed;
        ++as->stats().rescued_from_release;
      }
      if (TMH_UNLIKELY(observing_)) {
        RecordRescue(t, as, op.vpage, pte.frame, freed_by);
      }
      const FrameId f = pte.frame;
      MapFrame(as, op.vpage, f, /*validate=*/true);
      frames_.set_referenced(f, true);
      if (op.is_write) {
        MarkDirty(f);
      }
      Charge(t, elapsed, costs.rescue_fault, &TimeBreakdown::system);
      ++t->faults_.rescue_faults;
      UpdateSharedHeader(as);
      ReleaseLock(t, lock);
      Charge(t, elapsed, op.duration, &TimeBreakdown::user);
      return ExecResult::kCompleted;
    }
    pte.frame = kNoFrame;  // stale link
  }

  // Local replacement (extension): a process at its partition cap evicts one
  // of its own pages before taking a fresh frame.
  const int64_t partition = config_.tunables.local_partition_pages;
  if (partition > 0 && as->page_table().resident_count() >= partition) {
    EvictLocalVictim(as);
  }

  // Need a fresh frame.
  const FrameId f = AllocateFrame(as, op.vpage);
  if (f == kNoFrame) {
    // No memory: wake the daemon and wait for a free frame, then retry.
    ++stats_.memory_waits;
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kMemoryWaitBegin, t->id(), as->id(), op.vpage);
    }
    WakeDaemon();
    ReleaseLock(t, lock);
    memory_wait_.Enqueue(t);
    Block(t, Thread::BlockReason::kMemory, *elapsed);
    return ExecResult::kBlocked;
  }

  // Promotion from a slow tier (memory-tiering extension): the page's
  // authoritative contents live in tier pte.tier, so migrate them up into the
  // fresh DRAM frame — no disk I/O, carried dirty bit restored.
  if (TMH_UNLIKELY(pte.tier != 0)) {
    const int tier = pte.tier;
    const FrameId tf = pte.tier_frame;
    TierPlane& plane = tier_planes_[static_cast<size_t>(tier - 1)];
    MapFrame(as, op.vpage, f, /*validate=*/true);
    frames_.set_referenced(f, true);
    if (plane.dirty[static_cast<size_t>(tf)] != 0) {
      // Restore without the kDirty hook: the oracle re-inserts the carried
      // dirty bit while replaying kPromote (a migration, not a first store).
      frames_.set_dirty(f, true);
    }
    Hook(VmHookOp::kPromote, as->id(), op.vpage, f, tier, tf);
    plane.owner[static_cast<size_t>(tf)] = kNoAs;
    plane.vpage[static_cast<size_t>(tf)] = kNoVPage;
    plane.dirty[static_cast<size_t>(tf)] = 0;
    plane.pool->PushHead(tf);
    pte.tier = 0;
    pte.tier_frame = kNoFrame;
    if (op.is_write) {
      MarkDirty(f);
    }
    Charge(t, elapsed, plane.promote_cost, &TimeBreakdown::system);
    ++t->faults_.soft_faults;
    ++stats_.tier_promotions;
    UpdateSharedHeader(as);
    ReleaseLock(t, lock);
    Charge(t, elapsed, op.duration, &TimeBreakdown::user);
    return ExecResult::kCompleted;
  }

  const bool needs_io =
      pte.ever_materialized || as->BackingOf(op.vpage) == Backing::kSwap;
  if (!needs_io) {
    // Zero-fill fault: anonymous page touched for the first time.
    MapFrame(as, op.vpage, f, /*validate=*/true);
    frames_.set_referenced(f, true);
    MarkDirty(f);  // zero-filled contents exist nowhere on swap yet
    Charge(t, elapsed, costs.zero_fill, &TimeBreakdown::system);
    ++t->faults_.zero_fill_faults;
    ++stats_.zero_fills;
    UpdateSharedHeader(as);
    ReleaseLock(t, lock);
    Charge(t, elapsed, op.duration, &TimeBreakdown::user);
    return ExecResult::kCompleted;
  }

  // Hard fault: page-in from swap. Drop the lock across the I/O.
  frames_.set_io_busy(f, true);
  t->fault_frame_ = f;
  pte.frame = f;  // lets concurrent touches collapse onto this page-in
  pte.ever_materialized = true;
  if (as->HasPagingDirected()) {
    as->bitmap()->Set(op.vpage);  // "bits are set whenever a physical page is allocated"
  }
  // Read-ahead clustering (extension; default off): pull the next pages of
  // the region in with the same fault while free memory has headroom.
  for (int64_t k = 1; k <= config_.tunables.fault_readahead_pages; ++k) {
    const VPage next = op.vpage + k;
    if (next >= as->num_pages() ||
        free_list_.size() <= config_.tunables.min_freemem_pages) {
      break;
    }
    const Pte& npte = as->page_table().at(next);
    const bool backed = npte.ever_materialized || as->BackingOf(next) == Backing::kSwap;
    if (npte.resident || npte.frame != kNoFrame || npte.tier != 0 || !backed) {
      continue;
    }
    IssueReadAhead(as, next);
  }
  UpdateSharedHeader(as);
  ReleaseLock(t, lock);
  if (TMH_UNLIKELY(observing_)) {
    event_log_.Record(Now(), KernelEventType::kFaultBegin, t->id(), as->id(), op.vpage);
  }
  Block(t, Thread::BlockReason::kIo, *elapsed);
  swap_->ReadPage(as->SwapSlot(op.vpage), [this, t]() {
    t->fault_phase_ = Thread::FaultPhase::kIoDone;
    Wake(t);
  });
  return ExecResult::kBlocked;
}

// --- fused touch runs (kTouchRun) ----------------------------------------------

Kernel::ExecResult Kernel::DoTouchRun(Thread* t, Op& op, SimDuration* elapsed,
                                      SimDuration budget, int* ops) {
  TouchRunDesc& run = *op.run;
  AddressSpace* as = op.as != nullptr ? op.as : t->as_;
  assert(as != nullptr);
  PageTable& pt = as->page_table();
  MemoryLock& lock = as->memory_lock();

  if (run.next_step >= run.steps) {
    return ExecResult::kCompleted;  // resumed after the last step's preemption
  }

  // Bulk path: prove every page of every stream resident-and-valid with word
  // scans of the page table's touchable plane, then charge the whole run in
  // one step. Equivalent to the per-step replay below because a valid-PTE
  // touch mutates no kernel state except a write's dirty bit (order-free), so
  // validating up front and aggregating the charges commutes — and the
  // planner already proved steps 0..N-2 fit this slice's budget, so only the
  // final step can overrun, exactly as its unfused compute op would have.
  // Degrades to the exact replay whenever an observer needs the per-op
  // narration (checker, monitor, event log), a fault/lock/cursor is in
  // flight, or the slice's op cap would land mid-run (the unfused stream
  // would have been preempted there, so replay it op by op).
  if (TMH_LIKELY(checker_ == nullptr && monitor_ == nullptr && !observing_) &&
      run.next_step == 0 && run.next_ref == 0 &&
      t->fault_phase_ == Thread::FaultPhase::kNone && !lock.IsHeldBy(t) &&
      *ops + run.steps * (run.num_refs + 1) < kMaxOpsPerSlice) {
    bool all_valid = true;
    for (int32_t r = 0; r < run.num_refs && all_valid; ++r) {
      const TouchRunRef& ref = run.refs[r];
      if (TMH_LIKELY(ref.page_stride == 1)) {
        all_valid = pt.AllValid(ref.base, run.steps);
      } else {
        for (int64_t s = 0; s < run.steps; ++s) {
          const Pte& pte = pt.at(ref.base + s * ref.page_stride);
          if (!(pte.resident && pte.valid)) {
            all_valid = false;
            break;
          }
        }
      }
    }
    if (all_valid) {
      SimDuration total =
          run.steps * run.num_refs * config_.costs.touch_hit;
      for (int64_t s = 0; s < run.steps; ++s) {
        total += run.step_cost[s];
      }
      Charge(t, elapsed, total, &TimeBreakdown::user);
      for (int32_t r = 0; r < run.num_refs; ++r) {
        const TouchRunRef& ref = run.refs[r];
        if (!ref.is_write) {
          continue;
        }
        for (int64_t s = 0; s < run.steps; ++s) {
          MarkDirty(pt.at(ref.base + s * ref.page_stride).frame);
        }
      }
      *ops += static_cast<int>(run.steps * (run.num_refs + 1) - 1);
      run.next_step = run.steps;
      ++stats_.touch_runs_bulk;
      return ExecResult::kCompleted;
    }
  }
  if (run.next_step == 0 && run.next_ref == 0) {
    ++stats_.touch_runs_replayed;
  }

  // Exact per-step replay: each step is num_refs touches followed by one
  // compute charge, with the same post-op budget/op-cap checks the unfused
  // stream would see. A blocking touch leaves the cursor on the blocked ref
  // so the fault resumption re-enters DoTouch with the identical page.
  while (run.next_step < run.steps) {
    while (run.next_ref < run.num_refs) {
      const TouchRunRef& ref = run.refs[run.next_ref];
      Op touch =
          Op::Touch(ref.base + run.next_step * ref.page_stride, ref.is_write, 0);
      touch.as = as;
      const ExecResult result = DoTouch(t, touch, elapsed);
      if (result == ExecResult::kBlocked) {
        return ExecResult::kBlocked;
      }
      ++run.next_ref;
      if (++*ops >= kMaxOpsPerSlice || *elapsed >= budget) {
        return ExecResult::kPreempted;
      }
    }
    Charge(t, elapsed, run.step_cost[run.next_step], &TimeBreakdown::user);
    run.next_ref = 0;
    ++run.next_step;
    if (run.next_step >= run.steps) {
      return ExecResult::kCompleted;
    }
    if (++*ops >= kMaxOpsPerSlice || *elapsed >= budget) {
      return ExecResult::kPreempted;
    }
  }
  return ExecResult::kCompleted;
}

// --- PagingDirected prefetch (kPrefetch) ---------------------------------------

Kernel::ExecResult Kernel::DoPrefetch(Thread* t, Op& op, SimDuration* elapsed) {
  AddressSpace* as = op.as != nullptr ? op.as : t->as_;
  assert(as != nullptr && as->HasPagingDirected());
  PageTable& pt = as->page_table();
  Pte& pte = pt.at(op.vpage);
  MemoryLock& lock = as->memory_lock();
  const CostModel& costs = config_.costs;

  // Cheap unlocked check: already resident -> nothing to do.
  if (t->fault_phase_ == Thread::FaultPhase::kNone && !lock.IsHeldBy(t) && pte.resident) {
    Charge(t, elapsed, costs.prefetch_issue, &TimeBreakdown::system);
    ++stats_.prefetch_requests;
    ++stats_.prefetch_noop;
    ++as->stats().prefetches_noop;
    UpdateSharedHeader(as);
    return ExecResult::kCompleted;
  }

  if (!AcquireOrBlock(t, lock, elapsed)) {
    return ExecResult::kBlocked;
  }

  // Resumption after prefetch I/O: map without validating (no TLB entry).
  if (t->fault_phase_ == Thread::FaultPhase::kIoDone) {
    const FrameId f = t->fault_frame_;
    frames_.set_io_busy(f, false);
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kPrefetchComplete, t->id(), as->id(), op.vpage);
    }
    MapFrame(as, op.vpage, f, /*validate=*/false);
    t->fault_phase_ = Thread::FaultPhase::kNone;
    t->fault_frame_ = kNoFrame;
    UpdateSharedHeader(as);
    ReleaseLock(t, lock);
    WakeFrameWaiters(f);  // touches that collapsed onto this prefetch
    return ExecResult::kCompleted;
  }

  Charge(t, elapsed, costs.prefetch_issue, &TimeBreakdown::system);
  ++stats_.prefetch_requests;
  ++as->stats().prefetches_issued;
  UpdateSharedHeader(as);

  if (pte.resident) {
    ++stats_.prefetch_noop;
    ++as->stats().prefetches_noop;
    ReleaseLock(t, lock);
    return ExecResult::kCompleted;
  }

  // Already in flight (another prefetch or a fault): nothing to do.
  if (pte.frame != kNoFrame) {
    if (frames_.IsPage(pte.frame, as->id(), op.vpage) && frames_.io_busy(pte.frame)) {
      ++stats_.prefetch_noop;
      ++as->stats().prefetches_noop;
      ReleaseLock(t, lock);
      return ExecResult::kCompleted;
    }
  }

  // Rescue via prefetch: free-list frame still holds the data.
  if (pte.frame != kNoFrame) {
    if (frames_.IsPage(pte.frame, as->id(), op.vpage) && frames_.contents_valid(pte.frame) &&
        !frames_.io_busy(pte.frame) && free_list_.Contains(pte.frame)) {
      const FreedBy freed_by = frames_.freed_by(pte.frame);
      free_list_.Remove(pte.frame);
      Hook(VmHookOp::kRescue, as->id(), op.vpage, pte.frame,
           static_cast<int64_t>(freed_by));
      if (freed_by == FreedBy::kDaemon) {
        ++stats_.rescued_daemon_freed;
        ++as->stats().rescued_from_steal;
      } else {
        ++stats_.rescued_release_freed;
        ++as->stats().rescued_from_release;
      }
      if (TMH_UNLIKELY(observing_)) {
        RecordRescue(t, as, op.vpage, pte.frame, freed_by);
      }
      const FrameId f = pte.frame;
      MapFrame(as, op.vpage, f, /*validate=*/false);
      UpdateSharedHeader(as);
      ReleaseLock(t, lock);
      return ExecResult::kCompleted;
    }
    pte.frame = kNoFrame;
  }

  // A page held in a slow tier promotes on touch, never on prefetch: the
  // authoritative copy is in the tier, not on swap, so a swap read here would
  // resurrect stale contents.
  if (TMH_UNLIKELY(pte.tier != 0)) {
    ++stats_.prefetch_noop;
    ++as->stats().prefetches_noop;
    ReleaseLock(t, lock);
    return ExecResult::kCompleted;
  }

  // Never-materialized anonymous page: nothing on swap to fetch.
  if (!pte.ever_materialized && as->BackingOf(op.vpage) != Backing::kSwap) {
    ++stats_.prefetch_noop;
    ++as->stats().prefetches_noop;
    ReleaseLock(t, lock);
    return ExecResult::kCompleted;
  }

  // Local replacement (extension): prefetching never evicts; a process at its
  // partition cap simply has its prefetches dropped.
  const int64_t partition = config_.tunables.local_partition_pages;
  if (partition > 0 && as->page_table().resident_count() >= partition) {
    ++stats_.prefetch_dropped;
    ++as->stats().prefetches_dropped;
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kPrefetchDrop, t->id(), as->id(), op.vpage);
    }
    ReleaseLock(t, lock);
    return ExecResult::kCompleted;
  }

  // "If there is no free memory, the request is discarded immediately."
  const FrameId f = AllocateFrame(as, op.vpage);
  if (f == kNoFrame) {
    ++stats_.prefetch_dropped;
    ++as->stats().prefetches_dropped;
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kPrefetchDrop, t->id(), as->id(), op.vpage);
    }
    WakeDaemon();
    ReleaseLock(t, lock);
    return ExecResult::kCompleted;
  }

  frames_.set_io_busy(f, true);
  t->fault_frame_ = f;
  pte.frame = f;  // lets touches collapse onto the in-flight prefetch
  pte.ever_materialized = true;
  as->bitmap()->Set(op.vpage);
  ++stats_.prefetch_io;
  ReleaseLock(t, lock);
  if (TMH_UNLIKELY(observing_)) {
    event_log_.Record(Now(), KernelEventType::kPrefetchIssue, t->id(), as->id(), op.vpage);
  }
  Block(t, Thread::BlockReason::kIo, *elapsed);
  swap_->ReadPage(as->SwapSlot(op.vpage), [this, t]() {
    t->fault_phase_ = Thread::FaultPhase::kIoDone;
    Wake(t);
  });
  return ExecResult::kBlocked;
}

// --- PagingDirected release (kRelease) -----------------------------------------

Kernel::ExecResult Kernel::DoRelease(Thread* t, Op& op, SimDuration* elapsed) {
  AddressSpace* as = op.as != nullptr ? op.as : t->as_;
  assert(as != nullptr && as->HasPagingDirected());
  MemoryLock& lock = as->memory_lock();
  const CostModel& costs = config_.costs;

  if (!AcquireOrBlock(t, lock, elapsed)) {
    return ExecResult::kBlocked;
  }

  Charge(t, elapsed, costs.release_syscall + op.count * costs.release_per_page,
         &TimeBreakdown::system);
  ++stats_.release_requests;
  ++as->stats().release_requests;

  // On a tiered machine the Eq. 2 reuse priority chooses the demotion depth:
  // priority 0 (no expected reuse) sinks to the deepest tier; each higher
  // priority keeps the page one tier closer to DRAM.
  int32_t depth = 0;
  if (TMH_UNLIKELY(config_.has_slow_tiers())) {
    const int32_t slow = config_.num_slow_tiers();
    depth = std::clamp<int32_t>(slow - op.priority, 1, slow);
  }

  bool enqueued_any = false;
  for (VPage p = op.vpage; p < op.vpage + op.count; ++p) {
    if (p < 0 || p >= as->num_pages()) {
      continue;
    }
    Pte& pte = as->page_table().at(p);
    if (!pte.resident || pte.invalid_reason == InvalidReason::kReleasePending) {
      continue;  // nothing resident, or already queued
    }
    if (frames_.io_busy(pte.frame)) {
      continue;
    }
    // Clear the bit and invalidate the mapping so any re-reference before the
    // releaser gets to it takes a soft fault that re-sets the bit.
    if (as->HasPagingDirected()) {
      as->bitmap()->Clear(p);
    }
    pte.valid = false;
    pte.invalid_reason = InvalidReason::kReleasePending;
    as->page_table().SyncValid(p);
    release_work_.push_back(ReleaseWorkItem{as, p, depth});
    if (TMH_UNLIKELY(observing_)) {
      event_log_.Record(Now(), KernelEventType::kReleaseEnqueue, t->id(), as->id(), p);
    }
    ++stats_.release_pages_enqueued;
    ++as->stats().release_pages_requested;
    Hook(VmHookOp::kReleaseEnqueue, as->id(), p, pte.frame);
    enqueued_any = true;
  }
  UpdateSharedHeader(as);
  ReleaseLock(t, lock);
  if (enqueued_any && releaser_ != nullptr) {
    Signal(&releaser_->wait_queue());
  }
  return ExecResult::kCompleted;
}

// --- online access monitoring entry points -----------------------------------
// These run from monitor timer events, which execute atomically between thread
// quanta; the skip conditions below reject any page in a transitional state
// (non-resident, I/O-busy, already queued), and threads re-examine PTE state
// under the memory lock when they resume, so no thread observes a torn update.

void Kernel::AttachMonitor(AccessMonitor* monitor) {
  assert((monitor == nullptr || monitor_ == nullptr) && "at most one access monitor");
  monitor_ = monitor;
}

bool Kernel::MonitorSamplePage(AddressSpace* as, VPage vpage) {
  if (vpage < 0 || vpage >= as->num_pages()) {
    return false;
  }
  Pte& pte = as->page_table().at(vpage);
  if (!pte.resident || !pte.valid || frames_.io_busy(pte.frame)) {
    return false;
  }
  // Mirror of the daemon's reference-bit sampling, for one page: invalidate
  // the mapping and clear the bit; the next touch soft-faults and proves the
  // access. The resident bitmap bit stays set — the page is still resident.
  pte.valid = false;
  pte.invalid_reason = InvalidReason::kMonitorSampled;
  as->page_table().SyncValid(vpage);
  frames_.set_referenced(pte.frame, false);
  ++stats_.monitor_invalidations;
  ++as->stats().invalidations_received;
  Hook(VmHookOp::kInvalidate, as->id(), vpage, pte.frame);
  return true;
}

bool Kernel::MonitorEnqueueRelease(AddressSpace* as, VPage vpage, int32_t depth) {
  if (vpage < 0 || vpage >= as->num_pages()) {
    return false;
  }
  Pte& pte = as->page_table().at(vpage);
  if (!pte.resident || pte.invalid_reason == InvalidReason::kReleasePending) {
    return false;  // nothing resident, or already queued
  }
  if (frames_.io_busy(pte.frame)) {
    return false;
  }
  // Per-page body of the release syscall (DoRelease), verbatim: the releaser
  // and the rescue path cannot tell a monitor-issued release from a
  // compiler-inserted one.
  if (as->HasPagingDirected()) {
    as->bitmap()->Clear(vpage);
  }
  pte.valid = false;
  pte.invalid_reason = InvalidReason::kReleasePending;
  as->page_table().SyncValid(vpage);
  release_work_.push_back(ReleaseWorkItem{as, vpage, depth});
  if (TMH_UNLIKELY(observing_)) {
    event_log_.Record(Now(), KernelEventType::kReleaseEnqueue, /*thread=*/0, as->id(), vpage);
  }
  ++stats_.release_pages_enqueued;
  ++stats_.monitor_releases_enqueued;
  ++as->stats().release_pages_requested;
  Hook(VmHookOp::kReleaseEnqueue, as->id(), vpage, pte.frame);
  return true;
}

void Kernel::MonitorPublishReleases(AddressSpace* as) {
  UpdateSharedHeader(as);
  WakeReleaser();
}

bool Kernel::MonitorProtectPage(AddressSpace* as, VPage vpage) {
  if (vpage < 0 || vpage >= as->num_pages()) {
    return false;
  }
  const Pte& pte = as->page_table().at(vpage);
  if (!pte.resident) {
    return false;
  }
  frames_.set_referenced(pte.frame, true);
  ++stats_.monitor_pages_protected;
  return true;
}

}  // namespace tmh
