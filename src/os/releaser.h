// The releaser daemon (Section 3.1.2).
//
// A kernel daemon specialized to reclaim only the pages an application has
// explicitly released. It drains a work queue of (address space, page)
// entries; for each page it first re-checks that the page has not been
// referenced again since the release request, then writes back dirty contents
// and frees the frame to the *tail* of the free list so a too-early release
// can still be rescued. It acquires the same per-address-space memory locks
// as the paging daemon, but over much smaller batches, so its lock holds are
// short and contention with fault handling stays low.

#ifndef TMH_SRC_OS_RELEASER_H_
#define TMH_SRC_OS_RELEASER_H_

#include <cstdint>
#include <vector>

#include "src/os/thread.h"
#include "src/vm/types.h"

namespace tmh {

class AddressSpace;
class Kernel;

class Releaser : public Program {
 public:
  explicit Releaser(Kernel* kernel) : kernel_(kernel) {}

  Op Next(Kernel& kernel) override;

  [[nodiscard]] WaitQueue& wait_queue() { return wq_; }

  // Checker introspection: pages gathered off the kernel's release queue but
  // not yet resolved by ProcessBatch (the lock wait can be long). Empty once
  // the batch has been processed.
  [[nodiscard]] std::vector<VPage> UnresolvedBatch() const {
    std::vector<VPage> pages;
    if (!batch_resolved_) {
      pages.reserve(batch_.size());
      for (const BatchEntry& entry : batch_) {
        pages.push_back(entry.vpage);
      }
    }
    return pages;
  }
  [[nodiscard]] const AddressSpace* batch_as() const {
    return batch_resolved_ ? nullptr : batch_as_;
  }

 private:
  enum class Phase : uint8_t { kIdle, kLocked, kUnlock };

  // One gathered release request. `depth` > 0 demotes the page into that slow
  // tier (memory-tiering machines) instead of freeing its frame.
  struct BatchEntry {
    VPage vpage;
    int32_t depth;
  };

  // Pops up to releaser_batch same-address-space items off the kernel's
  // release work queue into batch_. Returns the target AS or nullptr if the
  // queue is empty.
  AddressSpace* GatherBatch();
  // Frees (or skips) every page in batch_ (owner's lock is held). Returns the
  // CPU cost of the work.
  SimDuration ProcessBatch();

  Kernel* kernel_;
  WaitQueue wq_;
  Phase phase_ = Phase::kIdle;
  std::vector<BatchEntry> batch_;
  AddressSpace* batch_as_ = nullptr;
  bool batch_resolved_ = true;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_RELEASER_H_
