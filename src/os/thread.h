// Simulated kernel threads and the operation stream they execute.
//
// A thread runs a Program: a resumable generator of Ops. The kernel pulls one
// Op at a time while the thread holds a CPU; an Op that blocks (page-in I/O,
// lock wait, empty work queue, sleep) suspends the thread until its waker
// fires. Every microsecond a thread spends is attributed to one of the four
// buckets of Figure 7: user time, system time (fault handling), stalled for
// unavailable resources (CPU / memory / memory locks), or stalled for I/O.

#ifndef TMH_SRC_OS_THREAD_H_
#define TMH_SRC_OS_THREAD_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/vm/types.h"

namespace tmh {

class AddressSpace;
class Kernel;
class MemoryLock;
class Thread;

// A wait queue for condition-style blocking (work queues, memory waits,
// daemon wakeups). Dumb container; Kernel performs the actual wake.
class WaitQueue {
 public:
  void Enqueue(Thread* t) { waiters_.push_back(t); }
  Thread* Dequeue() {
    if (waiters_.empty()) {
      return nullptr;
    }
    Thread* t = waiters_.front();
    waiters_.pop_front();
    return t;
  }
  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] size_t size() const { return waiters_.size(); }

  // Signals with no waiter are remembered so a subsequent Wait completes
  // immediately (prevents lost wakeups for the daemons' work loops).
  void AddPendingSignal() { ++pending_signals_; }
  bool ConsumeSignal() {
    if (pending_signals_ == 0) {
      return false;
    }
    --pending_signals_;
    return true;
  }
  // Drops accumulated signals (used when a daemon gives up until its next
  // periodic tick and must not spin on stale demand wakes).
  void ClearPendingSignals() { pending_signals_ = 0; }

 private:
  std::deque<Thread*> waiters_;
  uint64_t pending_signals_ = 0;
};

// One access stream of a fused touch run: at step s the stream references page
// `base + s * page_stride` (write iff `is_write`). A run descriptor bundles the
// streams of one innermost-loop span whose refs all cross pages in lockstep.
struct TouchRunRef {
  VPage base = kNoVPage;
  int64_t page_stride = 1;  // pages advanced per step (>= 1)
  bool is_write = false;
};

// Descriptor for a fused run of `steps` interpreter steps. Each step touches
// one page per ref and then burns `step_cost[s]` of user compute time — the
// exact per-op stream the interpreter would otherwise emit as
// (num_refs x kTouch + 1 x kCompute) per step. The kernel executes the whole
// run word-parallel when every page is resident-and-valid, and otherwise
// replays it step by step through DoTouch, resuming from the (next_step,
// next_ref) cursor after a blocking fault or a slice preemption. The emitting
// Program owns the descriptor (and the step_cost array) and must keep both
// alive until the op completes; Next() is only called after full completion,
// so a single reusable buffer per program suffices.
struct TouchRunDesc {
  static constexpr int kMaxRefs = 4;
  TouchRunRef refs[kMaxRefs];
  int32_t num_refs = 0;
  int64_t steps = 0;
  const SimDuration* step_cost = nullptr;  // [steps] user time per step
  // Resume cursor, advanced by the kernel's per-step fallback path.
  int64_t next_step = 0;
  int32_t next_ref = 0;
};

// One operation emitted by a Program.
struct Op {
  enum class Kind : uint8_t {
    kCompute,      // burn `duration` of user time
    kTouch,        // reference page `vpage` of `as`, then burn `duration` user time
    kTouchRun,     // execute the fused touch run described by `run`
    kSleep,        // leave the CPU for `duration` (interactive think time)
    kPrefetch,     // PagingDirected prefetch of `vpage` (blocks until page arrives)
    kRelease,      // PagingDirected release of [vpage, vpage+count), non-blocking
    kWait,         // block on `wait` until signaled
    kAcquireLock,  // acquire `lock` (blocks if held)
    kReleaseLock,  // release `lock`
    kYield,        // give up the CPU voluntarily, stay runnable
    kExit,         // program finished
  };

  Kind kind = Kind::kCompute;
  SimDuration duration = 0;
  VPage vpage = kNoVPage;
  int64_t count = 1;          // release: number of pages
  bool is_write = false;      // touch: store vs load
  int32_t priority = 0;       // release: Eq. 2 reuse priority
  int32_t tag = -1;           // release: compiler-generated request identifier
  WaitQueue* wait = nullptr;
  MemoryLock* lock = nullptr;
  AddressSpace* as = nullptr;  // target address space (defaults to thread's own)
  TouchRunDesc* run = nullptr;  // touch-run: descriptor owned by the Program

  static Op Compute(SimDuration d) { return Op{.kind = Kind::kCompute, .duration = d}; }
  static Op Touch(VPage p, bool write, SimDuration d) {
    return Op{.kind = Kind::kTouch, .duration = d, .vpage = p, .is_write = write};
  }
  static Op TouchRun(TouchRunDesc* desc) {
    return Op{.kind = Kind::kTouchRun, .run = desc};
  }
  static Op Sleep(SimDuration d) { return Op{.kind = Kind::kSleep, .duration = d}; }
  static Op Prefetch(VPage p) { return Op{.kind = Kind::kPrefetch, .vpage = p}; }
  static Op Release(VPage p, int64_t n, int32_t prio, int32_t tag) {
    return Op{.kind = Kind::kRelease, .vpage = p, .count = n, .priority = prio, .tag = tag};
  }
  static Op Wait(WaitQueue* q) { return Op{.kind = Kind::kWait, .wait = q}; }
  static Op Acquire(MemoryLock* l) { return Op{.kind = Kind::kAcquireLock, .lock = l}; }
  static Op ReleaseL(MemoryLock* l) { return Op{.kind = Kind::kReleaseLock, .lock = l}; }
  static Op Yield() { return Op{.kind = Kind::kYield}; }
  static Op Exit() { return Op{.kind = Kind::kExit}; }
};

// A resumable generator of Ops. Next() is called only when the previous Op has
// fully completed, so implementations advance their internal state in Next().
class Program {
 public:
  virtual ~Program() = default;
  virtual Op Next(Kernel& kernel) = 0;
};

// Figure 7's execution-time decomposition.
struct TimeBreakdown {
  SimDuration user = 0;
  SimDuration system = 0;          // fault handling and syscalls
  SimDuration resource_stall = 0;  // CPU queue + memory waits + memory-lock waits
  SimDuration io_stall = 0;        // blocked on page-in for own faults
  SimDuration sleep = 0;           // voluntary sleep (not part of execution time)

  [[nodiscard]] SimDuration Execution() const { return user + system + resource_stall + io_stall; }
};

// Per-thread fault statistics (Figures 8 and 10c).
struct FaultStats {
  uint64_t hard_faults = 0;          // required disk I/O
  uint64_t soft_faults = 0;          // daemon-invalidated revalidations
  uint64_t fresh_prefetch_touches = 0;  // first touch of a prefetched page
  uint64_t rescue_faults = 0;        // reclaimed from the free list
  uint64_t zero_fill_faults = 0;
  uint64_t release_saves = 0;        // touch revalidated a release-pending page
  uint64_t collapsed_faults = 0;     // waited on an already-in-flight page-in
};

class Thread {
 public:
  enum class State : uint8_t { kRunnable, kRunning, kBlocked, kDone };
  // Why a blocked thread is blocked; determines the stall bucket on wake.
  enum class BlockReason : uint8_t {
    kNone,
    kSleep,
    kIo,         // own page-in
    kLock,       // memory-lock wait
    kMemory,     // waiting for a free frame
    kWaitQueue,  // generic condition (work queues, daemon timers)
  };

  Thread(int32_t id, std::string name, AddressSpace* as, Program* program, bool is_daemon)
      : id_(id), name_(std::move(name)), as_(as), program_(program), is_daemon_(is_daemon) {}

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] int32_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] AddressSpace* address_space() const { return as_; }
  [[nodiscard]] Program* program() const { return program_; }
  // Daemon threads' time is kernel overhead, not application execution time.
  [[nodiscard]] bool is_daemon() const { return is_daemon_; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] BlockReason block_reason() const { return block_reason_; }
  [[nodiscard]] const TimeBreakdown& times() const { return times_; }
  [[nodiscard]] const FaultStats& faults() const { return faults_; }
  // Per-page-in wait times (ns): how long each of this thread's faults spent
  // blocked on I/O — the "page fault service time" the paper's Section 1.1
  // says the memory hog inflates.
  [[nodiscard]] const Accumulator& fault_service() const { return fault_service_; }
  [[nodiscard]] SimTime finished_at() const { return finished_at_; }
  [[nodiscard]] SimTime started_at() const { return started_at_; }

 private:
  friend class Kernel;
  friend class MemoryLock;

  const int32_t id_;
  const std::string name_;
  AddressSpace* const as_;
  Program* const program_;
  const bool is_daemon_;

  State state_ = State::kRunnable;
  BlockReason block_reason_ = BlockReason::kNone;
  SimTime block_start = 0;    // when the current block/queue wait began
  SimTime started_at_ = 0;
  SimTime finished_at_ = 0;

  // Pending op and resumable fault-handling state (see Kernel::DoTouch).
  Op pending_op_;
  bool has_pending_ = false;
  enum class FaultPhase : uint8_t { kNone, kIoDone } fault_phase_ = FaultPhase::kNone;
  FrameId fault_frame_ = kNoFrame;

  TimeBreakdown times_;
  FaultStats faults_;
  Accumulator fault_service_;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_THREAD_H_
