// Per-process virtual address space.

#ifndef TMH_SRC_OS_ADDRESS_SPACE_H_
#define TMH_SRC_OS_ADDRESS_SPACE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/os/lock.h"
#include "src/vm/page_table.h"
#include "src/vm/residency_bitmap.h"
#include "src/vm/types.h"

namespace tmh {

// What a never-resident page contains.
enum class Backing : uint8_t {
  kZeroFill,  // anonymous memory: first touch is a zero-fill fault, no I/O
  kSwap,      // out-of-core data: present on the swap stripe from the start
};

// A contiguous virtual region with uniform backing.
struct Region {
  std::string name;
  VPage first_page = 0;
  VPage page_count = 0;
  Backing backing = Backing::kZeroFill;
};

// Per-address-space counters used by Table 3 and Figure 9.
struct AsStats {
  uint64_t pages_stolen_from = 0;    // reclaimed by the paging daemon
  uint64_t pages_released = 0;       // freed via explicit release requests
  uint64_t release_requests = 0;     // syscalls issued
  uint64_t release_pages_requested = 0;
  uint64_t releases_skipped = 0;     // releaser found the page re-referenced
  uint64_t prefetches_issued = 0;
  uint64_t prefetches_dropped = 0;   // no free memory at request time
  uint64_t prefetches_noop = 0;      // page already resident
  uint64_t rescued_from_steal = 0;   // rescued pages the daemon had freed
  uint64_t rescued_from_release = 0; // rescued pages a release had freed
  uint64_t invalidations_received = 0;  // daemon reference-bit sampling
};

class AddressSpace {
 public:
  AddressSpace(AsId id, std::string name, VPage num_pages, int64_t swap_base_slot)
      : id_(id),
        name_(std::move(name)),
        page_table_(num_pages),
        memory_lock_("aslock:" + name_),
        swap_base_slot_(swap_base_slot) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  [[nodiscard]] AsId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] VPage num_pages() const { return page_table_.size(); }

  [[nodiscard]] PageTable& page_table() { return page_table_; }
  [[nodiscard]] const PageTable& page_table() const { return page_table_; }
  [[nodiscard]] MemoryLock& memory_lock() { return memory_lock_; }

  // Swap slot backing a given virtual page (each AS owns a disjoint extent).
  [[nodiscard]] int64_t SwapSlot(VPage vpage) const { return swap_base_slot_ + vpage; }

  void AddRegion(Region region) {
    assert(region.first_page >= 0 &&
           region.first_page + region.page_count <= page_table_.size());
    regions_.push_back(std::move(region));
  }
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

  // Backing of `vpage` (pages outside any region are zero-fill).
  [[nodiscard]] Backing BackingOf(VPage vpage) const {
    for (const Region& r : regions_) {
      if (vpage >= r.first_page && vpage < r.first_page + r.page_count) {
        return r.backing;
      }
    }
    return Backing::kZeroFill;
  }

  // --- PagingDirected policy module attachment -------------------------------
  // Created lazily when a process attaches the PM; covers the whole AS, with
  // bits initially set and cleared for the attached range (Section 3.1.1).
  void AttachPagingDirected(VPage first_page, VPage page_count) {
    if (bitmap_ == nullptr) {
      bitmap_ = std::make_unique<ResidencyBitmap>(page_table_.size());
      bitmap_->SetAll();
    }
    bitmap_->ClearRange(first_page, page_count);
  }
  [[nodiscard]] bool HasPagingDirected() const { return bitmap_ != nullptr; }
  [[nodiscard]] ResidencyBitmap* bitmap() { return bitmap_.get(); }
  [[nodiscard]] const ResidencyBitmap* bitmap() const { return bitmap_.get(); }

  // Free-memory level observed when the shared header was last written
  // (threshold-notification extension; maintained by the kernel).
  [[nodiscard]] int64_t header_free_snapshot() const { return header_free_snapshot_; }
  void set_header_free_snapshot(int64_t free_pages) { header_free_snapshot_ = free_pages; }

  // Home memory node (NUMA-style shard) assigned by the kernel at creation:
  // id % num_nodes. Allocation prefers this node's free list.
  [[nodiscard]] int home_node() const { return home_node_; }
  void set_home_node(int node) { home_node_ = node; }

  // Whether the kernel's over-maxrss index currently lists this AS. Cached
  // here so the index is touched only when the resident count actually
  // crosses the maxrss boundary (O(1) on every other map/unmap).
  [[nodiscard]] bool over_maxrss_marked() const { return over_maxrss_marked_; }
  void set_over_maxrss_marked(bool marked) { over_maxrss_marked_ = marked; }

  // Per-process clock cursor for the local-replacement extension.
  [[nodiscard]] VPage local_clock_cursor() const { return local_clock_cursor_; }
  void set_local_clock_cursor(VPage cursor) { local_clock_cursor_ = cursor; }

  [[nodiscard]] AsStats& stats() { return stats_; }
  [[nodiscard]] const AsStats& stats() const { return stats_; }

  // --- reactive eviction (VINO-style, Section 2.2's contrasted alternative) --
  // When registered, the paging daemon asks the application which of its pages
  // to reclaim instead of aging them with the clock. The handler returns up to
  // `count` victim page numbers. This implements the *reactive* model the
  // paper argues is insufficient: it improves the app's own replacement but
  // cannot isolate other processes from the memory hog.
  using EvictionHandler = std::function<std::vector<VPage>(int64_t count)>;
  void set_eviction_handler(EvictionHandler handler) {
    eviction_handler_ = std::move(handler);
  }
  [[nodiscard]] bool HasEvictionHandler() const { return eviction_handler_ != nullptr; }
  [[nodiscard]] std::vector<VPage> AskEvictionHandler(int64_t count) const {
    return eviction_handler_(count);
  }

 private:
  const AsId id_;
  const std::string name_;
  PageTable page_table_;
  MemoryLock memory_lock_;
  const int64_t swap_base_slot_;
  std::vector<Region> regions_;
  std::unique_ptr<ResidencyBitmap> bitmap_;
  EvictionHandler eviction_handler_;
  int64_t header_free_snapshot_ = 0;
  VPage local_clock_cursor_ = 0;
  int home_node_ = 0;
  bool over_maxrss_marked_ = false;
  AsStats stats_;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_ADDRESS_SPACE_H_
