// The paging daemon (IRIX "vhand" analogue).
//
// Woken periodically and on demand when free memory drops below min_freemem,
// it sweeps a clock hand over physical frames until free memory reaches the
// target. Because the MIPS TLB lacks hardware reference bits, the first
// encounter of a possibly-referenced frame *invalidates* its mapping (the next
// touch takes a soft fault that proves liveness); a frame found still invalid
// and unreferenced on a later encounter is stolen. While it examines a
// process's frames the daemon holds that process's memory lock for the whole
// batch — the lock contention Section 4.3 identifies as a dominant cost.

#ifndef TMH_SRC_OS_PAGING_DAEMON_H_
#define TMH_SRC_OS_PAGING_DAEMON_H_

#include <cstdint>
#include <vector>

#include "src/os/thread.h"
#include "src/vm/types.h"

namespace tmh {

class Kernel;
class MemoryLock;

class PagingDaemon : public Program {
 public:
  explicit PagingDaemon(Kernel* kernel) : kernel_(kernel) {}

  Op Next(Kernel& kernel) override;

  [[nodiscard]] WaitQueue& wait_queue() { return wq_; }

  // Activation counter for Table 3 ("number of times the paging daemon needs
  // to operate").
  [[nodiscard]] uint64_t activations() const { return activations_; }

 private:
  enum class Phase : uint8_t { kIdle, kLocked, kUnlock };

  // Gathers the next batch of same-owner frames under the clock hands into
  // batch_. Nodes are tried most-pressured first (fewest free pages, tie ->
  // lowest index), each with its own hand confined to its frame range; with
  // one node this reduces exactly to the historical single global hand. If
  // `filter` is non-null only its frames are eligible (maxrss trimming).
  // Returns the owning address space, or nullptr if none found.
  AddressSpace* GatherBatch(AddressSpace* filter);
  // One clock pass over `node`'s frame range (at most one lap).
  AddressSpace* GatherBatchFromNode(AddressSpace* filter, int node);
  // Invalidates or steals every frame in batch_ (owner's lock is held).
  // Returns the CPU cost of the work.
  SimDuration ProcessBatch();
  // First address space whose RSS exceeds maxrss, or nullptr. O(1): reads
  // the kernel's boundary-crossing-maintained index.
  AddressSpace* FindOverMaxrss() const;

  Kernel* kernel_;
  WaitQueue wq_;
  Phase phase_ = Phase::kIdle;
  bool active_ = false;
  int64_t sweep_quota_ = 0;  // minimum frames to scan this activation
  // One clock hand per memory node, each an absolute frame index inside its
  // node's range; lazily sized on first use.
  std::vector<int64_t> clock_hands_;
  std::vector<FrameId> batch_;
  AddressSpace* batch_as_ = nullptr;
  int64_t scanned_this_round_ = 0;
  uint64_t activations_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_PAGING_DAEMON_H_
