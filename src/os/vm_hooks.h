// Checker hook interface for the VM subsystem.
//
// The kernel narrates every semantic transition of the memory system — frame
// allocation, map/unmap, free-list pushes, rescues, writebacks, dirty
// transitions, release queueing, daemon sweeps, shared-header updates — as a
// stream of VmHookEvents to an attached VmChecker. The stream is exactly the
// set of "kernel-visible operations" a reference model needs to replay the
// run, so src/check can maintain a deliberately naive shadow VM (the oracle)
// and cross-validate the optimized kernel against it after every simulation
// event. With no checker attached every hook site is a single predicted-false
// pointer test, mirroring the observability layer's observing_ guard.
//
// This header lives in src/os (not src/check) so the kernel never depends on
// the checker library; src/check implements VmChecker against the kernel's
// public introspection surface.

#ifndef TMH_SRC_OS_VM_HOOKS_H_
#define TMH_SRC_OS_VM_HOOKS_H_

#include <cstdint>

#include "src/sim/time.h"
#include "src/vm/types.h"

namespace tmh {

class Kernel;

// Semantic VM transitions, in kernel-emission order.
enum class VmHookOp : uint8_t {
  kAlloc,          // frame popped from the free-list head and assigned (as, vpage)
  kMap,            // mapping installed; a = validated (1) or fresh-prefetch (0)
  kUnmap,          // mapping removed; a = FreedBy of the reclaim path
  kFreePushHead,   // frame pushed at the free-list head (daemon steals)
  kFreePushTail,   // frame pushed at the free-list tail (releases)
  kRescue,         // frame removed from mid-list for (as, vpage); a = FreedBy
  kWritebackBegin, // dirty page-out started for the frame
  kWritebackEnd,   // page-out finished; dirty cleared
  kDirty,          // frame transitioned clean -> dirty
  kValidate,       // resident mapping revalidated by a touch; a = old InvalidReason
  kInvalidate,     // daemon reference-bit sampling invalidated the mapping
  kReleaseEnqueue, // release syscall queued the page for the releaser
  kReleaseSkip,    // releaser dropped a stale request (page re-referenced/gone)
  kReleaserBatch,  // one releaser batch resolved; a = pages freed
  kDaemonSweep,    // one paging-daemon batch resolved; a = pages stolen
  kHeaderUpdate,   // shared header written; a = current usage, b = upper limit
  kDemote,         // page moving DRAM -> slow tier; a = dest tier, b = tier frame
  kPromote,        // page moved slow tier -> DRAM; a = source tier, b = tier frame
  kTierEvict,      // tier-frame eviction; a = source tier, b = dest tier (0 = disk)
};

// Stable lower_snake name, for violation reports and event-tail dumps.
inline const char* VmHookOpName(VmHookOp op) {
  switch (op) {
    case VmHookOp::kAlloc: return "alloc";
    case VmHookOp::kMap: return "map";
    case VmHookOp::kUnmap: return "unmap";
    case VmHookOp::kFreePushHead: return "free_push_head";
    case VmHookOp::kFreePushTail: return "free_push_tail";
    case VmHookOp::kRescue: return "rescue";
    case VmHookOp::kWritebackBegin: return "writeback_begin";
    case VmHookOp::kWritebackEnd: return "writeback_end";
    case VmHookOp::kDirty: return "dirty";
    case VmHookOp::kValidate: return "validate";
    case VmHookOp::kInvalidate: return "invalidate";
    case VmHookOp::kReleaseEnqueue: return "release_enqueue";
    case VmHookOp::kReleaseSkip: return "release_skip";
    case VmHookOp::kReleaserBatch: return "releaser_batch";
    case VmHookOp::kDaemonSweep: return "daemon_sweep";
    case VmHookOp::kHeaderUpdate: return "header_update";
    case VmHookOp::kDemote: return "demote";
    case VmHookOp::kPromote: return "promote";
    case VmHookOp::kTierEvict: return "tier_evict";
  }
  return "?";
}

struct VmHookEvent {
  SimTime when = 0;
  VmHookOp op = VmHookOp::kAlloc;
  AsId as = kNoAs;
  VPage vpage = kNoVPage;
  FrameId frame = kNoFrame;
  int64_t a = 0;  // op-specific payload (FreedBy, InvalidReason, counts, header words)
  int64_t b = 0;
};

class VmChecker {
 public:
  virtual ~VmChecker() = default;

  // One semantic transition; emitted mid-operation, so kernel state may be
  // transiently inconsistent at call time. Feed the shadow model only.
  virtual void OnVmEvent(const VmHookEvent& event) = 0;

  // Called by the run loop after each simulation event completes; all
  // synchronous mutation sequences (unmap+free, alloc+map) are finished, so
  // full structural cross-validation is safe here.
  virtual void OnQuiescent(Kernel& kernel) = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_VM_HOOKS_H_
