// Address-space memory lock.
//
// The paper attributes much of prefetching's "stalled for resources" time to
// contention on per-address-space memory locks: while the paging daemon scans
// or steals a process's pages it holds that process's lock, and page faults
// for those regions cannot be serviced (Section 4.3). This is a FIFO sleep
// lock with handoff semantics: Release() transfers ownership directly to the
// oldest waiter and reports it so the kernel can wake it.

#ifndef TMH_SRC_OS_LOCK_H_
#define TMH_SRC_OS_LOCK_H_

#include <cassert>
#include <deque>
#include <string>

#include "src/sim/time.h"

namespace tmh {

class Thread;

class MemoryLock {
 public:
  explicit MemoryLock(std::string name) : name_(std::move(name)) {}

  MemoryLock(const MemoryLock&) = delete;
  MemoryLock& operator=(const MemoryLock&) = delete;

  // Attempts to take the lock for `t`. Returns true on success.
  bool TryAcquire(Thread* t) {
    if (holder_ != nullptr) {
      return false;
    }
    holder_ = t;
    ++acquisitions_;
    return true;
  }

  // Adds `t` to the FIFO wait list. Caller must block the thread.
  void EnqueueWaiter(Thread* t) {
    ++contended_acquisitions_;
    waiters_.push_back(t);
  }

  // Releases the lock held by `t`. If a waiter exists, ownership is handed to
  // it and it is returned so the kernel can wake it; otherwise returns null.
  Thread* Release(Thread* t) {
    assert(holder_ == t && "release by non-holder");
    (void)t;
    if (waiters_.empty()) {
      holder_ = nullptr;
      return nullptr;
    }
    holder_ = waiters_.front();
    waiters_.pop_front();
    ++acquisitions_;
    return holder_;
  }

  [[nodiscard]] Thread* holder() const { return holder_; }
  [[nodiscard]] bool IsHeldBy(const Thread* t) const { return holder_ == t; }
  [[nodiscard]] size_t waiter_count() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] uint64_t contended_acquisitions() const { return contended_acquisitions_; }

 private:
  std::string name_;
  Thread* holder_ = nullptr;
  std::deque<Thread*> waiters_;
  uint64_t acquisitions_ = 0;
  uint64_t contended_acquisitions_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_LOCK_H_
