// The simulated kernel: CPUs, scheduler, fault handling, physical memory, and
// the wiring for the paging daemon, the releaser daemon, and the
// PagingDirected policy module.
//
// Execution model: threads run Programs (streams of Ops). The kernel dispatches
// runnable threads onto `num_cpus` simulated CPUs in FIFO order; a thread holds
// its CPU for at most one quantum (or until the next pending event, whichever
// is sooner), executing Ops synchronously and charging their costs to the
// Figure 7 time buckets. Ops that block (page-in I/O, memory-lock waits, empty
// work queues, sleeps) suspend the thread until the corresponding waker runs.

#ifndef TMH_SRC_OS_KERNEL_H_
#define TMH_SRC_OS_KERNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/disk/swap_space.h"
#include "src/os/address_space.h"
#include "src/sim/compiler_hints.h"
#include "src/os/config.h"
#include "src/os/thread.h"
#include "src/os/vm_hooks.h"
#include "src/sim/event_log.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/ring_buffer.h"
#include "src/sim/trace.h"
#include "src/vm/frame_pool.h"
#include "src/vm/frame_table.h"

namespace tmh {

class AccessMonitor;
class PagingDaemon;
class Releaser;

// Global memory-management counters (Table 3, Figures 8 and 9).
struct KernelStats {
  uint64_t daemon_activations = 0;   // wakeups that found stealing work to do
  uint64_t daemon_pages_stolen = 0;
  uint64_t daemon_invalidations = 0; // reference-bit sampling invalidations
  uint64_t releaser_batches = 0;
  uint64_t releaser_pages_freed = 0;
  uint64_t releaser_skipped = 0;     // release requests dropped: page re-referenced
  uint64_t rescued_daemon_freed = 0; // rescues of daemon-freed pages
  uint64_t rescued_release_freed = 0;
  uint64_t allocations = 0;          // frames handed out (page-ins + zero-fills)
  uint64_t zero_fills = 0;
  uint64_t writebacks = 0;           // dirty page-outs
  uint64_t hard_faults = 0;
  uint64_t soft_faults = 0;          // daemon-invalidation revalidations
  uint64_t prefetch_requests = 0;
  uint64_t prefetch_dropped = 0;     // no free memory: discarded immediately
  uint64_t prefetch_noop = 0;        // already resident
  uint64_t prefetch_io = 0;          // actually read from swap
  uint64_t release_requests = 0;
  uint64_t release_pages_enqueued = 0;
  uint64_t memory_waits = 0;         // faults that had to wait for a free frame
  uint64_t reactive_evictions = 0;   // pages surrendered via an eviction handler
  uint64_t local_evictions = 0;      // self-evictions under local replacement
  uint64_t readahead_reads = 0;      // clustered page-ins issued with faults
  uint64_t monitor_invalidations = 0;     // access-monitor sampling invalidations
  uint64_t monitor_soft_faults = 0;       // revalidations of monitor samples
  uint64_t monitor_releases_enqueued = 0; // releases queued by the schemes engine
  uint64_t monitor_pages_protected = 0;   // reference bits re-set for hot regions
  uint64_t touch_runs_bulk = 0;      // fused kTouchRun ops validated & charged whole
  uint64_t touch_runs_replayed = 0;  // fused ops degraded to the per-touch replay
  uint64_t tier_demotions = 0;       // releases that migrated a page to a slow tier
  uint64_t tier_promotions = 0;      // touches that migrated a page back to DRAM
  uint64_t tier_evictions = 0;       // tier-capacity evictions (cascade or to disk)
  uint64_t tier_writebacks = 0;      // dirty last-tier evictions charged a page-out
};

class Kernel {
 public:
  explicit Kernel(const MachineConfig& config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- setup -----------------------------------------------------------------

  // Creates a process address space of `bytes` rounded up to whole pages, with
  // a disjoint swap extent backing it.
  AddressSpace* CreateAddressSpace(const std::string& name, int64_t bytes);

  // Spawns a thread executing `program` in `as` (nullptr for pure kernel
  // threads). Daemon threads' time is excluded from application breakdowns.
  Thread* Spawn(const std::string& name, AddressSpace* as, Program* program,
                bool is_daemon = false);

  // Starts the paging daemon, the releaser daemon, and the periodic timer.
  void StartDaemons();

  // Starts periodic time-series sampling (free pages, per-AS resident sets,
  // reclaim counters, swap queue depth). Call after creating the address
  // spaces whose resident sets should appear as series.
  void StartTracing(SimDuration period);
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

  // --- observability ----------------------------------------------------------

  // Turns on the structured event log and the metrics registry (typed kernel
  // events with thread/AS attribution; latency histograms for fault service,
  // prefetch queue wait, and release-to-rescue distance). Call before creating
  // address spaces or spawning threads so their names reach the trace. When
  // not enabled, every recording site reduces to one predicted-false branch.
  void EnableObservability(size_t max_events = EventLog::kDefaultCapacity);
  [[nodiscard]] bool observing() const { return observing_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] EventLog& event_log() { return event_log_; }
  // Copies the end-of-run aggregates (KernelStats, per-AS stats, swap totals)
  // into the registry so one TextDump carries counters and histograms alike.
  // Idempotent; typically called once after the run.
  void PublishMetrics();

  // --- correctness checking ---------------------------------------------------

  // Attaches (or, with nullptr, detaches) a VmChecker. While attached, every
  // semantic VM transition is narrated to it (src/os/vm_hooks.h) and it is
  // given a cross-validation opportunity after each simulation event. When
  // detached every hook site is one predicted-false branch.
  void AttachChecker(VmChecker* checker) { checker_ = checker; }
  [[nodiscard]] bool checking() const { return checker_ != nullptr; }

  // --- online access monitoring -----------------------------------------------
  // (Used by src/monitor/access_monitor.h. The monitor drives itself from the
  // event queue and mutates VM state only through these entry points, which
  // emit the standard vm_hooks stream; without an attached monitor no monitor
  // event is ever scheduled and these are never called.)

  // Attaches (or, with nullptr, detaches) the access monitor. At most one.
  void AttachMonitor(AccessMonitor* monitor);
  [[nodiscard]] bool monitoring() const { return monitor_ != nullptr; }

  // Arms a reference sample: invalidates a resident, valid, non-I/O-busy
  // mapping and clears its frame's reference bit, so the next touch takes a
  // soft fault that proves the access (the vhand sampling mechanism applied to
  // one page). The resident bitmap bit stays set — the page is still resident.
  // Returns false if the page was not in a sampleable state.
  bool MonitorSamplePage(AddressSpace* as, VPage vpage);

  // Queues one page for the releaser with compiler-release semantics: same
  // protocol as a release syscall's per-page body (invalidate, mark
  // release-pending, queue; rescue-able until actually freed). Returns true if
  // the page was queued. Call MonitorPublishReleases(as) once per batch.
  // `depth` is the slow tier to demote into (0 = free, non-tiered behavior).
  bool MonitorEnqueueRelease(AddressSpace* as, VPage vpage, int32_t depth = 0);

  // Batch epilogue for MonitorEnqueueRelease: refreshes the shared page
  // header and wakes the releaser, mirroring the tail of the release syscall.
  void MonitorPublishReleases(AddressSpace* as);

  // Re-sets the reference bit of a resident page so the paging daemon's clock
  // passes over it this revolution (the monitor's Eq. 2 priority raise for a
  // hot region). Returns true if the page was resident.
  bool MonitorProtectPage(AddressSpace* as, VPage vpage);

  // --- execution -------------------------------------------------------------

  // Runs the simulation until `done` returns true or `max_events` fire.
  // Returns true if `done` was satisfied.
  bool RunUntilDone(const std::function<bool()>& done, uint64_t max_events = 500'000'000);

  // Convenience: runs until every listed thread reaches State::kDone.
  bool RunUntilThreadsDone(const std::vector<Thread*>& threads,
                           uint64_t max_events = 500'000'000);

  [[nodiscard]] SimTime Now() const { return queue_.Now(); }
  [[nodiscard]] EventQueue& event_queue() { return queue_; }

  // CPU time the calling Program's current slice can still consume before the
  // scheduler preempts it. Valid during Program::Next (zero outside a slice);
  // run-fusing programs cap a fused run's worst-case cost below this so the
  // run never has to split across slices.
  [[nodiscard]] SimDuration SliceBudgetRemaining() const { return slice_budget_left_; }

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] const KernelStats& stats() const { return stats_; }
  [[nodiscard]] const FrameTable& frames() const { return frames_; }
  [[nodiscard]] const FramePool& free_list() const { return free_list_; }
  [[nodiscard]] SwapSpace& swap() { return *swap_; }
  [[nodiscard]] int64_t FreePages() const { return free_list_.size(); }
  // Frames handed out per memory node (sharded allocation counter; the
  // per-node isolation tests assert against this).
  [[nodiscard]] const std::vector<uint64_t>& node_allocations() const {
    return node_allocations_;
  }
  // Lowest-id address space whose resident set exceeds maxrss, or nullptr.
  // O(1) read off an index maintained at resident-count boundary crossings —
  // the paging daemon polls this every idle iteration, so a linear scan over
  // hundreds of tenants would dominate its cost at scale.
  [[nodiscard]] AddressSpace* FirstOverMaxrss() const {
    if (TMH_LIKELY(over_maxrss_.empty())) {
      return nullptr;
    }
    return address_spaces_[static_cast<size_t>(*over_maxrss_.begin())].get();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<AddressSpace>>& address_spaces() const {
    return address_spaces_;
  }
  [[nodiscard]] bool has_daemons() const { return releaser_ != nullptr; }
  [[nodiscard]] PagingDaemon& paging_daemon() { return *paging_daemon_; }
  [[nodiscard]] Releaser& releaser() { return *releaser_; }

  // Pending releaser work, in syscall order. Checker/test introspection: the
  // invariant "every release-pending PTE is queued here or gathered into the
  // releaser's unresolved batch" is cross-validated against this. `depth` is
  // the slow tier the page demotes into (memory-tiering machines; 0 = free to
  // the DRAM free list, the paper's behavior).
  struct ReleaseWorkItem {
    AddressSpace* as;
    VPage vpage;
    int32_t depth;
  };
  [[nodiscard]] const RingBuffer<ReleaseWorkItem>& release_work() const {
    return release_work_;
  }

  // One slow memory tier's physical plane (memory-tiering extension): a free
  // pool of tier-frame ids, dense identity arrays recording which (as, vpage)
  // each occupied tier frame holds, the page's dirty-at-demotion bit, and a
  // clock hand for capacity eviction. Index in tier_planes_ is slow-tier
  // number minus one; the default machine carries none.
  struct TierPlane {
    std::unique_ptr<FramePool> pool;  // free tier frames (single node)
    std::vector<AsId> owner;          // kNoAs when the tier frame is free
    std::vector<VPage> vpage;
    std::vector<uint8_t> dirty;       // page was dirty when it left DRAM
    int64_t frames = 0;
    FrameId clock_hand = 0;
    SimDuration promote_cost = 0;
    SimDuration demote_cost = 0;
  };
  [[nodiscard]] const std::vector<TierPlane>& tier_planes() const {
    return tier_planes_;
  }

  // --- PagingDirected policy module entry points ------------------------------
  // (Invoked through Ops; see policy_module.h for the user-level facade.)

  // Recomputes the shared page header for `as` (Eq. 1). Called on every
  // memory-system activity of the process, never asynchronously (Sec. 3.1.1).
  void UpdateSharedHeader(AddressSpace* as);

  // Threshold-notification extension (Sec. 3.1.1's unexplored alternative):
  // refreshes stale headers when free memory moved past the tunable threshold.
  void MaybeNotifySharedHeaders();

  // Wakes the paging daemon (demand wake; it also wakes periodically).
  void WakeDaemon();

  // Wakes the releaser daemon if daemons are running.
  void WakeReleaser();

  // Signals `q`, waking one waiter or recording a pending signal.
  void Signal(WaitQueue* q);

 private:
  friend class PagingDaemon;
  friend class Releaser;

  // kPreempted: the op consumed the slice's budget (or op cap) part-way
  // through a fused touch run; the thread keeps the op pending and resumes it
  // from the run's cursor in its next slice.
  enum class ExecResult : uint8_t { kCompleted, kBlocked, kExited, kPreempted };

  // Schedules the recurring paging-daemon timer tick.
  void DaemonTickChain(SimDuration period);

  // Scheduling.
  void MakeRunnable(Thread* t);
  void TryDispatch();
  void RunSlice(Thread* t);
  void EndSlice(Thread* t, SimDuration elapsed, bool requeue);
  void Block(Thread* t, Thread::BlockReason reason, SimDuration elapsed);
  void Wake(Thread* t);

  // Op execution. `budget` and `ops` carry the current slice's remaining
  // allowance into multi-step ops (kTouchRun) so their internal per-step
  // boundaries match the unfused per-op stream exactly.
  ExecResult ExecuteOp(Thread* t, SimDuration* elapsed, SimDuration budget, int* ops);
  ExecResult DoTouch(Thread* t, Op& op, SimDuration* elapsed);
  ExecResult DoTouchRun(Thread* t, Op& op, SimDuration* elapsed, SimDuration budget,
                        int* ops);
  ExecResult DoPrefetch(Thread* t, Op& op, SimDuration* elapsed);
  ExecResult DoRelease(Thread* t, Op& op, SimDuration* elapsed);
  // Acquires `lock` for `t` or blocks it. Returns true when the lock is held.
  bool AcquireOrBlock(Thread* t, MemoryLock& lock, SimDuration* elapsed);
  void ReleaseLock(Thread* t, MemoryLock& lock);

  // Narrates one semantic transition to the attached checker (no-op branch
  // when none is attached).
  void Hook(VmHookOp op, AsId as, VPage vpage, FrameId frame, int64_t a = 0, int64_t b = 0) {
    if (TMH_UNLIKELY(checker_ != nullptr)) {
      checker_->OnVmEvent(VmHookEvent{queue_.Now(), op, as, vpage, frame, a, b});
    }
  }
  // Sets a frame's dirty bit, narrating the clean->dirty transition.
  void MarkDirty(FrameId f) {
    if (!frames_.dirty(f)) {
      frames_.set_dirty(f, true);
      if (TMH_UNLIKELY(checker_ != nullptr)) {
        Hook(VmHookOp::kDirty, frames_.owner(f), frames_.vpage(f), f);
      }
    }
  }

  // Keeps over_maxrss_ consistent after `as`'s resident count changed.
  // O(1) unless the count just crossed the maxrss boundary.
  void UpdateOverMaxrss(AddressSpace* as) {
    const bool over =
        as->page_table().resident_count() > config_.tunables.maxrss_pages;
    if (TMH_LIKELY(over == as->over_maxrss_marked())) {
      return;
    }
    as->set_over_maxrss_marked(over);
    if (over) {
      over_maxrss_.insert(as->id());
    } else {
      over_maxrss_.erase(as->id());
    }
  }

  // Memory helpers.
  FrameId AllocateFrame(AddressSpace* as, VPage vpage);
  void MapFrame(AddressSpace* as, VPage vpage, FrameId f, bool validate);
  void UnmapFrame(AddressSpace* as, VPage vpage, FreedBy freed_by);
  // Frees `f` after `UnmapFrame`, writing back dirty contents first. Pushes at
  // the tail for releases, at the head for daemon steals.
  void FreeFrame(FrameId f, bool at_tail);
  void WakeMemoryWaiters();
  // Blocks `t` until the in-flight I/O on frame `f` completes (fault collapse
  // onto an in-flight prefetch/page-in, or wait for a writeback to finish).
  void WaitOnFrame(Thread* t, FrameId f, SimDuration elapsed);
  void WakeFrameWaiters(FrameId f);
  // Observability bookkeeping for a free-list rescue (event + distance
  // histogram). Call only when observing_, before MapFrame resets freed_by.
  void RecordRescue(Thread* t, AddressSpace* as, VPage vpage, FrameId f, FreedBy freed_by);
  // Local-replacement extension: evicts one of `as`'s own pages (round-robin
  // clock over its page table). Returns true if a victim was freed.
  bool EvictLocalVictim(AddressSpace* as);
  // Memory-tiering extension. DemotePage migrates the resident page (as,
  // vpage) into slow tier `depth` (releaser context: owner's lock held,
  // re-checks passed) and frees its DRAM frame; returns the CPU cost of the
  // migration. TierTakeFrame hands out a free frame of slow tier `tier`,
  // evicting the clock-hand victim (cascading to the next tier, or to disk
  // from the last) when the tier is full; eviction cost accumulates into
  // *cost.
  SimDuration DemotePage(AddressSpace* as, VPage vpage, int depth);
  FrameId TierTakeFrame(int tier, SimDuration* cost);
  // Read-ahead clustering: starts an unvalidated page-in of `vpage` (caller
  // holds the AS lock and has verified the page is absent and backed).
  void IssueReadAhead(AddressSpace* as, VPage vpage);
  void Charge(Thread* t, SimDuration* elapsed, SimDuration d, SimDuration TimeBreakdown::*bucket);

  const MachineConfig config_;
  EventQueue queue_;
  FrameTable frames_;
  FramePool free_list_;
  std::unique_ptr<SwapSpace> swap_;
  // Slow-tier planes (empty unless config_.has_slow_tiers()).
  std::vector<TierPlane> tier_planes_;

  std::vector<std::unique_ptr<AddressSpace>> address_spaces_;
  std::vector<std::unique_ptr<Thread>> threads_;
  int64_t next_swap_slot_ = 0;
  int32_t next_thread_id_ = 1;

  // Scheduler state.
  std::deque<Thread*> run_queue_;
  int busy_cpus_ = 0;
  // True while RunSlice is on the stack. Wakes performed by an op must take
  // the queued dispatch path: dispatching inline from inside a running slice
  // would reorder the woken thread's execution ahead of already-pending
  // events.
  bool in_slice_ = false;
  // Budget the currently-running slice has left before its next op starts.
  // Programs read this (via SliceBudgetRemaining) to size fused touch runs so
  // a run planned now is guaranteed to fit the slice it executes in.
  SimDuration slice_budget_left_ = 0;
  // Bumped on every thread transition into State::kDone. RunUntilThreadsDone
  // gates its (otherwise per-event) predicate re-evaluation on this counter.
  uint64_t done_generation_ = 1;
  // Stop predicate installed by RunUntilDone for the duration of its batched
  // run loop. TryDispatch consults it before taking the inline fast path: once
  // it fires, dispatch reverts to queued zero-delay events so the run loop
  // observes the same stop boundary the one-event-at-a-time loop would (the
  // inline path would otherwise fuse the dispatch into the waking event and
  // run the slice past the requested stop point). Must be side-effect free;
  // `stop_hint_fired_` latches the result so it is evaluated at most once per
  // dispatch attempt after firing.
  const std::function<bool()>* stop_hint_ = nullptr;
  bool stop_hint_fired_ = false;
  bool StopHintFires();

  // Per-node allocation counters (index = memory node).
  std::vector<uint64_t> node_allocations_;
  // Ids of address spaces over their maxrss, ordered (lowest id first, i.e.
  // creation order — same AS the historical linear scan would have found).
  std::set<AsId> over_maxrss_;

  // Threads waiting for a free frame (fault path only; prefetches drop).
  WaitQueue memory_wait_;
  // Threads waiting for a specific frame's in-flight I/O to complete.
  std::unordered_map<FrameId, std::vector<Thread*>> frame_waiters_;

  // Daemons.
  std::unique_ptr<PagingDaemon> paging_daemon_;
  std::unique_ptr<Releaser> releaser_;
  Thread* daemon_thread_ = nullptr;
  Thread* releaser_thread_ = nullptr;
  RingBuffer<ReleaseWorkItem> release_work_;

  KernelStats stats_;

  // Tracing.
  void TraceTick(SimDuration period);
  TraceRecorder trace_;

  // Correctness checking (dormant unless AttachChecker ran).
  VmChecker* checker_ = nullptr;

  // Online access monitoring (dormant unless AttachMonitor ran).
  AccessMonitor* monitor_ = nullptr;

  // Observability (all dormant unless EnableObservability ran).
  bool observing_ = false;
  MetricsRegistry metrics_;
  EventLog event_log_;
  // Hot-path histogram handles, resolved once at enable time.
  Histogram* hist_fault_service_ = nullptr;
  Histogram* hist_rescue_release_ = nullptr;
  Histogram* hist_rescue_daemon_ = nullptr;
  Gauge* gauge_free_pages_ = nullptr;
  // When each free frame entered the free list (rescue-distance measurement).
  std::unordered_map<FrameId, SimTime> freed_at_;
};

}  // namespace tmh

#endif  // TMH_SRC_OS_KERNEL_H_
