// Machine and kernel configuration.
//
// Defaults mirror Table 1 of the paper: a 4-processor SGI Origin 200 with
// ~75 MB of memory available to user programs, 16 KB pages, and swap striped
// over ten Seagate Cheetah 4LP disks on five SCSI adapters. The cost model
// captures the CPU-side service times whose *relative* magnitudes drive the
// paper's results (hard vs soft faults, daemon vs releaser per-page work).

#ifndef TMH_SRC_OS_CONFIG_H_
#define TMH_SRC_OS_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/disk/swap_space.h"
#include "src/sim/time.h"

namespace tmh {

// CPU-side costs of memory-management events, in microseconds.
struct CostModel {
  SimDuration touch_hit = 0;                 // valid-PTE touch: no trap at all
  SimDuration soft_fault = 60 * kUsec;       // revalidate a daemon-invalidated page
  // First touch of a prefetched page: prefetch completion deliberately skips
  // validation and the TLB, so the touch takes a real (I/O-free) page fault
  // that finishes the job — which is why the paper's system time is nearly
  // identical with and without prefetching.
  SimDuration fresh_prefetch_validate = 150 * kUsec;
  SimDuration rescue_fault = 90 * kUsec;     // reclaim a page from the free list
  SimDuration hard_fault_service = 250 * kUsec;  // CPU portion of a page-in fault
  SimDuration zero_fill = 150 * kUsec;       // first touch of an anonymous page
  SimDuration release_syscall = 15 * kUsec;  // fixed cost of a release request
  SimDuration release_per_page = 2 * kUsec;
  SimDuration prefetch_issue = 12 * kUsec;   // pool-thread CPU per prefetch request
  SimDuration daemon_scan_per_page = 8 * kUsec;   // vhand clock-hand work per frame
  SimDuration daemon_steal_per_page = 30 * kUsec; // full reclaim by the paging daemon
  SimDuration releaser_per_page = 10 * kUsec;     // specialized releaser per-page work
  SimDuration lock_acquire = 1 * kUsec;
};

// IRIX-style tunable parameters (Section 3.1.3).
struct Tunables {
  // Paging daemon wakes when free memory falls below this many pages
  // (min_freemem in the paper) ...
  int64_t min_freemem_pages = 64;
  // ... and steals until free memory reaches this many pages.
  int64_t target_freemem_pages = 192;
  // Maximum resident set size per process (maxrss). Effectively unlimited by
  // default, as in the paper's experiments.
  int64_t maxrss_pages = INT64_MAX / 2;
  // Periodic activation interval of the paging daemon.
  SimDuration daemon_period = 250 * kMsec;
  // Frames examined per address-space lock hold by the paging daemon. Long
  // holds are what starves concurrent fault handling (Section 4.3).
  int daemon_batch = 96;
  // Pages processed per lock hold by the releaser daemon ("it typically
  // operates on smaller blocks of pages", Section 4.3).
  int releaser_batch = 16;
  // Released pages go to the tail of the free list so too-early releases can
  // be rescued (Section 3.1.2). false = head insertion (rescue ablation).
  bool release_to_tail = true;
  // Demand-fault read-ahead clustering ("klustering"): on a hard fault, also
  // page in up to this many following pages of the same region, unvalidated,
  // if free memory has headroom. IRIX-style sequential read-ahead; default
  // off so the paper-calibrated baselines are exactly the paper's system.
  int64_t fault_readahead_pages = 0;
  // Section 2.1's contrasted alternative, implemented as an extension: local
  // (per-process) replacement. When > 0, every process is capped at this many
  // resident pages; a fault beyond the cap evicts one of the process's OWN
  // pages (round-robin clock) instead of letting global replacement run, and
  // prefetches beyond the cap are dropped. 0 = global replacement (default).
  int64_t local_partition_pages = 0;
  // Upper bound on frames scanned per daemon activation (two full clock
  // sweeps) to guarantee forward progress.
  int64_t daemon_max_scan_factor = 2;
  // Section 3.1.1's unexplored alternative, implemented as an extension: when
  // nonzero, the OS refreshes a process's shared-page header as soon as free
  // memory has moved by more than this many pages since the header was last
  // written, instead of waiting for the process's own memory activity.
  // 0 = the paper's lazy-update behavior.
  int64_t shared_header_notify_threshold = 0;
  // Minimum fraction of physical memory the clock hand sweeps per activation
  // (vhand's scan rate scales with memory pressure). Once the free target is
  // met the remainder of the quota only samples reference bits (invalidates);
  // this is what erodes an idle task's resident set under sustained pressure.
  double daemon_min_sweep_fraction = 0.25;
};

// One level of the physical-memory hierarchy (extension beyond the paper's
// binary resident/on-disk model). tiers[0] always describes DRAM — its
// `frames` field is ignored because DRAM capacity stays derived from
// user_memory_bytes — and entries 1..N-1 describe progressively slower tiers
// (e.g. CXL-attached memory) that releases demote into instead of freeing.
struct TierSpec {
  int64_t frames = 0;            // capacity in pages (ignored for tiers[0])
  SimDuration promote_cost = 25 * kUsec;  // CPU charge to migrate one page up
  SimDuration demote_cost = 25 * kUsec;   // CPU charge to migrate one page down
};

struct MachineConfig {
  int num_cpus = 4;
  // Scheduler fast path: when a CPU frees up and no other event is pending at
  // the current instant, dispatch the next runnable thread inline instead of
  // scheduling a zero-delay event. Order-identical to the queued path (same
  // FIFO, same timestamps); exposed as a toggle so differential tests can
  // force the historical event-per-dispatch behavior. Checked runs always use
  // the queued path (the checker needs a quiescent point between events).
  bool inline_dispatch = true;
  // Memory nodes (NUMA-style shards). The frame range is partitioned
  // contiguously; each node gets its own free list and paging-daemon clock
  // hand. 1 (the paper's single-node Origin 200) reproduces the historical
  // single-list behavior exactly; capped at FramePool::kMaxNodes (64) so the
  // allocation fallback stays O(1) via a single occupancy word.
  int num_nodes = 1;
  int64_t page_size_bytes = 16 * 1024;
  int64_t user_memory_bytes = 75ll * 1024 * 1024;
  SimDuration quantum = 10 * kMsec;
  CostModel costs;
  Tunables tunables;
  SwapConfig swap;
  // Memory-tier geometry. Empty = the paper's binary model (equivalent to a
  // single DRAM tier); {DRAM} is the degenerate N=1 configuration, which flows
  // through the tier-gated code paths but produces byte-identical behavior
  // because there is never a "next tier" to demote into.
  std::vector<TierSpec> tiers;

  [[nodiscard]] int num_tiers() const {
    return tiers.empty() ? 1 : static_cast<int>(tiers.size());
  }
  [[nodiscard]] bool has_slow_tiers() const { return tiers.size() > 1; }
  [[nodiscard]] int num_slow_tiers() const { return num_tiers() - 1; }

  [[nodiscard]] int64_t num_frames() const { return user_memory_bytes / page_size_bytes; }
  [[nodiscard]] int64_t BytesToPages(int64_t bytes) const {
    return (bytes + page_size_bytes - 1) / page_size_bytes;
  }
};

}  // namespace tmh

#endif  // TMH_SRC_OS_CONFIG_H_
