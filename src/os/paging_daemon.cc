#include "src/os/paging_daemon.h"

#include <algorithm>

#include "src/os/kernel.h"

namespace tmh {

Op PagingDaemon::Next(Kernel& kernel) {
  (void)kernel;
  Kernel& k = *kernel_;
  const Tunables& tun = k.config_.tunables;
  switch (phase_) {
    case Phase::kIdle: {
      AddressSpace* over_rss = FindOverMaxrss();
      if (!active_) {
        if (k.free_list_.size() >= tun.min_freemem_pages && over_rss == nullptr) {
          return Op::Wait(&wq_);
        }
        active_ = true;
        scanned_this_round_ = 0;
        sweep_quota_ = static_cast<int64_t>(tun.daemon_min_sweep_fraction *
                                            static_cast<double>(k.frames_.size()));
        ++activations_;
        ++k.stats_.daemon_activations;
      }
      // Keep sweeping until the free target is met AND the minimum reference-
      // bit sampling quota for this activation has been covered.
      if (k.free_list_.size() >= tun.target_freemem_pages && over_rss == nullptr &&
          scanned_this_round_ >= sweep_quota_) {
        active_ = false;
        return Op::Wait(&wq_);
      }
      if (scanned_this_round_ >= tun.daemon_max_scan_factor * k.frames_.size()) {
        // Full sweeps without reaching the target (e.g. everything io_busy or
        // referenced): yield until the next tick so the system makes progress.
        active_ = false;
        wq_.ClearPendingSignals();
        return Op::Wait(&wq_);
      }
      AddressSpace* as = GatherBatch(over_rss);
      if (as == nullptr) {
        active_ = false;
        wq_.ClearPendingSignals();
        return Op::Wait(&wq_);
      }
      batch_as_ = as;
      phase_ = Phase::kLocked;
      return Op::Acquire(&as->memory_lock());
    }
    case Phase::kLocked: {
      const SimDuration cost = ProcessBatch();
      phase_ = Phase::kUnlock;
      return Op::Compute(cost);
    }
    case Phase::kUnlock:
      phase_ = Phase::kIdle;
      return Op::ReleaseL(&batch_as_->memory_lock());
  }
  return Op::Exit();
}

AddressSpace* PagingDaemon::FindOverMaxrss() const {
  return kernel_->FirstOverMaxrss();
}

AddressSpace* PagingDaemon::GatherBatch(AddressSpace* filter) {
  Kernel& k = *kernel_;
  const FramePool& pool = k.free_list_;
  const int nodes = pool.num_nodes();
  if (clock_hands_.empty()) {
    // One hand per node, parked at the node's first frame.
    clock_hands_.reserve(static_cast<size_t>(nodes));
    for (int node = 0; node < nodes; ++node) {
      clock_hands_.push_back(pool.NodeBegin(node));
    }
  }
  if (nodes == 1) {
    return GatherBatchFromNode(filter, 0);
  }
  // Sweep the most-pressured node first (fewest free pages; ties break to the
  // lowest index so the choice is deterministic), then the others in wrap
  // order until one yields a batch. When hunting a specific over-maxrss
  // space, start at its home node instead: that is where its frames live, and
  // starting anywhere else walks every other tenant's mapped frames
  // one-by-one (the filter rejects them individually) before reaching the
  // right node — O(mapped frames) per daemon cycle at scale.
  int start = 0;
  if (filter != nullptr) {
    start = filter->home_node() % nodes;
  } else {
    for (int node = 1; node < nodes; ++node) {
      if (pool.node_size(node) < pool.node_size(start)) {
        start = node;
      }
    }
  }
  for (int i = 0; i < nodes; ++i) {
    AddressSpace* as = GatherBatchFromNode(filter, (start + i) % nodes);
    if (as != nullptr) {
      return as;
    }
  }
  return nullptr;
}

AddressSpace* PagingDaemon::GatherBatchFromNode(AddressSpace* filter, int node) {
  Kernel& k = *kernel_;
  // The hand is confined to this node's frame range [base, end): per-node
  // clock aging, so one node's pressure never ages another node's frames.
  const int64_t base = k.free_list_.NodeBegin(node);
  const int64_t end = k.free_list_.NodeEnd(node);
  const int64_t n = end - base;
  int64_t& clock_hand = clock_hands_[static_cast<size_t>(node)];
  batch_.clear();
  AddressSpace* owner = nullptr;
  const int batch_limit = k.config_.tunables.daemon_batch;
  // Word-parallel clock hand: one `mapped & ~io_busy` word from the frame
  // table's bit planes classifies 64 frames, and ctz jumps the hand straight
  // to the next candidate. Semantics are identical to the frame-at-a-time
  // loop this replaces — `scanned_this_round_` still counts every frame the
  // hand passes over (skips included), the batch still stops at an owner
  // boundary with the hand rewound onto the boundary frame, and at most one
  // full lap of the node is taken per call.
  const uint64_t* mapped = k.frames_.mapped_words();
  const uint64_t* io_busy = k.frames_.io_busy_words();
  int64_t steps = 0;  // frames consumed this call, skips included
  while (steps < n) {
    const int64_t hand = clock_hand;
    const int bit = static_cast<int>(hand & 63);
    // Frames examinable in this word: bounded by the word edge, the node end
    // (the hand wraps there), and the one-lap step budget.
    const int64_t max_here = std::min<int64_t>(64 - bit, std::min(end - hand, n - steps));
    uint64_t cand = (mapped[hand >> 6] & ~io_busy[hand >> 6]) >> bit;
    if (max_here < 64) {
      cand &= (1ULL << max_here) - 1;
    }
    if (cand == 0) {
      clock_hand = base + (hand - base + max_here) % n;
      steps += max_here;
      scanned_this_round_ += max_here;
      continue;
    }
    const int64_t skip = __builtin_ctzll(cand);
    const auto f = static_cast<FrameId>(hand + skip);
    clock_hand = base + (hand - base + skip + 1) % n;
    steps += skip + 1;
    scanned_this_round_ += skip + 1;
    AddressSpace* as = k.address_spaces_[static_cast<size_t>(k.frames_.owner(f))].get();
    if (filter != nullptr && as != filter) {
      continue;
    }
    if (owner == nullptr) {
      owner = as;
    } else if (as != owner) {
      // Stop the batch at the owner boundary; rewind so this frame is next.
      clock_hand = static_cast<int64_t>(f);
      --scanned_this_round_;
      break;
    }
    batch_.push_back(f);
    if (static_cast<int>(batch_.size()) >= batch_limit) {
      break;
    }
  }
  return batch_.empty() ? nullptr : owner;
}

SimDuration PagingDaemon::ProcessBatch() {
  Kernel& k = *kernel_;
  const CostModel& costs = k.config_.costs;
  const int64_t target = k.config_.tunables.target_freemem_pages;
  SimDuration cost = 0;
  int64_t stolen = 0;

  // Reactive (VINO-style) path: ask the process which pages to surrender
  // instead of aging its frames with the clock. The daemon still runs — the
  // OS still decides *which process* pays — but this process's victims are
  // self-chosen, so no invalidation soft faults and no bad steals for it.
  if (batch_as_->HasEvictionHandler() && k.free_list_.size() < target) {
    const auto wanted = static_cast<int64_t>(batch_.size());
    const std::vector<VPage> victims = batch_as_->AskEvictionHandler(wanted);
    for (const VPage vpage : victims) {
      cost += costs.daemon_scan_per_page;
      if (vpage < 0 || vpage >= batch_as_->num_pages()) {
        continue;
      }
      const Pte& pte = batch_as_->page_table().at(vpage);
      if (!pte.resident || k.frames_.io_busy(pte.frame)) {
        continue;
      }
      const FrameId f = pte.frame;
      k.UnmapFrame(batch_as_, vpage, FreedBy::kDaemon);
      k.FreeFrame(f, /*at_tail=*/false);
      ++k.stats_.daemon_pages_stolen;
      ++k.stats_.reactive_evictions;
      ++batch_as_->stats().pages_stolen_from;
      ++stolen;
    }
    if (!victims.empty()) {
      k.UpdateSharedHeader(batch_as_);
      k.Hook(VmHookOp::kDaemonSweep, batch_as_->id(), kNoVPage, kNoFrame, stolen);
      const SimDuration total = std::max<SimDuration>(cost, 1);
      if (TMH_UNLIKELY(k.observing_)) {
        k.event_log_.Record(k.Now(), KernelEventType::kDaemonSweep,
                            k.daemon_thread_->id(), batch_as_->id(),
                            static_cast<VPage>(stolen), total);
      }
      return total;
    }
    // Handler had nothing to offer: fall through to the normal clock pass.
  }

  FrameTable& frames = k.frames_;
  for (const FrameId f : batch_) {
    cost += costs.daemon_scan_per_page;
    if (!frames.mapped(f) || frames.io_busy(f) || frames.owner(f) != batch_as_->id()) {
      continue;  // state changed while we waited for the lock
    }
    const VPage vpage = frames.vpage(f);
    Pte& pte = batch_as_->page_table().at(vpage);
    const bool possibly_referenced =
        pte.valid || frames.referenced(f) ||
        pte.invalid_reason == InvalidReason::kFreshPrefetch;
    if (possibly_referenced) {
      // Sample the reference bit in software: invalidate the mapping; a later
      // touch will soft-fault and prove liveness.
      pte.valid = false;
      if (pte.invalid_reason != InvalidReason::kReleasePending) {
        pte.invalid_reason = InvalidReason::kDaemonInvalidated;
      }
      batch_as_->page_table().SyncValid(vpage);
      frames.set_referenced(f, false);
      ++k.stats_.daemon_invalidations;
      ++batch_as_->stats().invalidations_received;
      k.Hook(VmHookOp::kInvalidate, batch_as_->id(), vpage, f);
    } else if (k.free_list_.size() >= target &&
               batch_as_->page_table().resident_count() <=
                   k.config_.tunables.maxrss_pages) {
      // Above the free target this pass only samples reference bits; the
      // frame stays a steal candidate for the next shortage.
      continue;
    } else {
      // Unreferenced since the last pass: steal it.
      k.UnmapFrame(batch_as_, vpage, FreedBy::kDaemon);
      k.FreeFrame(f, /*at_tail=*/false);
      cost += costs.daemon_steal_per_page;
      ++k.stats_.daemon_pages_stolen;
      ++batch_as_->stats().pages_stolen_from;
      ++stolen;
    }
  }
  k.UpdateSharedHeader(batch_as_);
  k.Hook(VmHookOp::kDaemonSweep, batch_as_->id(), kNoVPage, kNoFrame, stolen);
  const SimDuration total = std::max<SimDuration>(cost, 1);
  if (TMH_UNLIKELY(k.observing_)) {
    k.event_log_.Record(k.Now(), KernelEventType::kDaemonSweep,
                        k.daemon_thread_->id(), batch_as_->id(),
                        static_cast<VPage>(stolen), total);
  }
  return total;
}

}  // namespace tmh
