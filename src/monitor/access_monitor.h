// Online region-based access monitoring with a schemes engine.
//
// The paper's releases come from the compiler: the application knows its own
// reuse pattern and tells the OS. This subsystem is the OS-side counterpart
// for programs that were never recompiled — a DAMON-style sampler that keeps,
// per address space, a bounded set of contiguous virtual regions, samples one
// page per region per tick (software reference sampling, exactly the vhand
// mechanism: invalidate the mapping, let the next touch prove liveness), and
// adaptively splits/merges regions so precision concentrates where access
// behavior differs. Overhead is O(regions) per tick — bounded by
// MonitorConfig::max_regions — never O(pages).
//
// On top of the region stats sits a DAMOS-like schemes engine: a region that
// has stayed at or below the cold threshold for enough aggregation windows is
// fed into the *existing* release path (the releaser daemon frees it, tail
// insertion, rescue-able — identical semantics to a compiler-inserted
// release), and optionally a hot region gets its reference bits re-set so the
// paging daemon's clock treats it as recently used (the monitor's stand-in
// for a raised Eq. 2 priority).
//
// The monitor drives itself from the kernel's event queue and mutates memory
// state only through the kernel's Monitor* entry points, which emit the
// standard vm_hooks stream — so an attached InvariantChecker / VmOracle
// validates monitor-issued actions with no monitor-specific code. With no
// monitor constructed, the kernel schedules zero monitor events and executes
// zero monitor instructions.

#ifndef TMH_SRC_MONITOR_ACCESS_MONITOR_H_
#define TMH_SRC_MONITOR_ACCESS_MONITOR_H_

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"
#include "src/vm/types.h"

namespace tmh {

class AddressSpace;
class Kernel;

struct MonitorConfig {
  // One sampling tick: every region evaluates its previously armed sample and
  // arms a fresh one. IRIX's vhand samples on the daemon beat (250 ms); the
  // monitor ticks faster but touches only max_regions pages per tick.
  SimDuration sample_period = 20 * kMsec;
  // Ticks per aggregation window. At the defaults one window is 200 ms and a
  // region's nr_accesses lies in [0, samples_per_aggregation].
  int64_t samples_per_aggregation = 10;
  // Adaptive region count bounds. Merging never drops an address space below
  // min_regions (unless it has fewer pages); splitting never exceeds
  // max_regions. Together they bound per-tick work for any access pattern.
  int64_t min_regions = 8;
  int64_t max_regions = 64;
  // Adjacent regions whose closed-window access counts differ by at most this
  // merge into one.
  int64_t merge_threshold = 1;
  // Seed for sample placement and split offsets (deterministic replay).
  uint64_t seed = 1;

  // --- schemes (pattern -> action) -----------------------------------------
  // Cold: a region whose nr_accesses stayed <= cold_max_accesses for
  // cold_min_age consecutive windows is released through the standard release
  // path, up to cold_quota_pages pages per address space per window.
  bool release_cold = true;
  int64_t cold_max_accesses = 0;
  int64_t cold_min_age = 2;
  int64_t cold_quota_pages = 512;
  // On tiered machines, the slow tier cold releases demote into: 0 picks the
  // deepest tier (monitored coldness carries no reuse hint, like a priority-0
  // release), k > 0 pins tier min(k, num_slow_tiers). Ignored when the
  // machine has no slow tiers — releases free frames exactly as before.
  int64_t demote_tier = 0;
  // Hot: a region with nr_accesses >= hot_min_accesses in the closed window
  // gets its frames' reference bits re-set, shielding it from the clock for
  // one daemon pass (the Eq. 2 priority analog).
  bool protect_hot = false;
  int64_t hot_min_accesses = 5;
};

// One contiguous virtual region [begin, end) with uniform-ish access behavior.
struct MonitorRegion {
  VPage begin = 0;
  VPage end = 0;
  // Sampled hits in the last closed aggregation window (schemes input).
  int64_t nr_accesses = 0;
  // Hits so far in the open window.
  int64_t hits = 0;
  // Consecutive closed windows with nr_accesses <= cold_max_accesses.
  int64_t age = 0;
  // Page armed by the previous tick, kNoVPage before the first arm.
  VPage sampled = kNoVPage;
};

struct MonitorStats {
  uint64_t ticks = 0;
  uint64_t aggregations = 0;
  uint64_t samples_armed = 0;    // pages invalidated for reference sampling
  uint64_t samples_checked = 0;  // armed samples evaluated a tick later
  uint64_t samples_hit = 0;      // evaluated samples that proved an access
  uint64_t region_splits = 0;
  uint64_t region_merges = 0;
  uint64_t max_regions_seen = 0;  // high-water mark over all address spaces
  uint64_t cold_regions_actioned = 0;
  uint64_t cold_pages_enqueued = 0;  // releases queued by the schemes engine
  uint64_t hot_regions_actioned = 0;
  uint64_t hot_pages_protected = 0;
};

class AccessMonitor {
 public:
  // Attaches to the kernel (asserts no other monitor is attached). Monitoring
  // does not begin until Start().
  AccessMonitor(Kernel& kernel, MonitorConfig config);
  ~AccessMonitor();

  AccessMonitor(const AccessMonitor&) = delete;
  AccessMonitor& operator=(const AccessMonitor&) = delete;

  // Explicit targeting (DAMON monitors named targets, not the whole system):
  // if any target is registered before Start(), only those address spaces are
  // sampled. With no explicit targets, every address space is monitored,
  // including ones created after Start() (picked up on the next tick).
  void AddTarget(AddressSpace* as);

  // Schedules the first sampling tick.
  void Start();

  [[nodiscard]] const MonitorStats& stats() const { return stats_; }
  [[nodiscard]] const MonitorConfig& config() const { return config_; }

  // Region introspection for tests/reports: the regions currently covering
  // address space `as_id`, or nullptr if the monitor has not seen it yet.
  [[nodiscard]] const std::vector<MonitorRegion>* RegionsFor(AsId as_id) const;

 private:
  struct AsState {
    AddressSpace* as = nullptr;
    std::vector<MonitorRegion> regions;
  };

  void Tick();
  void EnsureStates();
  void Evaluate(AsState& state);
  void CloseWindow(AsState& state);
  void ApplySchemes(AsState& state);
  void MergeRegions(AsState& state);
  void SplitRegions(AsState& state);
  void Arm(AsState& state);

  Kernel* kernel_;
  MonitorConfig config_;
  Rng rng_;
  std::vector<AsState> states_;  // index == AsId; as == nullptr when untracked
  int64_t ticks_in_window_ = 0;
  bool explicit_targets_ = false;
  bool started_ = false;
  MonitorStats stats_;
};

}  // namespace tmh

#endif  // TMH_SRC_MONITOR_ACCESS_MONITOR_H_
