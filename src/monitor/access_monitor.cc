#include "src/monitor/access_monitor.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/os/address_space.h"
#include "src/os/kernel.h"
#include "src/vm/frame_table.h"
#include "src/vm/page_table.h"

namespace tmh {

AccessMonitor::AccessMonitor(Kernel& kernel, MonitorConfig config)
    : kernel_(&kernel), config_(config), rng_(config.seed) {
  assert(config_.sample_period > 0);
  assert(config_.samples_per_aggregation > 0);
  assert(config_.min_regions >= 1);
  assert(config_.max_regions >= config_.min_regions);
  kernel_->AttachMonitor(this);
}

AccessMonitor::~AccessMonitor() { kernel_->AttachMonitor(nullptr); }

void AccessMonitor::AddTarget(AddressSpace* as) {
  assert(!started_ && "register targets before Start()");
  explicit_targets_ = true;
  const size_t idx = static_cast<size_t>(as->id());
  if (states_.size() <= idx) {
    states_.resize(idx + 1);
  }
  states_[idx].as = as;
}

void AccessMonitor::Start() {
  assert(!started_ && "Start() called twice");
  started_ = true;
  kernel_->event_queue().ScheduleAfter(config_.sample_period, [this]() { Tick(); });
}

const std::vector<MonitorRegion>* AccessMonitor::RegionsFor(AsId as_id) const {
  const size_t idx = static_cast<size_t>(as_id);
  if (idx >= states_.size() || states_[idx].as == nullptr) {
    return nullptr;
  }
  return &states_[idx].regions;
}

void AccessMonitor::Tick() {
  ++stats_.ticks;
  EnsureStates();
  const bool aggregate = ++ticks_in_window_ >= config_.samples_per_aggregation;
  if (aggregate) {
    ticks_in_window_ = 0;
    ++stats_.aggregations;
  }
  for (AsState& state : states_) {
    if (state.as == nullptr) {
      continue;
    }
    // Order matters: consume last tick's samples first, then — only on window
    // boundaries — close the window (schemes, merge, split restructure the
    // region list), and only then arm fresh samples against the final layout.
    // Arming before restructuring would leave samples pointing into regions
    // that no longer exist.
    Evaluate(state);
    if (aggregate) {
      CloseWindow(state);
    }
    Arm(state);
    stats_.max_regions_seen =
        std::max(stats_.max_regions_seen, static_cast<uint64_t>(state.regions.size()));
  }
  kernel_->event_queue().ScheduleAfter(config_.sample_period, [this]() { Tick(); });
}

void AccessMonitor::EnsureStates() {
  for (const auto& as_ptr : kernel_->address_spaces()) {
    AddressSpace* as = as_ptr.get();
    const size_t idx = static_cast<size_t>(as->id());
    if (states_.size() <= idx) {
      if (explicit_targets_) {
        continue;
      }
      states_.resize(idx + 1);
    }
    AsState& state = states_[idx];
    if (state.as == nullptr) {
      if (explicit_targets_) {
        continue;
      }
      state.as = as;
    }
    if (!state.regions.empty() || as->num_pages() == 0) {
      continue;
    }
    // Initial layout: the whole space split evenly into min_regions pieces
    // (fewer if the space is tiny — every region covers at least one page).
    const int64_t pages = as->num_pages();
    const int64_t n = std::min<int64_t>(config_.min_regions, pages);
    state.regions.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      MonitorRegion r;
      r.begin = pages * i / n;
      r.end = pages * (i + 1) / n;
      state.regions.push_back(r);
    }
  }
}

void AccessMonitor::Evaluate(AsState& state) {
  const PageTable& pt = state.as->page_table();
  const FrameTable& frames = kernel_->frames();
  for (MonitorRegion& region : state.regions) {
    if (region.sampled == kNoVPage) {
      continue;
    }
    ++stats_.samples_checked;
    const Pte& pte = pt.at(region.sampled);
    // Uniform whether arming invalidated the mapping or not: a page that was
    // re-validated by a soft fault, or whose frame picked up a reference bit,
    // or that was never invalidated and is still valid, counts as accessed. A
    // page that went non-resident (stolen, released) counts as not accessed —
    // whatever evicted it judged it idle.
    const bool accessed =
        pte.resident && (pte.valid || frames.referenced(pte.frame));
    if (accessed) {
      ++region.hits;
      ++stats_.samples_hit;
    }
    region.sampled = kNoVPage;
  }
}

void AccessMonitor::CloseWindow(AsState& state) {
  for (MonitorRegion& region : state.regions) {
    region.nr_accesses = region.hits;
    region.hits = 0;
    if (region.nr_accesses <= config_.cold_max_accesses) {
      ++region.age;
    } else {
      region.age = 0;
    }
  }
  ApplySchemes(state);
  MergeRegions(state);
  SplitRegions(state);
}

void AccessMonitor::ApplySchemes(AsState& state) {
  AddressSpace* as = state.as;
  int64_t budget = config_.cold_quota_pages;
  bool enqueued_any = false;
  // Tiered machines: cold releases demote instead of freeing. Resolve the
  // target depth once per window — config 0 means the deepest tier.
  const int32_t slow = kernel_->config().num_slow_tiers();
  const int32_t depth =
      slow > 0 ? (config_.demote_tier > 0
                      ? static_cast<int32_t>(
                            std::min<int64_t>(config_.demote_tier, slow))
                      : slow)
               : 0;
  for (MonitorRegion& region : state.regions) {
    if (config_.release_cold && region.nr_accesses <= config_.cold_max_accesses &&
        region.age >= config_.cold_min_age && budget > 0) {
      ++stats_.cold_regions_actioned;
      for (VPage p = region.begin; p < region.end && budget > 0; ++p) {
        if (kernel_->MonitorEnqueueRelease(as, p, depth)) {
          ++stats_.cold_pages_enqueued;
          --budget;
          enqueued_any = true;
        }
      }
      // Released regions must re-age from scratch before being actioned again
      // — the releaser needs time to drain, and an immediate re-touch should
      // get a full grace period.
      region.age = 0;
    }
    if (config_.protect_hot && region.nr_accesses >= config_.hot_min_accesses) {
      ++stats_.hot_regions_actioned;
      for (VPage p = region.begin; p < region.end; ++p) {
        if (kernel_->MonitorProtectPage(as, p)) {
          ++stats_.hot_pages_protected;
        }
      }
    }
  }
  if (enqueued_any) {
    kernel_->MonitorPublishReleases(as);
  }
}

void AccessMonitor::MergeRegions(AsState& state) {
  int64_t count = static_cast<int64_t>(state.regions.size());
  if (count <= config_.min_regions) {
    return;
  }
  std::vector<MonitorRegion> merged;
  merged.reserve(state.regions.size());
  for (const MonitorRegion& r : state.regions) {
    if (!merged.empty() && count > config_.min_regions &&
        std::abs(merged.back().nr_accesses - r.nr_accesses) <= config_.merge_threshold) {
      MonitorRegion& prev = merged.back();
      const int64_t lp = prev.end - prev.begin;
      const int64_t rp = r.end - r.begin;
      prev.nr_accesses = (prev.nr_accesses * lp + r.nr_accesses * rp) / (lp + rp);
      prev.age = std::min(prev.age, r.age);
      prev.end = r.end;
      --count;
      ++stats_.region_merges;
    } else {
      merged.push_back(r);
    }
  }
  state.regions.swap(merged);
}

void AccessMonitor::SplitRegions(AsState& state) {
  // Split every region in two at a random offset; the next merge pass re-joins
  // neighbors that turn out to behave alike. Guarded so the doubled count
  // never exceeds max_regions — together with the merge floor this bounds the
  // region count (and so per-tick cost) for any access pattern.
  const int64_t count = static_cast<int64_t>(state.regions.size());
  if (count * 2 > config_.max_regions) {
    return;
  }
  std::vector<MonitorRegion> split;
  split.reserve(state.regions.size() * 2);
  for (const MonitorRegion& r : state.regions) {
    const int64_t size = r.end - r.begin;
    if (size < 2) {
      split.push_back(r);
      continue;
    }
    const VPage cut =
        r.begin + 1 + static_cast<VPage>(rng_.NextBelow(static_cast<uint64_t>(size - 1)));
    MonitorRegion left = r;
    left.end = cut;
    MonitorRegion right = r;
    right.begin = cut;
    split.push_back(left);
    split.push_back(right);
    ++stats_.region_splits;
  }
  state.regions.swap(split);
}

void AccessMonitor::Arm(AsState& state) {
  for (MonitorRegion& region : state.regions) {
    const int64_t size = region.end - region.begin;
    if (size <= 0) {
      continue;
    }
    const VPage p =
        region.begin + static_cast<VPage>(rng_.NextBelow(static_cast<uint64_t>(size)));
    // Record the sample whether or not the kernel could invalidate the
    // mapping: Evaluate() reads the same resident/valid/referenced state
    // either way, it just loses the invalidation's extra sensitivity.
    region.sampled = p;
    if (kernel_->MonitorSamplePage(state.as, p)) {
      ++stats_.samples_armed;
    }
  }
}

}  // namespace tmh
