#include "src/runtime/interpreter.h"

#include <algorithm>
#include <cassert>

namespace tmh {

Interpreter::Interpreter(const CompiledProgram* program, AddressSpace* as, RuntimeLayer* runtime)
    : prog_(program), as_(as), runtime_(runtime) {
  assert(prog_ != nullptr && as_ != nullptr);
  text_base_ = prog_->layout.total_pages();  // text/stack live above the arrays
}

Op Interpreter::Next(Kernel& kernel) {
  (void)kernel;
  while (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
    if (done_) {
      return Op::Exit();
    }
    Step();
  }
  return pending_[pending_head_++];
}

void Interpreter::Step() {
  if (!in_nest_) {
    if (nest_idx_ >= prog_->nests.size()) {
      nest_idx_ = 0;
      ++repeat_done_;
      ++stats_.repeats_done;
      if (repeat_done_ >= prog_->source.repeat) {
        done_ = true;
      }
      return;
    }
    EnterNest();
    return;
  }
  RunIterations();
}

void Interpreter::EnterNest() {
  active_nest_ = &prog_->nests[nest_idx_];
  // Adaptive recompilation (the paper's future-work fix for unknown bounds):
  // on nest entry the actual trip counts are known, so re-run the analysis
  // and hint insertion against them. Hints then strip-mine to page crossings
  // and the locality analysis sees real volumes. Tags come from a per-nest
  // range disjoint from the static ones so the run-time layer's filters keep
  // working across entries.
  if (prog_->options.adaptive_recompilation && !active_nest_->analysis.bounds_known &&
      runtime_ != nullptr) {
    LoopNest specialized = active_nest_->nest;
    for (Loop& loop : specialized.loops) {
      loop.upper_known = true;
    }
    int32_t tag = static_cast<int32_t>(1'000'000 + 1000 * nest_idx_);
    adaptive_nest_ = CompileNest(prog_->source, specialized, prog_->layout, prog_->target,
                                 prog_->options, &tag, nullptr);
    active_nest_ = &adaptive_nest_;
    ++stats_.adaptive_recompiles;
  }
  const CompiledNest& compiled = *active_nest_;
  const LoopNest& nest = compiled.nest;
  // Zero-trip nests are skipped outright.
  for (const Loop& loop : nest.loops) {
    if (loop.upper <= loop.lower) {
      ++nest_idx_;
      return;
    }
  }
  ivs_.clear();
  for (const Loop& loop : nest.loops) {
    ivs_.push_back(loop.lower);
  }
  last_page_.assign(nest.refs.size(), -1);
  nest_has_indirect_ = false;
  for (const ArrayRef& ref : nest.refs) {
    nest_has_indirect_ = nest_has_indirect_ || ref.IsIndirect();
  }
  in_nest_ = true;
  ++stats_.nests_entered;

  // Prologue: software-pipelining startup prefetches.
  if (runtime_ != nullptr) {
    SimDuration cost = 0;
    for (const HintDirective& d : compiled.directives) {
      if (d.kind != HintDirective::Kind::kPrefetch) {
        continue;
      }
      const ArrayRef& ref = nest.refs[static_cast<size_t>(d.ref)];
      if (ref.IsIndirect()) {
        const Loop& inner = nest.loops.back();
        const int64_t trips = (inner.upper - inner.lower + inner.step - 1) / inner.step;
        const int64_t ahead = std::min<int64_t>(d.distance, trips - 1);
        for (int64_t k = 0; k <= ahead; ++k) {
          cost += runtime_->OnPrefetchHint(PageOfRef(ref, k));
        }
      } else {
        const int64_t first = PageOfRef(ref, 0);
        const int64_t array_base = prog_->layout.base_page(ref.array);
        const int64_t array_end = array_base + prog_->layout.PageCount(ref.array) - 1;
        for (int64_t k = 0; k <= d.distance; ++k) {
          const int64_t page = std::clamp(first + k * d.direction, array_base, array_end);
          cost += runtime_->OnPrefetchHint(page);
        }
      }
    }
    if (cost > 0) {
      pending_.push_back(Op::Compute(cost));
    }
  }
}

int64_t Interpreter::EvalElement(const ArrayRef& ref, int64_t inner_shift) const {
  const LoopNest& nest = active_nest_->nest;
  int64_t value;
  if (inner_shift == 0) {
    value = RuntimeExpr(ref).Eval(ivs_);
  } else {
    shifted_scratch_.assign(ivs_.begin(), ivs_.end());
    shifted_scratch_.back() += inner_shift * nest.loops.back().step;
    value = RuntimeExpr(ref).Eval(shifted_scratch_);
  }
  if (ref.IsIndirect()) {
    const ArrayDecl& index_array =
        prog_->source.arrays[static_cast<size_t>(ref.index_array)];
    assert(index_array.index_values != nullptr && !index_array.index_values->empty());
    const auto& values = *index_array.index_values;
    const int64_t pos =
        std::clamp<int64_t>(value, 0, static_cast<int64_t>(values.size()) - 1);
    value = values[static_cast<size_t>(pos)];
  }
  const ArrayDecl& array = prog_->source.arrays[static_cast<size_t>(ref.array)];
  return std::clamp<int64_t>(value, 0, std::max<int64_t>(array.num_elements - 1, 0));
}

int64_t Interpreter::PageOfRef(const ArrayRef& ref, int64_t inner_shift) const {
  return prog_->layout.PageOf(ref.array, EvalElement(ref, inner_shift));
}

int64_t Interpreter::RunLength() const {
  const LoopNest& nest = active_nest_->nest;
  const Loop& inner = nest.loops.back();
  const int64_t remaining = (inner.upper - ivs_.back() + inner.step - 1) / inner.step;
  if (nest_has_indirect_) {
    return 1;  // indirect targets change every iteration
  }
  int64_t run = remaining;
  const int64_t page_size = prog_->layout.page_size();
  for (const ArrayRef& ref : nest.refs) {
    const AffineExpr& expr = RuntimeExpr(ref);
    const int64_t coeff = expr.coeffs.empty() ? 0 : expr.coeffs.back();
    if (coeff == 0) {
      continue;
    }
    const ArrayDecl& array = prog_->source.arrays[static_cast<size_t>(ref.array)];
    const int64_t delta = coeff * inner.step * array.element_size;  // bytes per iteration
    const int64_t byte = EvalElement(ref, 0) * array.element_size;
    const int64_t offset = byte % page_size;
    int64_t until_crossing;
    if (delta > 0) {
      until_crossing = (page_size - offset + delta - 1) / delta;
    } else {
      until_crossing = offset / (-delta) + 1;
    }
    run = std::min(run, std::max<int64_t>(until_crossing, 1));
  }
  return std::max<int64_t>(run, 1);
}

void Interpreter::FireDirectivesForCrossing(size_t ref_idx, int64_t page,
                                            std::vector<Op>& sysops, SimDuration* cost) {
  const CompiledNest& compiled = *active_nest_;
  for (const HintDirective& d : compiled.directives) {
    if (static_cast<size_t>(d.ref) != ref_idx || d.every_iteration) {
      continue;
    }
    const ArrayRef& ref = compiled.nest.refs[ref_idx];
    if (d.kind == HintDirective::Kind::kPrefetch) {
      const int64_t array_base = prog_->layout.base_page(ref.array);
      const int64_t array_end = array_base + prog_->layout.PageCount(ref.array) - 1;
      const int64_t target = std::clamp(page + d.distance * d.direction, array_base, array_end);
      *cost += runtime_->OnPrefetchHint(target);
    } else {
      *cost += runtime_->OnReleaseHint(page, d.priority, d.tag, sysops);
    }
  }
}

void Interpreter::FireEveryIterationDirectives(int64_t run, std::vector<Op>& sysops,
                                               SimDuration* cost) {
  const CompiledNest& compiled = *active_nest_;
  for (const HintDirective& d : compiled.directives) {
    if (!d.every_iteration) {
      continue;
    }
    const ArrayRef& ref = compiled.nest.refs[static_cast<size_t>(d.ref)];
    if (d.kind == HintDirective::Kind::kPrefetch) {
      // The generated code computes the real future address each iteration;
      // within a one-page run the target is the same, so batch the filtering.
      const int64_t target = ref.IsIndirect()
                                 ? PageOfRef(ref, d.distance)
                                 : std::clamp(PageOfRef(ref, 0) + d.distance * d.direction,
                                              prog_->layout.base_page(ref.array),
                                              prog_->layout.base_page(ref.array) +
                                                  prog_->layout.PageCount(ref.array) - 1);
      *cost += runtime_->OnPrefetchHintBatch(target, run);
    } else {
      *cost += runtime_->OnReleaseHintBatch(PageOfRef(ref, 0), d.priority, d.tag, run, sysops);
    }
  }
}

void Interpreter::RunIterations() {
  const CompiledNest& compiled = *active_nest_;
  const LoopNest& nest = compiled.nest;
  const int64_t run = RunLength();

  SimDuration hint_cost = 0;
  std::vector<Op>& sysops = sysops_scratch_;
  sysops.clear();

  // The process's text and stack are referenced continuously; rotating the
  // touch keeps the whole small set live without per-iteration overhead.
  if (prog_->source.text_pages > 0 && (batch_counter_++ & 15) == 0) {
    Op text_touch =
        Op::Touch(text_base_ + (text_cursor_++ % prog_->source.text_pages), false, 0);
    text_touch.as = as_;
    pending_.push_back(text_touch);
  }

  // Touches: one per reference whose page changed.
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    const int64_t page = PageOfRef(ref, 0);
    if (page != last_page_[r]) {
      last_page_[r] = page;
      Op touch = Op::Touch(page, ref.is_write, 0);
      touch.as = as_;
      pending_.push_back(touch);
      ++stats_.page_touches;
      if (runtime_ != nullptr) {
        FireDirectivesForCrossing(r, page, sysops, &hint_cost);
      }
    }
  }
  if (runtime_ != nullptr) {
    FireEveryIterationDirectives(run, sysops, &hint_cost);
  }

  pending_.push_back(Op::Compute(run * nest.compute_per_iteration + hint_cost));
  for (Op& op : sysops) {
    pending_.push_back(op);
  }
  stats_.iterations += run;

  // Advance the odometer by `run` innermost iterations.
  ivs_.back() += run * nest.loops.back().step;
  for (size_t d = nest.loops.size(); d-- > 1;) {
    if (ivs_[d] < nest.loops[d].upper) {
      break;
    }
    ivs_[d] = nest.loops[d].lower;
    ivs_[d - 1] += nest.loops[d - 1].step;
  }
  if (ivs_[0] >= nest.loops[0].upper) {
    ExitNest();
  }
}

void Interpreter::ExitNest() {
  const CompiledNest& compiled = *active_nest_;
  if (runtime_ != nullptr) {
    // Epilogue: flush the one-behind tag filter for this nest's releases.
    SimDuration cost = 0;
    std::vector<Op>& sysops = sysops_scratch_;
    sysops.clear();
    for (const HintDirective& d : compiled.directives) {
      if (d.kind == HintDirective::Kind::kRelease) {
        cost += runtime_->FlushTag(d.tag, sysops);
      }
    }
    if (cost > 0) {
      pending_.push_back(Op::Compute(cost));
    }
    for (Op& op : sysops) {
      pending_.push_back(op);
    }
  }
  in_nest_ = false;
  ++nest_idx_;
}

}  // namespace tmh
