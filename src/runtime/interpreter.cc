#include "src/runtime/interpreter.h"

#include <algorithm>
#include <cassert>

namespace tmh {

Interpreter::Interpreter(const CompiledProgram* program, AddressSpace* as, RuntimeLayer* runtime)
    : prog_(program), as_(as), runtime_(runtime) {
  assert(prog_ != nullptr && as_ != nullptr);
  text_base_ = prog_->layout.total_pages();  // text/stack live above the arrays
}

Op Interpreter::Next(Kernel& kernel) {
  while (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
    if (done_) {
      return Op::Exit();
    }
    Step(kernel);
  }
  return pending_[pending_head_++];
}

void Interpreter::Step(Kernel& kernel) {
  if (!in_nest_) {
    if (nest_idx_ >= prog_->nests.size()) {
      nest_idx_ = 0;
      ++repeat_done_;
      ++stats_.repeats_done;
      if (repeat_done_ >= prog_->source.repeat) {
        done_ = true;
      }
      return;
    }
    EnterNest();
    return;
  }
  RunIterations(kernel);
}

void Interpreter::EnterNest() {
  active_nest_ = &prog_->nests[nest_idx_];
  // Adaptive recompilation (the paper's future-work fix for unknown bounds):
  // on nest entry the actual trip counts are known, so re-run the analysis
  // and hint insertion against them. Hints then strip-mine to page crossings
  // and the locality analysis sees real volumes. Tags come from a per-nest
  // range disjoint from the static ones so the run-time layer's filters keep
  // working across entries.
  if (prog_->options.adaptive_recompilation && !active_nest_->analysis.bounds_known &&
      runtime_ != nullptr) {
    LoopNest specialized = active_nest_->nest;
    for (Loop& loop : specialized.loops) {
      loop.upper_known = true;
    }
    int32_t tag = static_cast<int32_t>(1'000'000 + 1000 * nest_idx_);
    adaptive_nest_ = CompileNest(prog_->source, specialized, prog_->layout, prog_->target,
                                 prog_->options, &tag, nullptr);
    active_nest_ = &adaptive_nest_;
    ++stats_.adaptive_recompiles;
  }
  const CompiledNest& compiled = *active_nest_;
  const LoopNest& nest = compiled.nest;
  // Zero-trip nests are skipped outright.
  for (const Loop& loop : nest.loops) {
    if (loop.upper <= loop.lower) {
      ++nest_idx_;
      return;
    }
  }
  ivs_.clear();
  for (const Loop& loop : nest.loops) {
    ivs_.push_back(loop.lower);
  }
  last_page_.assign(nest.refs.size(), -1);
  nest_has_indirect_ = false;
  for (const ArrayRef& ref : nest.refs) {
    nest_has_indirect_ = nest_has_indirect_ || ref.IsIndirect();
  }
  in_nest_ = true;
  ++stats_.nests_entered;

  // Prologue: software-pipelining startup prefetches.
  if (runtime_ != nullptr) {
    SimDuration cost = 0;
    for (const HintDirective& d : compiled.directives) {
      if (d.kind != HintDirective::Kind::kPrefetch) {
        continue;
      }
      const ArrayRef& ref = nest.refs[static_cast<size_t>(d.ref)];
      if (ref.IsIndirect()) {
        const Loop& inner = nest.loops.back();
        const int64_t trips = (inner.upper - inner.lower + inner.step - 1) / inner.step;
        const int64_t ahead = std::min<int64_t>(d.distance, trips - 1);
        for (int64_t k = 0; k <= ahead; ++k) {
          cost += runtime_->OnPrefetchHint(PageOfRef(ref, k));
        }
      } else {
        const int64_t first = PageOfRef(ref, 0);
        const int64_t array_base = prog_->layout.base_page(ref.array);
        const int64_t array_end = array_base + prog_->layout.PageCount(ref.array) - 1;
        for (int64_t k = 0; k <= d.distance; ++k) {
          const int64_t page = std::clamp(first + k * d.direction, array_base, array_end);
          cost += runtime_->OnPrefetchHint(page);
        }
      }
    }
    if (cost > 0) {
      pending_.push_back(Op::Compute(cost));
    }
  }
}

int64_t Interpreter::EvalElement(const ArrayRef& ref, int64_t inner_shift) const {
  const LoopNest& nest = active_nest_->nest;
  int64_t value;
  if (inner_shift == 0) {
    value = RuntimeExpr(ref).Eval(ivs_);
  } else {
    shifted_scratch_.assign(ivs_.begin(), ivs_.end());
    shifted_scratch_.back() += inner_shift * nest.loops.back().step;
    value = RuntimeExpr(ref).Eval(shifted_scratch_);
  }
  if (ref.IsIndirect()) {
    const ArrayDecl& index_array =
        prog_->source.arrays[static_cast<size_t>(ref.index_array)];
    assert(index_array.index_values != nullptr && !index_array.index_values->empty());
    const auto& values = *index_array.index_values;
    const int64_t pos =
        std::clamp<int64_t>(value, 0, static_cast<int64_t>(values.size()) - 1);
    value = values[static_cast<size_t>(pos)];
  }
  const ArrayDecl& array = prog_->source.arrays[static_cast<size_t>(ref.array)];
  return std::clamp<int64_t>(value, 0, std::max<int64_t>(array.num_elements - 1, 0));
}

int64_t Interpreter::PageOfRef(const ArrayRef& ref, int64_t inner_shift) const {
  return prog_->layout.PageOf(ref.array, EvalElement(ref, inner_shift));
}

int64_t Interpreter::RunLength() const {
  const LoopNest& nest = active_nest_->nest;
  const Loop& inner = nest.loops.back();
  const int64_t remaining = (inner.upper - ivs_.back() + inner.step - 1) / inner.step;
  if (nest_has_indirect_) {
    return 1;  // indirect targets change every iteration
  }
  int64_t run = remaining;
  const int64_t page_size = prog_->layout.page_size();
  for (const ArrayRef& ref : nest.refs) {
    const AffineExpr& expr = RuntimeExpr(ref);
    const int64_t coeff = expr.coeffs.empty() ? 0 : expr.coeffs.back();
    if (coeff == 0) {
      continue;
    }
    const ArrayDecl& array = prog_->source.arrays[static_cast<size_t>(ref.array)];
    const int64_t delta = coeff * inner.step * array.element_size;  // bytes per iteration
    const int64_t byte = EvalElement(ref, 0) * array.element_size;
    const int64_t offset = byte % page_size;
    int64_t until_crossing;
    if (delta > 0) {
      until_crossing = (page_size - offset + delta - 1) / delta;
    } else {
      until_crossing = offset / (-delta) + 1;
    }
    run = std::min(run, std::max<int64_t>(until_crossing, 1));
  }
  return std::max<int64_t>(run, 1);
}

void Interpreter::FireDirectivesForCrossing(size_t ref_idx, int64_t page,
                                            std::vector<Op>& sysops, SimDuration* cost) {
  const CompiledNest& compiled = *active_nest_;
  for (const HintDirective& d : compiled.directives) {
    if (static_cast<size_t>(d.ref) != ref_idx || d.every_iteration) {
      continue;
    }
    const ArrayRef& ref = compiled.nest.refs[ref_idx];
    if (d.kind == HintDirective::Kind::kPrefetch) {
      const int64_t array_base = prog_->layout.base_page(ref.array);
      const int64_t array_end = array_base + prog_->layout.PageCount(ref.array) - 1;
      const int64_t target = std::clamp(page + d.distance * d.direction, array_base, array_end);
      *cost += runtime_->OnPrefetchHint(target);
    } else {
      *cost += runtime_->OnReleaseHint(page, d.priority, d.tag, sysops);
    }
  }
}

void Interpreter::FireEveryIterationDirectives(int64_t run, std::vector<Op>& sysops,
                                               SimDuration* cost) {
  const CompiledNest& compiled = *active_nest_;
  for (const HintDirective& d : compiled.directives) {
    if (!d.every_iteration) {
      continue;
    }
    const ArrayRef& ref = compiled.nest.refs[static_cast<size_t>(d.ref)];
    if (d.kind == HintDirective::Kind::kPrefetch) {
      // The generated code computes the real future address each iteration;
      // within a one-page run the target is the same, so batch the filtering.
      const int64_t target = ref.IsIndirect()
                                 ? PageOfRef(ref, d.distance)
                                 : std::clamp(PageOfRef(ref, 0) + d.distance * d.direction,
                                              prog_->layout.base_page(ref.array),
                                              prog_->layout.base_page(ref.array) +
                                                  prog_->layout.PageCount(ref.array) - 1);
      *cost += runtime_->OnPrefetchHintBatch(target, run);
    } else {
      *cost += runtime_->OnReleaseHintBatch(PageOfRef(ref, 0), d.priority, d.tag, run, sysops);
    }
  }
}

bool Interpreter::TryFusedRun(Kernel& kernel) {
  const CompiledNest& compiled = *active_nest_;
  const LoopNest& nest = compiled.nest;
  const Loop& inner = nest.loops.back();
  const int64_t run = RunLength();
  const int64_t remaining = (inner.upper - ivs_.back() + inner.step - 1) / inner.step;
  // Full-run steps guaranteed to stay inside this inner-loop pass. The step
  // that completes the pass (possibly shorter, and followed by the odometer
  // cascade) is excluded so the span never wraps an outer loop.
  int64_t max_steps = remaining / run - (remaining % run == 0 ? 1 : 0);
  // Text-touch steps are never fused (the touch could fault and block, and
  // anything after a block belongs to a later sim instant), and a span may
  // not extend into the next text-touch step either: phase p in [1, 15]
  // allows at most 16 - p steps before the cadence fires again.
  if (prog_->source.text_pages > 0) {
    const int64_t phase = static_cast<int64_t>(batch_counter_ & 15);
    if (phase == 0) {
      return false;
    }
    max_steps = std::min<int64_t>(max_steps, 16 - phase);
  }
  if (max_steps < 2) {
    return false;
  }

  // Every page-crossing ref must cross exactly once per step, in lockstep,
  // with an offset-preserving stride (delta * run a whole number of pages);
  // every other ref's page must be unchanged this step. Otherwise this is not
  // a steady-state step and the per-op path must run it.
  const int64_t page_size = prog_->layout.page_size();
  TouchRunDesc& desc = run_desc_;
  desc.num_refs = 0;
  desc.next_step = 0;
  desc.next_ref = 0;
  size_t ref_index[TouchRunDesc::kMaxRefs];  // descriptor slot -> nest ref index
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    const AffineExpr& expr = RuntimeExpr(ref);
    const int64_t coeff = expr.coeffs.empty() ? 0 : expr.coeffs.back();
    const int64_t page = PageOfRef(ref, 0);
    if (coeff == 0) {
      if (page != last_page_[r]) {
        return false;  // loop-invariant ref re-touches (first step after an outer bump)
      }
      continue;
    }
    const ArrayDecl& array = prog_->source.arrays[static_cast<size_t>(ref.array)];
    const int64_t delta = coeff * inner.step * array.element_size;
    if (delta <= 0 || (delta * run) % page_size != 0) {
      return false;
    }
    const int64_t offset = (EvalElement(ref, 0) * array.element_size) % page_size;
    if ((page_size - offset + delta - 1) / delta != run || page == last_page_[r] ||
        desc.num_refs == TouchRunDesc::kMaxRefs) {
      return false;
    }
    const int64_t stride = (delta * run) / page_size;
    const int64_t array_end =
        prog_->layout.base_page(ref.array) + prog_->layout.PageCount(ref.array) - 1;
    max_steps = std::min(max_steps, (array_end - page) / stride + 1);
    ref_index[desc.num_refs] = r;
    desc.refs[desc.num_refs] = TouchRunRef{page, stride, ref.is_write};
    ++desc.num_refs;
  }
  if (desc.num_refs == 0 || max_steps < 2) {
    return false;
  }

  // With a runtime layer attached, a step's pages must be proven touchable
  // (resident and valid: a constant-cost, state-free touch) before the NEXT
  // step may join the span. Hint directives fire at plan time in exactly the
  // per-step order, which is only equivalent to the unfused stream if every
  // earlier step of the span charges exactly its compute+hint cost and never
  // blocks or ends the slice — sim time is frozen within a slice, so eager
  // firing then lands at the same instant in the same order; but a fault
  // would let daemon, prefetch-completion, or other-thread events run before
  // the later hints fire, and those hints read the residency bitmap. The
  // final step of a span carries no such burden (no hints fire after it), so
  // it may fault; the kernel replays it per page. Step 0's pages are probed
  // up front so a faulting step falls through to the per-op path instead of
  // a 1-step run.
  //
  // The uninstrumented program (no runtime layer) fires nothing at plan time:
  // the only state advanced here is the interpreter's own, which the kernel
  // never observes mid-op. The exact per-step replay reproduces faults,
  // blocks, and slice boundaries op for op, so spans may be planned straight
  // through pages that are not resident yet — the common case in an
  // out-of-core streaming phase, where the just-crossed page is by
  // definition still being prefetched or paged in.
  const PageTable& pt = as_->page_table();
  auto step_touchable = [&](int64_t step) {
    for (int32_t i = 0; i < desc.num_refs; ++i) {
      if (!pt.AllValid(desc.refs[i].base + step * desc.refs[i].page_stride, 1)) {
        return false;
      }
    }
    return true;
  };
  if (runtime_ != nullptr && !step_touchable(0)) {
    return false;
  }

  // Plan the span. The budget check mirrors the unfused slice loop exactly:
  // the kernel ends a slice once elapsed >= budget and every valid touch
  // charges touch_hit on top of the step's compute+hint cost, so step k
  // joins the span only if the full charges through step k-1 leave the slice
  // live — guaranteeing the kernel executes every non-final step in this
  // same slice, fused or not. ivs_ advances with the plan so every-iteration
  // directives evaluate each step's true pages.
  const SimDuration step_compute = run * nest.compute_per_iteration;
  const SimDuration step_touches = desc.num_refs * kernel.config().costs.touch_hit;
  const SimDuration budget_left = kernel.SliceBudgetRemaining();
  const int64_t iv_start = ivs_.back();
  std::vector<Op>& sysops = sysops_scratch_;
  sysops.clear();
  run_costs_.clear();
  SimDuration planned = 0;
  int64_t steps = 0;
  while (steps < max_steps) {
    if (steps > 0 && (planned >= budget_left ||
                      (runtime_ != nullptr && !step_touchable(steps - 1)))) {
      break;
    }
    SimDuration hint_cost = 0;
    if (runtime_ != nullptr) {
      ivs_.back() = iv_start + steps * run * inner.step;
      for (int32_t i = 0; i < desc.num_refs; ++i) {
        FireDirectivesForCrossing(ref_index[i],
                                  desc.refs[i].base + steps * desc.refs[i].page_stride,
                                  sysops, &hint_cost);
      }
      FireEveryIterationDirectives(run, sysops, &hint_cost);
    }
    run_costs_.push_back(step_compute + hint_cost);
    planned += step_compute + hint_cost + step_touches;
    ++steps;
    if (!sysops.empty()) {
      break;  // sysops must execute before the next step's hints evaluate
    }
  }
  if (steps < 2 && runtime_ == nullptr) {
    ivs_.back() = iv_start;  // nothing fired; the per-op path is identical
    return false;
  }

  desc.steps = steps;
  desc.step_cost = run_costs_.data();
  Op op = Op::TouchRun(&desc);
  op.as = as_;
  pending_.push_back(op);
  for (Op& sysop : sysops) {
    pending_.push_back(sysop);
  }
  stats_.iterations += static_cast<uint64_t>(steps * run);
  stats_.page_touches += static_cast<uint64_t>(steps) * desc.num_refs;
  for (int32_t i = 0; i < desc.num_refs; ++i) {
    last_page_[ref_index[i]] = desc.refs[i].base + (steps - 1) * desc.refs[i].page_stride;
  }
  if (prog_->source.text_pages > 0) {
    batch_counter_ += static_cast<uint64_t>(steps);
  }
  // steps * run < remaining, so the odometer never cascades inside a span.
  ivs_.back() = iv_start + steps * run * inner.step;
  return true;
}

void Interpreter::RunIterations(Kernel& kernel) {
  if (fuse_touch_runs_ && !nest_has_indirect_ && TryFusedRun(kernel)) {
    return;
  }
  const CompiledNest& compiled = *active_nest_;
  const LoopNest& nest = compiled.nest;
  const int64_t run = RunLength();

  SimDuration hint_cost = 0;
  std::vector<Op>& sysops = sysops_scratch_;
  sysops.clear();

  // The process's text and stack are referenced continuously; rotating the
  // touch keeps the whole small set live without per-iteration overhead.
  if (prog_->source.text_pages > 0 && (batch_counter_++ & 15) == 0) {
    Op text_touch =
        Op::Touch(text_base_ + (text_cursor_++ % prog_->source.text_pages), false, 0);
    text_touch.as = as_;
    pending_.push_back(text_touch);
  }

  // Touches: one per reference whose page changed.
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    const int64_t page = PageOfRef(ref, 0);
    if (page != last_page_[r]) {
      last_page_[r] = page;
      Op touch = Op::Touch(page, ref.is_write, 0);
      touch.as = as_;
      pending_.push_back(touch);
      ++stats_.page_touches;
      if (runtime_ != nullptr) {
        FireDirectivesForCrossing(r, page, sysops, &hint_cost);
      }
    }
  }
  if (runtime_ != nullptr) {
    FireEveryIterationDirectives(run, sysops, &hint_cost);
  }

  pending_.push_back(Op::Compute(run * nest.compute_per_iteration + hint_cost));
  for (Op& op : sysops) {
    pending_.push_back(op);
  }
  stats_.iterations += run;

  // Advance the odometer by `run` innermost iterations.
  ivs_.back() += run * nest.loops.back().step;
  for (size_t d = nest.loops.size(); d-- > 1;) {
    if (ivs_[d] < nest.loops[d].upper) {
      break;
    }
    ivs_[d] = nest.loops[d].lower;
    ivs_[d - 1] += nest.loops[d - 1].step;
  }
  if (ivs_[0] >= nest.loops[0].upper) {
    ExitNest();
  }
}

void Interpreter::ExitNest() {
  const CompiledNest& compiled = *active_nest_;
  if (runtime_ != nullptr) {
    // Epilogue: flush the one-behind tag filter for this nest's releases.
    SimDuration cost = 0;
    std::vector<Op>& sysops = sysops_scratch_;
    sysops.clear();
    for (const HintDirective& d : compiled.directives) {
      if (d.kind == HintDirective::Kind::kRelease) {
        cost += runtime_->FlushTag(d.tag, sysops);
      }
    }
    if (cost > 0) {
      pending_.push_back(Op::Compute(cost));
    }
    for (Op& op : sysops) {
      pending_.push_back(op);
    }
  }
  in_nest_ = false;
  ++nest_idx_;
}

}  // namespace tmh
