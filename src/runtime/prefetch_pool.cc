#include "src/runtime/prefetch_pool.h"

#include <string>

namespace tmh {

PrefetchPool::PrefetchPool(Kernel* kernel, AddressSpace* as, int num_threads, size_t max_queue)
    : kernel_(kernel), as_(as), max_queue_(max_queue) {
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(this));
    worker_threads_.push_back(kernel_->Spawn(as_->name() + ":pf" + std::to_string(i), as_,
                                             workers_.back().get(), /*is_daemon=*/true));
  }
}

void PrefetchPool::Enqueue(VPage page) {
  if (queued_.contains(page)) {
    ++duplicates_;
    return;
  }
  if (queue_.size() >= max_queue_) {
    ++dropped_full_;
    return;
  }
  queued_.insert(page);
  queue_.push_back(page);
  ++enqueued_;
  kernel_->Signal(&wq_);
}

Op PrefetchPool::Worker::Next(Kernel& kernel) {
  (void)kernel;
  if (pool_->queue_.empty()) {
    return Op::Wait(&pool_->wq_);
  }
  const VPage page = pool_->queue_.front();
  pool_->queue_.pop_front();
  pool_->queued_.erase(page);
  Op op = Op::Prefetch(page);
  op.as = pool_->as_;
  return op;
}

}  // namespace tmh
