#include "src/runtime/prefetch_pool.h"

#include <string>

namespace tmh {

PrefetchPool::PrefetchPool(Kernel* kernel, AddressSpace* as, int num_threads, size_t max_queue)
    : kernel_(kernel), as_(as), max_queue_(max_queue) {
  if (kernel_->observing()) {
    hist_queue_wait_ = kernel_->metrics().GetHistogram(
        "prefetch.queue_wait_ns", ExponentialBounds(1000.0, 2.0, 26),
        {{"as", as_->name()}});
  }
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(this));
    worker_threads_.push_back(kernel_->Spawn(as_->name() + ":pf" + std::to_string(i), as_,
                                             workers_.back().get(), /*is_daemon=*/true));
  }
}

void PrefetchPool::Enqueue(VPage page) {
  if (queued_.contains(page)) {
    ++duplicates_;
    return;
  }
  if (queue_.size() >= max_queue_) {
    ++dropped_full_;
    return;
  }
  queued_.insert(page);
  queue_.push_back(page);
  if (hist_queue_wait_ != nullptr) {
    enqueued_at_[page] = kernel_->Now();
  }
  ++enqueued_;
  kernel_->Signal(&wq_);
}

Op PrefetchPool::Worker::Next(Kernel& kernel) {
  (void)kernel;
  if (pool_->queue_.empty()) {
    return Op::Wait(&pool_->wq_);
  }
  const VPage page = pool_->queue_.front();
  pool_->queue_.pop_front();
  pool_->queued_.erase(page);
  if (pool_->hist_queue_wait_ != nullptr) {
    if (const auto it = pool_->enqueued_at_.find(page); it != pool_->enqueued_at_.end()) {
      pool_->hist_queue_wait_->Add(static_cast<double>(kernel.Now() - it->second));
      pool_->enqueued_at_.erase(it);
    }
  }
  Op op = Op::Prefetch(page);
  op.as = pool_->as_;
  return op;
}

}  // namespace tmh
