// User-level prefetch thread pool (Section 3.3, Figure 6a).
//
// IRIX provides no asynchronous I/O to user programs, so the run-time layer
// creates a set of threads that issue blocking PagingDirected prefetch calls
// on the application's behalf: the main thread enqueues page numbers and
// signals the pool; each worker dequeues a request and blocks in the kernel
// until the page arrives. With ten swap disks, up to `num_threads` prefetches
// proceed in parallel while the application keeps computing.

#ifndef TMH_SRC_RUNTIME_PREFETCH_POOL_H_
#define TMH_SRC_RUNTIME_PREFETCH_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/os/kernel.h"
#include "src/os/thread.h"
#include "src/vm/types.h"

namespace tmh {

class PrefetchPool {
 public:
  // `as` is the application's address space (the PM target). Spawns
  // `num_threads` worker threads immediately.
  PrefetchPool(Kernel* kernel, AddressSpace* as, int num_threads, size_t max_queue = 1024);

  PrefetchPool(const PrefetchPool&) = delete;
  PrefetchPool& operator=(const PrefetchPool&) = delete;

  // Enqueues a prefetch for `page` unless it is already queued or the queue is
  // full. Called inline from the application's run-time layer (user level).
  void Enqueue(VPage page);

  [[nodiscard]] size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] uint64_t enqueued() const { return enqueued_; }
  [[nodiscard]] uint64_t dropped_full() const { return dropped_full_; }
  [[nodiscard]] uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] const std::vector<Thread*>& workers() const { return worker_threads_; }

 private:
  class Worker : public Program {
   public:
    explicit Worker(PrefetchPool* pool) : pool_(pool) {}
    Op Next(Kernel& kernel) override;

   private:
    PrefetchPool* pool_;
  };

  Kernel* kernel_;
  AddressSpace* as_;
  WaitQueue wq_;
  std::deque<VPage> queue_;
  std::unordered_set<VPage> queued_;  // dedup of pending requests
  size_t max_queue_;
  uint64_t enqueued_ = 0;
  uint64_t dropped_full_ = 0;
  uint64_t duplicates_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Thread*> worker_threads_;
  // Observability (set only when the kernel was observing at construction):
  // how long requests sat queued before a worker picked them up.
  Histogram* hist_queue_wait_ = nullptr;
  std::unordered_map<VPage, SimTime> enqueued_at_;
};

}  // namespace tmh

#endif  // TMH_SRC_RUNTIME_PREFETCH_POOL_H_
