#include "src/runtime/runtime_layer.h"

#include <algorithm>
#include <cassert>

namespace tmh {

RuntimeLayer::RuntimeLayer(Kernel* kernel, AddressSpace* as, const RuntimeOptions& options)
    : kernel_(kernel),
      as_(as),
      options_(options),
      pool_(kernel, as, options.num_prefetch_threads) {
  assert(as_->HasPagingDirected() && "attach the PagingDirected PM before the run-time layer");
}

SimDuration RuntimeLayer::OnPrefetchHint(VPage page) {
  ++stats_.prefetch_hints;
  SimDuration cost = options_.hint_check_cost;
  if (page < 0 || page >= as_->num_pages()) {
    return cost;
  }
  // Bitmap check: prefetching a resident page is pure overhead.
  if (as_->bitmap()->Test(page)) {
    ++stats_.prefetch_filtered_resident;
    return cost;
  }
  pool_.Enqueue(page);
  ++stats_.prefetch_enqueued;
  return cost + options_.enqueue_cost;
}

SimDuration RuntimeLayer::OnReleaseHint(VPage page, int32_t priority, int32_t tag,
                                        std::vector<Op>& out) {
  ++stats_.release_hints;
  SimDuration cost = options_.hint_check_cost;
  if (page < 0 || page >= as_->num_pages()) {
    return cost;
  }
  // Tag filter: the first request for a tag is recorded; a repeat of the same
  // page means it is still in use and is dropped; a different page causes the
  // *previously recorded* page to be handled, keeping issued releases one or
  // more iterations behind the compiler's stream.
  //
  // The compiled hint stream names one tag for long runs (one hint per
  // iteration of the same nest), so the map node found last time is cached and
  // re-hit without a hash lookup. unordered_map never invalidates element
  // pointers on insert; FlushTag (the only erase) drops the cache.
  VPage* last;
  if (tag == cached_tag_ && cached_last_ != nullptr) {
    last = cached_last_;
  } else {
    auto [it, inserted] = last_release_.try_emplace(tag, page);
    cached_tag_ = tag;
    cached_last_ = &it->second;
    if (inserted) {
      return cost;
    }
    last = cached_last_;
  }
  if (*last == page) {
    ++stats_.release_filtered_same_page;
    return cost;
  }
  const VPage previous = *last;
  *last = page;
  PolicyAccept(previous, priority, tag, out);
  return cost + options_.enqueue_cost;
}

SimDuration RuntimeLayer::OnPrefetchHintBatch(VPage page, int64_t repeats) {
  if (repeats <= 0) {
    return 0;
  }
  SimDuration cost = OnPrefetchHint(page);
  // The remaining repeats hit the bitmap filter (the page was just enqueued or
  // already resident) or the same-page dedup in the pool.
  stats_.prefetch_hints += repeats - 1;
  stats_.prefetch_filtered_resident += repeats - 1;
  cost += (repeats - 1) * options_.hint_check_cost;
  return cost;
}

SimDuration RuntimeLayer::OnReleaseHintBatch(VPage page, int32_t priority, int32_t tag,
                                             int64_t repeats, std::vector<Op>& out) {
  if (repeats <= 0) {
    return 0;
  }
  SimDuration cost = OnReleaseHint(page, priority, tag, out);
  // The remaining repeats name the same page and die in the tag filter.
  stats_.release_hints += repeats - 1;
  stats_.release_filtered_same_page += repeats - 1;
  cost += (repeats - 1) * options_.hint_check_cost;
  return cost;
}

SimDuration RuntimeLayer::FlushTag(int32_t tag, std::vector<Op>& out) {
  const auto it = last_release_.find(tag);
  if (it == last_release_.end()) {
    return 0;
  }
  ++stats_.tag_flushes;
  const VPage page = it->second;
  last_release_.erase(it);
  cached_last_ = nullptr;  // the erased node may be the cached one
  int32_t priority = 0;
  if (const auto tq = tag_queues_.find(tag); tq != tag_queues_.end()) {
    priority = tq->second.priority;
  }
  PolicyAccept(page, priority, tag, out);
  return options_.hint_check_cost;
}

void RuntimeLayer::PolicyAccept(VPage page, int32_t priority, int32_t tag,
                                std::vector<Op>& out) {
  // Bitmap check on the page actually being released (the hint stream runs a
  // page ahead of this one): pages not in memory need no release.
  if (!as_->bitmap()->Test(page)) {
    ++stats_.release_filtered_not_resident;
    return;
  }
  if (options_.reactive) {
    // Reactive mode: record the page as an eviction candidate; the OS will
    // pull it through the eviction handler if and when it wants memory.
    reactive_candidates_[priority].push_back(page);
    ++stats_.reactive_candidates;
    return;
  }
  if (!options_.buffered || priority == 0) {
    // Aggressive policy, and the buffered policy's no-reuse fast path:
    // "requests with no reuse are issued to the OS after the simple checks."
    EmitRelease(page, priority, tag, out);
    ++stats_.releases_issued_immediate;
    return;
  }
  if (tag != cached_queue_tag_ || cached_queue_ == nullptr) {
    cached_queue_tag_ = tag;
    cached_queue_ = &tag_queues_[tag];
  }
  TagQueue& queue = *cached_queue_;
  if (queue.pages.empty() && queue.priority == 0) {
    queue.priority = priority;
    priority_list_[priority].push_back(tag);
  }
  queue.pages.push_back(page);
  ++buffered_pages_;
  ++stats_.releases_buffered;
  MaybeDrain(out);
}

void RuntimeLayer::MaybeDrain(std::vector<Op>& out) {
  // "When a release request is placed into one of the queues, the current
  // memory usage and memory limit are checked."
  const ResidencyBitmap& bitmap = *as_->bitmap();
  if (bitmap.current_usage() + options_.limit_margin_pages < bitmap.upper_limit()) {
    return;
  }
  if (buffered_pages_ == 0) {
    return;
  }
  ++stats_.release_drains;
  int remaining = options_.release_batch;
  // Lowest priority first; round-robin across the tags at each priority;
  // within a tag, most-recently-released first (MRU for swept arrays).
  for (auto& [priority, tags] : priority_list_) {
    // Resolve each tag's queue once per drain. The round-robin below revisits
    // every tag once per pass, so for a ~100-page batch spread over a few tags
    // that was one hash lookup per page; against the scratch array it is an
    // indexed load. The bitmap reference hoisted above is equally valid for
    // the stale check: draining only appends Ops, it never flips residency.
    drain_queues_.clear();
    drain_queues_.reserve(tags.size());
    for (const int32_t tag : tags) {
      drain_queues_.push_back(&tag_queues_[tag]);
    }
    bool any = true;
    while (remaining > 0 && any) {
      any = false;
      for (size_t i = 0; i < tags.size(); ++i) {
        TagQueue& queue = *drain_queues_[i];
        if (queue.pages.empty() || remaining == 0) {
          continue;
        }
        VPage page;
        if (options_.drain_newest_first) {
          page = queue.pages.back();
          queue.pages.pop_back();
        } else {
          page = queue.pages.front();
          queue.pages.pop_front();
        }
        --buffered_pages_;
        any = true;
        if (!bitmap.Test(page)) {
          ++stats_.buffer_stale_dropped;  // already reclaimed some other way
          continue;
        }
        EmitRelease(page, priority, tags[i], out);
        ++stats_.releases_issued_from_buffer;
        --remaining;
      }
    }
    if (remaining == 0) {
      break;
    }
  }
  if (kernel_->observing()) {
    kernel_->event_log().Record(kernel_->Now(), KernelEventType::kRuntimeDrain,
                                /*tid=*/0, as_->id(), kNoVPage,
                                options_.release_batch - remaining);
  }
}

std::vector<VPage> RuntimeLayer::TakeEvictionCandidates(int64_t count) {
  std::vector<VPage> victims;
  for (auto& [priority, pages] : reactive_candidates_) {
    while (!pages.empty() && static_cast<int64_t>(victims.size()) < count) {
      const VPage page = pages.front();
      pages.pop_front();
      if (!as_->bitmap()->Test(page)) {
        ++stats_.buffer_stale_dropped;  // already reclaimed some other way
        continue;
      }
      victims.push_back(page);
      ++stats_.reactive_served;
    }
    if (static_cast<int64_t>(victims.size()) >= count) {
      break;
    }
  }
  return victims;
}

void RuntimeLayer::EmitRelease(VPage page, int32_t priority, int32_t tag,
                               std::vector<Op>& out) {
  Op op = Op::Release(page, 1, priority, tag);
  op.as = as_;
  out.push_back(op);
}

}  // namespace tmh
