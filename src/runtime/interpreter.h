// Executes a CompiledProgram as a stream of kernel Ops — the stand-in for the
// specialized executable the compiler generates (Figure 4).
//
// The interpreter walks the loop nests at page granularity: it advances the
// innermost loop in runs that stay within one page for every reference (only
// indirect references force single-iteration stepping), emitting one kTouch
// per page crossing, one kCompute per run, and invoking the run-time layer at
// the compiler's hint sites. Loop splitting appears as:
//   * prologue  — on nest entry the first `distance` pages of each prefetched
//     reference are requested (software-pipelining startup);
//   * steady state — hints fire at page crossings (or every iteration for
//     unknown-bound/indirect references, where the run-time layer filters);
//   * epilogue  — the run-time layer's one-behind tag filter is flushed.
//
// With a null RuntimeLayer the interpreter is the original program (version O
// in the paper's graphs): it touches the same pages and burns the same user
// time but issues no hints.

#ifndef TMH_SRC_RUNTIME_INTERPRETER_H_
#define TMH_SRC_RUNTIME_INTERPRETER_H_

#include <cstdint>
#include <vector>

#include "src/compiler/compile.h"
#include "src/os/kernel.h"
#include "src/os/thread.h"
#include "src/runtime/runtime_layer.h"

namespace tmh {

struct InterpreterStats {
  uint64_t iterations = 0;      // innermost iterations executed
  uint64_t page_touches = 0;    // kTouch ops emitted (page crossings)
  uint64_t nests_entered = 0;
  uint64_t repeats_done = 0;
  uint64_t adaptive_recompiles = 0;  // nests re-specialized with actual bounds
};

class Interpreter : public Program {
 public:
  // `runtime` may be null (original, un-instrumented program). `program` and
  // `runtime` must outlive the interpreter.
  Interpreter(const CompiledProgram* program, AddressSpace* as, RuntimeLayer* runtime);

  Op Next(Kernel& kernel) override;

  [[nodiscard]] const InterpreterStats& stats() const { return stats_; }

  // Run fusion: batch consecutive steady-state steps of the innermost loop
  // into one kTouchRun op (word-checked by the kernel) instead of per-page
  // kTouch ops. On by default; differential tests force it off to compare the
  // fused and unfused streams bit for bit.
  void set_fuse_touch_runs(bool v) { fuse_touch_runs_ = v; }

 private:
  // Effective element index of `ref` at the iteration vector, with the
  // innermost loop shifted by `inner_shift` iterations. Indirect references
  // read through their index array. Clamped to the array extent.
  [[nodiscard]] int64_t EvalElement(const ArrayRef& ref, int64_t inner_shift) const;
  // Virtual page of `ref` at the current iteration vector.
  [[nodiscard]] int64_t PageOfRef(const ArrayRef& ref, int64_t inner_shift) const;
  // Actual (run-time) affine expression of a direct ref.
  [[nodiscard]] static const AffineExpr& RuntimeExpr(const ArrayRef& ref) {
    return ref.runtime_affine != nullptr ? *ref.runtime_affine : ref.affine;
  }

  void EnterNest();
  void Step(Kernel& kernel);           // advances program state, pushes pending ops
  void RunIterations(Kernel& kernel);  // one batched run of the innermost loop
  // Fuses the current steady-state span (uniform, phase-aligned run lengths
  // across all crossing refs) into one kTouchRun op. Returns false — leaving
  // all state untouched — when the coming step is not steady (a ref crossing
  // off-lockstep, an odometer cascade, an indirect ref) so the per-op path
  // runs it instead.
  bool TryFusedRun(Kernel& kernel);
  void ExitNest();
  [[nodiscard]] int64_t RunLength() const;
  void FireDirectivesForCrossing(size_t ref_idx, int64_t page, std::vector<Op>& sysops,
                                 SimDuration* cost);
  void FireEveryIterationDirectives(int64_t run, std::vector<Op>& sysops, SimDuration* cost);

  const CompiledProgram* prog_;
  AddressSpace* as_;
  RuntimeLayer* runtime_;  // null => version O

  int64_t repeat_done_ = 0;
  size_t nest_idx_ = 0;
  // The nest currently executing: the statically compiled one, or — with
  // adaptive recompilation — a variant re-specialized to the actual bounds.
  const CompiledNest* active_nest_ = nullptr;
  CompiledNest adaptive_nest_;
  // Text/stack touch rotation (see SourceProgram::text_pages).
  int64_t text_base_ = 0;
  int64_t text_cursor_ = 0;
  uint64_t batch_counter_ = 0;
  bool in_nest_ = false;
  bool done_ = false;
  std::vector<int64_t> ivs_;
  std::vector<int64_t> last_page_;  // per ref; -1 = none
  bool nest_has_indirect_ = false;
  // Emitted-op FIFO: a vector drained through a cursor (and rewound when it
  // empties) instead of a deque, so the steady state allocates nothing.
  std::vector<Op> pending_;
  size_t pending_head_ = 0;
  // Per-call scratch, hoisted out of the hot paths so each RunIterations()
  // (and each shifted EvalElement) reuses capacity instead of reallocating.
  std::vector<Op> sysops_scratch_;
  mutable std::vector<int64_t> shifted_scratch_;

  // Fused-run state. The descriptor and cost array back the emitted kTouchRun
  // op by pointer; they are stable until the op completes because Next() is
  // only called after full completion, and the next TryFusedRun overwrites
  // them only then.
  bool fuse_touch_runs_ = true;
  TouchRunDesc run_desc_;
  std::vector<SimDuration> run_costs_;

  InterpreterStats stats_;
};

}  // namespace tmh

#endif  // TMH_SRC_RUNTIME_INTERPRETER_H_
