// The adaptive run-time layer (Sections 2.3.2 and 3.3).
//
// Sits between the compiler-inserted hints and the OS. It filters obviously
// bad hints (bitmap residency check; per-tag "last release" dedup that keeps
// issued releases one or more iterations behind the compiler's stream), feeds
// prefetches to the user-level thread pool, and applies one of two release
// policies:
//   * aggressive — survivors of the filters are issued to the OS immediately;
//   * buffered   — priority-0 releases (no reuse) are issued immediately,
//     while releases with reuse are buffered in per-tag queues indexed by a
//     priority list; only when the process's memory usage approaches the OS's
//     recommended upper limit does the layer issue a batch (~100 pages) from
//     the lowest-priority queues, draining each queue most-recently-released
//     first, which realizes the MRU replacement the paper describes for
//     larger-than-memory arrays with reuse.
//
// All methods run inline in the application thread (user level): they return
// the CPU cost of their own work and append any syscall Ops (kRelease) the
// caller must execute.

#ifndef TMH_SRC_RUNTIME_RUNTIME_LAYER_H_
#define TMH_SRC_RUNTIME_RUNTIME_LAYER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/os/address_space.h"
#include "src/os/thread.h"
#include "src/runtime/prefetch_pool.h"
#include "src/sim/time.h"
#include "src/vm/types.h"

namespace tmh {

struct RuntimeOptions {
  bool buffered = false;            // false = aggressive releasing
  int release_batch = 100;          // pages issued per drain (Section 3.3)
  int64_t limit_margin_pages = 32;  // "close to the upper limit" threshold
  int num_prefetch_threads = 8;
  // Order in which a near-limit drain issues pages from a tag's queue.
  // false (paper-faithful): oldest buffered first — matches Figure 9's FFTPDE
  // evidence, where most of B's issued releases were already stale because the
  // paging daemon had beaten the drain to the oldest pages. true: newest
  // first, an MRU variant explored by the ablate_priority bench.
  bool drain_newest_first = false;
  // Reactive (VINO-style) mode: release hints become *eviction candidates*
  // instead of pro-active releases; the OS pulls them through the address
  // space's eviction handler when it needs memory (Section 2.2's contrasted
  // alternative, implemented for comparison).
  bool reactive = false;
  // User-level costs. The compiler emits one combined prefetch/release call
  // per site (Figure 5), so the marginal cost per checked hint is small.
  SimDuration hint_check_cost = 40 * kNsec;  // bitmap + tag-filter check
  SimDuration enqueue_cost = 300 * kNsec;    // queue insert + signal
};

struct RuntimeStats {
  uint64_t prefetch_hints = 0;
  uint64_t prefetch_filtered_resident = 0;  // bitmap said already in memory
  uint64_t prefetch_enqueued = 0;
  uint64_t release_hints = 0;
  uint64_t release_filtered_not_resident = 0;
  uint64_t release_filtered_same_page = 0;  // tag filter: page still in use
  uint64_t releases_issued_immediate = 0;   // aggressive or priority 0
  uint64_t releases_buffered = 0;
  uint64_t release_drains = 0;              // near-limit batch issues
  uint64_t releases_issued_from_buffer = 0;
  uint64_t buffer_stale_dropped = 0;        // buffered page no longer resident
  uint64_t tag_flushes = 0;
  uint64_t reactive_candidates = 0;         // candidates recorded (reactive mode)
  uint64_t reactive_served = 0;             // victims handed to the OS on request
};

class RuntimeLayer {
 public:
  RuntimeLayer(Kernel* kernel, AddressSpace* as, const RuntimeOptions& options);

  RuntimeLayer(const RuntimeLayer&) = delete;
  RuntimeLayer& operator=(const RuntimeLayer&) = delete;

  // Handles a compiler prefetch hint for `page`. Returns the user-time cost.
  SimDuration OnPrefetchHint(VPage page);

  // Handles a compiler release hint. Appends any resulting kRelease syscall
  // Ops to `out` and returns the user-time cost.
  SimDuration OnReleaseHint(VPage page, int32_t priority, int32_t tag, std::vector<Op>& out);

  // Batch forms for hints the compiled code evaluates every iteration with an
  // identical outcome (unknown-bound loops running inside one page): one real
  // hint plus `repeats - 1` immediately-filtered duplicates. Semantically
  // identical to calling the single-hint form `repeats` times, in O(1).
  SimDuration OnPrefetchHintBatch(VPage page, int64_t repeats);
  SimDuration OnReleaseHintBatch(VPage page, int32_t priority, int32_t tag, int64_t repeats,
                                 std::vector<Op>& out);

  // Nest epilogue: pushes the tag filter's held-back page through the policy.
  SimDuration FlushTag(int32_t tag, std::vector<Op>& out);

  // Reactive mode: serves up to `count` eviction victims to the OS, lowest
  // reuse priority first, oldest candidates first, skipping stale entries.
  // Wire it up with:  as->set_eviction_handler([&](int64_t n) {
  //                     return layer.TakeEvictionCandidates(n); });
  std::vector<VPage> TakeEvictionCandidates(int64_t count);

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  [[nodiscard]] PrefetchPool& pool() { return pool_; }
  [[nodiscard]] size_t buffered_pages() const { return buffered_pages_; }

 private:
  // A release that survived the filters enters the policy here.
  void PolicyAccept(VPage page, int32_t priority, int32_t tag, std::vector<Op>& out);
  // Issues up to release_batch pages from the lowest-priority queues if the
  // process is close to its recommended upper limit.
  void MaybeDrain(std::vector<Op>& out);
  void EmitRelease(VPage page, int32_t priority, int32_t tag, std::vector<Op>& out);

  Kernel* kernel_;
  AddressSpace* as_;
  RuntimeOptions options_;
  PrefetchPool pool_;

  // Tag filter: last release address seen per tag (kNoVPage = none).
  std::unordered_map<int32_t, VPage> last_release_;
  // Cache of the map node the filter hit last (hint streams repeat one tag for
  // whole loop nests). Element pointers survive inserts; FlushTag nulls it.
  int32_t cached_tag_ = -1;
  VPage* cached_last_ = nullptr;

  // Buffered policy state: per-tag release queues, grouped by priority.
  struct TagQueue {
    std::deque<VPage> pages;  // pushed in hint order; drained from the back (MRU)
    int32_t priority = 0;
  };
  std::unordered_map<int32_t, TagQueue> tag_queues_;
  // One-behind cache over tag_queues_, same pattern as the tag filter above:
  // buffered accepts hit one tag for a whole nest, and element pointers
  // survive inserts (tag_queues_ never erases).
  int32_t cached_queue_tag_ = -1;
  TagQueue* cached_queue_ = nullptr;
  // Priority list: priority -> tags at that priority (round-robin cursor).
  std::map<int32_t, std::vector<int32_t>> priority_list_;
  size_t buffered_pages_ = 0;
  // Per-drain scratch: each tag's queue resolved once per batch, not per page.
  std::vector<TagQueue*> drain_queues_;

  // Reactive mode: eviction candidates by priority, oldest first.
  std::map<int32_t, std::deque<VPage>> reactive_candidates_;

  RuntimeStats stats_;
};

}  // namespace tmh

#endif  // TMH_SRC_RUNTIME_RUNTIME_LAYER_H_
