#include "src/sim/event_log.h"

#include <cstdio>

namespace tmh {
namespace {

// Per-type rendering in the Chrome trace ("ph" phase letters: B/E open and
// close a nested span on one thread row, X is a self-contained span with an
// explicit duration, i an instant marker, C a counter track).
struct ChromePhase {
  char ph;
  const char* name;
  const char* category;
};

ChromePhase PhaseOf(KernelEventType type) {
  switch (type) {
    case KernelEventType::kFaultBegin:
      return {'B', "hard_fault", "fault"};
    case KernelEventType::kFaultEnd:
      return {'E', "hard_fault", "fault"};
    case KernelEventType::kMemoryWaitBegin:
      return {'B', "memory_wait", "fault"};
    case KernelEventType::kMemoryWaitEnd:
      return {'E', "memory_wait", "fault"};
    case KernelEventType::kPrefetchIssue:
      return {'B', "prefetch_io", "prefetch"};
    case KernelEventType::kPrefetchComplete:
      return {'E', "prefetch_io", "prefetch"};
    case KernelEventType::kPrefetchDrop:
      return {'i', "prefetch_drop", "prefetch"};
    case KernelEventType::kReleaseEnqueue:
      return {'i', "release_enqueue", "release"};
    case KernelEventType::kReleaseFree:
      return {'i', "release_free", "release"};
    case KernelEventType::kReleaseRescue:
      return {'i', "release_rescue", "release"};
    case KernelEventType::kDaemonRescue:
      return {'i', "daemon_rescue", "daemon"};
    case KernelEventType::kDaemonSweep:
      return {'X', "daemon_sweep", "daemon"};
    case KernelEventType::kReleaserBatch:
      return {'X', "releaser_batch", "release"};
    case KernelEventType::kRuntimeDrain:
      return {'i', "runtime_drain", "runtime"};
    case KernelEventType::kFreePagesSample:
      return {'C', "free_pages", "memory"};
  }
  return {'i', "unknown", "unknown"};
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* KernelEventName(KernelEventType type) { return PhaseOf(type).name; }

size_t EventLog::Count(KernelEventType type) const {
  size_t n = 0;
  for (const KernelEvent& e : events_) {
    n += (e.type == type) ? 1 : 0;
  }
  return n;
}

std::string EventLog::ToChromeTrace() const {
  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
      "\"args\":{\"name\":\"tmh simulated kernel\"}}";
  char buf[256];
  for (const auto& [tid, name] : thread_names_) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"",
                  tid);
    out += buf;
    AppendEscaped(out, name);
    out += "\"}}";
  }
  for (const KernelEvent& e : events_) {
    const ChromePhase phase = PhaseOf(e.type);
    // Chrome timestamps are microseconds; three decimals keep ns precision.
    const double ts_us = static_cast<double>(e.when) / 1e3;
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"%c\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,"
                  "\"tid\":%d,\"ts\":%.3f",
                  phase.ph, phase.name, phase.category, e.tid, ts_us);
    out += buf;
    if (phase.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(e.arg) / 1e3);
      out += buf;
    }
    if (phase.ph == 'i') {
      out += ",\"s\":\"t\"";  // instant scoped to its thread
    }
    if (phase.ph == 'C') {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"free_pages\":%lld}",
                    static_cast<long long>(e.arg));
      out += buf;
    } else if (phase.ph != 'E') {  // E events inherit the B event's args
      out += ",\"args\":{";
      bool first = true;
      if (e.as != kNoAs) {
        out += "\"as\":\"";
        const auto it = as_names_.find(e.as);
        AppendEscaped(out, it != as_names_.end() ? it->second : std::to_string(e.as));
        out += '"';
        first = false;
      }
      if (e.vpage != kNoVPage) {
        // Batch spans reuse the field as a page count (see KernelEventType).
        const bool is_span = phase.ph == 'X';
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", first ? "" : ",",
                      is_span ? "pages" : "vpage", static_cast<long long>(e.vpage));
        out += buf;
        first = false;
      }
      if (e.type == KernelEventType::kRuntimeDrain) {
        std::snprintf(buf, sizeof(buf), "%s\"issued\":%lld", first ? "" : ",",
                      static_cast<long long>(e.arg));
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool EventLog::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeTrace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tmh
