// Small-buffer-optimized move-only callable for the event queue's hot path.
//
// `std::function` heap-allocates for captures beyond a couple of pointers and
// pays a double indirection per call; the simulator schedules tens of millions
// of small lambdas (a `this` pointer plus a word or two), so those allocations
// dominate the substrate's own cost.
//
// InlineCallable is deliberately more restrictive than std::function so that
// *moving* one is a raw byte copy — no indirect call, and `vector` growth over
// thousands of pending actions stays a tight loop:
//
//   * The inline path is taken only for trivially-copyable callables of at
//     most kInlineBytes (every lambda the kernel and daemons schedule:
//     `this` plus a few scalar words). Trivial copyability is what makes the
//     memcpy move legal.
//   * Everything else (e.g. disk-completion lambdas that own an IoRequest
//     with a std::function inside) goes to the heap; the buffer then holds
//     just the owning pointer, which is itself trivially copyable.
//
// Destruction is a branch on a null pointer in the inline case — no indirect
// call on the hot path.

#ifndef TMH_SRC_SIM_INLINE_CALLABLE_H_
#define TMH_SRC_SIM_INLINE_CALLABLE_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace tmh {

class InlineCallable {
 public:
  // Large enough for a `this` pointer plus two captured words, which covers
  // every periodic-daemon and paging lambda in the simulator.
  static constexpr size_t kInlineBytes = 24;

  InlineCallable() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallable> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  // Replaces the stored callable, constructing the new one in place (no
  // temporary InlineCallable, no buffer copy on the scheduling fast path).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallable> &&
                                        std::is_invocable_r_v<void, D&>>>
  void Emplace(F&& f) {
    if (dtor_ != nullptr) {
      dtor_(buf_);
      dtor_ = nullptr;
    }
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* buf) { (*Stored<D>(buf))(); };
      // dtor_ stays null: trivially-copyable implies trivially-destructible.
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* buf) { (**Stored<D*>(buf))(); };
      dtor_ = [](void* buf) noexcept { delete *Stored<D*>(buf); };
    }
  }

  InlineCallable(InlineCallable&& other) noexcept { TakeRaw(other); }

  InlineCallable& operator=(InlineCallable&& other) noexcept {
    if (this != &other) {
      Reset();
      TakeRaw(other);
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() {
    if (dtor_ != nullptr) {
      dtor_(buf_);
    }
  }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  // Destroys the stored callable (no-op if empty).
  void Reset() {
    if (dtor_ != nullptr) {
      dtor_(buf_);
    }
    invoke_ = nullptr;
    dtor_ = nullptr;
  }

 private:
  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
           std::is_trivially_copyable_v<D>;
  }

  template <typename D>
  static D* Stored(void* buf) {
    return std::launder(reinterpret_cast<D*>(buf));
  }

  // Steals `other`'s state with a raw copy. Legal because the buffer only
  // ever holds trivially-copyable bytes (the inline callable, or the heap
  // pointer), and ownership transfers by nulling the source's pointers.
  void TakeRaw(InlineCallable& other) noexcept {
    invoke_ = other.invoke_;
    dtor_ = other.dtor_;
    std::memcpy(buf_, other.buf_, kInlineBytes);
    other.invoke_ = nullptr;
    other.dtor_ = nullptr;
  }

  void (*invoke_)(void* buf) = nullptr;
  void (*dtor_)(void* buf) noexcept = nullptr;
  alignas(void*) unsigned char buf_[kInlineBytes];
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_INLINE_CALLABLE_H_
