#include "src/sim/metrics.h"

#include <cstdio>

namespace tmh {

std::string MetricsRegistry::Key(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += labels[i].first;
    key += "=\"";
    key += labels[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  return &counters_[Key(name, labels)];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  return &gauges_[Key(name, labels)];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds,
                                         const MetricLabels& labels) {
  const auto [it, inserted] = histograms_.try_emplace(Key(name, labels), std::move(bounds));
  (void)inserted;
  return &it->second;
}

std::string MetricsRegistry::TextDump() const {
  std::string out = "# tmh-metrics-v1\n";
  char line[256];
  for (const auto& [key, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [key, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %g\n", key.c_str(), gauge.value());
    out += line;
  }
  for (const auto& [key, hist] : histograms_) {
    std::snprintf(line, sizeof(line), "histogram %s total=%llu p50=%g p90=%g p99=%g\n",
                  key.c_str(), static_cast<unsigned long long>(hist.total()),
                  hist.Quantile(0.5), hist.Quantile(0.9), hist.Quantile(0.99));
    out += line;
  }
  return out;
}

bool MetricsRegistry::WriteText(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string dump = TextDump();
  const bool ok = std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tmh
