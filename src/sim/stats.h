// Lightweight statistics primitives used by every simulated component.

#ifndef TMH_SRC_SIM_STATS_H_
#define TMH_SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tmh {

// Running sum / count / min / max over a stream of samples.
class Accumulator {
 public:
  void Add(double sample) {
    sum_ += sample;
    ++count_;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }

  void Reset() { *this = Accumulator(); }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  double sum_ = 0.0;
  uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-boundary histogram. Bucket i counts samples in [bounds[i-1], bounds[i]);
// a final overflow bucket counts samples >= bounds.back().
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Add(double sample);
  void Reset();

  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<uint64_t>& counts() const { return counts_; }

  // Approximate quantile by linear interpolation within buckets; q in [0,1].
  // A quantile that lands in the overflow bucket saturates to bounds().back()
  // — read that value as ">= the last bound", not as an exact estimate.
  // q = 0 is exact, not interpolated: it returns the smallest sample ever
  // added (the histogram tracks the observed minimum). Interpolating would
  // return the first nonempty bucket's lower edge — 0.0 for the first bucket —
  // even when every sample sits near that bucket's upper bound.
  [[nodiscard]] double Quantile(double q) const;

  // Multi-line human-readable rendering (for example programs and debugging).
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<double> bounds_;   // strictly increasing upper bounds
  std::vector<uint64_t> counts_; // bounds_.size() + 1 buckets
  uint64_t total_ = 0;
  // Smallest sample added since construction/Reset (Quantile(0) semantics).
  double min_sample_ = std::numeric_limits<double>::infinity();
};

// Builds `n` exponentially spaced bounds starting at `first`, ratio `ratio`.
std::vector<double> ExponentialBounds(double first, double ratio, int n);

}  // namespace tmh

#endif  // TMH_SRC_SIM_STATS_H_
