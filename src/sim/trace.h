// Time-series tracing of the simulated machine.
//
// The paper's figures are end-of-run aggregates; understanding *why* a run
// behaved as it did usually needs the time axis — when the free list dipped,
// when the daemon swept, how deep the disk queues ran. A TraceRecorder
// collects periodic samples of named series; the CSV export feeds any
// plotting tool.

#ifndef TMH_SRC_SIM_TRACE_H_
#define TMH_SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace tmh {

struct TraceSample {
  SimTime when = 0;
  std::vector<double> values;  // one per series, in registration order
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  // Registers a named series; returns its column index. All series must be
  // registered before the first Record() call.
  int AddSeries(const std::string& name);

  // Appends one sample row (values in registration order).
  void Record(SimTime when, std::vector<double> values);

  [[nodiscard]] const std::vector<std::string>& series() const { return series_; }
  [[nodiscard]] const std::vector<TraceSample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // Renders "time_s,series1,series2,...\n..." rows.
  [[nodiscard]] std::string ToCsv() const;

  // Writes the CSV to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  // Min/max/final value of one series (by index), for quick assertions.
  // An index outside the registered series yields the all-zero summary.
  struct SeriesSummary {
    double min = 0;
    double max = 0;
    double final = 0;
  };
  [[nodiscard]] SeriesSummary Summarize(int series_index) const;

 private:
  std::vector<std::string> series_;
  std::vector<TraceSample> samples_;
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_TRACE_H_
