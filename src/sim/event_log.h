// Structural event log of the simulated kernel.
//
// Where TraceRecorder samples levels at a fixed period, the EventLog records
// the *edges*: every fault span, prefetch I/O, release decision, daemon sweep,
// and memory wait, with its simulated timestamp and thread / address-space
// attribution. The Chrome trace export renders the run as a timeline loadable
// in about://tracing (or ui.perfetto.dev): span events (ph B/E or X) per
// simulated thread, instants for one-shot decisions, and counter events for
// free memory.
//
// Recording is off by default and the log is append-only POD, so a disabled
// log costs one branch per call site; components additionally guard their
// Record calls behind Kernel::observing() so argument marshalling is skipped
// too.

#ifndef TMH_SRC_SIM_EVENT_LOG_H_
#define TMH_SRC_SIM_EVENT_LOG_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/vm/types.h"

namespace tmh {

enum class KernelEventType : uint8_t {
  kFaultBegin,        // hard-fault page-in I/O issued (span open)
  kFaultEnd,          // page-in mapped and validated (span close)
  kMemoryWaitBegin,   // fault found no free frame; thread parked (span open)
  kMemoryWaitEnd,     // free frame appeared; thread woken (span close)
  kPrefetchIssue,     // prefetch page-in I/O issued (span open)
  kPrefetchComplete,  // prefetched page mapped unvalidated (span close)
  kPrefetchDrop,      // prefetch discarded: no free memory / partition cap
  kReleaseEnqueue,    // release syscall queued one page for the releaser
  kReleaseFree,       // releaser freed the page to the free list
  kReleaseRescue,     // touch/prefetch rescued a release-freed frame
  kDaemonRescue,      // touch/prefetch rescued a daemon-freed frame
  kDaemonSweep,       // one paging-daemon batch (arg = CPU cost, vpage = stolen)
  kReleaserBatch,     // one releaser batch (arg = CPU cost, vpage = freed)
  kRuntimeDrain,      // run-time layer near-limit drain (arg = pages issued)
  kFreePagesSample,   // periodic free-list level (arg = free pages)
};

// Stable lower_snake name used in exports and tests.
const char* KernelEventName(KernelEventType type);

struct KernelEvent {
  SimTime when = 0;
  KernelEventType type = KernelEventType::kFreePagesSample;
  int32_t tid = 0;          // simulated thread id; 0 = kernel context
  AsId as = kNoAs;          // involved address space, if any
  VPage vpage = kNoVPage;   // involved page (or a count for batch spans)
  int64_t arg = 0;          // type-specific payload (duration ns, level, count)

  friend bool operator==(const KernelEvent&, const KernelEvent&) = default;
};

class EventLog {
 public:
  // ~40 MB of events at the default; the log stops (and counts drops) beyond.
  static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  EventLog() = default;

  void Enable(size_t capacity = kDefaultCapacity) {
    enabled_ = true;
    capacity_ = capacity;
    events_.reserve(std::min(capacity, size_t{1} << 16));
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void Record(SimTime when, KernelEventType type, int32_t tid, AsId as = kNoAs,
              VPage vpage = kNoVPage, int64_t arg = 0) {
    if (!enabled_) {
      return;
    }
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(KernelEvent{when, type, tid, as, vpage, arg});
  }

  // Attribution names shown in the Chrome trace (thread rows, "as" args).
  void SetThreadName(int32_t tid, const std::string& name) { thread_names_[tid] = name; }
  void SetAddressSpaceName(AsId as, const std::string& name) { as_names_[as] = name; }

  [[nodiscard]] const std::vector<KernelEvent>& events() const { return events_; }
  [[nodiscard]] size_t dropped() const { return dropped_; }
  [[nodiscard]] size_t Count(KernelEventType type) const;

  // Renders the Chrome tracing JSON object ({"traceEvents": [...]}).
  [[nodiscard]] std::string ToChromeTrace() const;

  // Writes the Chrome trace JSON to `path`. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  bool enabled_ = false;
  size_t capacity_ = 0;
  size_t dropped_ = 0;
  std::vector<KernelEvent> events_;
  std::map<int32_t, std::string> thread_names_;
  std::map<AsId, std::string> as_names_;
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_EVENT_LOG_H_
