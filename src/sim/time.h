// Simulated-time definitions for the discrete-event substrate.
//
// All simulated time in this project is kept in integer nanoseconds. Integer
// time keeps the event queue totally ordered and the whole simulation
// deterministic across platforms (no floating-point drift); nanosecond
// granularity lets per-iteration compute costs (tens of ns) and run-time-layer
// hint checks (hundreds of ns) be expressed exactly.

#ifndef TMH_SRC_SIM_TIME_H_
#define TMH_SRC_SIM_TIME_H_

#include <cstdint>

namespace tmh {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNsec = 1;
inline constexpr SimDuration kUsec = 1000 * kNsec;
inline constexpr SimDuration kMsec = 1000 * kUsec;
inline constexpr SimDuration kSec = 1000 * kMsec;

// Converts a duration to floating-point seconds (for reports only; never feed
// the result back into the simulation).
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

// Converts a duration to floating-point milliseconds (for reports only).
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }

// Converts a duration to floating-point microseconds (for reports only).
constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / 1e3; }

}  // namespace tmh

#endif  // TMH_SRC_SIM_TIME_H_
