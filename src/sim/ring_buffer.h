// Fixed-stride FIFO ring over a power-of-two arena.
//
// The kernel's release work queue (and similar short-lived sim-object pools)
// see a push_back/pop_front pattern whose occupancy is small but whose total
// traffic is millions of items per benchmark run. A deque pays chunk map
// indirection per access and allocator traffic when the map shifts; this ring
// is one contiguous allocation that doubles on overflow and is thereafter
// allocation-free, with O(1) indexed access (so checkers can iterate the
// pending window in FIFO order without draining it).
//
// T must be trivially copyable: growth relocates the live window with plain
// copies, and no destructors run on pop.

#ifndef TMH_SRC_SIM_RING_BUFFER_H_
#define TMH_SRC_SIM_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace tmh {

template <typename T>
class RingBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  RingBuffer() : slots_(kInitialCapacity) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t size() const { return size_; }

  // By value, deliberately: `value` may alias the buffer's own storage
  // (push_back(rb.front())), and a push at full capacity relocates the arena —
  // a reference parameter would dangle across Grow(). T is trivially copyable,
  // so the copy is the same load the store needs anyway.
  void push_back(T value) {
    if (size_ == slots_.size()) {
      Grow();
    }
    slots_[(head_ + size_) & (slots_.size() - 1)] = value;
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
  }

  // FIFO-order access into the live window: at(0) == front().
  [[nodiscard]] const T& at(size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & (slots_.size() - 1)];
  }

  // Input iterator over the live window in FIFO order (checker introspection).
  class const_iterator {
   public:
    const_iterator(const RingBuffer* ring, size_t pos) : ring_(ring), pos_(pos) {}
    const T& operator*() const { return ring_->at(pos_); }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const { return pos_ != other.pos_; }
    bool operator==(const const_iterator& other) const { return pos_ == other.pos_; }

   private:
    const RingBuffer* ring_;
    size_t pos_;
  };

  [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, size_); }

 private:
  static constexpr size_t kInitialCapacity = 64;  // power of two

  // Relocates the live window to the front of a doubled arena. The copy loop
  // runs before the swap, so at(i) still masks with the OLD capacity — correct
  // even when the window wraps (head_ + size_ past the arena end) at the
  // moment of growth.
  void Grow() {
    std::vector<T> bigger(slots_.size() * 2);
    for (size_t i = 0; i < size_; ++i) {
      bigger[i] = at(i);
    }
    slots_.swap(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_RING_BUFFER_H_
