#include "src/sim/rng.h"

#include <cassert>

namespace tmh {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
  // All-zero state would be absorbing; splitmix64 of any seed avoids it, but
  // keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound != 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

}  // namespace tmh
