// Deterministic pseudo-random number generator for workload synthesis.
//
// xoshiro256** — small, fast, and identical on every platform, so workloads
// that use random access patterns (BUK's rank array, CGM's sparse columns)
// produce bit-identical page-touch traces across runs and machines.

#ifndef TMH_SRC_SIM_RNG_H_
#define TMH_SRC_SIM_RNG_H_

#include <cstdint>

namespace tmh {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator using splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  // Next 64 uniformly random bits.
  uint64_t NextU64();

  // Uniform integer in [0, bound). `bound` must be nonzero. Uses rejection
  // sampling (Lemire) so the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_RNG_H_
