#include "src/sim/trace.h"

#include <cassert>
#include <cstdio>

namespace tmh {

int TraceRecorder::AddSeries(const std::string& name) {
  assert(samples_.empty() && "register all series before recording");
  series_.push_back(name);
  return static_cast<int>(series_.size()) - 1;
}

void TraceRecorder::Record(SimTime when, std::vector<double> values) {
  assert(values.size() == series_.size());
  samples_.push_back(TraceSample{when, std::move(values)});
}

std::string TraceRecorder::ToCsv() const {
  std::string out = "time_s";
  for (const std::string& name : series_) {
    out += ',';
    out += name;
  }
  out += '\n';
  char buf[64];
  for (const TraceSample& sample : samples_) {
    std::snprintf(buf, sizeof(buf), "%.6f", ToSeconds(sample.when));
    out += buf;
    for (const double v : sample.values) {
      std::snprintf(buf, sizeof(buf), ",%.6g", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool TraceRecorder::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string csv = ToCsv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

TraceRecorder::SeriesSummary TraceRecorder::Summarize(int series_index) const {
  SeriesSummary summary;
  if (samples_.empty() || series_index < 0 ||
      static_cast<size_t>(series_index) >= series_.size()) {
    return summary;
  }
  const auto idx = static_cast<size_t>(series_index);
  summary.min = summary.max = summary.final = samples_.front().values[idx];
  for (const TraceSample& sample : samples_) {
    const double v = sample.values[idx];
    summary.min = std::min(summary.min, v);
    summary.max = std::max(summary.max, v);
    summary.final = v;
  }
  return summary;
}

}  // namespace tmh
