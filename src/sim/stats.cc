#include "src/sim/stats.h"

#include <cassert>
#include <cstdio>

namespace tmh {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  assert(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i] > bounds_[i - 1] && "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Add(double sample) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), sample);
  counts_[static_cast<size_t>(it - bounds_.begin())]++;
  ++total_;
  min_sample_ = std::min(min_sample_, sample);
}

void Histogram::Reset() {
  counts_.assign(counts_.size(), 0);
  total_ = 0;
  min_sample_ = std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) {
    // target would be 0, which interpolates to the first nonempty bucket's
    // lower edge — 0.0 whenever that is the first bucket, however large the
    // samples. The minimum is tracked exactly, so report it exactly.
    return min_sample_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i == bounds_.size()) {
        // Overflow bucket [bounds.back(), inf): there is no upper edge to
        // interpolate toward, so saturate at the last finite bound (the
        // sentinel documented in stats.h) instead of pretending lo == hi.
        return bounds_.back();
      }
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    if (i < bounds_.size()) {
      std::snprintf(line, sizeof(line), "  < %12.1f : %llu\n", bounds_[i],
                    static_cast<unsigned long long>(counts_[i]));
    } else {
      std::snprintf(line, sizeof(line), "  >=%12.1f : %llu\n", bounds_.back(),
                    static_cast<unsigned long long>(counts_[i]));
    }
    out += line;
  }
  return out;
}

std::vector<double> ExponentialBounds(double first, double ratio, int n) {
  assert(first > 0 && ratio > 1.0 && n > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(n));
  double b = first;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  return bounds;
}

}  // namespace tmh
