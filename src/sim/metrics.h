// Structured metrics for the simulated machine.
//
// A MetricsRegistry holds named counters, gauges, and latency Histograms,
// optionally distinguished by a label set ({k="v",...}). Components resolve a
// metric once (GetCounter/GetGauge/GetHistogram are find-or-create and return
// stable pointers) and then update it through the pointer on the hot path, so
// a recorded sample is one guarded pointer store away from free. The text
// dump ("tmh-metrics-v1", one metric per line, sorted by key) is the export
// format; it carries histogram totals and quantiles alongside the aggregate
// counters the figures are built from.

#ifndef TMH_SRC_SIM_METRICS_H_
#define TMH_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/stats.h"

namespace tmh {

// Ordered label set rendered into the metric key as {k="v",...}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  // End-of-run publication of an externally accumulated total (idempotent,
  // unlike Inc); not for hot-path use.
  void Set(uint64_t v) { value_ = v; }
  [[nodiscard]] uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Instantaneous level (free pages, queue depth); keeps the last value set.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned pointers stay valid for the registry's lifetime.
  // A histogram's bounds are fixed by its first registration; later calls
  // under the same key return the existing instance and ignore `bounds`.
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const MetricLabels& labels = {});

  // The full key a (name, labels) pair is stored under: name{k="v",...}.
  static std::string Key(const std::string& name, const MetricLabels& labels);

  [[nodiscard]] size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // One metric per line, sorted by key within each kind:
  //   counter <key> <value>
  //   gauge <key> <value>
  //   histogram <key> total=<n> p50=<q> p90=<q> p99=<q>
  [[nodiscard]] std::string TextDump() const;

  // Writes the text dump to `path`. Returns false on I/O failure.
  bool WriteText(const std::string& path) const;

 private:
  // std::map: sorted dump for free, and node stability for the returned
  // pointers.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_METRICS_H_
