// Branch-prediction annotations for the simulator's hot paths.
//
// The kernel's observability and checker hooks sit inside the per-event and
// per-op loops; marking their guards cold keeps the disabled configuration —
// the one every benchmark and sweep runs — on a straight-line fast path where
// the instrumentation costs one predicted-untaken branch.

#ifndef TMH_SRC_SIM_COMPILER_HINTS_H_
#define TMH_SRC_SIM_COMPILER_HINTS_H_

#define TMH_LIKELY(x) (__builtin_expect(!!(x), 1))
#define TMH_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#endif  // TMH_SRC_SIM_COMPILER_HINTS_H_
