#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tmh {

EventId EventQueue::ScheduleAt(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule events in the simulated past");
  if (when < now_) {
    when = now_;
  }
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq numbers are unique, reuse them as ids
  heap_.push(Entry{when, seq, id, std::move(action)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) {
    return false;
  }
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) {
    return false;  // already cancelled
  }
  // We cannot tell a consumed id from a live one without a side table; keep a
  // conservative check: ids are only handed out for scheduled events, and
  // executed events are recorded by erasing them from `cancelled_` lazily in
  // SkipCancelled(). Double-cancel of an executed event is caught there.
  cancelled_.insert(it, id);
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), top.id);
    if (it == cancelled_.end() || *it != top.id) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::RunOne() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const; the entry must be moved out before the
  // action runs because the action may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_count_;
  assert(entry.when >= now_);
  now_ = entry.when;
  ++executed_;
  entry.action();
  return true;
}

uint64_t EventQueue::RunUntil(SimTime deadline) {
  uint64_t count = 0;
  while (true) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    RunOne();
    ++count;
  }
  // Advance the clock to the deadline so back-to-back RunUntil calls observe
  // monotonic time even across empty stretches.
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

uint64_t EventQueue::RunToCompletion(uint64_t max_events) {
  uint64_t count = 0;
  while (count < max_events && RunOne()) {
    ++count;
  }
  return count;
}

SimTime EventQueue::NextEventTime(SimTime fallback) const {
  SkipCancelled();
  if (heap_.empty()) {
    return fallback;
  }
  return heap_.top().when;
}

}  // namespace tmh
