#include "src/sim/event_queue.h"

namespace tmh {

namespace {

constexpr uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
constexpr uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }

}  // namespace

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t slot = SlotOf(id);
  if (slot >= next_slot_) {
    return false;  // never existed
  }
  Slot& rec = SlotAt(slot);
  if (rec.gen != GenOf(id)) {
    return false;  // already ran or already cancelled
  }
  rec.action.Reset();  // free captures now, not at slot reuse
  ++rec.gen;
  rec.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
  return true;
}

bool EventQueue::PeekEarliest(SimTime* when) const {
  uint32_t levels = level_mask_;
  while (levels != 0) {
    const int level = __builtin_ctz(levels);
    const int slot = FirstSlot(level);
    Bucket& b = BucketAt(level, slot);
    if (!CompactBucket(level, slot, b)) {
      levels = level_mask_;
      continue;
    }
    if (level == 0) {
      *when = static_cast<SimTime>(b.items[b.head].key);
      return true;
    }
    uint64_t min_key = b.items[0].key;
    for (const Item& it : b.items) {
      min_key = it.key < min_key ? it.key : min_key;
    }
    *when = static_cast<SimTime>(min_key);
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(SimTime deadline) {
  uint64_t count = 0;
  while (true) {
    SimTime next;
    if (!PeekEarliest(&next) || next > deadline) {
      break;
    }
    RunOne();
    ++count;
  }
  // Advance the clock to the deadline so back-to-back RunUntil calls observe
  // monotonic time even across empty stretches.
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

SimTime EventQueue::NextEventTime(SimTime fallback) const {
  SimTime next;
  if (!PeekEarliest(&next)) {
    return fallback;
  }
  return next;
}

}  // namespace tmh
