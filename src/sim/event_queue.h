// Deterministic discrete-event queue.
//
// The queue orders events by (time, sequence number) so that events scheduled
// for the same instant run in FIFO order. Every stateful component of the
// simulated machine (CPUs, disks, daemons) advances exclusively by posting
// events here; there is no wall-clock anywhere in the simulation.

#ifndef TMH_SRC_SIM_EVENT_QUEUE_H_
#define TMH_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace tmh {

// Handle used to cancel a pending event. Cancellation is lazy: the event stays
// in the heap but is skipped when popped.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside RunOne()/RunUntil().
  [[nodiscard]] SimTime Now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (>= Now()). Returns a
  // handle usable with Cancel().
  EventId ScheduleAt(SimTime when, Action action);

  // Schedules `action` to run `delay` microseconds from now.
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed.
  bool Cancel(EventId id);

  // Runs the next pending event, advancing Now(). Returns false if empty.
  bool RunOne();

  // Runs events until the queue is empty or Now() would exceed `deadline`.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime deadline);

  // Runs events until the queue drains. Returns the number executed. A safety
  // cap guards against runaway self-rescheduling loops.
  uint64_t RunToCompletion(uint64_t max_events = UINT64_MAX);

  // Time of the earliest pending (non-cancelled) event, or `fallback` if none.
  [[nodiscard]] SimTime NextEventTime(SimTime fallback) const;

  [[nodiscard]] bool Empty() const { return live_count_ == 0; }
  [[nodiscard]] size_t PendingCount() const { return live_count_; }
  [[nodiscard]] uint64_t ExecutedCount() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the heap top.
  void SkipCancelled() const;

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_count_ = 0;
  // Entries are kept in a mutable heap so const queries can drop cancelled
  // heads without changing observable state.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of cancelled-but-not-yet-popped events, kept sorted for O(log n) find.
  mutable std::vector<EventId> cancelled_;
};

}  // namespace tmh

#endif  // TMH_SRC_SIM_EVENT_QUEUE_H_
