// Deterministic discrete-event queue.
//
// The queue orders events by (time, schedule order) so that events scheduled
// for the same instant run in FIFO order. Every stateful component of the
// simulated machine (CPUs, disks, daemons) advances exclusively by posting
// events here; there is no wall-clock anywhere in the simulation.
//
// Hot-path design (the simulator's own throughput is bounded here):
//
//   * Actions are InlineCallable — no heap allocation for the small lambdas
//     the kernel and disks schedule by the tens of millions — and are
//     emplaced directly into their storage slot by the templated
//     ScheduleAt(), so scheduling never copies a capture buffer.
//
//   * Events live in a 64-ary radix timer wheel. Because ScheduleAt() only
//     accepts times >= Now(), the queue is *monotone*, which a comparison
//     heap cannot exploit but a radix structure can: an event is filed by the
//     highest base-64 digit in which its time differs from the wheel's
//     reference time (`cur_`), at the slot given by that digit. Buckets are
//     plain vectors appended in schedule order, so equal-time FIFO falls out
//     structurally — no sequence numbers, no comparisons. Push is O(1); pop
//     re-files the lowest nonempty bucket into lower levels when the
//     reference time advances, which touches each event at most
//     ceil(64/6) times over its whole lifetime (2-3 times in practice).
//     All bucket traffic is sequential, unlike a binary heap's random walks.
//
//   * Handles are generation-stamped slot references, making Cancel() O(1):
//     it bumps the slot's generation, and the now-stale wheel item is dropped
//     when it next surfaces.
//
//   * Wheel items are 16 trivially-copyable bytes; the action body and the
//     slot's generation stamp live together in a chunked slot table whose
//     chunks never move. Cascades therefore shuffle raw PODs (memmove), each
//     action is constructed exactly once (in its slot at schedule) and
//     invoked in place, and the liveness check, generation bump, and
//     dispatch all touch the same cache line.

#ifndef TMH_SRC_SIM_EVENT_QUEUE_H_
#define TMH_SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/inline_callable.h"
#include "src/sim/time.h"

namespace tmh {

// Handle used to cancel a pending event: a slot index in the low 32 bits and
// that slot's generation in the high 32 bits. Generations start at 1, so no
// valid handle equals kInvalidEventId.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = InlineCallable;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside RunOne()/RunUntil().
  [[nodiscard]] SimTime Now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (>= Now()). Returns a
  // handle usable with Cancel(). Accepts any void() callable (constructed
  // in place in its slot) or a prebuilt Action (moved in).
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAt(SimTime when, F&& action);

  // Schedules `action` to run `delay` microseconds from now.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAfter(SimDuration delay, F&& action) {
    return ScheduleAt(now_ + delay, std::forward<F>(action));
  }

  // Cancels a pending event in O(1). Returns false if the event already ran,
  // was already cancelled, or never existed.
  bool Cancel(EventId id);

  // Runs the next pending event, advancing Now(). Returns false if empty.
  bool RunOne();

  // Runs events until the queue is empty or Now() would exceed `deadline`.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime deadline);

  // Runs events until the queue drains. Returns the number executed. A safety
  // cap guards against runaway self-rescheduling loops.
  uint64_t RunToCompletion(uint64_t max_events = UINT64_MAX);

  // Runs events with the same bucket-draining dispatch as RunToCompletion,
  // but calls `stop()` after each executed event and returns as soon as it
  // yields true. The callable is a template parameter, so a cheap predicate
  // (e.g. a generation-counter compare) inlines into the dispatch loop
  // instead of costing a std::function call per event.
  template <typename Stop,
            typename = std::enable_if_t<std::is_invocable_r_v<bool, Stop&>>>
  uint64_t RunWhile(Stop&& stop, uint64_t max_events = UINT64_MAX);

  // Time of the earliest pending (non-cancelled) event, or `fallback` if none.
  [[nodiscard]] SimTime NextEventTime(SimTime fallback) const;

  [[nodiscard]] bool Empty() const { return live_count_ == 0; }
  [[nodiscard]] size_t PendingCount() const { return live_count_; }
  [[nodiscard]] uint64_t ExecutedCount() const { return executed_; }

 private:
  // Base-64 digits: 6 bits per level, 11 levels cover the full 63-bit time
  // range. In a steady-state simulation only the bottom 2-3 levels are hot.
  static constexpr int kDigitBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kDigitBits;
  static constexpr int kLevels = 11;

  // Wheel entry: 16 trivially-copyable bytes, so cascades and bucket growth
  // are memmoves. The action itself lives in the slot table, where it never
  // moves while the event is pending.
  struct Item {
    uint64_t key;   // absolute time
    uint32_t slot;  // handle slot (action body + cancellation check)
    uint32_t gen;
  };
  static_assert(std::is_trivially_copyable_v<Item>);

  // One pending event's out-of-wheel state. gen counts up on every retire
  // (run or cancel), invalidating outstanding handles and stale wheel items.
  // Free slots form an intrusive LIFO through next_free, so recycling a slot
  // touches only this (already hot) cache line: with the 24-byte action
  // buffer the whole record is exactly 48 bytes.
  struct Slot {
    Action action;
    uint32_t gen = 1;
    uint32_t next_free = kNoFreeSlot;
  };

  struct Bucket {
    std::vector<Item> items;
    // Pop cursor; nonzero only in level-0 buckets, which hold a single exact
    // time and drain FIFO without erasing from the front.
    size_t head = 0;
  };

  [[nodiscard]] bool IsLive(const Item& it) const { return SlotAt(it.slot).gen == it.gen; }

  // Files `key` relative to `cur_`: level = highest differing base-64 digit,
  // slot = that digit of `key`.
  void Locate(uint64_t key, int* level, int* slot) const;

  [[nodiscard]] Bucket& BucketAt(int level, int slot) const {
    return buckets_[level][slot];
  }

  // Lowest occupied slot of `level`.
  [[nodiscard]] int FirstSlot(int level) const {
    return __builtin_ctzll(slot_masks_[level]);
  }

  void Append(int level, int slot, Item item) const;
  void ClearBucket(int level, int slot) const;

  // Drops cancelled items from the front (level 0) or anywhere (level >= 1)
  // of `b`; returns false if the bucket drained and was cleared.
  bool CompactBucket(int level, int slot, Bucket& b) const;

  // Makes the earliest live event the head of a level-0 bucket, advancing
  // `cur_` and cascading buckets as needed. Returns that bucket, or nullptr
  // if the queue is empty. Only called from mutating run paths: advancing
  // `cur_` past Now() would break the monotonicity contract for later
  // ScheduleAt() calls, so const peeks use PeekEarliest() instead.
  Bucket* AdvanceToHead();

  // Earliest live event time without advancing `cur_` (exact; skips and
  // drops cancelled items). Returns false if the queue is empty.
  bool PeekEarliest(SimTime* when) const;

  // Allocates a handle slot (recycled or fresh) for one pending event.
  uint32_t AllocSlot();

  SimTime now_ = 0;
  uint64_t executed_ = 0;
  size_t live_count_ = 0;

  // Wheel reference time: cur_ <= every pending key, and cur_ <= now_ at
  // every public API boundary. Mutable (with the buckets and masks) so const
  // peeks can drop cancelled items without changing observable state.
  mutable uint64_t cur_ = 0;
  mutable Bucket buckets_[kLevels][kSlotsPerLevel];
  mutable uint64_t slot_masks_[kLevels] = {};  // nonempty-slot bitmap per level
  mutable uint32_t level_mask_ = 0;            // nonempty-level bitmap

  // Slot table: fixed-size chunks that are never reallocated, so a Slot&
  // stays valid across ScheduleAt() calls made from inside a running action
  // (which lets RunOne() invoke in place instead of moving the action out).
  static constexpr uint32_t kSlotChunkShift = 9;
  static constexpr uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  [[nodiscard]] Slot& SlotAt(uint32_t slot) {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }
  [[nodiscard]] const Slot& SlotAt(uint32_t slot) const {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }

  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  uint32_t next_slot_ = 0;  // slots ever allocated; bounds valid handles
  uint32_t slot_cap_ = 0;   // next_slot_ == slot_cap_ => grow a chunk
  uint32_t free_head_ = kNoFreeSlot;  // intrusive free-slot LIFO
};

// ---------------------------------------------------------------------------
// Hot path, defined inline: ScheduleAt/RunOne and their helpers sit inside
// the simulator's innermost loops, and keeping them visible to callers is
// worth several ns/event. Cancel, the peeks, and RunUntil stay out of line
// in event_queue.cc.

inline void EventQueue::Locate(uint64_t key, int* level, int* slot) const {
  assert(key >= cur_);
  const uint64_t diff = key ^ cur_;
  if (diff == 0) {
    *level = 0;
    *slot = static_cast<int>(key & (kSlotsPerLevel - 1));
    return;
  }
  const int l = (63 - __builtin_clzll(diff)) / kDigitBits;
  *level = l;
  *slot = static_cast<int>((key >> (l * kDigitBits)) & (kSlotsPerLevel - 1));
}

inline void EventQueue::Append(int level, int slot, Item item) const {
  BucketAt(level, slot).items.push_back(item);
  slot_masks_[level] |= 1ULL << slot;
  level_mask_ |= 1U << level;
}

inline void EventQueue::ClearBucket(int level, int slot) const {
  Bucket& b = BucketAt(level, slot);
  b.items.clear();
  b.head = 0;
  slot_masks_[level] &= ~(1ULL << slot);
  if (slot_masks_[level] == 0) {
    level_mask_ &= ~(1U << level);
  }
}

inline bool EventQueue::CompactBucket(int level, int slot, Bucket& b) const {
  if (level == 0) {
    // Level-0 buckets drain FIFO through `head`; drop stale items there.
    while (b.head < b.items.size() && !IsLive(b.items[b.head])) {
      ++b.head;
    }
    if (b.head == b.items.size()) {
      ClearBucket(level, slot);
      return false;
    }
    return true;
  }
  // Higher-level buckets are compacted in place (stable, so schedule order —
  // and with it equal-time FIFO — survives).
  size_t keep = 0;
  for (size_t i = 0; i < b.items.size(); ++i) {
    if (IsLive(b.items[i])) {
      if (keep != i) {
        b.items[keep] = b.items[i];
      }
      ++keep;
    }
  }
  if (keep == 0) {
    ClearBucket(level, slot);
    return false;
  }
  b.items.resize(keep);
  return true;
}

inline EventQueue::Bucket* EventQueue::AdvanceToHead() {
  while (level_mask_ != 0) {
    const int level = __builtin_ctz(level_mask_);
    const int slot = FirstSlot(level);
    Bucket& b = BucketAt(level, slot);
    if (level == 0) {
      if (!CompactBucket(level, slot, b)) {
        continue;
      }
      return &b;
    }
    // Cascade: advance the reference time to this bucket's earliest key and
    // re-file its items, which all land in levels below `level`. The loop over
    // items is stable, so equal-time items keep their schedule order.
    //
    // Stale (cancelled) items cascade along with live ones: filtering them
    // here would cost a random slot-table read per item per cascade, whereas
    // letting them fall to level 0 drops them with the same check level-0
    // dispatch does anyway. A stale minimum only pulls cur_ lower than
    // strictly needed, which the invariant (cur_ <= pending keys) permits.
    uint64_t min_key = b.items[0].key;
    for (const Item& it : b.items) {
      min_key = it.key < min_key ? it.key : min_key;
    }
    cur_ = min_key;
    for (const Item& it : b.items) {
      int l, s;
      Locate(it.key, &l, &s);
      assert(l < level);
      if (l == 0) {
        // This item dispatches within the next ~64 events; start pulling its
        // slot line (generation + action) toward the cache now.
        __builtin_prefetch(&SlotAt(it.slot));
      }
      Append(l, s, it);
    }
    ClearBucket(level, slot);
  }
  return nullptr;
}

inline uint32_t EventQueue::AllocSlot() {
  const uint32_t slot = free_head_;
  if (slot != kNoFreeSlot) {
    free_head_ = SlotAt(slot).next_free;
    return slot;
  }
  const uint32_t fresh = next_slot_++;
  if (fresh == slot_cap_) {
    slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    slot_cap_ += kSlotChunkSize;
  }
  return fresh;
}

template <typename F, typename>
EventId EventQueue::ScheduleAt(SimTime when, F&& action) {
  assert(when >= now_ && "cannot schedule events in the simulated past");
  if (when < now_) {
    when = now_;
  }
  const uint32_t handle_slot = AllocSlot();
  Slot& rec = SlotAt(handle_slot);
  if constexpr (std::is_same_v<std::decay_t<F>, Action>) {
    rec.action = std::forward<F>(action);
  } else {
    rec.action.Emplace(std::forward<F>(action));
  }
  const uint32_t gen = rec.gen;
  int level, slot;
  Locate(static_cast<uint64_t>(when), &level, &slot);
  Append(level, slot, Item{static_cast<uint64_t>(when), handle_slot, gen});
  ++live_count_;
  return (static_cast<EventId>(gen) << 32) | handle_slot;
}

inline bool EventQueue::RunOne() {
  Bucket* b = AdvanceToHead();
  if (b == nullptr) {
    return false;
  }
  const Item item = b->items[b->head];
  ++b->head;
  if (b->head < b->items.size()) {
    // Hide the slot-table miss of the next dispatch behind this one's action.
    __builtin_prefetch(&SlotAt(b->items[b->head].slot));
  }
  Slot& rec = SlotAt(item.slot);
  // Bump the generation before dispatch so Cancel() on the running event's
  // own handle reports false, but keep the slot out of the free list until
  // the action returns: events it schedules must not reuse (and overwrite)
  // the slot we are executing from. Slot chunks never move, so `rec` stays
  // valid across those nested ScheduleAt() calls and the action can run in
  // place — no move of the action body on the dispatch path.
  ++rec.gen;
  --live_count_;
  assert(static_cast<SimTime>(item.key) >= now_);
  now_ = static_cast<SimTime>(item.key);
  ++executed_;
  rec.action();
  rec.action.Reset();
  rec.next_free = free_head_;
  free_head_ = item.slot;
  return true;
}

inline uint64_t EventQueue::RunToCompletion(uint64_t max_events) {
  // Drains level-0 buckets whole instead of calling RunOne() per event: a
  // level-0 bucket holds a single exact time, so once AdvanceToHead() lands
  // on one, every item in it (including same-time items the running actions
  // append behind `head`) dispatches back-to-back without re-scanning the
  // wheel masks. Items are re-indexed each pass because an action may grow
  // the bucket's vector; the bucket object itself never moves.
  uint64_t count = 0;
  while (count < max_events) {
    Bucket* b = AdvanceToHead();
    if (b == nullptr) {
      break;
    }
    assert(static_cast<SimTime>(b->items[b->head].key) >= now_);
    now_ = static_cast<SimTime>(b->items[b->head].key);
    while (b->head < b->items.size() && count < max_events) {
      const Item item = b->items[b->head];
      ++b->head;
      if (b->head < b->items.size()) {
        __builtin_prefetch(&SlotAt(b->items[b->head].slot));
      }
      Slot& rec = SlotAt(item.slot);
      if (rec.gen != item.gen) {
        continue;  // cancelled; drop the stale item
      }
      ++rec.gen;
      --live_count_;
      ++executed_;
      rec.action();
      rec.action.Reset();
      rec.next_free = free_head_;
      free_head_ = item.slot;
      ++count;
    }
    // A fully drained bucket is cleared by the next AdvanceToHead() pass.
  }
  return count;
}

template <typename Stop, typename>
uint64_t EventQueue::RunWhile(Stop&& stop, uint64_t max_events) {
  uint64_t count = 0;
  while (count < max_events) {
    Bucket* b = AdvanceToHead();
    if (b == nullptr) {
      break;
    }
    assert(static_cast<SimTime>(b->items[b->head].key) >= now_);
    now_ = static_cast<SimTime>(b->items[b->head].key);
    while (b->head < b->items.size() && count < max_events) {
      const Item item = b->items[b->head];
      ++b->head;
      if (b->head < b->items.size()) {
        __builtin_prefetch(&SlotAt(b->items[b->head].slot));
      }
      Slot& rec = SlotAt(item.slot);
      if (rec.gen != item.gen) {
        continue;  // cancelled; drop the stale item
      }
      ++rec.gen;
      --live_count_;
      ++executed_;
      rec.action();
      rec.action.Reset();
      rec.next_free = free_head_;
      free_head_ = item.slot;
      ++count;
      if (stop()) {
        return count;
      }
    }
  }
  return count;
}

}  // namespace tmh

#endif  // TMH_SRC_SIM_EVENT_QUEUE_H_
