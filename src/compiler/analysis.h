// Reuse and locality analysis (Section 3.2).
//
// Mirrors the structure of the SUIF pass the paper describes:
//   1. *Reuse analysis* finds the intrinsic temporal reuse of each reference
//      (loops whose induction variable the subscript does not depend on) and
//      its spatial stride in the innermost loop.
//   2. *Group locality* clusters references to the same array that differ only
//      by a constant; the leading reference receives the prefetch, the
//      trailing reference receives the release.
//   3. *Locality analysis* uses the page size and the assumed memory size to
//      decide whether a temporal reuse is exploitable: if the volume of data
//      touched between reuses exceeds the expected available memory, the page
//      is unlikely to survive, so a release is inserted anyway — carrying the
//      Eq. 2 priority that lets the run-time layer retain the pages with the
//      earliest reuse.
//
// Indirect references (a[b[i]]) may be prefetched but are never released,
// since the compiler cannot reason statically about their reuse.

#ifndef TMH_SRC_COMPILER_ANALYSIS_H_
#define TMH_SRC_COMPILER_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/compiler/ir.h"
#include "src/sim/time.h"

namespace tmh {

// Parameters given to the compiler to describe the target system (Sec. 3.2):
// "the size of main memory, the page size, and the page fault latency."
struct CompilerTarget {
  int64_t page_size = 16 * 1024;
  int64_t memory_bytes = 75ll * 1024 * 1024;  // assumed available memory
  SimDuration fault_latency = 9 * kMsec;
  // Cap on the software-pipelining prefetch distance, in pages (affine refs)
  // or iterations (indirect refs).
  int64_t max_prefetch_distance = 64;
};

// Per-reference analysis result.
struct RefReuse {
  // Loop depths (outermost = 0) in which the compiler believes the reference
  // has temporal reuse. For FFTPDE-style deception this includes loops the
  // reference does not actually reuse across.
  std::vector<int> temporal_loops;
  bool indirect = false;
  // Byte stride per innermost-loop iteration (0 = invariant in that loop).
  int64_t innermost_byte_stride = 0;
  // Group locality.
  int group = -1;
  bool is_group_leader = false;
  bool is_group_trailer = false;
  // True if the deepest temporal reuse fits in the assumed memory, i.e. the
  // data survives between reuses and neither prefetch nor release is needed.
  bool exploitable_temporal = false;
  // Eq. 2: priority(x) = sum over temporal loops i of 2^depth(i).
  int32_t priority = 0;
  // Hint-insertion decisions.
  bool needs_prefetch = false;
  bool needs_release = false;
};

struct NestAnalysis {
  std::vector<RefReuse> refs;
  int num_groups = 0;
  bool bounds_known = true;  // every loop bound usable at compile time
  // Pages of data one full execution of the nest touches (+inf-ish when
  // bounds are unknown); used for reports.
  int64_t footprint_pages = 0;
};

// Analyzes one nest. `program` supplies array metadata.
NestAnalysis AnalyzeNest(const SourceProgram& program, const LoopNest& nest,
                         const ArrayLayout& layout, const CompilerTarget& target);

// Eq. 2 priority over a set of temporal-reuse loop depths.
int32_t ReusePriority(const std::vector<int>& temporal_loops);

// Pages touched by `ref` while the loops at depth >= `from_depth` run once
// (approximate footprint). Returns a large sentinel when a needed bound is
// unknown (conservative: the compiler assumes the data will not fit).
int64_t FootprintPages(const SourceProgram& program, const LoopNest& nest, const ArrayRef& ref,
                       int from_depth, const ArrayLayout& layout);

inline constexpr int64_t kUnknownFootprint = INT64_MAX / 4;

}  // namespace tmh

#endif  // TMH_SRC_COMPILER_ANALYSIS_H_
