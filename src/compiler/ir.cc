#include "src/compiler/ir.h"

#include <cassert>

namespace tmh {

ArrayLayout::ArrayLayout(const SourceProgram& program, int64_t page_size_bytes)
    : page_size_(page_size_bytes) {
  assert(page_size_ > 0);
  base_pages_.reserve(program.arrays.size());
  page_counts_.reserve(program.arrays.size());
  element_sizes_.reserve(program.arrays.size());
  int64_t next_page = 0;
  for (const ArrayDecl& a : program.arrays) {
    assert(a.element_size > 0 && a.num_elements >= 0);
    base_pages_.push_back(next_page);
    const int64_t pages = (a.size_bytes() + page_size_ - 1) / page_size_;
    page_counts_.push_back(pages);
    element_sizes_.push_back(a.element_size);
    next_page += pages;
  }
  total_pages_ = next_page;
}

}  // namespace tmh
