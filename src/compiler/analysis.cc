#include "src/compiler/analysis.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

namespace tmh {

int32_t ReusePriority(const std::vector<int>& temporal_loops) {
  int32_t priority = 0;
  for (const int depth : temporal_loops) {
    assert(depth >= 0 && depth < 30);
    priority += static_cast<int32_t>(1) << depth;
  }
  return priority;
}

int64_t FootprintPages(const SourceProgram& program, const LoopNest& nest, const ArrayRef& ref,
                       int from_depth, const ArrayLayout& layout) {
  const ArrayDecl& array = program.arrays[static_cast<size_t>(ref.array)];
  if (ref.IsIndirect()) {
    // A random-indexed reference can touch the whole array.
    return layout.PageCount(ref.array);
  }
  // Span of element indices covered while loops >= from_depth run once.
  int64_t span_elements = 0;
  for (int d = from_depth; d < nest.depth(); ++d) {
    const Loop& loop = nest.loops[static_cast<size_t>(d)];
    const int64_t coeff = d < static_cast<int>(ref.affine.coeffs.size())
                              ? ref.affine.coeffs[static_cast<size_t>(d)]
                              : 0;
    if (coeff == 0) {
      continue;
    }
    if (!loop.upper_known) {
      return kUnknownFootprint;
    }
    const int64_t trips = std::max<int64_t>(0, (loop.upper - loop.lower + loop.step - 1) / loop.step);
    span_elements += std::abs(coeff) * std::max<int64_t>(0, trips - 1);
  }
  const int64_t span_bytes = (span_elements + 1) * array.element_size;
  const int64_t pages = span_bytes / layout.page_size() + 1;
  return std::min(pages, layout.PageCount(ref.array) + 1);
}

namespace {

// Traversal direction of the innermost nonzero stride (+1 ascending).
int TraversalDirection(const ArrayRef& ref) {
  for (auto it = ref.affine.coeffs.rbegin(); it != ref.affine.coeffs.rend(); ++it) {
    if (*it != 0) {
      return *it > 0 ? 1 : -1;
    }
  }
  return 1;
}

}  // namespace

NestAnalysis AnalyzeNest(const SourceProgram& program, const LoopNest& nest,
                         const ArrayLayout& layout, const CompilerTarget& target) {
  NestAnalysis out;
  out.refs.resize(nest.refs.size());
  const int depth = nest.depth();

  out.bounds_known = true;
  for (const Loop& loop : nest.loops) {
    out.bounds_known = out.bounds_known && loop.upper_known;
  }

  // --- 1. intrinsic reuse per reference -------------------------------------
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    RefReuse& reuse = out.refs[r];
    reuse.indirect = ref.IsIndirect();
    if (!reuse.indirect) {
      for (int d = 0; d < depth; ++d) {
        const int64_t coeff = d < static_cast<int>(ref.affine.coeffs.size())
                                  ? ref.affine.coeffs[static_cast<size_t>(d)]
                                  : 0;
        if (coeff == 0) {
          reuse.temporal_loops.push_back(d);
        }
      }
      const ArrayDecl& array = program.arrays[static_cast<size_t>(ref.array)];
      const int64_t inner_coeff = ref.affine.coeffs.empty() ? 0 : ref.affine.coeffs.back();
      reuse.innermost_byte_stride = inner_coeff * array.element_size;
    }
    reuse.priority = ReusePriority(reuse.temporal_loops);
  }

  // --- 2. group locality ------------------------------------------------------
  // References to the same array with identical coefficient vectors (and both
  // direct) effectively share data when their constants are close: a few pages
  // at most, else they are independent streams (a stencil's far planes, a
  // butterfly's two halves).
  std::map<std::tuple<int32_t, std::vector<int64_t>>, std::vector<size_t>> candidates;
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    if (ref.IsIndirect()) {
      // Indirect refs form singleton groups.
      out.refs[r].group = out.num_groups++;
      out.refs[r].is_group_leader = true;
      out.refs[r].is_group_trailer = true;
      continue;
    }
    candidates[{ref.array, ref.affine.coeffs}].push_back(r);
  }
  for (auto& [key, members] : candidates) {
    const ArrayDecl& array = program.arrays[static_cast<size_t>(std::get<0>(key))];
    // Two refs share data when their constant offset lies within the span one
    // iteration of the outermost loop covers (the paper's Section 2.4 stencil:
    // a[i+1][*] is re-touched by a[i-1][*] two i-iterations later). The span
    // is only computable with known inner bounds; otherwise fall back to a
    // conservative couple of pages, treating far-apart refs as independent
    // streams (an FFT's butterfly halves are disjoint and must not group).
    const std::vector<int64_t>& coeffs = std::get<1>(key);
    int64_t span = 0;
    bool span_known = true;
    for (size_t d = 1; d < coeffs.size() && d < nest.loops.size(); ++d) {
      const Loop& loop = nest.loops[d];
      if (coeffs[d] == 0) {
        continue;
      }
      if (!loop.upper_known) {
        span_known = false;
        break;
      }
      const int64_t trips = std::max<int64_t>(1, (loop.upper - loop.lower + loop.step - 1) / loop.step);
      span += std::abs(coeffs[d]) * (trips - 1);
    }
    const int64_t inner_coeff = coeffs.empty() ? 0 : std::abs(coeffs.back());
    const int64_t pages_gap = std::max<int64_t>(1, 2 * target.page_size / array.element_size);
    const int64_t max_gap_elements =
        (span_known && coeffs.size() > 1) ? std::max(span + 2 * inner_coeff + 1, pages_gap)
                                          : pages_gap;
    std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      return nest.refs[a].affine.constant < nest.refs[b].affine.constant;
    });
    // Split the constant-sorted run into clusters of nearby references.
    size_t start = 0;
    while (start < members.size()) {
      size_t end = start + 1;
      while (end < members.size() &&
             nest.refs[members[end]].affine.constant -
                     nest.refs[members[end - 1]].affine.constant <=
                 max_gap_elements) {
        ++end;
      }
      const int group_id = out.num_groups++;
      const int dir = TraversalDirection(nest.refs[members[start]]);
      for (size_t i = start; i < end; ++i) {
        out.refs[members[i]].group = group_id;
      }
      // Ascending traversal: the largest constant touches data first.
      const size_t leader = dir > 0 ? members[end - 1] : members[start];
      const size_t trailer = dir > 0 ? members[start] : members[end - 1];
      out.refs[leader].is_group_leader = true;
      out.refs[trailer].is_group_trailer = true;
      start = end;
    }
  }

  // --- 3. locality: is the temporal reuse exploitable? ------------------------
  const int64_t memory_pages = target.memory_bytes / target.page_size;
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    RefReuse& reuse = out.refs[r];
    if (reuse.temporal_loops.empty() || reuse.indirect) {
      continue;
    }
    // Reuse is carried by the deepest loop the subscript ignores: successive
    // iterations of that loop re-touch the data. The volume touched between
    // reuses is one full execution of everything deeper.
    const int carrier = *std::max_element(reuse.temporal_loops.begin(),
                                          reuse.temporal_loops.end());
    int64_t volume_pages = 0;
    for (const ArrayRef& other : nest.refs) {
      volume_pages += FootprintPages(program, nest, other, carrier + 1, layout);
      if (volume_pages >= kUnknownFootprint) {
        break;
      }
    }
    reuse.exploitable_temporal = volume_pages < memory_pages;
  }

  // --- 4. hint-insertion decisions --------------------------------------------
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    RefReuse& reuse = out.refs[r];
    // Prefetch the leading reference of each group unless its pages are
    // expected to have remained in memory since the last reuse.
    reuse.needs_prefetch = reuse.is_group_leader && !reuse.exploitable_temporal;
    // Release the trailing reference unless (a) the data survives in memory
    // until its next reuse, (b) the reference is indirect, or (c) its stride
    // pattern defeats the analysis.
    reuse.needs_release = reuse.is_group_trailer && !reuse.exploitable_temporal &&
                          !reuse.indirect && ref.release_analyzable;
  }

  // Whole-nest footprint for reports.
  int64_t total = 0;
  for (const ArrayRef& ref : nest.refs) {
    const int64_t fp = FootprintPages(program, nest, ref, 0, layout);
    total = (fp >= kUnknownFootprint) ? kUnknownFootprint : total + fp;
    if (total >= kUnknownFootprint) {
      break;
    }
  }
  out.footprint_pages = total;
  return out;
}

}  // namespace tmh
