// Loop-nest intermediate representation.
//
// The paper's compiler pass (built in SUIF) analyzes affine array references
// inside nested loops. This IR captures exactly the features its analysis
// distinguishes (Table 2): known and unknown loop bounds, affine and indirect
// (a[b[i]]) subscripts, and — for the two "hard" benchmarks — a gap between
// what the compiler can see and what actually happens at run time:
//   * MGRID: loop bounds change dynamically between calls, so `upper` (the
//     actual trip count the interpreter runs) is real while `upper_known`
//     tells the compiler it may not rely on it;
//   * FFTPDE: the access stride changes within a loop, so the compiler-visible
//     AffineExpr (no dependence on the loop variable => apparent temporal
//     reuse) differs from the `runtime` expression the interpreter evaluates.

#ifndef TMH_SRC_COMPILER_IR_H_
#define TMH_SRC_COMPILER_IR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace tmh {

// An array (or vector/matrix) in the program's virtual address space.
struct ArrayDecl {
  std::string name;
  int64_t element_size = 8;          // bytes
  int64_t num_elements = 0;          // total extent (flattened)
  bool on_disk = false;              // out-of-core input data (Backing::kSwap)
  // Values for index arrays feeding indirect subscripts. Empty otherwise.
  // (The run-time contents; the compiler never looks at these.)
  std::shared_ptr<std::vector<int64_t>> index_values;

  [[nodiscard]] int64_t size_bytes() const { return element_size * num_elements; }
};

// One loop of a nest, outermost first.
struct Loop {
  std::string var;
  int64_t lower = 0;
  int64_t upper = 0;    // exclusive; the ACTUAL trip bound the interpreter uses
  int64_t step = 1;
  bool upper_known = true;  // may the compiler rely on `upper`?
};

// Affine function of the loop variables: constant + sum(coeff[d] * iv[d]),
// in flattened element units of the referenced array.
struct AffineExpr {
  int64_t constant = 0;
  std::vector<int64_t> coeffs;  // one per loop of the enclosing nest, outermost first

  [[nodiscard]] int64_t Eval(const std::vector<int64_t>& ivs) const {
    int64_t v = constant;
    for (size_t d = 0; d < coeffs.size() && d < ivs.size(); ++d) {
      v += coeffs[d] * ivs[d];
    }
    return v;
  }
};

// A single (already linearized) array reference.
struct ArrayRef {
  int32_t array = 0;  // index into SourceProgram::arrays
  AffineExpr affine;  // what the compiler sees
  bool is_write = false;

  // Indirect subscript: the effective element index is
  //   index_values_of(index_array)[affine.Eval(ivs)]  (a[b[i]] pattern).
  int32_t index_array = -1;  // -1 => pure affine reference

  // Optional compiler-invisible truth (FFTPDE): when set, the interpreter
  // evaluates this instead of `affine`. Null for honest references.
  std::shared_ptr<AffineExpr> runtime_affine;

  // False when the reference's stride pattern defeats release analysis (e.g.
  // MGRID's inter-grid transfers whose strides change between calls): the
  // compiler still prefetches but refuses to generate releases for it.
  bool release_analyzable = true;

  [[nodiscard]] bool IsIndirect() const { return index_array >= 0; }
};

// A perfect loop nest whose body executes every ArrayRef once per innermost
// iteration, plus `compute_per_iteration` of CPU work.
struct LoopNest {
  std::string label;
  std::vector<Loop> loops;  // outermost first; at least one
  std::vector<ArrayRef> refs;
  SimDuration compute_per_iteration = 1;

  [[nodiscard]] int depth() const { return static_cast<int>(loops.size()); }
};

// A whole program: arrays plus a sequence of loop nests, optionally repeated
// (iterative solvers sweep their data sets many times).
struct SourceProgram {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<LoopNest> nests;
  int64_t repeat = 1;
  // Program text + stack: a small resident set the process touches
  // continuously while running. These pages are what the paging daemon's
  // reference-bit invalidations turn into soft faults (Figure 8); the
  // compiler never prefetches or releases them.
  int64_t text_pages = 24;

  // Total footprint of all arrays, page-aligned (for reports).
  [[nodiscard]] int64_t TotalBytes() const {
    int64_t total = 0;
    for (const ArrayDecl& a : arrays) {
      total += a.size_bytes();
    }
    return total;
  }
};

// Page-aligned layout of the program's arrays in its virtual address space.
class ArrayLayout {
 public:
  ArrayLayout(const SourceProgram& program, int64_t page_size_bytes);

  // First virtual page of array `a`.
  [[nodiscard]] int64_t base_page(int32_t a) const { return base_pages_[static_cast<size_t>(a)]; }
  // Virtual page holding element `index` of array `a`.
  [[nodiscard]] int64_t PageOf(int32_t a, int64_t element_index) const {
    return base_pages_[static_cast<size_t>(a)] +
           (element_index * element_sizes_[static_cast<size_t>(a)]) / page_size_;
  }
  // Pages spanned by array `a`.
  [[nodiscard]] int64_t PageCount(int32_t a) const { return page_counts_[static_cast<size_t>(a)]; }
  [[nodiscard]] int64_t total_pages() const { return total_pages_; }
  [[nodiscard]] int64_t page_size() const { return page_size_; }
  // Elements of array `a` per page (>= 1).
  [[nodiscard]] int64_t ElementsPerPage(int32_t a) const {
    const int64_t n = page_size_ / element_sizes_[static_cast<size_t>(a)];
    return n > 0 ? n : 1;
  }

 private:
  int64_t page_size_;
  std::vector<int64_t> base_pages_;
  std::vector<int64_t> page_counts_;
  std::vector<int64_t> element_sizes_;
  int64_t total_pages_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_COMPILER_IR_H_
