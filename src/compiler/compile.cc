#include "src/compiler/compile.h"

#include <algorithm>
#include <cassert>

namespace tmh {
namespace {

// Deepest loop whose induction variable moves the reference (the loop whose
// iterations cross page boundaries), or -1 if the ref is fully invariant.
int CrossingLoop(const ArrayRef& ref) {
  for (int d = static_cast<int>(ref.affine.coeffs.size()) - 1; d >= 0; --d) {
    if (ref.affine.coeffs[static_cast<size_t>(d)] != 0) {
      return d;
    }
  }
  return -1;
}

// Software-pipelining distance for an affine reference, in pages.
int64_t PrefetchDistancePages(const SourceProgram& program, const LoopNest& nest,
                              const ArrayRef& ref, const CompilerTarget& target) {
  const ArrayDecl& array = program.arrays[static_cast<size_t>(ref.array)];
  const int crossing = CrossingLoop(ref);
  if (crossing < 0) {
    return 1;
  }
  const int64_t coeff = ref.affine.coeffs[static_cast<size_t>(crossing)];
  const int64_t byte_stride = std::abs(coeff) * array.element_size;
  // Iterations of the crossing loop needed to consume one page.
  const int64_t iters_per_page = std::max<int64_t>(1, target.page_size / std::max<int64_t>(byte_stride, 1));
  // One crossing-loop iteration runs everything deeper once.
  int64_t inner_trips = 1;
  for (int d = crossing + 1; d < nest.depth(); ++d) {
    const Loop& loop = nest.loops[static_cast<size_t>(d)];
    if (loop.upper_known) {
      inner_trips *= std::max<int64_t>(1, (loop.upper - loop.lower + loop.step - 1) / loop.step);
    }
  }
  const SimDuration time_per_page =
      std::max<SimDuration>(1, iters_per_page * inner_trips * nest.compute_per_iteration);
  const int64_t distance = (target.fault_latency + time_per_page - 1) / time_per_page;
  return std::clamp<int64_t>(distance, 1, target.max_prefetch_distance);
}

// Distance in iterations for an indirect reference.
int64_t PrefetchDistanceIterations(const LoopNest& nest, const CompilerTarget& target) {
  const SimDuration per_iter = std::max<SimDuration>(1, nest.compute_per_iteration);
  const int64_t distance = (target.fault_latency + per_iter - 1) / per_iter;
  return std::clamp<int64_t>(distance, 1, target.max_prefetch_distance);
}

int TraversalDirection(const ArrayRef& ref) {
  for (auto it = ref.affine.coeffs.rbegin(); it != ref.affine.coeffs.rend(); ++it) {
    if (*it != 0) {
      return *it > 0 ? 1 : -1;
    }
  }
  return 1;
}

}  // namespace

CompiledNest CompileNest(const SourceProgram& program, const LoopNest& nest,
                         const ArrayLayout& layout, const CompilerTarget& target,
                         const CompileOptions& options, int32_t* next_tag,
                         CompileStats* stats) {
  CompiledNest compiled;
  compiled.nest = nest;
  compiled.analysis = AnalyzeNest(program, nest, layout, target);
  const NestAnalysis& analysis = compiled.analysis;
  if (stats != nullptr) {
    stats->groups += analysis.num_groups;
    if (!analysis.bounds_known) {
      ++stats->nests_with_unknown_bounds;
    }
  }
  for (size_t r = 0; r < nest.refs.size(); ++r) {
    const ArrayRef& ref = nest.refs[r];
    const RefReuse& reuse = analysis.refs[r];
    if (reuse.indirect && stats != nullptr) {
      ++stats->indirect_refs;
    }
    const bool every_iteration = !analysis.bounds_known || reuse.indirect;
    if (options.insert_prefetches && reuse.needs_prefetch) {
      HintDirective d;
      d.kind = HintDirective::Kind::kPrefetch;
      d.ref = static_cast<int32_t>(r);
      d.tag = (*next_tag)++;
      d.distance = reuse.indirect ? PrefetchDistanceIterations(nest, target)
                                  : PrefetchDistancePages(program, nest, ref, target);
      d.every_iteration = every_iteration;
      d.direction = TraversalDirection(ref);
      compiled.directives.push_back(d);
      if (stats != nullptr) {
        ++stats->prefetch_directives;
      }
    }
    if (options.insert_releases && reuse.needs_release) {
      HintDirective d;
      d.kind = HintDirective::Kind::kRelease;
      d.ref = static_cast<int32_t>(r);
      d.tag = (*next_tag)++;
      d.priority = reuse.priority;
      d.distance = 0;
      d.every_iteration = every_iteration;
      d.direction = TraversalDirection(ref);
      compiled.directives.push_back(d);
      if (stats != nullptr) {
        ++stats->release_directives;
        if (reuse.priority > 0) {
          ++stats->release_directives_with_reuse;
        }
      }
    }
  }
  return compiled;
}

CompiledProgram Compile(const SourceProgram& program, const CompilerTarget& target,
                        const CompileOptions& options) {
  SourceProgram source = program;
  if (options.oracle) {
    // Perfect knowledge: the analysis sees the true access expressions and
    // the actual trip counts, as a programmer hand-placing the I/O would.
    for (LoopNest& nest : source.nests) {
      for (Loop& loop : nest.loops) {
        loop.upper_known = true;
      }
      for (ArrayRef& ref : nest.refs) {
        if (ref.runtime_affine != nullptr) {
          ref.affine = *ref.runtime_affine;
          ref.runtime_affine = nullptr;
        }
      }
    }
  }
  CompiledProgram out{source, ArrayLayout(source, target.page_size), {}, options, {}, target};
  int32_t next_tag = 0;
  for (const LoopNest& nest : out.source.nests) {
    out.nests.push_back(
        CompileNest(out.source, nest, out.layout, target, options, &next_tag, &out.stats));
  }
  return out;
}

}  // namespace tmh
