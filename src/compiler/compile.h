// Hint insertion: turns a SourceProgram into a CompiledProgram annotated with
// prefetch/release directives (the stand-in for SUIF emitting calls like
//   sim_prefetch_release(pf_addr, rel_addr, n_pages, priority, tag)
// into the generated executable, Figure 5).
//
// Software pipelining: prefetches are scheduled `distance` pages (affine refs)
// or iterations (indirect refs) ahead, where distance covers the page-fault
// latency at the nest's compute rate. Loop splitting shows up at run time as a
// prologue (the first `distance` pages are prefetched on nest entry), a steady
// state (hints fire as references cross page boundaries), and an epilogue (the
// run-time layer's one-behind release filter is flushed at nest exit).
//
// When loop bounds are unknown the compiler cannot strip-mine hint emission to
// page boundaries, so directives are evaluated every iteration and the
// run-time layer filters the redundant ones — the source of the extra user
// time the paper reports for CGM.

#ifndef TMH_SRC_COMPILER_COMPILE_H_
#define TMH_SRC_COMPILER_COMPILE_H_

#include <cstdint>
#include <vector>

#include "src/compiler/analysis.h"
#include "src/compiler/ir.h"

namespace tmh {

struct HintDirective {
  enum class Kind : uint8_t { kPrefetch, kRelease };
  Kind kind = Kind::kPrefetch;
  int32_t ref = 0;       // index into the nest's refs
  int32_t tag = 0;       // request identifier (unique per directive)
  int32_t priority = 0;  // release only (Eq. 2)
  // Prefetch: pages ahead for affine refs, iterations ahead for indirect refs.
  int64_t distance = 1;
  // Evaluate on every innermost iteration instead of only at page crossings.
  bool every_iteration = false;
  int direction = 1;  // traversal direction of the reference (+1 ascending)
};

struct CompiledNest {
  LoopNest nest;
  NestAnalysis analysis;
  std::vector<HintDirective> directives;
};

struct CompileOptions {
  bool insert_prefetches = true;
  bool insert_releases = true;
  // The paper's stated future work for MGRID/FFTPDE ("generate more adaptive
  // code"): when true, the executable re-specializes each unknown-bound nest
  // on entry, once the actual trip counts are known — hints strip-mine to
  // page crossings and the locality analysis uses real volumes.
  bool adaptive_recompilation = false;
  // Hand-tuned oracle baseline: analyze with perfect knowledge — actual
  // strides (runtime expressions) and known bounds — the stand-in for a
  // programmer explicitly managing the I/O, which the paper's introduction
  // contrasts automation against. Upper-bounds what any analysis could do.
  bool oracle = false;
};

struct CompileStats {
  int prefetch_directives = 0;
  int release_directives = 0;
  int release_directives_with_reuse = 0;  // priority > 0
  int groups = 0;
  int indirect_refs = 0;
  int nests_with_unknown_bounds = 0;
};

struct CompiledProgram {
  SourceProgram source;
  ArrayLayout layout;
  std::vector<CompiledNest> nests;
  CompileOptions options;
  CompileStats stats;
  CompilerTarget target;  // kept for adaptive re-specialization at run time
};

// Runs the full pass: reuse analysis, locality analysis, hint insertion.
CompiledProgram Compile(const SourceProgram& program, const CompilerTarget& target,
                        const CompileOptions& options);

// Compiles one nest (analysis + directive construction), assigning tags from
// `*next_tag` upward. Exposed for adaptive executables that re-specialize a
// nest once its actual bounds are known. `stats` may be null.
CompiledNest CompileNest(const SourceProgram& program, const LoopNest& nest,
                         const ArrayLayout& layout, const CompilerTarget& target,
                         const CompileOptions& options, int32_t* next_tag,
                         CompileStats* stats);

}  // namespace tmh

#endif  // TMH_SRC_COMPILER_COMPILE_H_
