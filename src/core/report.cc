#include "src/core/report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

namespace tmh {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != '%' && c != 'x' && c != ' ') {
      return false;
    }
  }
  return true;
}

}  // namespace

ReportTable::ReportTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

ReportTable& ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (size_t c = 0; c < cells.size(); ++c) {
      const bool right = align_numeric && LooksNumeric(cells[c]);
      const size_t pad = widths[c] - cells[c].size();
      if (c != 0) {
        out += "  ";
      }
      if (right) {
        out.append(pad, ' ');
        out += cells[c];
      } else {
        out += cells[c];
        out.append(pad, ' ');
      }
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') {
      out.pop_back();
    }
    out += '\n';
  };
  emit_row(headers_, /*align_numeric=*/false);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, /*align_numeric=*/true);
  }
  return out;
}

void ReportTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(uint64_t value) { return std::to_string(value); }

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

void PrintSeries(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<std::vector<double>>& rows) {
  std::printf("# %s\n", title.c_str());
  for (size_t c = 0; c < columns.size(); ++c) {
    std::printf("%s%s", c == 0 ? "" : "\t", columns[c].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%.4g", c == 0 ? "" : "\t", row[c]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace tmh
