#include "src/core/experiment.h"

#include <cassert>

#include "src/core/sweep.h"

namespace tmh {

const char* VersionLabel(AppVersion version) {
  switch (version) {
    case AppVersion::kOriginal:
      return "O";
    case AppVersion::kPrefetch:
      return "P";
    case AppVersion::kRelease:
      return "R";
    case AppVersion::kBuffered:
      return "B";
    case AppVersion::kReactive:
      return "V";
  }
  return "?";
}

const std::vector<AppVersion>& AllVersions() {
  static const std::vector<AppVersion> kVersions = {
      AppVersion::kOriginal, AppVersion::kPrefetch, AppVersion::kRelease, AppVersion::kBuffered};
  return kVersions;
}

CompilerTarget TargetFor(const MachineConfig& machine) {
  CompilerTarget target;
  target.page_size = machine.page_size_bytes;
  target.memory_bytes = machine.user_memory_bytes;
  const DiskParams& disk = machine.swap.disk_params;
  target.fault_latency = disk.avg_seek + disk.half_rotation +
                         disk.TransferTime(machine.page_size_bytes) + disk.controller_overhead +
                         machine.costs.hard_fault_service;
  return target;
}

CompiledProgram CompileVersion(const SourceProgram& source, const MachineConfig& machine,
                               AppVersion version, bool adaptive, bool oracle) {
  CompileOptions options;
  options.insert_prefetches = version != AppVersion::kOriginal;
  options.insert_releases = version == AppVersion::kRelease ||
                            version == AppVersion::kBuffered ||
                            version == AppVersion::kReactive;
  options.adaptive_recompilation = adaptive;
  options.oracle = oracle;
  return Compile(source, TargetFor(machine), options);
}

namespace {

InteractiveMetrics CollectInteractive(const InteractiveTask& task, const Thread* thread) {
  InteractiveMetrics m;
  m.sweeps = task.sweeps_completed();
  m.responses = task.response_series();
  m.faults = thread->faults();
  // The first sweep materializes the data set (zero-fill) and is excluded, as
  // a steady-state response-time measurement would.
  Accumulator warm;
  for (size_t i = 1; i < m.responses.size(); ++i) {
    warm.Add(static_cast<double>(m.responses[i]));
  }
  if (warm.count() > 0) {
    m.mean_response_ns = warm.mean();
    m.max_response_ns = warm.max();
  } else {
    m.mean_response_ns = task.response_times().mean();
    m.max_response_ns = task.response_times().max();
  }
  if (m.sweeps > 1) {
    m.hard_faults_per_sweep = static_cast<double>(thread->faults().hard_faults) /
                              static_cast<double>(m.sweeps - 1);
  }
  m.mean_fault_service_ns = thread->fault_service().mean();
  return m;
}

}  // namespace

namespace {

// One launched out-of-core application: everything that must stay alive for
// the duration of the run. The compiled program is const and may be shared
// with concurrent experiments via the CompileCache: the Interpreter only
// reads it (adaptive re-specialization goes into the Interpreter's private
// CompiledNest, never back into the program).
struct LaunchedApp {
  std::shared_ptr<const CompiledProgram> compiled;
  std::unique_ptr<RuntimeLayer> runtime;
  std::unique_ptr<Interpreter> interp;
  std::unique_ptr<Program> delayed;  // start_delay wrapper, when used
  AddressSpace* as = nullptr;
  Thread* thread = nullptr;
};

// Delays a program's first instruction by a fixed sleep, modeling a tenant
// that arrives mid-run. The wrapper delegates every subsequent Next() to the
// real program, so versions, hints, and stats are untouched — the only
// difference from an immediate start is the one leading Op::Sleep.
class DelayedProgram : public Program {
 public:
  DelayedProgram(SimDuration delay, Program* inner) : delay_(delay), inner_(inner) {}

  Op Next(Kernel& kernel) override {
    if (!slept_) {
      slept_ = true;
      return Op::Sleep(delay_);
    }
    return inner_->Next(kernel);
  }

 private:
  SimDuration delay_;
  Program* inner_;
  bool slept_ = false;
};

LaunchedApp LaunchApp(Kernel& kernel, const MachineConfig& machine, const MultiAppSpec& spec,
                      const std::string& name, CompileCache* compile_cache) {
  LaunchedApp app;
  if (compile_cache != nullptr) {
    app.compiled = compile_cache->GetOrCompile(spec.workload, machine, spec.version,
                                               spec.adaptive, spec.oracle);
  } else {
    app.compiled = std::make_shared<const CompiledProgram>(
        CompileVersion(spec.workload, machine, spec.version, spec.adaptive, spec.oracle));
  }
  app.as = kernel.CreateAddressSpace(
      name, (app.compiled->layout.total_pages() + spec.workload.text_pages) *
                machine.page_size_bytes);
  // Regions: one per array, preserving on-disk backing, plus text/stack.
  for (size_t a = 0; a < spec.workload.arrays.size(); ++a) {
    const ArrayDecl& array = spec.workload.arrays[a];
    app.as->AddRegion(Region{array.name,
                             app.compiled->layout.base_page(static_cast<int32_t>(a)),
                             app.compiled->layout.PageCount(static_cast<int32_t>(a)),
                             array.on_disk ? Backing::kSwap : Backing::kZeroFill});
  }
  if (spec.workload.text_pages > 0) {
    app.as->AddRegion(Region{"text", app.compiled->layout.total_pages(),
                             spec.workload.text_pages, Backing::kZeroFill});
  }
  if (spec.version != AppVersion::kOriginal) {
    app.as->AttachPagingDirected(0, app.as->num_pages());
    kernel.UpdateSharedHeader(app.as);
    RuntimeOptions options = spec.runtime;
    options.buffered = spec.version == AppVersion::kBuffered;
    options.reactive = spec.version == AppVersion::kReactive;
    app.runtime = std::make_unique<RuntimeLayer>(&kernel, app.as, options);
    if (options.reactive) {
      RuntimeLayer* layer = app.runtime.get();
      app.as->set_eviction_handler(
          [layer](int64_t count) { return layer->TakeEvictionCandidates(count); });
    }
  }
  app.interp = std::make_unique<Interpreter>(app.compiled.get(), app.as, app.runtime.get());
  app.interp->set_fuse_touch_runs(spec.fuse_touch_runs);
  Program* program = app.interp.get();
  if (spec.start_delay > 0) {
    app.delayed = std::make_unique<DelayedProgram>(spec.start_delay, program);
    program = app.delayed.get();
  }
  app.thread = kernel.Spawn(name, app.as, program);
  return app;
}

AppMetrics CollectApp(const LaunchedApp& app) {
  AppMetrics m;
  m.times = app.thread->times();
  m.faults = app.thread->faults();
  m.as_stats = app.as->stats();
  m.interp = app.interp->stats();
  m.compile = app.compiled->stats;
  if (app.runtime != nullptr) {
    m.runtime = app.runtime->stats();
  }
  m.wall = app.thread->finished_at() - app.thread->started_at();
  return m;
}

}  // namespace

MultiExperimentResult RunMultiExperiment(const MultiExperimentSpec& spec,
                                         CompileCache* compile_cache) {
  Kernel kernel(spec.machine);
  if (spec.observe) {
    // Before StartDaemons/LaunchApp so every thread and AS name reaches the
    // trace's metadata records.
    kernel.EnableObservability();
  }
  std::unique_ptr<InvariantChecker> checker;
  if (spec.checks) {
    // Before StartDaemons so the checker observes every VM transition.
    checker = std::make_unique<InvariantChecker>(kernel, spec.check_options);
  }
  kernel.StartDaemons();

  std::vector<LaunchedApp> apps;
  apps.reserve(spec.apps.size());
  for (size_t i = 0; i < spec.apps.size(); ++i) {
    std::string name = spec.apps[i].workload.name;
    // Disambiguate identical workload names (two copies of the same program).
    for (size_t j = 0; j < i; ++j) {
      if (spec.apps[j].workload.name == name) {
        name += "#" + std::to_string(i);
        break;
      }
    }
    apps.push_back(LaunchApp(kernel, spec.machine, spec.apps[i], name, compile_cache));
  }

  std::unique_ptr<AccessMonitor> monitor;
  if (spec.monitor) {
    monitor = std::make_unique<AccessMonitor>(kernel, spec.monitor_config);
    // Explicit targeting: sample the out-of-core apps only. The interactive
    // task is the beneficiary being protected, not a monitoring target — its
    // idle pages during a sleep must not be released out from under it.
    for (const LaunchedApp& app : apps) {
      monitor->AddTarget(app.as);
    }
    monitor->Start();
  }

  std::unique_ptr<InteractiveTask> interactive;
  Thread* interactive_thread = nullptr;
  if (spec.with_interactive) {
    const int64_t pages = spec.interactive.data_pages + spec.interactive.text_pages;
    AddressSpace* ias =
        kernel.CreateAddressSpace("interactive", pages * spec.machine.page_size_bytes);
    ias->AddRegion(Region{"data", 0, pages, Backing::kZeroFill});
    interactive = std::make_unique<InteractiveTask>(ias, spec.interactive);
    interactive_thread = kernel.Spawn("interactive", ias, interactive.get());
    interactive->BindThread(interactive_thread);
  }

  if (spec.trace_period > 0) {
    kernel.StartTracing(spec.trace_period);
  }

  std::vector<Thread*> app_threads;
  for (const LaunchedApp& app : apps) {
    app_threads.push_back(app.thread);
  }
  MultiExperimentResult result;
  result.completed = kernel.RunUntilThreadsDone(app_threads, spec.max_events);

  if (checker != nullptr) {
    // Final full pass even if the periodic cadence skipped the last events.
    checker->CheckNow(kernel);
    result.check_failure = checker->failure();
    result.checks_run = checker->checks_run();
  }

  for (const LaunchedApp& app : apps) {
    result.apps.push_back(CollectApp(app));
  }
  if (interactive != nullptr) {
    result.interactive = CollectInteractive(*interactive, interactive_thread);
  }
  if (monitor != nullptr) {
    result.monitor = monitor->stats();
  }
  result.kernel = kernel.stats();
  result.trace = kernel.trace();
  result.swap_reads = kernel.swap().reads();
  result.swap_writes = kernel.swap().writes();
  result.sim_events = kernel.event_queue().ExecutedCount();
  if (spec.observe) {
    kernel.PublishMetrics();
    // Per-app run-time layer and prefetch-pool aggregates, labeled by AS name.
    for (const LaunchedApp& app : apps) {
      if (app.runtime == nullptr) {
        continue;
      }
      MetricsRegistry& reg = kernel.metrics();
      const MetricLabels labels = {{"as", app.as->name()}};
      const RuntimeStats& rs = app.runtime->stats();
      reg.GetCounter("runtime.prefetch_hints", labels)->Set(rs.prefetch_hints);
      reg.GetCounter("runtime.prefetch_enqueued", labels)->Set(rs.prefetch_enqueued);
      reg.GetCounter("runtime.release_hints", labels)->Set(rs.release_hints);
      reg.GetCounter("runtime.releases_issued_immediate", labels)
          ->Set(rs.releases_issued_immediate);
      reg.GetCounter("runtime.releases_buffered", labels)->Set(rs.releases_buffered);
      reg.GetCounter("runtime.release_drains", labels)->Set(rs.release_drains);
      reg.GetCounter("runtime.releases_issued_from_buffer", labels)
          ->Set(rs.releases_issued_from_buffer);
      reg.GetCounter("runtime.buffer_stale_dropped", labels)->Set(rs.buffer_stale_dropped);
      const PrefetchPool& pool = app.runtime->pool();
      reg.GetCounter("prefetch_pool.enqueued", labels)->Set(pool.enqueued());
      reg.GetCounter("prefetch_pool.dropped_full", labels)->Set(pool.dropped_full());
      reg.GetCounter("prefetch_pool.duplicates", labels)->Set(pool.duplicates());
    }
    result.metrics_text = kernel.metrics().TextDump();
    result.event_log = std::move(kernel.event_log());
  }
  return result;
}

ExperimentResult RunExperiment(const ExperimentSpec& spec, CompileCache* compile_cache) {
  MultiExperimentSpec multi;
  multi.machine = spec.machine;
  multi.apps.push_back(MultiAppSpec{spec.workload, spec.version, spec.runtime, spec.adaptive,
                                    spec.oracle, spec.fuse_touch_runs});
  multi.with_interactive = spec.with_interactive;
  multi.interactive = spec.interactive;
  multi.max_events = spec.max_events;
  multi.trace_period = spec.trace_period;
  multi.observe = spec.observe;
  multi.checks = spec.checks;
  multi.check_options = spec.check_options;
  multi.monitor = spec.monitor;
  multi.monitor_config = spec.monitor_config;
  MultiExperimentResult inner = RunMultiExperiment(multi, compile_cache);

  ExperimentResult result;
  result.app = std::move(inner.apps.front());
  result.interactive = std::move(inner.interactive);
  result.kernel = inner.kernel;
  result.trace = std::move(inner.trace);
  result.event_log = std::move(inner.event_log);
  result.metrics_text = std::move(inner.metrics_text);
  result.swap_reads = inner.swap_reads;
  result.swap_writes = inner.swap_writes;
  result.sim_events = inner.sim_events;
  result.completed = inner.completed;
  result.check_failure = std::move(inner.check_failure);
  result.checks_run = inner.checks_run;
  result.monitor = inner.monitor;
  result.daemon_activations = inner.kernel.daemon_activations;
  // The free-list rescue counter is kernel-global; recover it from the stats.
  result.free_list_rescues =
      inner.kernel.rescued_daemon_freed + inner.kernel.rescued_release_freed;
  return result;
}

InteractiveMetrics RunInteractiveAlone(const MachineConfig& machine,
                                       const InteractiveConfig& config, int64_t sweeps) {
  Kernel kernel(machine);
  kernel.StartDaemons();
  const int64_t pages = config.data_pages + config.text_pages;
  AddressSpace* ias = kernel.CreateAddressSpace("interactive", pages * machine.page_size_bytes);
  ias->AddRegion(Region{"data", 0, pages, Backing::kZeroFill});
  InteractiveConfig bounded = config;
  bounded.max_sweeps = sweeps;
  InteractiveTask task(ias, bounded);
  Thread* thread = kernel.Spawn("interactive", ias, &task);
  task.BindThread(thread);
  kernel.RunUntilThreadsDone({thread});
  return CollectInteractive(task, thread);
}

}  // namespace tmh
