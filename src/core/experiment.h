// Public experiment API: compile a workload at one of the paper's four
// treatment levels and run it on the simulated machine, optionally alongside
// the interactive task.
//
//   O — original program: no hints, no PagingDirected PM.
//   P — prefetching only (compiler prefetch hints + run-time layer + pool).
//   R — prefetching + aggressive releasing.
//   B — prefetching + release buffering (priority queues, near-limit drains).
//
// This is the library's primary entry point; every bench binary and example
// builds on RunExperiment / RunInteractiveAlone.

#ifndef TMH_SRC_CORE_EXPERIMENT_H_
#define TMH_SRC_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/compiler/compile.h"
#include "src/monitor/access_monitor.h"
#include "src/os/config.h"
#include "src/os/kernel.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/runtime_layer.h"
#include "src/workloads/interactive.h"

namespace tmh {

// Sweep-scoped memoization of CompileVersion (src/core/sweep.h). Experiments
// run standalone when none is supplied.
class CompileCache;

// The paper's four treatment levels, plus kReactive — the VINO-style
// OS-pulls-victims alternative of Section 2.2, implemented for comparison
// (label "V"; not part of the paper's bars).
enum class AppVersion : uint8_t { kOriginal, kPrefetch, kRelease, kBuffered, kReactive };

// Short label used in reports: O / P / R / B / V.
const char* VersionLabel(AppVersion version);

// The paper's four versions in its bar order (excludes kReactive).
const std::vector<AppVersion>& AllVersions();

// Derives the parameters handed to the compiler (Section 3.2: memory size,
// page size, fault latency) from the machine it will run on.
CompilerTarget TargetFor(const MachineConfig& machine);

// Compiles `source` at the given treatment level. `adaptive` enables run-time
// re-specialization of unknown-bound nests (the paper's future-work fix);
// `oracle` gives the analysis perfect knowledge (the hand-tuned baseline).
CompiledProgram CompileVersion(const SourceProgram& source, const MachineConfig& machine,
                               AppVersion version, bool adaptive = false, bool oracle = false);

struct ExperimentSpec {
  MachineConfig machine;
  SourceProgram workload;
  AppVersion version = AppVersion::kOriginal;
  RuntimeOptions runtime;  // buffered flag is overridden by `version`
  bool with_interactive = false;
  InteractiveConfig interactive;
  uint64_t max_events = 400'000'000;
  // Nonzero: sample a time-series trace (free memory, resident sets, reclaim
  // counters) at this period; retrieve it from ExperimentResult::trace.
  SimDuration trace_period = 0;
  // Adaptive code generation: re-specialize unknown-bound nests at run time.
  bool adaptive = false;
  // Hand-tuned oracle: compile with perfect knowledge (see CompileOptions).
  bool oracle = false;
  // Interpreter run fusion (batched kTouchRun ops, word-checked by the
  // kernel). A run-time toggle, not a compile option, so the CompileCache can
  // keep sharing programs across both settings; differential tests force it
  // off to compare the fused and unfused streams.
  bool fuse_touch_runs = true;
  // Structured observability: record typed kernel events and metrics
  // histograms; retrieve them from ExperimentResult::event_log/metrics_text.
  bool observe = false;
  // Correctness checking: attach an InvariantChecker (src/check) for the whole
  // run; the first violation lands in ExperimentResult::check_failure.
  bool checks = false;
  CheckOptions check_options;
  // Online access monitoring (src/monitor): a region-based sampler plus a
  // schemes engine that releases cold regions through the standard release
  // path — the OS-side stand-in for compiler hints the program doesn't have.
  // Targets the out-of-core app only (never the interactive task). Stats land
  // in ExperimentResult::monitor.
  bool monitor = false;
  MonitorConfig monitor_config;
};

struct AppMetrics {
  TimeBreakdown times;
  FaultStats faults;
  AsStats as_stats;
  InterpreterStats interp;
  CompileStats compile;
  std::optional<RuntimeStats> runtime;  // absent for version O
  SimDuration wall = 0;                 // start-to-finish of the app thread
};

struct InteractiveMetrics {
  int64_t sweeps = 0;
  double mean_response_ns = 0;
  double max_response_ns = 0;
  std::vector<SimDuration> responses;
  FaultStats faults;
  double hard_faults_per_sweep = 0;
  // Mean time one of the task's page-ins spent blocked on I/O (ns): Section
  // 1.1's inflated "page fault service time" under a memory hog.
  double mean_fault_service_ns = 0;
};

struct ExperimentResult {
  AppMetrics app;
  std::optional<InteractiveMetrics> interactive;
  KernelStats kernel;
  TraceRecorder trace;  // populated when spec.trace_period > 0
  EventLog event_log;       // populated when spec.observe
  std::string metrics_text; // MetricsRegistry::TextDump(), when spec.observe
  uint64_t swap_reads = 0;
  uint64_t swap_writes = 0;
  uint64_t free_list_rescues = 0;
  uint64_t daemon_activations = 0;
  uint64_t sim_events = 0;  // events the kernel's queue executed (substrate load)
  bool completed = false;  // app thread reached kDone within max_events
  // First invariant violation (empty = clean), when spec.checks.
  std::string check_failure;
  uint64_t checks_run = 0;
  // End-of-run monitor counters, when spec.monitor.
  std::optional<MonitorStats> monitor;
};

// Runs one out-of-core experiment to completion of the out-of-core app.
// `compile_cache` (optional) memoizes CompileVersion across runs; the cached
// CompiledProgram is immutable and may be shared by concurrent experiments
// (the Interpreter only reads it — see src/core/sweep.h).
ExperimentResult RunExperiment(const ExperimentSpec& spec, CompileCache* compile_cache = nullptr);

// --- multiprogrammed experiments -------------------------------------------------
// Several out-of-core applications sharing the machine (the paper's stated
// motivation: making memory hogs coexist in a multiprogrammed environment).

struct MultiAppSpec {
  SourceProgram workload;
  AppVersion version = AppVersion::kOriginal;
  RuntimeOptions runtime;
  bool adaptive = false;
  bool oracle = false;
  // Interpreter run fusion (see ExperimentSpec::fuse_touch_runs).
  bool fuse_touch_runs = true;
  // Tenant arrival time: the app's address space exists from t=0 but its
  // thread sleeps this long before executing its first instruction. Several
  // apps sharing one nonzero delay spike together (a pressure storm);
  // staggered delays model tenant churn — earlier arrivals finish and their
  // residue is reclaimed by the daemon while later tenants are still running.
  // 0 = the historical immediate start.
  SimDuration start_delay = 0;
};

struct MultiExperimentSpec {
  MachineConfig machine;
  std::vector<MultiAppSpec> apps;
  bool with_interactive = false;
  InteractiveConfig interactive;
  uint64_t max_events = 800'000'000;
  SimDuration trace_period = 0;
  // Structured observability (see ExperimentSpec::observe).
  bool observe = false;
  // Correctness checking (see ExperimentSpec::checks).
  bool checks = false;
  CheckOptions check_options;
  // Online access monitoring (see ExperimentSpec::monitor); targets every
  // out-of-core app, never the interactive task.
  bool monitor = false;
  MonitorConfig monitor_config;
};

struct MultiExperimentResult {
  std::vector<AppMetrics> apps;  // one per MultiAppSpec, same order
  std::optional<InteractiveMetrics> interactive;
  KernelStats kernel;
  TraceRecorder trace;
  EventLog event_log;       // populated when spec.observe
  std::string metrics_text; // MetricsRegistry::TextDump(), when spec.observe
  uint64_t swap_reads = 0;
  uint64_t swap_writes = 0;
  uint64_t sim_events = 0;  // events the kernel's queue executed (substrate load)
  bool completed = false;  // every app finished within the event budget
  // First invariant violation (empty = clean), when spec.checks.
  std::string check_failure;
  uint64_t checks_run = 0;
  // End-of-run monitor counters, when spec.monitor.
  std::optional<MonitorStats> monitor;
};

// Runs until every out-of-core app completes. `compile_cache` as above.
MultiExperimentResult RunMultiExperiment(const MultiExperimentSpec& spec,
                                         CompileCache* compile_cache = nullptr);

// Baseline: the interactive task alone on the machine for `sweeps` sweeps.
InteractiveMetrics RunInteractiveAlone(const MachineConfig& machine,
                                       const InteractiveConfig& config, int64_t sweeps = 20);

}  // namespace tmh

#endif  // TMH_SRC_CORE_EXPERIMENT_H_
