#include "src/core/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace tmh {

namespace {

// --- compile-cache key -----------------------------------------------------
// The key is an injective binary serialization of everything Compile() reads,
// plus everything the CompiledProgram carries into the run (its embedded
// SourceProgram copy, which the Interpreter reads indirect-index values
// from). Strings are length-prefixed, numbers fixed-width, so distinct inputs
// cannot alias. The one lossy field is the 64-bit FNV-1a digest of each
// indirect-index array (hashing keeps the key small for multi-million-entry
// index arrays); a collision additionally requires every other field to
// match, making it negligible in practice.

void AppendInt(std::string* key, int64_t v) {
  key->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void AppendStr(std::string* key, const std::string& s) {
  AppendInt(key, static_cast<int64_t>(s.size()));
  key->append(s);
}

uint64_t Fnv1a(const std::vector<int64_t>& values) {
  uint64_t h = 1469598103934665603ull;
  for (const int64_t v : values) {
    uint64_t u = static_cast<uint64_t>(v);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (u >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

void AppendAffine(std::string* key, const AffineExpr& e) {
  AppendInt(key, e.constant);
  AppendInt(key, static_cast<int64_t>(e.coeffs.size()));
  for (const int64_t c : e.coeffs) {
    AppendInt(key, c);
  }
}

std::string KeyFor(const SourceProgram& source, const CompilerTarget& target,
                   const CompileOptions& options) {
  std::string key;
  key.reserve(256);
  AppendStr(&key, source.name);
  AppendInt(&key, source.repeat);
  AppendInt(&key, source.text_pages);
  AppendInt(&key, static_cast<int64_t>(source.arrays.size()));
  for (const ArrayDecl& a : source.arrays) {
    AppendStr(&key, a.name);
    AppendInt(&key, a.element_size);
    AppendInt(&key, a.num_elements);
    AppendInt(&key, a.on_disk ? 1 : 0);
    if (a.index_values == nullptr) {
      AppendInt(&key, -1);
    } else {
      AppendInt(&key, static_cast<int64_t>(a.index_values->size()));
      AppendInt(&key, static_cast<int64_t>(Fnv1a(*a.index_values)));
    }
  }
  AppendInt(&key, static_cast<int64_t>(source.nests.size()));
  for (const LoopNest& nest : source.nests) {
    AppendStr(&key, nest.label);
    AppendInt(&key, nest.compute_per_iteration);
    AppendInt(&key, static_cast<int64_t>(nest.loops.size()));
    for (const Loop& loop : nest.loops) {
      AppendStr(&key, loop.var);
      AppendInt(&key, loop.lower);
      AppendInt(&key, loop.upper);
      AppendInt(&key, loop.step);
      AppendInt(&key, loop.upper_known ? 1 : 0);
    }
    AppendInt(&key, static_cast<int64_t>(nest.refs.size()));
    for (const ArrayRef& ref : nest.refs) {
      AppendInt(&key, ref.array);
      AppendAffine(&key, ref.affine);
      AppendInt(&key, ref.is_write ? 1 : 0);
      AppendInt(&key, ref.index_array);
      AppendInt(&key, ref.release_analyzable ? 1 : 0);
      if (ref.runtime_affine == nullptr) {
        AppendInt(&key, -1);
      } else {
        AppendInt(&key, 1);
        AppendAffine(&key, *ref.runtime_affine);
      }
    }
  }
  AppendInt(&key, target.page_size);
  AppendInt(&key, target.memory_bytes);
  AppendInt(&key, target.fault_latency);
  AppendInt(&key, (options.insert_prefetches ? 1 : 0) | (options.insert_releases ? 2 : 0) |
                      (options.adaptive_recompilation ? 4 : 0) | (options.oracle ? 8 : 0));
  return key;
}

}  // namespace

CompileCache::Shard& CompileCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

std::shared_ptr<const CompiledProgram> CompileCache::GetOrCompile(const SourceProgram& source,
                                                                  const MachineConfig& machine,
                                                                  AppVersion version,
                                                                  bool adaptive, bool oracle) {
  // Mirror CompileVersion's option derivation so versions that compile
  // identically (R / B / V) share one cached program.
  CompileOptions options;
  options.insert_prefetches = version != AppVersion::kOriginal;
  options.insert_releases = version == AppVersion::kRelease ||
                            version == AppVersion::kBuffered ||
                            version == AppVersion::kReactive;
  options.adaptive_recompilation = adaptive;
  options.oracle = oracle;
  const CompilerTarget target = TargetFor(machine);
  const std::string key = KeyFor(source, target, options);
  Shard& shard = ShardFor(key);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.programs.find(key);
    if (it != shard.programs.end()) {
      ++shard.stats.hits;
      return it->second;
    }
  }
  // Compile outside the lock: compilation is the expensive part, and two
  // workers racing on the same key merely produce one discarded duplicate.
  auto compiled =
      std::make_shared<const CompiledProgram>(Compile(source, target, options));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.programs.emplace(key, std::move(compiled));
  ++shard.stats.misses;
  return it->second;
}

CompileCache::Stats CompileCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
  }
  return total;
}

size_t CompileCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.programs.size();
  }
  return total;
}

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int AvailableCpus() {
#if defined(__linux__)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int cpus = CPU_COUNT(&mask);
    if (cpus > 0) return cpus;
  }
#endif
  return DefaultJobs();
}

int SweepRunner::jobs() const { return options_.jobs > 0 ? options_.jobs : DefaultJobs(); }

int SweepRunner::EffectiveWorkers(size_t tasks) const {
  const size_t capped = std::min<size_t>(
      std::min<size_t>(static_cast<size_t>(jobs()), static_cast<size_t>(AvailableCpus())),
      tasks);
  return capped > 0 ? static_cast<int>(capped) : 1;
}

void SweepRunner::RunTasks(std::vector<std::function<void()>> tasks) {
  const size_t n = tasks.size();
  const int workers = EffectiveWorkers(n);
  if (workers <= 1) {
    for (std::function<void()>& task : tasks) {
      task();
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        tasks[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

namespace {

// Every observed simulation must have recorded into its own EventLog and
// MetricsRegistry (they live inside that run's Kernel): each observed result
// carries an enabled log and a metrics dump of its own, and no two results
// alias one event buffer. If buffers were ever shared, concurrent runs would
// interleave events; this check is cheap and always on (the default build
// defines NDEBUG, so a plain assert would vanish).
struct ObservedSlices {
  const EventLog* event_log = nullptr;
  const std::string* metrics_text = nullptr;
};

void CheckIndependentObservability(const std::vector<ObservedSlices>& observed) {
  for (const ObservedSlices& slice : observed) {
    if (!slice.event_log->enabled() || slice.metrics_text->empty()) {
      std::fprintf(stderr,
                   "SweepRunner: an observed spec produced no independent "
                   "EventLog/MetricsRegistry instance\n");
      std::abort();
    }
  }
  for (size_t i = 0; i < observed.size(); ++i) {
    for (size_t j = i + 1; j < observed.size(); ++j) {
      const auto& a = observed[i].event_log->events();
      const auto& b = observed[j].event_log->events();
      if (!a.empty() && a.data() == b.data()) {
        std::fprintf(stderr,
                     "SweepRunner: two observed results share one EventLog buffer — "
                     "simulations must not share observability state\n");
        std::abort();
      }
    }
  }
}

}  // namespace

std::vector<ExperimentResult> SweepRunner::Run(const std::vector<ExperimentSpec>& specs) {
  std::vector<ExperimentResult> results(specs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back([this, &specs, &results, i] {
      results[i] = RunExperiment(specs[i], &cache_);
    });
  }
  RunTasks(std::move(tasks));
  std::vector<ObservedSlices> observed;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].observe) {
      observed.push_back(ObservedSlices{&results[i].event_log, &results[i].metrics_text});
    }
  }
  CheckIndependentObservability(observed);
  return results;
}

std::vector<MultiExperimentResult> SweepRunner::RunMulti(
    const std::vector<MultiExperimentSpec>& specs) {
  std::vector<MultiExperimentResult> results(specs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back([this, &specs, &results, i] {
      results[i] = RunMultiExperiment(specs[i], &cache_);
    });
  }
  RunTasks(std::move(tasks));
  std::vector<ObservedSlices> observed;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].observe) {
      observed.push_back(ObservedSlices{&results[i].event_log, &results[i].metrics_text});
    }
  }
  CheckIndependentObservability(observed);
  return results;
}

}  // namespace tmh
