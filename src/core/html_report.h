// Standalone HTML rendering of a time-series trace.
//
// Produces a single self-contained .html file: one line chart per series
// group (resident-set pages, cumulative reclaim counters, queue depths),
// light/dark palettes via CSS custom properties, a legend per chart, a
// crosshair + tooltip hover layer, and a collapsible data table — so a trace
// can be inspected without any plotting toolchain.

#ifndef TMH_SRC_CORE_HTML_REPORT_H_
#define TMH_SRC_CORE_HTML_REPORT_H_

#include <string>
#include <vector>

#include "src/sim/trace.h"

namespace tmh {

// One chart: a titled subset of the trace's series sharing a y-axis.
struct ChartSpec {
  std::string title;
  std::string y_label;
  std::vector<int> series;  // indices into TraceRecorder::series()
};

// Renders a full HTML document containing one chart per spec. Series beyond
// the eight categorical slots are dropped with a visible note (never recolor
// or cycle hues).
std::string RenderTraceHtml(const TraceRecorder& trace, const std::string& title,
                            const std::vector<ChartSpec>& charts);

// Convenience: groups a kernel trace's standard series into three charts
// (pages resident/free, cumulative reclaim counters, swap queue depth).
std::string RenderKernelTraceHtml(const TraceRecorder& trace, const std::string& title);

// Writes `html` to `path`. Returns false on I/O failure.
bool WriteHtmlFile(const std::string& path, const std::string& html);

}  // namespace tmh

#endif  // TMH_SRC_CORE_HTML_REPORT_H_
