#include "src/core/html_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tmh {
namespace {

// The validated reference categorical palette (fixed slot order; the dark
// column is the same hues re-stepped for the dark surface, validated as a
// set). Identity follows the slot, never the series count.
struct Slot {
  const char* light;
  const char* dark;
};
constexpr Slot kSlots[8] = {
    {"#2a78d6", "#3987e5"},  // blue
    {"#1baf7a", "#199e70"},  // aqua
    {"#eda100", "#c98500"},  // yellow
    {"#008300", "#008300"},  // green
    {"#4a3aa7", "#9085e9"},  // violet
    {"#e34948", "#e66767"},  // red
    {"#e87ba4", "#d55181"},  // magenta
    {"#eb6834", "#d95926"},  // orange
};

std::string Fmt(const char* format, double a, double b = 0, double c = 0, double d = 0) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, a, b, c, d);
  return buf;
}

std::string Escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Compact value formatting for tick and tooltip labels.
std::string Compact(double v) {
  char buf[48];
  if (std::abs(v) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (std::abs(v) >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
  } else if (std::abs(v) >= 100 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

// Geometry shared by all charts.
constexpr double kW = 860, kH = 300;
constexpr double kL = 56, kR = 150, kT = 16, kB = 36;  // margins (right holds labels)
constexpr double kPlotW = kW - kL - kR;
constexpr double kPlotH = kH - kT - kB;

void RenderChart(std::string& out, const TraceRecorder& trace, const ChartSpec& spec,
                 int chart_index) {
  const auto& samples = trace.samples();
  std::vector<int> series = spec.series;
  std::string dropped_note;
  if (series.size() > 8) {
    dropped_note = Fmt("<p class=\"note\">%0.f further series omitted "
                       "(eight categorical slots; identity is never recolored).</p>",
                       static_cast<double>(series.size() - 8));
    series.resize(8);
  }
  if (samples.empty() || series.empty()) {
    out += "<p class=\"note\">(no samples)</p>\n";
    return;
  }

  const double t0 = ToSeconds(samples.front().when);
  const double t1 = std::max(ToSeconds(samples.back().when), t0 + 1e-9);
  double vmax = 0;
  for (const TraceSample& s : samples) {
    for (const int idx : series) {
      vmax = std::max(vmax, s.values[static_cast<size_t>(idx)]);
    }
  }
  vmax = std::max(vmax, 1.0) * 1.05;

  auto x_of = [&](double t) { return kL + (t - t0) / (t1 - t0) * kPlotW; };
  auto y_of = [&](double v) { return kT + (1.0 - v / vmax) * kPlotH; };

  out += "<section class=\"chart\">\n";
  out += "<h2>" + Escape(spec.title) + "</h2>\n";

  // Legend (always present for >= 2 series; chips carry identity, text wears ink).
  if (series.size() >= 2) {
    out += "<div class=\"legend\">";
    for (size_t i = 0; i < series.size(); ++i) {
      out += Fmt("<span class=\"chip\"><i style=\"background:var(--series-%.0f)\"></i>",
                 static_cast<double>(i + 1));
      out += Escape(trace.series()[static_cast<size_t>(series[i])]) + "</span>";
    }
    out += "</div>\n";
  }

  out += Fmt("<div class=\"plot\" data-chart=\"%.0f\">", static_cast<double>(chart_index));
  out += Fmt("<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\">", kW, kH);

  // Recessive grid: four horizontal lines + y tick labels.
  for (int g = 0; g <= 4; ++g) {
    const double v = vmax * g / 4.0;
    const double y = y_of(v);
    out += Fmt("<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>", kL, y,
               kL + kPlotW, y);
    out += Fmt("<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">", kL - 6,
               y + 4);
    out += Compact(v) + "</text>";
  }
  // X tick labels (5 across).
  for (int g = 0; g <= 4; ++g) {
    const double t = t0 + (t1 - t0) * g / 4.0;
    out += Fmt("<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">",
               x_of(t), kT + kPlotH + 18);
    out += Compact(t) + "s</text>";
  }
  // Axis baseline.
  out += Fmt("<line class=\"axis\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>", kL,
             kT + kPlotH, kL + kPlotW, kT + kPlotH);
  // Y-axis label.
  out += Fmt("<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"start\">", 4.0, kT + 4);
  out += Escape(spec.y_label) + "</text>";

  // Series polylines (2px) with a direct label at each line's end.
  const size_t stride = std::max<size_t>(1, samples.size() / 2000);
  for (size_t i = 0; i < series.size(); ++i) {
    const int idx = series[i];
    out += Fmt("<polyline class=\"line\" style=\"stroke:var(--series-%.0f)\" points=\"",
               static_cast<double>(i + 1));
    for (size_t s = 0; s < samples.size(); s += stride) {
      out += Fmt("%.1f,%.1f ", x_of(ToSeconds(samples[s].when)),
                 y_of(samples[s].values[static_cast<size_t>(idx)]));
    }
    // Always include the final sample.
    out += Fmt("%.1f,%.1f\"/>", x_of(ToSeconds(samples.back().when)),
               y_of(samples.back().values[static_cast<size_t>(idx)]));
    if (series.size() <= 4) {
      // Selective direct label: series name at the line end, in ink, with a
      // colored marker carrying identity.
      const double yl = y_of(samples.back().values[static_cast<size_t>(idx)]);
      out += Fmt("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" style=\"fill:var(--series-%.0f)\"/>",
                 kL + kPlotW + 4, yl, static_cast<double>(i + 1));
      out += Fmt("<text class=\"dlabel\" x=\"%.1f\" y=\"%.1f\">", kL + kPlotW + 10, yl + 4);
      out += Escape(trace.series()[static_cast<size_t>(idx)]) + "</text>";
    }
  }

  // Hover layer scaffolding: crosshair + capture rect (driven by inline JS).
  out += "<line class=\"crosshair\" y1=\"" + Fmt("%.1f", kT) + "\" y2=\"" +
         Fmt("%.1f", kT + kPlotH) + "\" x1=\"-10\" x2=\"-10\"/>";
  out += Fmt("<rect class=\"capture\" x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\"/>",
             kL, kT, kPlotW, kPlotH);
  out += "</svg><div class=\"tooltip\"></div></div>\n";

  // Embedded data for the hover layer and the table view.
  out += Fmt("<script type=\"application/json\" id=\"data-%.0f\">",
             static_cast<double>(chart_index));
  out += "{\"t0\":" + Fmt("%.6f", t0) + ",\"t1\":" + Fmt("%.6f", t1) +
         ",\"vmax\":" + Fmt("%.6f", vmax) + ",\"names\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    out += (i != 0 ? "," : "");
    out += "\"" + Escape(trace.series()[static_cast<size_t>(series[i])]) + "\"";
  }
  out += "],\"rows\":[";
  for (size_t s = 0; s < samples.size(); s += stride) {
    out += (s != 0 ? "," : "");
    out += "[" + Fmt("%.6f", ToSeconds(samples[s].when));
    for (const int idx : series) {
      out += "," + Fmt("%.6g", samples[s].values[static_cast<size_t>(idx)]);
    }
    out += "]";
  }
  out += "]}</script>\n";
  out += dropped_note;

  // Table view (accessibility fallback; capped for document size).
  out += "<details><summary>Data table</summary><table><tr><th>time (s)</th>";
  for (const int idx : series) {
    out += "<th>" + Escape(trace.series()[static_cast<size_t>(idx)]) + "</th>";
  }
  out += "</tr>";
  const size_t table_stride = std::max<size_t>(1, samples.size() / 200);
  for (size_t s = 0; s < samples.size(); s += table_stride) {
    out += "<tr><td>" + Fmt("%.2f", ToSeconds(samples[s].when)) + "</td>";
    for (const int idx : series) {
      out += "<td>" + Compact(samples[s].values[static_cast<size_t>(idx)]) + "</td>";
    }
    out += "</tr>";
  }
  out += "</table></details>\n</section>\n";
}

const char* kStyle = R"css(
:root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e4e3df;
  --series-1: #2a78d6; --series-2: #1baf7a; --series-3: #eda100; --series-4: #008300;
  --series-5: #4a3aa7; --series-6: #e34948; --series-7: #e87ba4; --series-8: #eb6834;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #34332f;
    --series-1: #3987e5; --series-2: #199e70; --series-3: #c98500; --series-4: #008300;
    --series-5: #9085e9; --series-6: #e66767; --series-7: #d55181; --series-8: #d95926;
  }
}
body { background: var(--surface-1); color: var(--text-primary);
       font: 14px/1.5 system-ui, sans-serif; max-width: 920px; margin: 2em auto; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin: 1.2em 0 0.3em; }
.legend { display: flex; gap: 1.2em; flex-wrap: wrap; margin: 0.2em 0 0.4em;
          color: var(--text-secondary); }
.chip i { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
          margin-right: 5px; }
.plot { position: relative; }
svg { width: 100%; height: auto; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--text-secondary); stroke-width: 1; }
.tick, .dlabel { fill: var(--text-secondary); font-size: 11px; }
.dlabel { fill: var(--text-primary); }
.line { fill: none; stroke-width: 2; }
.crosshair { stroke: var(--text-secondary); stroke-dasharray: 3 3; }
.capture { fill: transparent; }
.tooltip { position: absolute; display: none; background: var(--surface-1);
           border: 1px solid var(--grid); border-radius: 4px; padding: 6px 9px;
           pointer-events: none; font-size: 12px; color: var(--text-primary);
           box-shadow: 0 2px 8px rgba(0,0,0,0.15); white-space: nowrap; }
details { margin: 0.5em 0 1.5em; color: var(--text-secondary); }
table { border-collapse: collapse; font-size: 12px; }
td, th { border: 1px solid var(--grid); padding: 2px 8px; text-align: right; }
.note { color: var(--text-secondary); font-size: 12px; }
)css";

// Crosshair + tooltip driver: nearest-sample lookup against the embedded data.
const char* kScript = R"js(
document.querySelectorAll('.plot').forEach(function (plot) {
  var data = JSON.parse(document.getElementById('data-' + plot.dataset.chart).textContent);
  var svg = plot.querySelector('svg');
  var cross = plot.querySelector('.crosshair');
  var tip = plot.querySelector('.tooltip');
  var L = 56, R = 150, T = 16, B = 36, W = 860, H = 300;
  svg.addEventListener('mousemove', function (ev) {
    var box = svg.getBoundingClientRect();
    var px = (ev.clientX - box.left) * (W / box.width);
    if (px < L || px > W - R) { tip.style.display = 'none'; return; }
    var t = data.t0 + (px - L) / (W - L - R) * (data.t1 - data.t0);
    var best = 0;
    for (var i = 1; i < data.rows.length; i++) {
      if (Math.abs(data.rows[i][0] - t) < Math.abs(data.rows[best][0] - t)) best = i;
    }
    var row = data.rows[best];
    var x = L + (row[0] - data.t0) / (data.t1 - data.t0) * (W - L - R);
    cross.setAttribute('x1', x); cross.setAttribute('x2', x);
    var html = '<b>t = ' + row[0].toFixed(2) + ' s</b>';
    for (var s = 0; s < data.names.length; s++) {
      html += '<br><i style="color:var(--series-' + (s + 1) + ')">&#9632;</i> ' +
              data.names[s] + ': ' + row[s + 1];
    }
    tip.innerHTML = html;
    tip.style.display = 'block';
    var left = (x / W) * box.width + 12;
    if (left > box.width - 180) left -= 200;
    tip.style.left = left + 'px';
    tip.style.top = '20px';
  });
  svg.addEventListener('mouseleave', function () {
    tip.style.display = 'none';
    cross.setAttribute('x1', -10); cross.setAttribute('x2', -10);
  });
});
)js";

}  // namespace

std::string RenderTraceHtml(const TraceRecorder& trace, const std::string& title,
                            const std::vector<ChartSpec>& charts) {
  std::string out = "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
                    Escape(title) + "</title>\n<style>" + kStyle + "</style></head>\n<body>\n";
  out += "<h1>" + Escape(title) + "</h1>\n";
  int index = 0;
  for (const ChartSpec& spec : charts) {
    RenderChart(out, trace, spec, index++);
  }
  out += "<script>" + std::string(kScript) + "</script>\n</body></html>\n";
  return out;
}

std::string RenderKernelTraceHtml(const TraceRecorder& trace, const std::string& title) {
  // Standard kernel trace layout: free_pages, <as>_rss..., then the four
  // cumulative counters, then swap_queue (see Kernel::StartTracing).
  const int n = static_cast<int>(trace.series().size());
  ChartSpec pages{"Resident sets and free memory", "pages", {}};
  ChartSpec reclaim{"Cumulative reclaim and fault counters", "events", {}};
  ChartSpec queue{"Swap queue depth", "requests", {}};
  for (int i = 0; i < n; ++i) {
    const std::string& name = trace.series()[static_cast<size_t>(i)];
    if (name == "swap_queue") {
      queue.series.push_back(i);
    } else if (name == "daemon_stolen" || name == "releaser_freed" || name == "hard_faults" ||
               name == "soft_faults") {
      reclaim.series.push_back(i);
    } else {
      pages.series.push_back(i);
    }
  }
  return RenderTraceHtml(trace, title, {pages, reclaim, queue});
}

bool WriteHtmlFile(const std::string& path, const std::string& html) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(html.data(), 1, html.size(), f) == html.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tmh
