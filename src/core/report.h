// Small fixed-width table / series formatting helpers shared by the bench
// binaries, so every reproduced table and figure prints in a uniform style.

#ifndef TMH_SRC_CORE_REPORT_H_
#define TMH_SRC_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tmh {

class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  ReportTable& AddRow(std::vector<std::string> cells);

  // Renders with column widths fitted to content, a header underline, and
  // right-aligned numeric-looking cells.
  [[nodiscard]] std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string FormatDouble(double value, int precision = 2);
std::string FormatCount(uint64_t value);
// Seconds with automatic precision (e.g. "12.3 s", "450 ms").
std::string FormatSeconds(double seconds);

// Prints a figure-style (x, y...) series block with a title and column names.
void PrintSeries(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<std::vector<double>>& rows);

}  // namespace tmh

#endif  // TMH_SRC_CORE_REPORT_H_
