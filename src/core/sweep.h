// Parallel sweep engine: fan a grid of independent experiments out over a
// bounded worker pool, with a shared compile cache.
//
// Every figure in EXPERIMENTS.md is a grid of self-contained simulations —
// versions {O,P,R,B} x benchmarks x parameter points. Each simulation owns its
// entire world (Kernel, EventQueue, Rng, AddressSpaces, disks); nothing is
// shared between runs and the simulated "threads" are event-queue actors, not
// OS threads. That makes the grid embarrassingly parallel: SweepRunner runs
// each spec on a real std::thread worker and returns the results in
// submission order, so every report built from them is byte-identical to the
// serial run.
//
// Invariants the engine relies on (and the suite enforces):
//   * Simulations share nothing mutable. The only object intentionally shared
//     between concurrent runs is the CompiledProgram handed out by the
//     CompileCache, which is immutable after compilation: the Interpreter
//     takes `const CompiledProgram*` and re-specializes adaptive nests into
//     its own private CompiledNest, never back into the program.
//   * Results are collected per spec and merged/printed on the main thread
//     after the pool joins — ReportTable / HtmlReport / EventLog / the
//     metrics text dumps need no locking, and stdout ordering is untouched.
//   * Observed specs (spec.observe) get an independent EventLog and
//     MetricsRegistry per simulation (they live inside each run's Kernel);
//     SweepRunner checks this after every sweep so two concurrently observed
//     runs can never interleave events.

#ifndef TMH_SRC_CORE_SWEEP_H_
#define TMH_SRC_CORE_SWEEP_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/experiment.h"

namespace tmh {

// Memoizes CompileVersion over the (workload, machine-derived target,
// version-derived options) tuple. A figure-scale sweep calls CompileVersion
// with the same tuple dozens of times (six workloads x four versions x many
// parameter points); the cache compiles each distinct tuple once and hands
// every run a shared pointer to the same immutable CompiledProgram.
//
// Sharing is keyed on what compilation actually depends on, so versions that
// compile identically (R, B and V differ only in RuntimeOptions) share one
// program. The key serializes every field of the SourceProgram — including a
// content hash of indirect-index arrays, so two structurally identical
// workloads built from different seeds never collide — plus the
// CompilerTarget and the derived CompileOptions.
//
// Thread-safe and sharded: the key space is split over 16 independently
// locked shards (by key hash), so concurrent workers looking up *different*
// programs never contend on one mutex — with a single global lock, a
// figure-scale sweep serialized every worker through the cache on each of the
// hundreds of per-spec lookups. Compilation itself runs outside any lock; a
// racing duplicate compile is discarded, first insert wins.
class CompileCache {
 public:
  std::shared_ptr<const CompiledProgram> GetOrCompile(const SourceProgram& source,
                                                      const MachineConfig& machine,
                                                      AppVersion version, bool adaptive = false,
                                                      bool oracle = false);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t size() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const CompiledProgram>> programs;
    Stats stats;
  };
  [[nodiscard]] Shard& ShardFor(const std::string& key) const;

  mutable std::array<Shard, kShards> shards_;
};

struct SweepOptions {
  // Worker threads for the pool; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
};

// Number of workers a default-constructed SweepRunner uses (>= 1).
int DefaultJobs();

// CPUs this process may actually run on (the scheduler affinity mask when the
// platform exposes one, else hardware_concurrency; >= 1). Distinct from
// DefaultJobs: a container or taskset can restrict a 64-core box to 1 CPU.
int AvailableCpus();

class SweepRunner {
 public:
  SweepRunner() = default;
  explicit SweepRunner(const SweepOptions& options) : options_(options) {}

  // The requested worker count (>= 1).
  [[nodiscard]] int jobs() const;

  // Workers actually spawned for a grid of `tasks` tasks:
  // min(jobs(), AvailableCpus(), tasks). Spawning more threads than runnable
  // CPUs is pure overhead for this CPU-bound workload — on a 1-CPU cgroup an
  // 8-thread pool context-switches its way *below* serial throughput, which
  // is how "parallel" sweeps end up with speedup <= 1.0.
  [[nodiscard]] int EffectiveWorkers(size_t tasks) const;

  // Runs every spec to completion and returns the results in spec order.
  // Deterministic: results (and anything rendered from them) are identical
  // for any jobs value, including 1.
  std::vector<ExperimentResult> Run(const std::vector<ExperimentSpec>& specs);
  std::vector<MultiExperimentResult> RunMulti(const std::vector<MultiExperimentSpec>& specs);

  // Generic fan-out for heterogeneous grids (e.g. mixing RunInteractiveAlone
  // baselines with experiments): runs every task exactly once on the pool.
  // Tasks must not touch shared mutable state other than their own result
  // slot. All tasks are attempted even if one throws; the first exception is
  // rethrown on this thread after the pool joins.
  void RunTasks(std::vector<std::function<void()>> tasks);

  // The sweep-scoped compile cache, shared by all workers of this runner.
  // Tasks passed to RunTasks may use it via RunExperiment(spec, &cache).
  CompileCache& compile_cache() { return cache_; }

 private:
  SweepOptions options_;
  CompileCache cache_;
};

}  // namespace tmh

#endif  // TMH_SRC_CORE_SWEEP_H_
