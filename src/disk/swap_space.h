// Striped raw swap, modeled after the paper's testbed: swap pages are striped
// round-robin across the disk array so that sequential page-in streams engage
// every spindle, and consecutive stripes on one disk are physically contiguous.

#ifndef TMH_SRC_DISK_SWAP_SPACE_H_
#define TMH_SRC_DISK_SWAP_SPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/disk/disk.h"
#include "src/sim/event_queue.h"

namespace tmh {

// Configuration of the swap disk array.
struct SwapConfig {
  int num_disks = 10;
  int disks_per_controller = 2;
  DiskParams disk_params;
};

class SwapSpace {
 public:
  SwapSpace(EventQueue* queue, const SwapConfig& config, int64_t page_size_bytes);

  SwapSpace(const SwapSpace&) = delete;
  SwapSpace& operator=(const SwapSpace&) = delete;

  // Reads one page-sized extent at swap slot `swap_page`; `done` runs at I/O
  // completion time.
  void ReadPage(int64_t swap_page, InlineCallable done);

  // Writes one page-sized extent (page-out of a dirty page).
  void WritePage(int64_t swap_page, InlineCallable done);

  [[nodiscard]] int num_disks() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] const Disk& disk(int i) const { return *disks_[static_cast<size_t>(i)]; }
  [[nodiscard]] uint64_t reads() const { return reads_; }
  [[nodiscard]] uint64_t writes() const { return writes_; }

  // Total queued + in-flight requests across the array (backpressure signal).
  [[nodiscard]] size_t TotalQueueDepth() const;

 private:
  void Submit(int64_t swap_page, int64_t bytes, bool is_write, InlineCallable done);

  EventQueue* queue_;
  int64_t page_size_bytes_;
  std::vector<std::unique_ptr<ScsiController>> controllers_;
  std::vector<std::unique_ptr<Disk>> disks_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_DISK_SWAP_SPACE_H_
