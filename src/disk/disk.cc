#include "src/disk/disk.h"

#include <cassert>
#include <utility>

namespace tmh {

Disk::Disk(EventQueue* queue, ScsiController* controller, DiskParams params, std::string name)
    : queue_(queue), controller_(controller), params_(params), name_(std::move(name)) {
  assert(queue_ != nullptr && controller_ != nullptr);
}

void Disk::Submit(IoRequest request) {
  assert(request.done && "IoRequest must carry a completion callback");
  request.submitted_at = queue_->Now();
  pending_.push_back(std::move(request));
  if (!busy_) {
    StartNext();
  }
}

void Disk::StartNext() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  busy_since_ = queue_->Now();
  // Bounded look-ahead reordering: continue a sequential streak if any nearby
  // queued request allows it (the age-old elevator trick; keeps interleaved
  // read and write streams from paying a full seek per request).
  size_t pick = 0;
  const size_t lookahead =
      std::min(pending_.size(), static_cast<size_t>(std::max(params_.queue_lookahead, 0)) + 1);
  for (size_t i = 0; i < lookahead; ++i) {
    if (pending_[i].block == last_block_end_) {
      pick = i;
      break;
    }
  }
  current_ = std::move(pending_[pick]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));

  // Positioning: a request contiguous with the previous one skips the seek and
  // most rotational delay (striped sequential access hits this path).
  SimDuration positioning;
  if (current_.block == last_block_end_) {
    positioning = params_.sequential_seek;
  } else {
    positioning = params_.avg_seek + params_.half_rotation;
  }
  queue_->ScheduleAfter(positioning, [this]() { PositioningDone(); });
}

void Disk::PositioningDone() {
  const SimDuration transfer =
      params_.TransferTime(current_.bytes) + params_.controller_overhead;
  controller_->AcquireBus(transfer, [this, transfer]() {
    // The bus is held for the transfer duration by the controller; completion
    // of this request coincides with the bus release.
    queue_->ScheduleAfter(transfer, [this]() { TransferDone(); });
  });
}

void Disk::TransferDone() {
  const int64_t blocks = (current_.bytes > 0) ? 1 : 0;
  last_block_end_ = current_.block + blocks;
  ++requests_served_;
  busy_time_ += queue_->Now() - busy_since_;
  latency_.Add(static_cast<double>(queue_->Now() - current_.submitted_at));
  InlineCallable done = std::move(current_.done);
  // Start the next queued request before running the callback so a callback
  // that submits more I/O sees a consistent queue.
  StartNext();
  done();
}

void ScsiController::AcquireBus(SimDuration duration, InlineCallable granted) {
  if (busy_) {
    waiters_.push_back(Waiter{duration, std::move(granted)});
    return;
  }
  Grant(Waiter{duration, std::move(granted)});
}

void ScsiController::Grant(Waiter waiter) {
  busy_ = true;
  busy_time_ += waiter.duration;
  ++transfers_;
  queue_->ScheduleAfter(waiter.duration, [this]() { Release(); });
  waiter.granted();
}

void ScsiController::Release() {
  busy_ = false;
  if (!waiters_.empty()) {
    Waiter next = std::move(waiters_.front());
    waiters_.pop_front();
    Grant(std::move(next));
  }
}

}  // namespace tmh
