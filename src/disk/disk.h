// Disk and SCSI-controller service models.
//
// The paper's testbed stripes raw swap across ten Seagate Cheetah 4LP disks
// hanging off five SCSI adapters (Table 1). Prefetching's latency-hiding
// ability depends on the aggregate parallelism of that array, so the model
// keeps the two service stages separate:
//   1. positioning (seek + rotational latency) — parallel across disks;
//   2. transfer — serialized per SCSI controller (two disks share a bus).
// Consecutive blocks on the same disk skip most of the positioning cost, which
// is what makes striped sequential swap reads fast.

#ifndef TMH_SRC_DISK_DISK_H_
#define TMH_SRC_DISK_DISK_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/event_queue.h"
#include "src/sim/inline_callable.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace tmh {

// Service parameters for one disk. Defaults approximate a Seagate Cheetah 4LP
// (10,033 RPM, ~7.7 ms average seek, ~16 MB/s sustained transfer).
struct DiskParams {
  SimDuration avg_seek = 7700 * kUsec;
  SimDuration half_rotation = 2990 * kUsec;     // 10k RPM => 5.98 ms/rev
  SimDuration sequential_seek = 300 * kUsec;    // track-to-track + settle
  int64_t transfer_bytes_per_sec = 16ll * 1000 * 1000;
  SimDuration controller_overhead = 150 * kUsec;  // SCSI command processing
  // Driver/drive request reordering (elevator / tagged command queuing): when
  // picking the next request, look this far into the queue for one contiguous
  // with the last served block before falling back to FIFO. 0 = strict FIFO.
  int queue_lookahead = 8;

  [[nodiscard]] SimDuration TransferTime(int64_t bytes) const {
    return (bytes * kSec) / transfer_bytes_per_sec;
  }
};

// One I/O request against a disk: read or write of `bytes` at logical `block`.
// The completion callback is an InlineCallable: every callback the kernel and
// the tests pass is a couple of words, so queueing and serving requests never
// touches the heap, and moving a request is a raw byte copy.
struct IoRequest {
  int64_t block = 0;  // disk-local block number (one block = one page slot)
  int64_t bytes = 0;
  bool is_write = false;
  InlineCallable done;       // invoked at completion time
  SimTime submitted_at = 0;  // set by Disk::Submit; used for latency stats
};

class ScsiController;

// A single disk drive with a FIFO request queue.
class Disk {
 public:
  Disk(EventQueue* queue, ScsiController* controller, DiskParams params, std::string name);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Enqueues a request; it completes asynchronously via request.done.
  void Submit(IoRequest request);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t queue_depth() const { return pending_.size() + (busy_ ? 1 : 0); }
  [[nodiscard]] uint64_t requests_served() const { return requests_served_; }
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }
  [[nodiscard]] const Accumulator& latency_stats() const { return latency_; }

 private:
  friend class ScsiController;

  void StartNext();
  void PositioningDone();
  void TransferDone();

  EventQueue* queue_;
  ScsiController* controller_;
  DiskParams params_;
  std::string name_;

  std::deque<IoRequest> pending_;
  // The single request in the positioning/transfer pipeline (a disk serves one
  // request at a time). Holding it here lets every pipeline event capture just
  // `this` — no request moves through lambdas, no heap-allocated closures.
  IoRequest current_;
  bool busy_ = false;
  int64_t last_block_end_ = -1;  // block just past the last completed request
  SimTime busy_since_ = 0;

  uint64_t requests_served_ = 0;
  SimDuration busy_time_ = 0;
  Accumulator latency_;  // per-request latency, queue wait included (usec)
};

// Serializes the transfer phase of the disks attached to one SCSI bus.
class ScsiController {
 public:
  explicit ScsiController(EventQueue* queue, std::string name)
      : queue_(queue), name_(std::move(name)) {}

  ScsiController(const ScsiController&) = delete;
  ScsiController& operator=(const ScsiController&) = delete;

  // Requests the bus for `duration`; `granted` runs when the bus is acquired,
  // and the bus frees itself `duration` later.
  void AcquireBus(SimDuration duration, InlineCallable granted);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }
  [[nodiscard]] uint64_t transfers() const { return transfers_; }

 private:
  struct Waiter {
    SimDuration duration;
    InlineCallable granted;
  };

  void Grant(Waiter waiter);
  void Release();

  EventQueue* queue_;
  std::string name_;
  bool busy_ = false;
  std::deque<Waiter> waiters_;
  SimDuration busy_time_ = 0;
  uint64_t transfers_ = 0;
};

}  // namespace tmh

#endif  // TMH_SRC_DISK_DISK_H_
