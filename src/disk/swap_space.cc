#include "src/disk/swap_space.h"

#include <cassert>
#include <string>
#include <utility>

namespace tmh {

SwapSpace::SwapSpace(EventQueue* queue, const SwapConfig& config, int64_t page_size_bytes)
    : queue_(queue), page_size_bytes_(page_size_bytes) {
  assert(config.num_disks > 0 && config.disks_per_controller > 0);
  const int num_controllers =
      (config.num_disks + config.disks_per_controller - 1) / config.disks_per_controller;
  controllers_.reserve(static_cast<size_t>(num_controllers));
  for (int c = 0; c < num_controllers; ++c) {
    controllers_.push_back(
        std::make_unique<ScsiController>(queue_, "scsi" + std::to_string(c)));
  }
  disks_.reserve(static_cast<size_t>(config.num_disks));
  for (int d = 0; d < config.num_disks; ++d) {
    ScsiController* controller =
        controllers_[static_cast<size_t>(d / config.disks_per_controller)].get();
    disks_.push_back(std::make_unique<Disk>(queue_, controller, config.disk_params,
                                            "disk" + std::to_string(d)));
  }
}

void SwapSpace::ReadPage(int64_t swap_page, InlineCallable done) {
  ++reads_;
  Submit(swap_page, page_size_bytes_, /*is_write=*/false, std::move(done));
}

void SwapSpace::WritePage(int64_t swap_page, InlineCallable done) {
  ++writes_;
  Submit(swap_page, page_size_bytes_, /*is_write=*/true, std::move(done));
}

void SwapSpace::Submit(int64_t swap_page, int64_t bytes, bool is_write,
                       InlineCallable done) {
  assert(swap_page >= 0);
  const auto n = static_cast<int64_t>(disks_.size());
  Disk& disk = *disks_[static_cast<size_t>(swap_page % n)];
  IoRequest request;
  request.block = swap_page / n;
  request.bytes = bytes;
  request.is_write = is_write;
  request.done = std::move(done);
  disk.Submit(std::move(request));
}

size_t SwapSpace::TotalQueueDepth() const {
  size_t depth = 0;
  for (const auto& d : disks_) {
    depth += d->queue_depth();
  }
  return depth;
}

}  // namespace tmh
