// Kernel invariant checker.
//
// Attaches to a Kernel as its VmChecker and cross-validates the bitmap, the
// frame table, the page tables, and the FreeList against each other — and
// against the VmOracle reference model — while the simulation runs. Per-hook
// the oracle replays and immediately flags semantic divergence (wrong
// allocation order, double free, writeback of a clean frame, a mispublished
// Eq. 1 header); at quiescent points the checker runs a full structural pass
// over the kernel's live state.
//
// The invariants, and what each catches:
//   I-FL    free-list structure: the intrusive links walk exactly size()
//           distinct frames, none mapped, io-busy, or dirty; the order equals
//           the oracle's deque. Catches link corruption and push/pop skew.
//   I-FT    frame table -> page table: every mapped frame's owner PTE is
//           resident and points back at it, and is never io-busy. Catches
//           dangling mappings after reclaims.
//   I-PT    page table -> frame table: every resident PTE's frame is mapped
//           with the matching identity; the per-AS resident_count() equals a
//           recount. Catches leaked/duplicated residency accounting.
//   I-ONE   every frame is exactly one of {free-listed, mapped, io-busy}.
//           Catches frame leaks (limbo frames) and double-ownership.
//   I-BM    residency bitmap (PagingDirected ASes, materialized pages only):
//           bit set iff the page holds an allocated frame — resident and not
//           release-pending, or a page-in is in flight. Catches missed
//           Set/Clear on the fault/release/steal paths.
//   I-RL    rescue links: a non-resident PTE with a frame link points at a
//           frame that still carries this page's identity. Catches stale
//           links that would rescue the wrong contents.
//   I-RQ    release-pending PTEs are resident and queued (kernel release
//           queue or the releaser's gathered-but-unresolved batch). Catches
//           dropped release requests.
//   I-TIER  memory tiering (tiered machines only): each slow tier's frames
//           partition exactly into free pool + occupied identity entries;
//           every occupied tier frame is mirrored by its page's PTE (tier,
//           tier_frame) and vice versa; a tiered page is never resident and
//           keeps no DRAM rescue link. Catches lost or duplicated pages
//           across demote/promote/evict migrations.
//   oracle  residency set, frame assignment, dirty set, and free-list order
//           all equal the reference model's; on tiered machines also each
//           tier's free order, page placement, and carried dirty bits.
//
// The first violation is recorded with the tail of recent VM hook events for
// context, and checking stops (kernel state after a violation is suspect).

#ifndef TMH_SRC_CHECK_INVARIANTS_H_
#define TMH_SRC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/oracle.h"
#include "src/os/vm_hooks.h"

namespace tmh {

class Kernel;

struct CheckOptions {
  // Hook events kept in the ring buffer that is dumped with a violation.
  size_t tail = 32;
  // Replay the hook stream through the VmOracle and compare against it.
  bool with_oracle = true;
  // Run the full structural pass every N mutated quiescent points (per-hook
  // oracle checks still run on every event). 1 = every event; larger values
  // trade detection latency for speed on long soaks.
  uint64_t full_check_period = 1;
  // Self-test: flip one residency-bitmap bit after this many full checks
  // (0 = off). The checker must then report an I-BM violation — used by the
  // fuzz harness to prove the detection and replay machinery works.
  uint64_t inject_bitmap_flip_after = 0;
};

class InvariantChecker : public VmChecker {
 public:
  // Attaches to `kernel` (Kernel::AttachChecker) and seeds the oracle from
  // its current state. Detaches on destruction.
  explicit InvariantChecker(Kernel& kernel, CheckOptions options = {});
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void OnVmEvent(const VmHookEvent& event) override;
  void OnQuiescent(Kernel& kernel) override;

  // Runs the full structural pass immediately (end-of-run validation, unit
  // tests on hand-corrupted state). Returns ok().
  bool CheckNow(Kernel& kernel);

  [[nodiscard]] bool ok() const { return failure_.empty(); }
  [[nodiscard]] const std::string& failure() const { return failure_; }
  [[nodiscard]] uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] uint64_t events_seen() const { return events_seen_; }
  [[nodiscard]] const VmOracle& oracle() const { return oracle_; }

 private:
  void Fail(SimTime now, const std::string& invariant, const std::string& detail);
  void Validate(Kernel& kernel);
  void MaybeInject(Kernel& kernel);
  [[nodiscard]] std::string TailDump() const;

  Kernel* kernel_;
  CheckOptions options_;
  VmOracle oracle_;

  std::vector<VmHookEvent> tail_;  // ring buffer of the last options_.tail events
  size_t tail_next_ = 0;
  bool tail_wrapped_ = false;

  uint64_t events_seen_ = 0;
  uint64_t checks_run_ = 0;
  uint64_t mutations_since_check_ = 0;
  bool injected_ = false;
  std::string failure_;
};

}  // namespace tmh

#endif  // TMH_SRC_CHECK_INVARIANTS_H_
