// Seeded scenario generation for the differential fuzz harness.
//
// A Scenario is a plain value fully derived from a 64-bit seed: a machine
// configuration (memory size, page size, maxrss, daemon cadence, release
// policy tunables), a multiprogramming mix of workloads at random treatment
// levels, and an optional interactive task. The same seed always produces the
// same scenario, and running a scenario is deterministic, so `tmh_fuzz --seed
// N` replays exactly — including the first invariant violation, if any.
//
// Scenarios stay plain data (not MultiExperimentSpecs) so the shrinker can
// drop apps and flatten features field-by-field, then re-derive the spec.

#ifndef TMH_SRC_CHECK_FUZZ_SCENARIO_H_
#define TMH_SRC_CHECK_FUZZ_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/core/experiment.h"

namespace tmh {

struct ScenarioOptions {
  int max_apps = 3;
  bool allow_interactive = true;
  // Simulation event budget per scenario (keeps one fuzz iteration short).
  uint64_t max_events = 40'000'000;
  // Structural pass cadence handed to the checker (1 = every event).
  uint64_t full_check_period = 16;
};

struct FuzzApp {
  std::string workload;  // registry name (FindWorkload)
  double scale = 0.05;
  AppVersion version = AppVersion::kRelease;
  bool adaptive = false;
  bool oracle = false;
  int release_batch = 64;
  bool drain_newest_first = false;
  int num_prefetch_threads = 1;
};

struct Scenario {
  uint64_t seed = 0;
  int64_t user_memory_mb = 6;
  int64_t page_size_kb = 4;
  // 0 = feature off / machine default.
  int64_t local_partition_divisor = 0;  // partition = frames / divisor
  int64_t notify_threshold = 0;
  int64_t maxrss_divisor = 0;  // maxrss = frames / divisor (tight Eq. 1 clamp)
  SimDuration daemon_period = 0;
  bool release_to_tail = true;
  bool with_interactive = false;
  SimDuration interactive_sleep = kSec;
  std::vector<FuzzApp> apps;
  uint64_t max_events = 40'000'000;
  // Online access monitoring (src/monitor) with randomized cadence/bounds;
  // exercises monitor-issued sampling invalidations and releases under checks.
  bool monitor = false;
  SimDuration monitor_period = 0;
  int64_t monitor_max_regions = 0;
  bool monitor_protect = false;
  // Multi-tenant draws (appended after the monitor draws so enabling them
  // never reshapes pre-existing seeds). num_nodes > 1 shards the frame pool;
  // storm_delay > 0 holds every app but the first until one shared arrival
  // time (a pressure storm); churn_stagger > 0 staggers arrivals so earlier
  // tenants finish and leave residue while later ones are still running.
  int num_nodes = 1;
  SimDuration storm_delay = 0;
  SimDuration churn_stagger = 0;
  // Memory-tiering draws (appended after the multi-tenant draws, same
  // bit-compatibility rule). num_slow_tiers > 0 gives the machine that many
  // slow tiers of tier_frames frames each, turning releases into demotions.
  int num_slow_tiers = 0;
  int64_t tier_frames = 0;
  SimDuration tier_promote_cost = 0;
  SimDuration tier_demote_cost = 0;
};

// Derives the scenario for `seed` (pure function of seed and options).
Scenario MakeScenario(uint64_t seed, const ScenarioOptions& options = {});

// Expands a scenario into a runnable spec (checks not yet enabled; the runner
// sets spec.checks / spec.check_options).
MultiExperimentSpec ToSpec(const Scenario& scenario);

// One-line-per-field human description, for failure reports.
std::string Describe(const Scenario& scenario);

struct ScenarioOutcome {
  bool completed = false;
  bool ok = true;
  std::string failure;      // first invariant violation, empty when ok
  uint64_t checks_run = 0;
  uint64_t sim_events = 0;
  // Stable fingerprint of end-of-run counters: equal digests on two runs of
  // the same scenario demonstrate deterministic replay.
  std::string digest;
};

// Runs the scenario with an InvariantChecker attached.
ScenarioOutcome RunScenario(const Scenario& scenario, const CheckOptions& check_options);
ScenarioOutcome RunScenario(const Scenario& scenario);

}  // namespace tmh

#endif  // TMH_SRC_CHECK_FUZZ_SCENARIO_H_
