#include "src/check/fuzz_scenario.h"

#include <algorithm>
#include <sstream>

#include "src/sim/rng.h"
#include "src/workloads/extra.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

const WorkloadInfo& PickWorkload(Rng& rng) {
  const auto& paper = AllWorkloads();
  const auto& extra = ExtraWorkloads();
  const uint64_t index = rng.NextBelow(paper.size() + extra.size());
  return index < paper.size() ? paper[index] : extra[index - paper.size()];
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;  // FNV-1a step
  return h;
}

}  // namespace

Scenario MakeScenario(uint64_t seed, const ScenarioOptions& options) {
  // Decorrelate adjacent seeds while keeping the map seed -> scenario pure.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  Scenario s;
  s.seed = seed;
  s.max_events = options.max_events;
  s.user_memory_mb = rng.NextInRange(5, 10);
  s.page_size_kb = rng.NextBelow(4) == 0 ? 8 : 4;
  if (rng.NextBelow(4) == 0) {
    s.local_partition_divisor = rng.NextInRange(2, 4);
  }
  if (rng.NextBelow(3) == 0) {
    s.notify_threshold = 16;
  }
  if (rng.NextBelow(4) == 0) {
    // Tight maxrss exercises Eq. 1's clamp and the over-maxrss daemon path.
    s.maxrss_divisor = rng.NextInRange(2, 4);
  }
  if (rng.NextBelow(3) == 0) {
    s.daemon_period = rng.NextInRange(20, 80) * kMsec;
  }
  s.release_to_tail = rng.NextBelow(3) != 0;
  s.with_interactive = options.allow_interactive && rng.NextBelow(2) == 0;
  s.interactive_sleep = rng.NextInRange(1, 4) * kSec;

  const int num_apps =
      1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(options.max_apps)));
  const AppVersion versions[] = {AppVersion::kOriginal, AppVersion::kPrefetch,
                                 AppVersion::kRelease, AppVersion::kBuffered,
                                 AppVersion::kReactive};
  for (int i = 0; i < num_apps; ++i) {
    FuzzApp app;
    app.workload = PickWorkload(rng).name;
    app.scale = 0.03 + rng.NextDouble() * 0.05;
    app.version = versions[rng.NextBelow(5)];
    app.adaptive = rng.NextBelow(3) == 0;
    app.oracle = rng.NextBelow(4) == 0;
    app.release_batch = static_cast<int>(10 + rng.NextBelow(200));
    app.drain_newest_first = rng.NextBelow(2) == 0;
    app.num_prefetch_threads = static_cast<int>(1 + rng.NextBelow(8));
    s.apps.push_back(std::move(app));
  }
  // Drawn last so enabling the monitor never reshapes the machine/app draws of
  // pre-existing seeds.
  if (rng.NextBelow(3) == 0) {
    s.monitor = true;
    s.monitor_period = rng.NextInRange(5, 40) * kMsec;
    s.monitor_max_regions = rng.NextInRange(16, 128);
    s.monitor_protect = rng.NextBelow(2) == 0;
  }
  // Multi-tenant draws, appended after every pre-existing draw (see the
  // Scenario comment): sharded frame pools and tenant arrival timing.
  if (rng.NextBelow(3) == 0) {
    s.num_nodes = static_cast<int>(2 + rng.NextBelow(7));  // 2..8 nodes
  }
  if (rng.NextBelow(4) == 0) {
    s.storm_delay = rng.NextInRange(50, 400) * kMsec;
  } else if (rng.NextBelow(3) == 0) {
    s.churn_stagger = rng.NextInRange(100, 800) * kMsec;
  }
  // Memory-tiering draws, appended after every pre-existing draw so old seeds
  // keep their exact scenarios. Small tiers thrash on purpose: capacity
  // eviction cascades and disk fallout are the interesting paths.
  if (rng.NextBelow(3) == 0) {
    s.num_slow_tiers = static_cast<int>(1 + rng.NextBelow(2));  // 1 or 2
    s.tier_frames = rng.NextInRange(32, 256);
    s.tier_promote_cost = rng.NextInRange(5, 50) * kUsec;
    s.tier_demote_cost = rng.NextInRange(5, 50) * kUsec;
  }
  return s;
}

MultiExperimentSpec ToSpec(const Scenario& scenario) {
  MultiExperimentSpec spec;
  spec.machine.user_memory_bytes = scenario.user_memory_mb * 1024 * 1024;
  spec.machine.page_size_bytes = scenario.page_size_kb * 1024;
  spec.machine.num_nodes = scenario.num_nodes;
  if (scenario.local_partition_divisor > 0) {
    spec.machine.tunables.local_partition_pages =
        spec.machine.num_frames() / scenario.local_partition_divisor;
  }
  if (scenario.notify_threshold > 0) {
    spec.machine.tunables.shared_header_notify_threshold = scenario.notify_threshold;
  }
  if (scenario.maxrss_divisor > 0) {
    spec.machine.tunables.maxrss_pages =
        spec.machine.num_frames() / scenario.maxrss_divisor;
  }
  if (scenario.daemon_period > 0) {
    spec.machine.tunables.daemon_period = scenario.daemon_period;
  }
  spec.machine.tunables.release_to_tail = scenario.release_to_tail;
  if (scenario.num_slow_tiers > 0) {
    spec.machine.tiers.push_back(TierSpec{});  // tiers[0] = DRAM
    for (int t = 0; t < scenario.num_slow_tiers; ++t) {
      TierSpec tier;
      tier.frames = scenario.tier_frames;
      tier.promote_cost = scenario.tier_promote_cost;
      tier.demote_cost = scenario.tier_demote_cost;
      spec.machine.tiers.push_back(tier);
    }
  }
  spec.with_interactive = scenario.with_interactive;
  spec.interactive.sleep_time = scenario.interactive_sleep;
  spec.max_events = scenario.max_events;
  for (const FuzzApp& app : scenario.apps) {
    const WorkloadInfo* info = FindWorkload(app.workload);
    if (info == nullptr) {
      continue;  // shrunk scenario naming a removed workload: skip
    }
    MultiAppSpec multi;
    multi.workload = info->factory(app.scale);
    multi.version = app.version;
    multi.adaptive = app.adaptive;
    multi.oracle = app.oracle;
    multi.runtime.release_batch = app.release_batch;
    multi.runtime.drain_newest_first = app.drain_newest_first;
    multi.runtime.num_prefetch_threads = app.num_prefetch_threads;
    // Tenant arrival timing: a storm delays every app but the first to one
    // shared instant; churn staggers arrivals app-by-app.
    const auto index = static_cast<int64_t>(spec.apps.size());
    if (scenario.storm_delay > 0 && index > 0) {
      multi.start_delay = scenario.storm_delay;
    } else if (scenario.churn_stagger > 0) {
      multi.start_delay = index * scenario.churn_stagger;
    }
    spec.apps.push_back(std::move(multi));
  }
  if (scenario.monitor) {
    spec.monitor = true;
    spec.monitor_config.sample_period = scenario.monitor_period;
    spec.monitor_config.max_regions = scenario.monitor_max_regions;
    spec.monitor_config.min_regions =
        std::min<int64_t>(MonitorConfig{}.min_regions, scenario.monitor_max_regions);
    spec.monitor_config.protect_hot = scenario.monitor_protect;
    spec.monitor_config.seed = scenario.seed;
  }
  return spec;
}

std::string Describe(const Scenario& scenario) {
  std::ostringstream os;
  os << "scenario seed=" << scenario.seed << "\n"
     << "  machine: memory=" << scenario.user_memory_mb << "MB page="
     << scenario.page_size_kb << "KB release_to_tail="
     << (scenario.release_to_tail ? "yes" : "no");
  if (scenario.local_partition_divisor > 0) {
    os << " local_partition=frames/" << scenario.local_partition_divisor;
  }
  if (scenario.notify_threshold > 0) {
    os << " notify_threshold=" << scenario.notify_threshold;
  }
  if (scenario.maxrss_divisor > 0) {
    os << " maxrss=frames/" << scenario.maxrss_divisor;
  }
  if (scenario.daemon_period > 0) {
    os << " daemon_period=" << scenario.daemon_period / kMsec << "ms";
  }
  if (scenario.num_nodes > 1) {
    os << " nodes=" << scenario.num_nodes;
  }
  if (scenario.storm_delay > 0) {
    os << " storm_delay=" << scenario.storm_delay / kMsec << "ms";
  }
  if (scenario.churn_stagger > 0) {
    os << " churn_stagger=" << scenario.churn_stagger / kMsec << "ms";
  }
  if (scenario.num_slow_tiers > 0) {
    os << " tiers=" << scenario.num_slow_tiers << "x" << scenario.tier_frames
       << "f promote=" << scenario.tier_promote_cost / kUsec
       << "us demote=" << scenario.tier_demote_cost / kUsec << "us";
  }
  os << "\n  interactive: "
     << (scenario.with_interactive
             ? "sleep=" + std::to_string(scenario.interactive_sleep / kSec) + "s"
             : "off");
  if (scenario.monitor) {
    os << "\n  monitor: period=" << scenario.monitor_period / kMsec
       << "ms max_regions=" << scenario.monitor_max_regions
       << (scenario.monitor_protect ? " protect_hot" : "");
  }
  for (const FuzzApp& app : scenario.apps) {
    os << "\n  app: " << app.workload << " version=" << VersionLabel(app.version)
       << " scale=" << app.scale << (app.adaptive ? " adaptive" : "")
       << (app.oracle ? " oracle" : "") << " release_batch=" << app.release_batch
       << (app.drain_newest_first ? " drain_newest_first" : "")
       << " prefetch_threads=" << app.num_prefetch_threads;
  }
  return os.str();
}

ScenarioOutcome RunScenario(const Scenario& scenario,
                            const CheckOptions& check_options) {
  MultiExperimentSpec spec = ToSpec(scenario);
  spec.checks = true;
  spec.check_options = check_options;
  const MultiExperimentResult result = RunMultiExperiment(spec);

  ScenarioOutcome outcome;
  outcome.completed = result.completed;
  outcome.failure = result.check_failure;
  outcome.ok = outcome.failure.empty();
  outcome.checks_run = result.checks_run;
  outcome.sim_events = result.sim_events;

  // FNV-1a over the run's end-of-run counters: any behavioral drift between
  // two runs of the same scenario lands in the digest.
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Mix(h, result.completed ? 1 : 0);
  h = Mix(h, result.sim_events);
  h = Mix(h, result.swap_reads);
  h = Mix(h, result.swap_writes);
  const KernelStats& k = result.kernel;
  h = Mix(h, k.allocations);
  h = Mix(h, k.zero_fills);
  h = Mix(h, k.writebacks);
  h = Mix(h, k.hard_faults);
  h = Mix(h, k.soft_faults);
  h = Mix(h, k.daemon_pages_stolen);
  h = Mix(h, k.daemon_invalidations);
  h = Mix(h, k.releaser_pages_freed);
  h = Mix(h, k.releaser_skipped);
  h = Mix(h, k.rescued_daemon_freed);
  h = Mix(h, k.rescued_release_freed);
  h = Mix(h, k.prefetch_io);
  h = Mix(h, k.prefetch_dropped);
  h = Mix(h, k.release_pages_enqueued);
  h = Mix(h, k.memory_waits);
  h = Mix(h, k.monitor_invalidations);
  h = Mix(h, k.monitor_soft_faults);
  h = Mix(h, k.monitor_releases_enqueued);
  h = Mix(h, k.monitor_pages_protected);
  h = Mix(h, k.tier_demotions);
  h = Mix(h, k.tier_promotions);
  h = Mix(h, k.tier_evictions);
  h = Mix(h, k.tier_writebacks);
  for (const AppMetrics& app : result.apps) {
    h = Mix(h, static_cast<uint64_t>(app.wall));
    h = Mix(h, app.faults.hard_faults);
    h = Mix(h, static_cast<uint64_t>(app.times.user));
  }
  std::ostringstream os;
  os << std::hex << h;
  outcome.digest = os.str();
  return outcome;
}

ScenarioOutcome RunScenario(const Scenario& scenario) {
  CheckOptions options;
  options.full_check_period = ScenarioOptions{}.full_check_period;
  return RunScenario(scenario, options);
}

}  // namespace tmh
