#include "src/check/invariants.h"

#include <algorithm>
#include <sstream>

#include "src/os/kernel.h"
#include "src/os/releaser.h"

namespace tmh {
namespace {

// True when a page-in is in flight for (as, vpage) on its linked frame: the
// frame carries the page's identity, is mid-I/O, and does not yet hold valid
// contents (a writeback in flight has contents_valid == true).
bool PageInInFlight(const Frame& fr, AsId as, VPage vpage) {
  return fr.owner == as && fr.vpage == vpage && fr.io_busy && !fr.mapped &&
         !fr.contents_valid;
}

}  // namespace

InvariantChecker::InvariantChecker(Kernel& kernel, CheckOptions options)
    : kernel_(&kernel), options_(options) {
  if (options_.tail > 0) {
    tail_.resize(options_.tail);
  }
  if (options_.full_check_period == 0) {
    options_.full_check_period = 1;
  }
  oracle_.SeedFromKernel(kernel);
  kernel.AttachChecker(this);
}

InvariantChecker::~InvariantChecker() { kernel_->AttachChecker(nullptr); }

void InvariantChecker::OnVmEvent(const VmHookEvent& event) {
  if (!tail_.empty()) {
    tail_[tail_next_] = event;
    tail_next_ = (tail_next_ + 1) % tail_.size();
    tail_wrapped_ = tail_wrapped_ || tail_next_ == 0;
  }
  ++events_seen_;
  ++mutations_since_check_;
  if (!failure_.empty() || !options_.with_oracle) {
    return;
  }
  oracle_.Apply(event);
  if (!oracle_.ok()) {
    Fail(event.when, "oracle", oracle_.failure());
  }
}

void InvariantChecker::OnQuiescent(Kernel& kernel) {
  if (!failure_.empty() || mutations_since_check_ < options_.full_check_period) {
    return;
  }
  mutations_since_check_ = 0;
  ++checks_run_;
  MaybeInject(kernel);
  Validate(kernel);
}

bool InvariantChecker::CheckNow(Kernel& kernel) {
  if (failure_.empty()) {
    mutations_since_check_ = 0;
    ++checks_run_;
    Validate(kernel);
  }
  return ok();
}

void InvariantChecker::MaybeInject(Kernel& kernel) {
  if (injected_ || options_.inject_bitmap_flip_after == 0 ||
      checks_run_ < options_.inject_bitmap_flip_after) {
    return;
  }
  // Flip the bit of the first materialized page of the first PagingDirected
  // address space. I-BM fully determines the bit for materialized pages, so
  // either flip direction is a detectable corruption.
  for (const auto& as : kernel.address_spaces()) {
    if (!as->HasPagingDirected()) {
      continue;
    }
    for (VPage v = 0; v < as->num_pages(); ++v) {
      if (!as->page_table().at(v).ever_materialized) {
        continue;
      }
      if (as->bitmap()->Test(v)) {
        as->bitmap()->Clear(v);
      } else {
        as->bitmap()->Set(v);
      }
      injected_ = true;
      return;
    }
  }
}

void InvariantChecker::Fail(SimTime now, const std::string& invariant,
                            const std::string& detail) {
  if (!failure_.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invariant " << invariant << " violated at t=" << now << "ns: " << detail
     << "\n  after " << events_seen_ << " VM events, " << checks_run_
     << " full checks" << TailDump();
  failure_ = os.str();
}

std::string InvariantChecker::TailDump() const {
  if (tail_.empty() || (!tail_wrapped_ && tail_next_ == 0)) {
    return "";
  }
  std::ostringstream os;
  os << "\n  recent VM events (oldest first):";
  const size_t count = tail_wrapped_ ? tail_.size() : tail_next_;
  const size_t start = tail_wrapped_ ? tail_next_ : 0;
  for (size_t i = 0; i < count; ++i) {
    const VmHookEvent& e = tail_[(start + i) % tail_.size()];
    os << "\n    t=" << e.when << " " << VmHookOpName(e.op) << " as=" << e.as
       << " vpage=" << e.vpage << " frame=" << e.frame << " a=" << e.a << " b=" << e.b;
  }
  return os.str();
}

void InvariantChecker::Validate(Kernel& kernel) {
  const SimTime now = kernel.Now();
  const FrameTable& frames = kernel.frames();
  const FramePool& free_list = kernel.free_list();
  const int64_t num_frames = frames.size();

  // I-FL: walk the intrusive links of every node's list into one snapshot
  // (node order) and check its structure, plus per-node range containment —
  // a shard must only ever hold frames from its own contiguous range.
  const std::vector<FrameId> free_vec = free_list.ToVector();
  if (static_cast<int64_t>(free_vec.size()) != free_list.size()) {
    Fail(now, "I-FL",
         "free-list link walk found " + std::to_string(free_vec.size()) +
             " frames but size() is " + std::to_string(free_list.size()));
    return;
  }
  std::vector<char> on_free(static_cast<size_t>(num_frames), 0);
  for (const FrameId f : free_vec) {
    if (f < 0 || f >= num_frames) {
      Fail(now, "I-FL", "free list contains out-of-range frame " + std::to_string(f));
      return;
    }
    if (on_free[static_cast<size_t>(f)] != 0) {
      Fail(now, "I-FL", "free list contains frame " + std::to_string(f) + " twice");
      return;
    }
    on_free[static_cast<size_t>(f)] = 1;
    const Frame& fr = frames.at(f);
    if (fr.mapped || fr.io_busy || fr.dirty) {
      Fail(now, "I-FL",
           "free frame " + std::to_string(f) + " is " +
               (fr.mapped ? "mapped" : fr.io_busy ? "io-busy" : "dirty"));
      return;
    }
  }
  for (int node = 0; node < free_list.num_nodes(); ++node) {
    int64_t walked = 0;
    for (const FrameId f : free_list.NodeToVector(node)) {
      ++walked;
      if (free_list.NodeOf(f) != node) {
        Fail(now, "I-FL",
             "node " + std::to_string(node) + " free list holds frame " +
                 std::to_string(f) + " owned by node " +
                 std::to_string(free_list.NodeOf(f)));
        return;
      }
    }
    if (walked != free_list.node_size(node)) {
      Fail(now, "I-FL",
           "node " + std::to_string(node) + " link walk found " +
               std::to_string(walked) + " frames but node_size() is " +
               std::to_string(free_list.node_size(node)));
      return;
    }
  }

  // I-FT + I-ONE over the frame table.
  const auto& address_spaces = kernel.address_spaces();
  for (FrameId f = 0; f < num_frames; ++f) {
    const Frame& fr = frames.at(f);
    if (fr.mapped) {
      if (fr.owner < 0 || static_cast<size_t>(fr.owner) >= address_spaces.size()) {
        Fail(now, "I-FT",
             "mapped frame " + std::to_string(f) + " has invalid owner " +
                 std::to_string(fr.owner));
        return;
      }
      const AddressSpace& as = *address_spaces[static_cast<size_t>(fr.owner)];
      if (fr.vpage < 0 || fr.vpage >= as.num_pages()) {
        Fail(now, "I-FT",
             "mapped frame " + std::to_string(f) + " has out-of-range vpage " +
                 std::to_string(fr.vpage));
        return;
      }
      const Pte& pte = as.page_table().at(fr.vpage);
      if (!pte.resident || pte.frame != f) {
        Fail(now, "I-FT",
             "mapped frame " + std::to_string(f) + " (as=" + std::to_string(fr.owner) +
                 " vpage=" + std::to_string(fr.vpage) + ") not reflected in the PTE");
        return;
      }
      if (fr.io_busy) {
        Fail(now, "I-ONE", "frame " + std::to_string(f) + " is mapped while io-busy");
        return;
      }
    } else if (on_free[static_cast<size_t>(f)] == 0 && !fr.io_busy) {
      Fail(now, "I-ONE",
           "frame " + std::to_string(f) +
               " is in limbo: not mapped, not free-listed, not io-busy");
      return;
    }
  }

  // I-PT, I-RL, I-RQ, I-BM over each address space.
  for (const auto& as_ptr : address_spaces) {
    const AddressSpace& as = *as_ptr;
    const PageTable& pt = as.page_table();
    int64_t resident = 0;
    for (VPage v = 0; v < as.num_pages(); ++v) {
      const Pte& pte = pt.at(v);
      if (pte.resident) {
        ++resident;
        if (pte.frame < 0 || pte.frame >= num_frames) {
          Fail(now, "I-PT",
               "resident page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " has invalid frame " + std::to_string(pte.frame));
          return;
        }
        const Frame& fr = frames.at(pte.frame);
        if (!fr.mapped || fr.owner != as.id() || fr.vpage != v) {
          Fail(now, "I-PT",
               "resident page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " frame=" + std::to_string(pte.frame) +
                   " does not carry the page's identity");
          return;
        }
        if (!pte.ever_materialized) {
          Fail(now, "I-PT",
               "resident page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " was never materialized");
          return;
        }
        if (pte.valid && pte.invalid_reason != InvalidReason::kNone) {
          Fail(now, "I-PT",
               "valid page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " carries an invalid_reason");
          return;
        }
      } else {
        if (pte.valid) {
          Fail(now, "I-PT",
               "non-resident page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " is marked valid");
          return;
        }
        if (pte.frame != kNoFrame) {
          // I-RL: a dangling link must still name a frame with this identity
          // (AllocateFrame breaks the link before reassigning the frame).
          if (pte.frame < 0 || pte.frame >= num_frames) {
            Fail(now, "I-RL",
                 "rescue link as=" + std::to_string(as.id()) + " vpage=" +
                     std::to_string(v) + " names invalid frame " +
                     std::to_string(pte.frame));
            return;
          }
          const Frame& fr = frames.at(pte.frame);
          if (fr.owner != as.id() || fr.vpage != v) {
            Fail(now, "I-RL",
                 "rescue link as=" + std::to_string(as.id()) + " vpage=" +
                     std::to_string(v) + " frame=" + std::to_string(pte.frame) +
                     " points at a frame now owned by as=" + std::to_string(fr.owner) +
                     " vpage=" + std::to_string(fr.vpage));
            return;
          }
        }
      }
      if (pte.tier != 0) {
        // I-TIER (page side): a tiered page is never resident, keeps no DRAM
        // rescue link, and its tier frame must carry the page's identity.
        const auto& planes = kernel.tier_planes();
        if (static_cast<size_t>(pte.tier) > planes.size()) {
          Fail(now, "I-TIER",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " names slow tier " + std::to_string(pte.tier) +
                   " but the machine has " + std::to_string(planes.size()));
          return;
        }
        if (pte.resident) {
          Fail(now, "I-TIER",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " is resident while demoted to tier " + std::to_string(pte.tier));
          return;
        }
        if (pte.frame != kNoFrame) {
          Fail(now, "I-TIER",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " keeps DRAM rescue link " + std::to_string(pte.frame) +
                   " while demoted");
          return;
        }
        const Kernel::TierPlane& plane = planes[static_cast<size_t>(pte.tier - 1)];
        if (pte.tier_frame < 0 || pte.tier_frame >= plane.frames) {
          Fail(now, "I-TIER",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " names out-of-range tier frame " + std::to_string(pte.tier_frame));
          return;
        }
        const size_t ti = static_cast<size_t>(pte.tier_frame);
        if (plane.owner[ti] != as.id() || plane.vpage[ti] != v) {
          Fail(now, "I-TIER",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " tier frame " + std::to_string(pte.tier_frame) +
                   " does not carry the page's identity");
          return;
        }
      }
      if (pte.invalid_reason == InvalidReason::kReleasePending) {
        if (!pte.resident) {
          Fail(now, "I-RQ",
               "release-pending page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) + " is not resident");
          return;
        }
        bool queued = false;
        for (const Kernel::ReleaseWorkItem& item : kernel.release_work()) {
          if (item.as == &as && item.vpage == v) {
            queued = true;
            break;
          }
        }
        if (!queued && kernel.has_daemons() &&
            kernel.releaser().batch_as() == &as) {
          for (const VPage b : kernel.releaser().UnresolvedBatch()) {
            if (b == v) {
              queued = true;
              break;
            }
          }
        }
        if (!queued) {
          Fail(now, "I-RQ",
               "release-pending page as=" + std::to_string(as.id()) + " vpage=" +
                   std::to_string(v) +
                   " is neither queued nor in the releaser's unresolved batch");
          return;
        }
      }
    }
    if (resident != pt.resident_count()) {
      Fail(now, "I-PT",
           "as=" + std::to_string(as.id()) + " resident_count() is " +
               std::to_string(pt.resident_count()) + " but recount found " +
               std::to_string(resident));
      return;
    }

    if (as.HasPagingDirected()) {
      // I-BM, for materialized pages only: never-touched pages keep whatever
      // AttachPagingDirected left (bits outside the attached range are set).
      // Assumes attachment precedes materialization, as the runtime layer
      // guarantees.
      const ResidencyBitmap& bm = *as.bitmap();
      for (VPage v = 0; v < as.num_pages(); ++v) {
        const Pte& pte = pt.at(v);
        if (!pte.ever_materialized) {
          continue;
        }
        bool expect_set = false;
        if (pte.resident) {
          expect_set = pte.invalid_reason != InvalidReason::kReleasePending;
        } else if (pte.frame != kNoFrame) {
          expect_set = PageInInFlight(frames.at(pte.frame), as.id(), v);
        }
        if (bm.Test(v) != expect_set) {
          Fail(now, "I-BM",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " bitmap bit is " + (bm.Test(v) ? "set" : "clear") +
                   " but the page state requires " + (expect_set ? "set" : "clear"));
          return;
        }
      }
    }
  }

  // I-TIER (plane side): each slow tier partitions its frames between the
  // free pool and occupied identity entries, with every occupied entry
  // mirrored by the owning page's PTE (the page-side pass above checked the
  // other direction).
  for (size_t pi = 0; pi < kernel.tier_planes().size(); ++pi) {
    const Kernel::TierPlane& plane = kernel.tier_planes()[pi];
    const std::string tname = "tier " + std::to_string(pi + 1);
    int64_t occupied = 0;
    for (FrameId tf = 0; tf < plane.frames; ++tf) {
      const size_t i = static_cast<size_t>(tf);
      if (plane.owner[i] == kNoAs) {
        if (!plane.pool->Contains(tf)) {
          Fail(now, "I-TIER",
               tname + " frame " + std::to_string(tf) +
                   " is in limbo: unowned but not on the free pool");
          return;
        }
        continue;
      }
      ++occupied;
      if (plane.pool->Contains(tf)) {
        Fail(now, "I-TIER",
             tname + " frame " + std::to_string(tf) +
                 " is occupied yet on the free pool");
        return;
      }
      if (plane.owner[i] < 0 ||
          static_cast<size_t>(plane.owner[i]) >= address_spaces.size()) {
        Fail(now, "I-TIER",
             tname + " frame " + std::to_string(tf) + " has invalid owner " +
                 std::to_string(plane.owner[i]));
        return;
      }
      const AddressSpace& as = *address_spaces[static_cast<size_t>(plane.owner[i])];
      if (plane.vpage[i] < 0 || plane.vpage[i] >= as.num_pages()) {
        Fail(now, "I-TIER",
             tname + " frame " + std::to_string(tf) + " has out-of-range vpage " +
                 std::to_string(plane.vpage[i]));
        return;
      }
      const Pte& pte = as.page_table().at(plane.vpage[i]);
      if (pte.tier != static_cast<uint8_t>(pi + 1) || pte.tier_frame != tf) {
        Fail(now, "I-TIER",
             tname + " frame " + std::to_string(tf) + " (as=" +
                 std::to_string(plane.owner[i]) + " vpage=" +
                 std::to_string(plane.vpage[i]) + ") not reflected in the PTE");
        return;
      }
    }
    if (occupied + plane.pool->size() != plane.frames) {
      Fail(now, "I-TIER",
           tname + " frames leak: " + std::to_string(occupied) + " occupied + " +
               std::to_string(plane.pool->size()) + " pooled != " +
               std::to_string(plane.frames));
      return;
    }
  }

  // Oracle cross-validation: the reference model must agree exactly,
  // node by node (byte-honest per node).
  if (options_.with_oracle) {
    if (oracle_.num_nodes() != free_list.num_nodes()) {
      Fail(now, "oracle", "node count differs from the reference model");
      return;
    }
    for (int node = 0; node < free_list.num_nodes(); ++node) {
      const std::deque<FrameId>& ofree = oracle_.free_node(node);
      const std::vector<FrameId> kfree = free_list.NodeToVector(node);
      if (ofree.size() != kfree.size() ||
          !std::equal(ofree.begin(), ofree.end(), kfree.begin())) {
        Fail(now, "oracle",
             "node " + std::to_string(node) +
                 " free-list order differs from the reference model");
        return;
      }
    }
    for (const auto& as_ptr : address_spaces) {
      const AddressSpace& as = *as_ptr;
      if (oracle_.ResidentCount(as.id()) != as.page_table().resident_count()) {
        Fail(now, "oracle",
             "as=" + std::to_string(as.id()) + " resident count " +
                 std::to_string(as.page_table().resident_count()) +
                 " differs from the model's " +
                 std::to_string(oracle_.ResidentCount(as.id())));
        return;
      }
      for (VPage v = 0; v < as.num_pages(); ++v) {
        const Pte& pte = as.page_table().at(v);
        const FrameId model = oracle_.FrameOf(as.id(), v);
        const FrameId actual = pte.resident ? pte.frame : kNoFrame;
        if (model != actual) {
          Fail(now, "oracle",
               "as=" + std::to_string(as.id()) + " vpage=" + std::to_string(v) +
                   " kernel frame " + std::to_string(actual) + " != model frame " +
                   std::to_string(model));
          return;
        }
      }
    }
    for (FrameId f = 0; f < num_frames; ++f) {
      const bool kernel_dirty = frames.at(f).dirty;
      const bool model_dirty = oracle_.dirty().count(f) != 0;
      if (kernel_dirty != model_dirty) {
        Fail(now, "oracle",
             "frame " + std::to_string(f) + " dirty bit is " +
                 (kernel_dirty ? "set" : "clear") + " but the model has it " +
                 (model_dirty ? "set" : "clear"));
        return;
      }
    }
    // Tier cross-validation: per-tier free-list order, occupied page sets,
    // and carried dirty bits must match the model exactly.
    if (oracle_.num_slow_tiers() !=
        static_cast<int>(kernel.tier_planes().size())) {
      Fail(now, "oracle", "slow-tier count differs from the reference model");
      return;
    }
    for (size_t pi = 0; pi < kernel.tier_planes().size(); ++pi) {
      const Kernel::TierPlane& plane = kernel.tier_planes()[pi];
      const VmOracle::TierModel& model = oracle_.tier(static_cast<int>(pi));
      const std::string tname = "tier " + std::to_string(pi + 1);
      const std::vector<FrameId> kfree = plane.pool->NodeToVector(0);
      if (model.free.size() != kfree.size() ||
          !std::equal(model.free.begin(), model.free.end(), kfree.begin())) {
        Fail(now, "oracle",
             tname + " free-list order differs from the reference model");
        return;
      }
      int64_t occupied = 0;
      for (FrameId tf = 0; tf < plane.frames; ++tf) {
        const size_t i = static_cast<size_t>(tf);
        if (plane.owner[i] == kNoAs) {
          continue;
        }
        ++occupied;
        const auto it = model.pages.find({plane.owner[i], plane.vpage[i]});
        if (it == model.pages.end() || it->second.tf != tf) {
          Fail(now, "oracle",
               tname + " frame " + std::to_string(tf) + " (as=" +
                   std::to_string(plane.owner[i]) + " vpage=" +
                   std::to_string(plane.vpage[i]) +
                   ") is not where the reference model has it");
          return;
        }
        if (it->second.dirty != (plane.dirty[i] != 0)) {
          Fail(now, "oracle",
               tname + " frame " + std::to_string(tf) +
                   " carried dirty bit differs from the reference model");
          return;
        }
      }
      if (occupied != static_cast<int64_t>(model.pages.size())) {
        Fail(now, "oracle",
             tname + " occupancy " + std::to_string(occupied) +
                 " differs from the model's " + std::to_string(model.pages.size()));
        return;
      }
    }
  }
}

}  // namespace tmh
