#include "src/check/oracle.h"

#include <algorithm>
#include <sstream>

#include "src/os/kernel.h"

namespace tmh {

void VmOracle::SeedFromKernel(const Kernel& kernel) {
  free_.clear();
  resident_.clear();
  mapped_.clear();
  dirty_.clear();
  writeback_.clear();
  // Re-derive the sharded pool's shape, then snapshot each node's list.
  const FramePool& pool = kernel.free_list();
  frames_per_node_ = pool.frames_per_node();
  free_.resize(static_cast<size_t>(pool.num_nodes()));
  total_free_ = 0;
  for (int node = 0; node < pool.num_nodes(); ++node) {
    const std::vector<FrameId> fl = pool.NodeToVector(node);
    free_[static_cast<size_t>(node)].assign(fl.begin(), fl.end());
    total_free_ += static_cast<int64_t>(fl.size());
  }
  for (const auto& as : kernel.address_spaces()) {
    std::map<VPage, FrameId>& pages = resident_[as->id()];
    for (VPage v = 0; v < as->num_pages(); ++v) {
      const Pte& pte = as->page_table().at(v);
      if (pte.resident) {
        pages[v] = pte.frame;
        mapped_[pte.frame] = {as->id(), v};
      }
    }
  }
  for (FrameId f = 0; f < static_cast<FrameId>(kernel.frames().size()); ++f) {
    const Frame& fr = kernel.frames().at(f);
    if (fr.dirty) {
      dirty_.insert(f);
      if (fr.io_busy) {
        writeback_.insert(f);
      }
    }
  }
  maxrss_pages_ = kernel.config().tunables.maxrss_pages;
  min_freemem_pages_ = kernel.config().tunables.min_freemem_pages;
}

bool VmOracle::IsResident(AsId as, VPage vpage) const {
  const auto it = resident_.find(as);
  return it != resident_.end() && it->second.count(vpage) != 0;
}

FrameId VmOracle::FrameOf(AsId as, VPage vpage) const {
  const auto it = resident_.find(as);
  if (it == resident_.end()) {
    return kNoFrame;
  }
  const auto page = it->second.find(vpage);
  return page == it->second.end() ? kNoFrame : page->second;
}

int64_t VmOracle::ResidentCount(AsId as) const {
  const auto it = resident_.find(as);
  return it == resident_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

int64_t VmOracle::UpperLimit(AsId as) const {
  // Eq. 1 sees total free memory: shards partition the pool, they do not
  // change how much of it is free.
  const int64_t upper =
      std::min(maxrss_pages_, ResidentCount(as) + total_free_ - min_freemem_pages_);
  return std::max<int64_t>(upper, 0);
}

bool VmOracle::InFreeList(FrameId f) const {
  // A frame can only ever be on its owning node's list.
  const std::deque<FrameId>& node = free_[static_cast<size_t>(NodeOf(f))];
  return std::find(node.begin(), node.end(), f) != node.end();
}

void VmOracle::Diverge(const VmHookEvent& event, const std::string& what) {
  if (!failure_.empty()) {
    return;
  }
  std::ostringstream os;
  os << "oracle divergence on " << VmHookOpName(event.op) << " (as=" << event.as
     << " vpage=" << event.vpage << " frame=" << event.frame << " a=" << event.a
     << " b=" << event.b << " t=" << event.when << "): " << what;
  failure_ = os.str();
}

void VmOracle::Apply(const VmHookEvent& event) {
  if (!failure_.empty()) {
    return;
  }
  switch (event.op) {
    case VmHookOp::kAlloc: {
      if (total_free_ == 0) {
        Diverge(event, "allocation from an empty free list");
        return;
      }
      // The pool must serve the faulting process's home node (as % nodes),
      // falling back to the nearest non-empty node in ascending wrap order.
      const int nodes = num_nodes();
      const int home = static_cast<int>(event.as % nodes);
      int node = home;
      while (free_[static_cast<size_t>(node)].empty()) {
        node = (node + 1) % nodes;
      }
      std::deque<FrameId>& list = free_[static_cast<size_t>(node)];
      if (list.front() != event.frame) {
        Diverge(event, "allocation did not pop the free-list head of node " +
                           std::to_string(node) + " (model head=" +
                           std::to_string(list.front()) + ")");
        return;
      }
      if (dirty_.count(event.frame) != 0) {
        Diverge(event, "allocated frame is dirty in the model");
        return;
      }
      list.pop_front();
      --total_free_;
      break;
    }
    case VmHookOp::kMap: {
      if (resident_[event.as].count(event.vpage) != 0) {
        Diverge(event, "mapping an already-resident page");
        return;
      }
      if (InFreeList(event.frame)) {
        Diverge(event, "mapping a frame still on the free list");
        return;
      }
      if (const auto it = mapped_.find(event.frame); it != mapped_.end()) {
        Diverge(event, "frame already mapped by as=" + std::to_string(it->second.first));
        return;
      }
      resident_[event.as][event.vpage] = event.frame;
      mapped_[event.frame] = {event.as, event.vpage};
      break;
    }
    case VmHookOp::kUnmap: {
      const auto it = resident_.find(event.as);
      if (it == resident_.end() || it->second.count(event.vpage) == 0) {
        Diverge(event, "unmapping a page the model has non-resident");
        return;
      }
      if (it->second[event.vpage] != event.frame) {
        Diverge(event, "unmap frame mismatch (model frame=" +
                           std::to_string(it->second[event.vpage]) + ")");
        return;
      }
      it->second.erase(event.vpage);
      mapped_.erase(event.frame);
      break;
    }
    case VmHookOp::kFreePushHead:
    case VmHookOp::kFreePushTail: {
      if (InFreeList(event.frame)) {
        Diverge(event, "double free: frame already on the model free list");
        return;
      }
      if (const auto it = mapped_.find(event.frame); it != mapped_.end()) {
        Diverge(event,
                "freeing a frame still mapped by as=" + std::to_string(it->second.first));
        return;
      }
      if (dirty_.count(event.frame) != 0) {
        Diverge(event, "freeing a dirty frame without a writeback");
        return;
      }
      // Pushes route to the pushed frame's node — never the freeing
      // process's — so a shard only ever holds its own frame range.
      std::deque<FrameId>& list = free_[static_cast<size_t>(NodeOf(event.frame))];
      if (event.op == VmHookOp::kFreePushHead) {
        list.push_front(event.frame);
      } else {
        list.push_back(event.frame);
      }
      ++total_free_;
      break;
    }
    case VmHookOp::kRescue: {
      std::deque<FrameId>& list = free_[static_cast<size_t>(NodeOf(event.frame))];
      const auto it = std::find(list.begin(), list.end(), event.frame);
      if (it == list.end()) {
        Diverge(event, "rescue of a frame not on the model free list");
        return;
      }
      list.erase(it);
      --total_free_;
      ++rescues_;
      break;
    }
    case VmHookOp::kWritebackBegin: {
      if (dirty_.count(event.frame) == 0) {
        Diverge(event, "writeback of a frame the model has clean");
        return;
      }
      if (writeback_.count(event.frame) != 0) {
        Diverge(event, "duplicate in-flight writeback");
        return;
      }
      writeback_.insert(event.frame);
      ++writebacks_;
      break;
    }
    case VmHookOp::kWritebackEnd: {
      if (writeback_.erase(event.frame) == 0) {
        Diverge(event, "writeback completion without a matching begin");
        return;
      }
      if (dirty_.erase(event.frame) == 0) {
        Diverge(event, "writeback completion on a clean frame");
        return;
      }
      break;
    }
    case VmHookOp::kDirty: {
      if (!dirty_.insert(event.frame).second) {
        Diverge(event, "clean->dirty transition on an already-dirty frame");
        return;
      }
      break;
    }
    case VmHookOp::kValidate:
    case VmHookOp::kInvalidate:
    case VmHookOp::kReleaseSkip:
      break;  // validity is a kernel-side refinement; no structural change
    case VmHookOp::kReleaseEnqueue:
      ++releases_enqueued_;
      break;
    case VmHookOp::kReleaserBatch:
      releaser_freed_ += static_cast<uint64_t>(event.a);
      break;
    case VmHookOp::kDaemonSweep:
      daemon_stolen_ += static_cast<uint64_t>(event.a);
      break;
    case VmHookOp::kHeaderUpdate: {
      // The kernel publishes lazily but always from live state, so at the
      // moment of the hook the model must agree exactly (Eq. 1).
      const int64_t current = ResidentCount(event.as);
      const int64_t upper = UpperLimit(event.as);
      if (event.a != current) {
        Diverge(event, "published current usage != model resident count (" +
                           std::to_string(current) + ")");
        return;
      }
      if (event.b != upper) {
        Diverge(event, "published upper limit != model Eq. 1 value (" +
                           std::to_string(upper) + ")");
        return;
      }
      break;
    }
  }
}

}  // namespace tmh
