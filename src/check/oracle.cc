#include "src/check/oracle.h"

#include <algorithm>
#include <sstream>

#include "src/os/kernel.h"

namespace tmh {

void VmOracle::SeedFromKernel(const Kernel& kernel) {
  free_.clear();
  resident_.clear();
  mapped_.clear();
  dirty_.clear();
  writeback_.clear();
  // Re-derive the sharded pool's shape, then snapshot each node's list.
  const FramePool& pool = kernel.free_list();
  frames_per_node_ = pool.frames_per_node();
  free_.resize(static_cast<size_t>(pool.num_nodes()));
  total_free_ = 0;
  for (int node = 0; node < pool.num_nodes(); ++node) {
    const std::vector<FrameId> fl = pool.NodeToVector(node);
    free_[static_cast<size_t>(node)].assign(fl.begin(), fl.end());
    total_free_ += static_cast<int64_t>(fl.size());
  }
  for (const auto& as : kernel.address_spaces()) {
    std::map<VPage, FrameId>& pages = resident_[as->id()];
    for (VPage v = 0; v < as->num_pages(); ++v) {
      const Pte& pte = as->page_table().at(v);
      if (pte.resident) {
        pages[v] = pte.frame;
        mapped_[pte.frame] = {as->id(), v};
      }
    }
  }
  for (FrameId f = 0; f < static_cast<FrameId>(kernel.frames().size()); ++f) {
    const Frame& fr = kernel.frames().at(f);
    if (fr.dirty) {
      dirty_.insert(f);
      if (fr.io_busy) {
        writeback_.insert(f);
      }
    }
  }
  // Slow tiers (memory-tiering extension): snapshot each plane's free pool in
  // pop order and its occupied-frame identity arrays.
  tiers_.clear();
  for (const Kernel::TierPlane& plane : kernel.tier_planes()) {
    TierModel model;
    const std::vector<FrameId> fl = plane.pool->NodeToVector(0);
    model.free.assign(fl.begin(), fl.end());
    for (FrameId tf = 0; tf < plane.frames; ++tf) {
      const size_t i = static_cast<size_t>(tf);
      if (plane.owner[i] != kNoAs) {
        model.pages[{plane.owner[i], plane.vpage[i]}] =
            TierEntry{tf, plane.dirty[i] != 0};
      }
    }
    tiers_.push_back(std::move(model));
  }
  maxrss_pages_ = kernel.config().tunables.maxrss_pages;
  min_freemem_pages_ = kernel.config().tunables.min_freemem_pages;
}

bool VmOracle::IsResident(AsId as, VPage vpage) const {
  const auto it = resident_.find(as);
  return it != resident_.end() && it->second.count(vpage) != 0;
}

FrameId VmOracle::FrameOf(AsId as, VPage vpage) const {
  const auto it = resident_.find(as);
  if (it == resident_.end()) {
    return kNoFrame;
  }
  const auto page = it->second.find(vpage);
  return page == it->second.end() ? kNoFrame : page->second;
}

int64_t VmOracle::ResidentCount(AsId as) const {
  const auto it = resident_.find(as);
  return it == resident_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

int64_t VmOracle::UpperLimit(AsId as) const {
  // Eq. 1 sees total free memory: shards partition the pool, they do not
  // change how much of it is free.
  const int64_t upper =
      std::min(maxrss_pages_, ResidentCount(as) + total_free_ - min_freemem_pages_);
  return std::max<int64_t>(upper, 0);
}

bool VmOracle::InFreeList(FrameId f) const {
  // A frame can only ever be on its owning node's list.
  const std::deque<FrameId>& node = free_[static_cast<size_t>(NodeOf(f))];
  return std::find(node.begin(), node.end(), f) != node.end();
}

void VmOracle::Diverge(const VmHookEvent& event, const std::string& what) {
  if (!failure_.empty()) {
    return;
  }
  std::ostringstream os;
  os << "oracle divergence on " << VmHookOpName(event.op) << " (as=" << event.as
     << " vpage=" << event.vpage << " frame=" << event.frame << " a=" << event.a
     << " b=" << event.b << " t=" << event.when << "): " << what;
  failure_ = os.str();
}

void VmOracle::Apply(const VmHookEvent& event) {
  if (!failure_.empty()) {
    return;
  }
  switch (event.op) {
    case VmHookOp::kAlloc: {
      if (total_free_ == 0) {
        Diverge(event, "allocation from an empty free list");
        return;
      }
      // The pool must serve the faulting process's home node (as % nodes),
      // falling back to the nearest non-empty node in ascending wrap order.
      const int nodes = num_nodes();
      const int home = static_cast<int>(event.as % nodes);
      int node = home;
      while (free_[static_cast<size_t>(node)].empty()) {
        node = (node + 1) % nodes;
      }
      std::deque<FrameId>& list = free_[static_cast<size_t>(node)];
      if (list.front() != event.frame) {
        Diverge(event, "allocation did not pop the free-list head of node " +
                           std::to_string(node) + " (model head=" +
                           std::to_string(list.front()) + ")");
        return;
      }
      if (dirty_.count(event.frame) != 0) {
        Diverge(event, "allocated frame is dirty in the model");
        return;
      }
      list.pop_front();
      --total_free_;
      break;
    }
    case VmHookOp::kMap: {
      if (resident_[event.as].count(event.vpage) != 0) {
        Diverge(event, "mapping an already-resident page");
        return;
      }
      if (InFreeList(event.frame)) {
        Diverge(event, "mapping a frame still on the free list");
        return;
      }
      if (const auto it = mapped_.find(event.frame); it != mapped_.end()) {
        Diverge(event, "frame already mapped by as=" + std::to_string(it->second.first));
        return;
      }
      resident_[event.as][event.vpage] = event.frame;
      mapped_[event.frame] = {event.as, event.vpage};
      break;
    }
    case VmHookOp::kUnmap: {
      const auto it = resident_.find(event.as);
      if (it == resident_.end() || it->second.count(event.vpage) == 0) {
        Diverge(event, "unmapping a page the model has non-resident");
        return;
      }
      if (it->second[event.vpage] != event.frame) {
        Diverge(event, "unmap frame mismatch (model frame=" +
                           std::to_string(it->second[event.vpage]) + ")");
        return;
      }
      it->second.erase(event.vpage);
      mapped_.erase(event.frame);
      break;
    }
    case VmHookOp::kFreePushHead:
    case VmHookOp::kFreePushTail: {
      if (InFreeList(event.frame)) {
        Diverge(event, "double free: frame already on the model free list");
        return;
      }
      if (const auto it = mapped_.find(event.frame); it != mapped_.end()) {
        Diverge(event,
                "freeing a frame still mapped by as=" + std::to_string(it->second.first));
        return;
      }
      if (dirty_.count(event.frame) != 0) {
        Diverge(event, "freeing a dirty frame without a writeback");
        return;
      }
      // Pushes route to the pushed frame's node — never the freeing
      // process's — so a shard only ever holds its own frame range.
      std::deque<FrameId>& list = free_[static_cast<size_t>(NodeOf(event.frame))];
      if (event.op == VmHookOp::kFreePushHead) {
        list.push_front(event.frame);
      } else {
        list.push_back(event.frame);
      }
      ++total_free_;
      break;
    }
    case VmHookOp::kRescue: {
      std::deque<FrameId>& list = free_[static_cast<size_t>(NodeOf(event.frame))];
      const auto it = std::find(list.begin(), list.end(), event.frame);
      if (it == list.end()) {
        Diverge(event, "rescue of a frame not on the model free list");
        return;
      }
      list.erase(it);
      --total_free_;
      ++rescues_;
      break;
    }
    case VmHookOp::kWritebackBegin: {
      if (dirty_.count(event.frame) == 0) {
        Diverge(event, "writeback of a frame the model has clean");
        return;
      }
      if (writeback_.count(event.frame) != 0) {
        Diverge(event, "duplicate in-flight writeback");
        return;
      }
      writeback_.insert(event.frame);
      ++writebacks_;
      break;
    }
    case VmHookOp::kWritebackEnd: {
      if (writeback_.erase(event.frame) == 0) {
        Diverge(event, "writeback completion without a matching begin");
        return;
      }
      if (dirty_.erase(event.frame) == 0) {
        Diverge(event, "writeback completion on a clean frame");
        return;
      }
      break;
    }
    case VmHookOp::kDirty: {
      if (!dirty_.insert(event.frame).second) {
        Diverge(event, "clean->dirty transition on an already-dirty frame");
        return;
      }
      break;
    }
    case VmHookOp::kValidate:
    case VmHookOp::kInvalidate:
    case VmHookOp::kReleaseSkip:
      break;  // validity is a kernel-side refinement; no structural change
    case VmHookOp::kReleaseEnqueue:
      ++releases_enqueued_;
      break;
    case VmHookOp::kReleaserBatch:
      releaser_freed_ += static_cast<uint64_t>(event.a);
      break;
    case VmHookOp::kDaemonSweep:
      daemon_stolen_ += static_cast<uint64_t>(event.a);
      break;
    case VmHookOp::kHeaderUpdate: {
      // The kernel publishes lazily but always from live state, so at the
      // moment of the hook the model must agree exactly (Eq. 1).
      const int64_t current = ResidentCount(event.as);
      const int64_t upper = UpperLimit(event.as);
      if (event.a != current) {
        Diverge(event, "published current usage != model resident count (" +
                           std::to_string(current) + ")");
        return;
      }
      if (event.b != upper) {
        Diverge(event, "published upper limit != model Eq. 1 value (" +
                           std::to_string(upper) + ")");
        return;
      }
      break;
    }
    case VmHookOp::kDemote: {
      // Fires with the page still resident on the DRAM frame; the ordinary
      // kUnmap / kFreePush stream follows. The contents migrate carrying the
      // dirty bit, so the DRAM frame turns clean here (no writeback) and the
      // upcoming free push must pass the dirty check.
      const int tier = static_cast<int>(event.a);
      if (tier < 1 || tier > num_slow_tiers()) {
        Diverge(event, "demotion into a tier the model does not have");
        return;
      }
      TierModel& model = tiers_[static_cast<size_t>(tier - 1)];
      if (FrameOf(event.as, event.vpage) != event.frame) {
        Diverge(event, "demoted page not resident on the hook's frame");
        return;
      }
      if (model.pages.count({event.as, event.vpage}) != 0) {
        Diverge(event, "demoted page already occupies a frame in that tier");
        return;
      }
      if (model.free.empty() || model.free.front() != event.b) {
        Diverge(event, "demotion did not pop the tier free-list head");
        return;
      }
      model.free.pop_front();
      const bool carried = dirty_.erase(event.frame) != 0;
      model.pages[{event.as, event.vpage}] =
          TierEntry{static_cast<FrameId>(event.b), carried};
      break;
    }
    case VmHookOp::kPromote: {
      // Fires after kMap, so the model must already see the page resident on
      // the fresh DRAM frame; the carried dirty bit is restored hook-free.
      const int tier = static_cast<int>(event.a);
      if (tier < 1 || tier > num_slow_tiers()) {
        Diverge(event, "promotion out of a tier the model does not have");
        return;
      }
      TierModel& model = tiers_[static_cast<size_t>(tier - 1)];
      const auto it = model.pages.find({event.as, event.vpage});
      if (it == model.pages.end()) {
        Diverge(event, "promotion of a page the model has outside that tier");
        return;
      }
      if (it->second.tf != event.b) {
        Diverge(event, "promotion tier-frame mismatch (model tf=" +
                           std::to_string(it->second.tf) + ")");
        return;
      }
      if (FrameOf(event.as, event.vpage) != event.frame) {
        Diverge(event, "promoted page not resident on the hook's frame");
        return;
      }
      if (it->second.dirty && !dirty_.insert(event.frame).second) {
        Diverge(event, "carried dirty bit restored onto an already-dirty frame");
        return;
      }
      model.free.push_front(it->second.tf);
      model.pages.erase(it);
      break;
    }
    case VmHookOp::kTierEvict: {
      // Capacity eviction inside the hierarchy: the victim's tier frame goes
      // back to its pool head; the page cascades one tier deeper (b > 0,
      // popping the deeper pool's head) or falls out to disk (b == 0).
      const int from = static_cast<int>(event.a);
      const int to = static_cast<int>(event.b);
      if (from < 1 || from > num_slow_tiers() || to < 0 || to > num_slow_tiers()) {
        Diverge(event, "tier eviction between tiers the model does not have");
        return;
      }
      TierModel& src = tiers_[static_cast<size_t>(from - 1)];
      const auto it = src.pages.find({event.as, event.vpage});
      if (it == src.pages.end()) {
        Diverge(event, "tier eviction of a page the model has outside the tier");
        return;
      }
      const TierEntry victim = it->second;
      if (to > 0) {
        TierModel& dst = tiers_[static_cast<size_t>(to - 1)];
        if (dst.free.empty() || dst.free.front() != event.frame) {
          Diverge(event, "cascaded eviction did not pop the deeper free-list head");
          return;
        }
        if (dst.pages.count({event.as, event.vpage}) != 0) {
          Diverge(event, "cascaded page already occupies a frame in the deeper tier");
          return;
        }
        dst.free.pop_front();
        dst.pages[{event.as, event.vpage}] = TierEntry{event.frame, victim.dirty};
      }
      src.pages.erase(it);
      src.free.push_front(victim.tf);
      break;
    }
  }
}

}  // namespace tmh
