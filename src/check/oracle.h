// Differential reference model ("oracle") for the VM subsystem.
//
// A deliberately simple shadow of the kernel's memory state: the free list is
// a plain deque per memory node, residency is a map per address space, the
// dirty set is a std::set. No wheels, no sentinels, no intrusive links, no
// small-buffer tricks — the point is that this model is simple enough to be
// obviously correct, so any disagreement with the optimized kernel implicates
// the kernel (or a missing hook), not the model.
//
// The model is byte-honest per node: it re-derives the kernel's frame->node
// partition (contiguous ranges) and home-node rule (as_id % nodes) from the
// machine shape alone, routes every push to the pushed frame's node, and
// demands that every allocation pop the head of the first non-empty node
// deque in wrap order from the faulting process's home node — exactly the
// sharded pool's behavior, independently recomputed.
//
// The oracle replays the kernel-visible operation stream (src/os/vm_hooks.h):
// frame allocation, map/unmap, free-list pushes, rescues, writebacks, dirty
// transitions, shared-header updates, and — on tiered machines — the
// demote/promote/evict migration stream, replayed against per-tier page maps
// and free lists of its own. Each operation is checked against
// the model as it is applied — an allocation must pop the model's free-list
// head, a rescue must find the frame mid-list, a writeback must target a
// dirty frame, a published Eq. 1 header must match the model's own
// recomputation — and the first disagreement is recorded as a divergence.

#ifndef TMH_SRC_CHECK_ORACLE_H_
#define TMH_SRC_CHECK_ORACLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/os/vm_hooks.h"
#include "src/vm/types.h"

namespace tmh {

class Kernel;

class VmOracle {
 public:
  // Rebuilds the model from the kernel's current state, so a checker can
  // attach at any quiescent moment (typically right after construction).
  void SeedFromKernel(const Kernel& kernel);

  // Replays one kernel-visible operation. Records the first operation that
  // disagrees with the model; after that the oracle stops mutating.
  void Apply(const VmHookEvent& event);

  [[nodiscard]] bool ok() const { return failure_.empty(); }
  [[nodiscard]] const std::string& failure() const { return failure_; }

  // --- model views (for the invariant checker and tests) ---------------------

  // Per-node free lists, head-to-tail allocation order.
  [[nodiscard]] int num_nodes() const { return static_cast<int>(free_.size()); }
  [[nodiscard]] const std::deque<FrameId>& free_node(int node) const {
    return free_[static_cast<size_t>(node)];
  }
  // Total free frames across nodes.
  [[nodiscard]] int64_t FreeCount() const { return total_free_; }
  // The node owning `f`'s frame range (the kernel's contiguous partition,
  // re-derived independently).
  [[nodiscard]] int NodeOf(FrameId f) const {
    return static_cast<int>(f / frames_per_node_);
  }
  [[nodiscard]] bool IsResident(AsId as, VPage vpage) const;
  // Frame the model believes backs (as, vpage), or kNoFrame.
  [[nodiscard]] FrameId FrameOf(AsId as, VPage vpage) const;
  [[nodiscard]] int64_t ResidentCount(AsId as) const;
  [[nodiscard]] const std::set<FrameId>& dirty() const { return dirty_; }

  // Per-slow-tier reference model (memory-tiering extension): which (as,
  // vpage) each occupied tier frame holds with its carried dirty bit, plus
  // the tier's free list in pop order. Index = slow tier number minus one.
  struct TierEntry {
    FrameId tf = kNoFrame;
    bool dirty = false;
  };
  struct TierModel {
    std::map<std::pair<AsId, VPage>, TierEntry> pages;
    std::deque<FrameId> free;
  };
  [[nodiscard]] int num_slow_tiers() const { return static_cast<int>(tiers_.size()); }
  [[nodiscard]] const TierModel& tier(int slow_index) const {
    return tiers_[static_cast<size_t>(slow_index)];
  }

  // Eq. 1 recomputed from the model's own state:
  //   upper = max(0, min(maxrss, resident + free - min_freemem)).
  [[nodiscard]] int64_t UpperLimit(AsId as) const;

  // Replayed-operation counters (for conformance tests).
  [[nodiscard]] uint64_t releases_enqueued() const { return releases_enqueued_; }
  [[nodiscard]] uint64_t releaser_freed() const { return releaser_freed_; }
  [[nodiscard]] uint64_t daemon_stolen() const { return daemon_stolen_; }
  [[nodiscard]] uint64_t writebacks() const { return writebacks_; }
  [[nodiscard]] uint64_t rescues() const { return rescues_; }

 private:
  void Diverge(const VmHookEvent& event, const std::string& what);
  [[nodiscard]] bool InFreeList(FrameId f) const;

  // One deque per memory node. Default-constructed (unseeded) oracles model a
  // single node covering every frame, matching the historical flat list.
  std::vector<std::deque<FrameId>> free_ = std::vector<std::deque<FrameId>>(1);
  int64_t total_free_ = 0;
  int64_t frames_per_node_ = INT64_MAX;
  std::map<AsId, std::map<VPage, FrameId>> resident_;
  std::map<FrameId, std::pair<AsId, VPage>> mapped_;  // reverse of resident_
  std::set<FrameId> dirty_;
  std::set<FrameId> writeback_;                    // page-outs in flight
  std::vector<TierModel> tiers_;                   // slow tiers, index = tier-1

  int64_t maxrss_pages_ = 0;
  int64_t min_freemem_pages_ = 0;

  uint64_t releases_enqueued_ = 0;
  uint64_t releaser_freed_ = 0;
  uint64_t daemon_stolen_ = 0;
  uint64_t writebacks_ = 0;
  uint64_t rescues_ = 0;

  std::string failure_;
};

}  // namespace tmh

#endif  // TMH_SRC_CHECK_ORACLE_H_
