#include "src/workloads/interactive.h"

#include <cassert>

namespace tmh {

SimDuration InteractiveTask::ThreadExecution() const {
  assert(thread_ != nullptr && "call BindThread after Spawn");
  const TimeBreakdown& t = thread_->times();
  return t.Execution();
}

Op InteractiveTask::Next(Kernel& kernel) {
  const int64_t total = config_.data_pages + config_.text_pages;
  if (sweeping_) {
    if (page_cursor_ == 0) {
      sweep_start_ = ThreadExecution();
    }
    if (page_cursor_ < total) {
      Op op = Op::Touch(page_cursor_, /*write=*/page_cursor_ >= config_.text_pages,
                        config_.per_page_compute);
      op.as = as_;
      ++page_cursor_;
      return op;
    }
    // Sweep complete: Next() is only called after the previous op fully
    // finished, so the thread's execution-time delta spans exactly the
    // sweep's touches (including every stall they suffered).
    const SimDuration response = ThreadExecution() - sweep_start_;
    responses_.Add(static_cast<double>(response));
    series_.push_back(response);
    ++sweeps_;
    page_cursor_ = 0;
    sweeping_ = false;
    if (config_.max_sweeps > 0 && sweeps_ >= config_.max_sweeps) {
      return Op::Exit();
    }
    return Op::Sleep(config_.sleep_time);
  }
  sweeping_ = true;
  return Next(kernel);
}

}  // namespace tmh
