// Out-of-core benchmark programs (Section 4.2, Table 2).
//
// Each factory builds a SourceProgram whose loop-nest structure reproduces the
// access-pattern features the paper's analysis distinguishes:
//   MATVEC  — multi-dimensional loops with known bounds; the vector has
//             temporal reuse whose between-reuse volume exceeds memory, so the
//             compiler releases it with a nonzero priority (the buffered
//             policy's showcase).
//   EMBAR   — one-dimensional loops; perfect analysis, no reuse.
//   BUK     — unknown bounds + indirect references (bucket sort): two
//             sequentially accessed arrays plus an equally large
//             randomly-accessed one that is never released.
//   CGM     — unknown bounds + indirect references (sparse CG): short inner
//             loops flood the run-time layer with hints it must filter.
//   MGRID   — multi-dimensional loops with unknown bounds that change across
//             calls; single-version code releases pages that the next sweep
//             reuses, and inter-grid transfers defeat release analysis.
//   FFTPDE  — strides change within a loop, so the compiler sees temporal
//             reuse that does not exist and attaches false priorities.
//
// Every factory takes a `scale` in (0, 1]; 1.0 reproduces the paper-scale data
// sets (larger than the 75 MB machine), smaller values make unit tests fast.

#ifndef TMH_SRC_WORKLOADS_WORKLOADS_H_
#define TMH_SRC_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/compiler/ir.h"

namespace tmh {

SourceProgram MakeMatvec(double scale = 1.0);
SourceProgram MakeEmbar(double scale = 1.0);
SourceProgram MakeBuk(double scale = 1.0, uint64_t seed = 0x5eed'b00c);
SourceProgram MakeCgm(double scale = 1.0, uint64_t seed = 0x5eed'c021);
SourceProgram MakeMgrid(double scale = 1.0);
SourceProgram MakeFftpde(double scale = 1.0);

struct WorkloadInfo {
  std::string name;
  std::function<SourceProgram(double)> factory;
  // Table 2 description strings.
  std::string loop_structure;
  std::string difficulty;
};

// All six benchmarks in the paper's order.
const std::vector<WorkloadInfo>& AllWorkloads();

}  // namespace tmh

#endif  // TMH_SRC_WORKLOADS_WORKLOADS_H_
