// Extension workloads beyond the paper's six benchmarks.
//
// RELAX is the paper's own Section 2.4 worked example (averaging each element
// with its neighbors) promoted to a runnable workload; TRANSPOSE and
// SORTMERGE are classic out-of-core kernels that exercise the compiler in
// ways the NAS set does not (column-strided writes; three concurrent
// sequential streams with disjoint roles).

#ifndef TMH_SRC_WORKLOADS_EXTRA_H_
#define TMH_SRC_WORKLOADS_EXTRA_H_

#include "src/workloads/workloads.h"

namespace tmh {

// Section 2.4's nearest-neighbor averaging over an out-of-core matrix:
//   a[i][j] = avg of the 3x3 neighborhood. Three row-planes of group
// locality; the compiler prefetches the leading plane and releases the
// trailing one, exactly as the paper's example derives.
SourceProgram MakeRelax(double scale = 1.0);

// Permutation scatter (the page-level behavior of an out-of-core transpose or
// shuffle): the input and the permutation stream sequentially while the
// output is written through the permutation — an indirect reference the
// compiler may prefetch but never release, leaving the daemon to manage the
// scattered half of the footprint.
SourceProgram MakeShuffle(double scale = 1.0, uint64_t seed = 0x5eed0f1e);

// Merge of two sorted out-of-core runs into an output run: three concurrent
// sequential streams, every one of them releasable with priority 0 — the
// friendliest possible case for aggressive releasing.
SourceProgram MakeSortMerge(double scale = 1.0);

// The extension workloads, in a registry shaped like AllWorkloads().
const std::vector<WorkloadInfo>& ExtraWorkloads();

// Finds a workload by name across AllWorkloads() and ExtraWorkloads();
// returns nullptr if unknown.
const WorkloadInfo* FindWorkload(const std::string& name);

}  // namespace tmh

#endif  // TMH_SRC_WORKLOADS_EXTRA_H_
