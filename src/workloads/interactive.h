// The simulated interactive task (Section 1.1).
//
// Repeatedly touches a 1 MB data set (64 pages of 16 KB, plus one page of
// program text — the 65 hard faults of Figure 10c when everything has been
// evicted), then sleeps for a configurable think time. The *response time* is
// the time taken to touch the entire data set; on a dedicated machine it is
// sub-millisecond, and it balloons when a memory hog steals the pages during
// the sleep.

#ifndef TMH_SRC_WORKLOADS_INTERACTIVE_H_
#define TMH_SRC_WORKLOADS_INTERACTIVE_H_

#include <cstdint>
#include <vector>

#include "src/os/kernel.h"
#include "src/os/thread.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace tmh {

struct InteractiveConfig {
  int64_t data_pages = 64;               // 1 MB of data at 16 KB pages
  int64_t text_pages = 1;                // program text
  SimDuration sleep_time = 5 * kSec;     // think time between sweeps
  SimDuration per_page_compute = 10 * kUsec;  // work per touched page
  // Stop emitting new sweeps after this many (0 = run until the experiment
  // ends). The thread then exits.
  int64_t max_sweeps = 0;
};

class InteractiveTask : public Program {
 public:
  InteractiveTask(AddressSpace* as, const InteractiveConfig& config)
      : as_(as), config_(config) {}

  // Binds the thread executing this task so responses can be measured from
  // its time accounting (slice-exact, unlike event timestamps).
  void BindThread(const Thread* thread) { thread_ = thread; }

  Op Next(Kernel& kernel) override;

  // Completed-sweep response times, in nanoseconds.
  [[nodiscard]] const Accumulator& response_times() const { return responses_; }
  [[nodiscard]] const std::vector<SimDuration>& response_series() const { return series_; }
  [[nodiscard]] int64_t sweeps_completed() const { return sweeps_; }

 private:
  // Execution time (all four Figure 7 buckets) accrued by the bound thread.
  [[nodiscard]] SimDuration ThreadExecution() const;

  AddressSpace* as_;
  InteractiveConfig config_;
  const Thread* thread_ = nullptr;
  int64_t page_cursor_ = 0;     // next page to touch within the sweep
  bool sweeping_ = true;        // touching vs about to sleep
  SimDuration sweep_start_ = -1;  // ThreadExecution() at sweep start
  int64_t sweeps_ = 0;
  Accumulator responses_;
  std::vector<SimDuration> series_;
};

}  // namespace tmh

#endif  // TMH_SRC_WORKLOADS_INTERACTIVE_H_
