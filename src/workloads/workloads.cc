#include "src/workloads/workloads.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace tmh {
namespace {

// Rounds `x * scale` down to a positive multiple of `mult`.
int64_t Scaled(int64_t x, double scale, int64_t mult = 1) {
  auto v = static_cast<int64_t>(static_cast<double>(x) * scale);
  v = (v / mult) * mult;
  return std::max<int64_t>(v, mult);
}

ArrayRef Ref(int32_t array, std::vector<int64_t> coeffs, int64_t constant, bool write = false) {
  ArrayRef ref;
  ref.array = array;
  ref.affine.coeffs = std::move(coeffs);
  ref.affine.constant = constant;
  ref.is_write = write;
  return ref;
}

ArrayRef IndirectRef(int32_t array, int32_t index_array, std::vector<int64_t> coeffs,
                     int64_t constant, bool write = false) {
  ArrayRef ref = Ref(array, std::move(coeffs), constant, write);
  ref.index_array = index_array;
  return ref;
}

Loop MakeLoop(const char* var, int64_t upper, bool known, int64_t lower = 0, int64_t step = 1) {
  return Loop{var, lower, upper, step, known};
}

std::shared_ptr<std::vector<int64_t>> RandomValues(int64_t count, int64_t bound, uint64_t seed) {
  auto values = std::make_shared<std::vector<int64_t>>();
  values->reserve(static_cast<size_t>(count));
  Rng rng(seed);
  for (int64_t i = 0; i < count; ++i) {
    values->push_back(static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(bound))));
  }
  return values;
}

}  // namespace

// --- MATVEC -------------------------------------------------------------------
// y = A * x with a 400 MB matrix and a 40 MB vector: one i-iteration touches a
// row of A plus all of x (80 MB), exceeding the 75 MB machine, so the compiler
// releases x despite its known reuse, tagging it with priority 2^0 = 1.
SourceProgram MakeMatvec(double scale) {
  SourceProgram p;
  p.name = "MATVEC";
  const int64_t n = Scaled(5ll * 1024 * 1024, scale, 2048);  // row length / |x|
  const int64_t m = 10;                                      // rows
  p.arrays = {
      {"A", 8, m * n, /*on_disk=*/true, nullptr},
      {"x", 8, n, /*on_disk=*/true, nullptr},
      {"y", 8, m, /*on_disk=*/false, nullptr},
  };
  LoopNest nest;
  nest.label = "matvec";
  nest.loops = {MakeLoop("i", m, true), MakeLoop("j", n, true)};
  nest.refs = {
      Ref(0, {n, 1}, 0),          // A[i][j]
      Ref(1, {0, 1}, 0),          // x[j] — temporal reuse across i
      Ref(2, {1, 0}, 0, true),    // y[i] — temporal reuse across j (exploitable)
  };
  nest.compute_per_iteration = 150 * kNsec;
  p.nests.push_back(std::move(nest));
  p.repeat = 3;  // the paper runs the multiplication repeatedly
  return p;
}

// --- EMBAR --------------------------------------------------------------------
// One-dimensional loops with known bounds: generate a 268 MB table of deviates
// (zero-fill writes), then tally it (sequential reads). Perfect analysis, no
// temporal reuse anywhere — every release carries priority 0.
SourceProgram MakeEmbar(double scale) {
  SourceProgram p;
  p.name = "EMBAR";
  const int64_t n = Scaled(32ll * 1024 * 1024, scale, 2048);
  p.arrays = {
      {"gauss", 8, n, /*on_disk=*/false, nullptr},
      {"sums", 8, 512, /*on_disk=*/false, nullptr},
  };
  LoopNest generate;
  generate.label = "generate";
  generate.loops = {MakeLoop("i", n, true)};
  generate.refs = {Ref(0, {1}, 0, /*write=*/true)};
  generate.compute_per_iteration = 300 * kNsec;
  p.nests.push_back(std::move(generate));

  LoopNest tally;
  tally.label = "tally";
  tally.loops = {MakeLoop("i", n, true)};
  tally.refs = {Ref(0, {1}, 0), Ref(1, {0}, 0, /*write=*/true)};
  tally.compute_per_iteration = 250 * kNsec;
  p.nests.push_back(std::move(tally));
  p.repeat = 1;
  return p;
}

// --- BUK ----------------------------------------------------------------------
// Bucket sort: keys and the output array are swept sequentially, while the
// equally large count array is hit through the key values (indirect). Loop
// bounds are unknown to the compiler, and the indirect references are never
// released — with releasing, demand is satisfied from the sequential arrays
// and the random one stays in memory (Section 4.3).
SourceProgram MakeBuk(double scale, uint64_t seed) {
  SourceProgram p;
  p.name = "BUK";
  const int64_t nk = Scaled(2ll * 1024 * 1024, scale, 1024);  // keys
  p.arrays = {
      {"keys", 16, nk, /*on_disk=*/true, RandomValues(nk, nk, seed)},
      {"count", 8, nk, /*on_disk=*/false, nullptr},
      {"out", 16, nk, /*on_disk=*/false, nullptr},
  };
  LoopNest rank;
  rank.label = "rank";
  rank.loops = {MakeLoop("i", nk, false)};
  rank.refs = {
      Ref(0, {1}, 0),                          // keys[i]
      IndirectRef(1, 0, {1}, 0, /*write=*/true),  // count[keys[i]]++
  };
  rank.compute_per_iteration = 400 * kNsec;
  p.nests.push_back(std::move(rank));

  LoopNest scan;
  scan.label = "scan";
  scan.loops = {MakeLoop("j", nk, false)};
  scan.refs = {Ref(1, {1}, 0), Ref(1, {1}, 0, /*write=*/true)};  // prefix sum over count
  scan.compute_per_iteration = 80 * kNsec;
  p.nests.push_back(std::move(scan));

  LoopNest permute;
  permute.label = "permute";
  permute.loops = {MakeLoop("i", nk, false)};
  permute.refs = {
      Ref(0, {1}, 0),                           // keys[i]
      IndirectRef(1, 0, {1}, 0),                // count[keys[i]]
      IndirectRef(2, 0, {1}, 0, /*write=*/true),  // out[rank(keys[i])]
  };
  permute.compute_per_iteration = 450 * kNsec;
  p.nests.push_back(std::move(permute));
  p.repeat = 2;
  return p;
}

// --- CGM ----------------------------------------------------------------------
// Sparse matrix-vector product at the heart of conjugate gradient: row lengths
// are data-dependent (unknown bounds) and the source vector is hit through the
// column-index array. The short unknown-bound inner loop makes the compiler
// emit hints every iteration, flooding the run-time layer with requests it
// must filter — CGM's user-time overhead in Figure 7.
SourceProgram MakeCgm(double scale, uint64_t seed) {
  SourceProgram p;
  p.name = "CGM";
  const int64_t rows = Scaled(256ll * 1024, scale, 1024);
  const int64_t row_len = 40;
  const int64_t nnz = rows * row_len;
  p.arrays = {
      {"vals", 8, nnz, /*on_disk=*/true, nullptr},
      {"colidx", 4, nnz, /*on_disk=*/true, RandomValues(nnz, rows, seed)},
      {"p", 8, rows, /*on_disk=*/false, nullptr},
      {"q", 8, rows, /*on_disk=*/false, nullptr},
      {"r", 8, rows, /*on_disk=*/false, nullptr},
  };
  LoopNest spmv;
  spmv.label = "spmv";
  spmv.loops = {MakeLoop("i", rows, false), MakeLoop("k", row_len, false)};
  spmv.refs = {
      Ref(0, {row_len, 1}, 0),        // vals[i*row_len + k]
      Ref(1, {row_len, 1}, 0),        // colidx[i*row_len + k]
      IndirectRef(2, 1, {row_len, 1}, 0),  // p[colidx[...]]
      Ref(3, {1, 0}, 0, /*write=*/true),   // q[i]
  };
  spmv.compute_per_iteration = 70 * kNsec;
  p.nests.push_back(std::move(spmv));

  LoopNest axpy;
  axpy.label = "axpy";
  axpy.loops = {MakeLoop("j", rows, false)};
  axpy.refs = {Ref(2, {1}, 0, /*write=*/true), Ref(3, {1}, 0), Ref(4, {1}, 0, /*write=*/true)};
  axpy.compute_per_iteration = 60 * kNsec;
  p.nests.push_back(std::move(axpy));
  p.repeat = 2;
  return p;
}

// --- MGRID --------------------------------------------------------------------
// Multigrid V-cycles. Bounds are unknown (they change across calls to the same
// routines), smoothing sweeps are separate nests (the per-nest analysis cannot
// see reuse between them, so each sweep releases pages the next sweep needs —
// the rescues of Figure 9), and the stride-changing inter-grid transfers
// defeat release analysis entirely (the paging daemon reclaims those pages).
SourceProgram MakeMgrid(double scale) {
  SourceProgram p;
  p.name = "MGRID";
  const auto d0 = static_cast<int64_t>(std::max(16.0, 192.0 * std::cbrt(scale)));
  const int64_t d1 = d0 / 2;
  const int64_t n0 = d0 * d0 * d0;
  const int64_t n1 = d1 * d1 * d1;
  p.arrays = {
      {"u0", 8, n0, /*on_disk=*/true, nullptr},
      {"r0", 8, n0, /*on_disk=*/true, nullptr},
      {"u1", 8, n1, /*on_disk=*/false, nullptr},
      {"r1", 8, n1, /*on_disk=*/false, nullptr},
  };

  auto smooth_fine = [&](const char* label) {
    LoopNest nest;
    nest.label = label;
    nest.loops = {MakeLoop("i", d0 - 1, false, 1), MakeLoop("j", d0 - 1, false, 1),
                  MakeLoop("k", d0 - 1, false, 1)};
    const std::vector<int64_t> c = {d0 * d0, d0, 1};
    nest.refs = {
        Ref(0, c, 0, /*write=*/true),  // u0 center
        Ref(0, c, 1),       Ref(0, c, -1),
        Ref(0, c, d0),      Ref(0, c, -d0),
        Ref(0, c, d0 * d0), Ref(0, c, -d0 * d0),
        Ref(1, c, 0),  // r0
    };
    nest.compute_per_iteration = 400 * kNsec;
    return nest;
  };

  LoopNest restrict_nest;
  restrict_nest.label = "restrict";
  restrict_nest.loops = {MakeLoop("i", d1, false), MakeLoop("j", d1, false),
                         MakeLoop("k", d1, false)};
  restrict_nest.refs = {
      Ref(1, {2 * d0 * d0, 2 * d0, 2}, 0),             // r0, stride-2 gather
      Ref(3, {d1 * d1, d1, 1}, 0, /*write=*/true),     // r1
  };
  restrict_nest.refs[0].release_analyzable = false;  // stride changes across levels
  restrict_nest.compute_per_iteration = 300 * kNsec;

  LoopNest smooth_coarse;
  smooth_coarse.label = "smooth1";
  smooth_coarse.loops = {MakeLoop("i", d1 - 1, false, 1), MakeLoop("j", d1 - 1, false, 1),
                         MakeLoop("k", d1 - 1, false, 1)};
  smooth_coarse.refs = {
      Ref(2, {d1 * d1, d1, 1}, 0, /*write=*/true),
      Ref(2, {d1 * d1, d1, 1}, 1),
      Ref(2, {d1 * d1, d1, 1}, -1),
      Ref(3, {d1 * d1, d1, 1}, 0),
  };
  smooth_coarse.compute_per_iteration = 350 * kNsec;

  LoopNest interp;
  interp.label = "interp";
  interp.loops = {MakeLoop("i", d1, false), MakeLoop("j", d1, false), MakeLoop("k", d1, false)};
  interp.refs = {
      Ref(2, {d1 * d1, d1, 1}, 0),                            // u1
      Ref(0, {2 * d0 * d0, 2 * d0, 2}, 0, /*write=*/true),    // u0, stride-2 scatter
  };
  interp.refs[1].release_analyzable = false;
  interp.compute_per_iteration = 300 * kNsec;

  p.nests.push_back(smooth_fine("smooth0_a"));
  p.nests.push_back(smooth_fine("smooth0_b"));
  p.nests.push_back(restrict_nest);
  p.nests.push_back(smooth_coarse);
  p.nests.push_back(interp);
  p.nests.push_back(smooth_fine("smooth0_c"));
  p.repeat = 2;
  return p;
}

// --- FFTPDE -------------------------------------------------------------------
// Butterfly stages of a large FFT. In the strided stages the second butterfly
// input looks loop-invariant to the compiler (the stride computation defeats
// its dependence test) while actually marching through the array: the compiler
// claims temporal reuse that does not exist, attaches priority 1 to those
// releases, and the buffered run-time layer wrongly retains the pages —
// FFTPDE's pathology in Figures 7, 9, and 10(b).
SourceProgram MakeFftpde(double scale) {
  SourceProgram p;
  p.name = "FFTPDE";
  const int64_t n = Scaled(8ll * 1024 * 1024, scale, 4096);
  p.arrays = {
      {"X", 16, n, /*on_disk=*/true, nullptr},
      {"W", 16, 4096, /*on_disk=*/false, nullptr},
  };

  auto stage = [&](const char* label, int64_t m, bool deceptive) {
    LoopNest nest;
    nest.label = label;
    if (m == 1) {
      // Stride-1 stage: a single loop over butterfly pairs.
      nest.loops = {MakeLoop("i", n / 2, false)};
      nest.refs = {
          Ref(0, {2}, 0, /*write=*/true),  // X[2i]
          Ref(0, {2}, 1, /*write=*/true),  // X[2i+1]
          Ref(1, {0}, 0),                  // twiddle
      };
      nest.compute_per_iteration = 600 * kNsec;
      return nest;
    }
    nest.loops = {MakeLoop("k", n / (2 * m), false), MakeLoop("j", m, false)};
    nest.refs = {
        Ref(0, {2 * m, 1}, 0, /*write=*/true),  // X[2m*k + j]
        Ref(0, {2 * m, 1}, m, /*write=*/true),  // X[2m*k + j + m]
        Ref(1, {0, 1}, 0),                      // twiddle (genuinely reused)
    };
    if (deceptive) {
      // The stride computation defeats the compiler's dependence test: both
      // butterfly inputs look invariant in k, so the whole stage's releases
      // carry a false temporal-reuse priority.
      for (size_t r = 0; r < 2; ++r) {
        nest.refs[r].runtime_affine = std::make_shared<AffineExpr>(nest.refs[r].affine);
        nest.refs[r].affine.coeffs = {0, 1};
      }
    }
    nest.compute_per_iteration = 600 * kNsec;
    return nest;
  };

  p.nests.push_back(stage("stage_stride1", 1, false));
  p.nests.push_back(stage("stage_stride2k", 2048, true));
  p.nests.push_back(stage("stage_stride1M", n / 8, true));
  p.repeat = 2;
  return p;
}

const std::vector<WorkloadInfo>& AllWorkloads() {
  static const std::vector<WorkloadInfo> kWorkloads = {
      {"EMBAR", [](double s) { return MakeEmbar(s); }, "1-D, known bounds", "easy"},
      {"MATVEC", [](double s) { return MakeMatvec(s); }, "multi-dim, known bounds", "easy"},
      {"BUK", [](double s) { return MakeBuk(s, 0x5eedb00c); }, "unknown bounds + indirect",
       "moderate"},
      {"CGM", [](double s) { return MakeCgm(s, 0x5eedc021); }, "unknown bounds + indirect",
       "moderate"},
      {"MGRID", [](double s) { return MakeMgrid(s); }, "multi-dim, unknown changing bounds",
       "hard"},
      {"FFTPDE", [](double s) { return MakeFftpde(s); }, "stride changes within loops", "hard"},
  };
  return kWorkloads;
}

}  // namespace tmh
