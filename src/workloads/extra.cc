#include "src/workloads/extra.h"

#include <algorithm>
#include <memory>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace tmh {
namespace {

int64_t ScaledDim(int64_t x, double scale) {
  return std::max<int64_t>(64, static_cast<int64_t>(static_cast<double>(x) * scale));
}

ArrayRef MakeRef(int32_t array, std::vector<int64_t> coeffs, int64_t constant,
                 bool write = false) {
  ArrayRef ref;
  ref.array = array;
  ref.affine.coeffs = std::move(coeffs);
  ref.affine.constant = constant;
  ref.is_write = write;
  return ref;
}

}  // namespace

SourceProgram MakeRelax(double scale) {
  SourceProgram p;
  p.name = "RELAX";
  // ~160 MB matrix: rows of 16K doubles (128 KB = 8 pages each).
  const int64_t cols = 16 * 1024;
  const int64_t rows = ScaledDim(1280, scale);
  p.arrays = {{"a", 8, rows * cols, /*on_disk=*/true, nullptr}};
  LoopNest nest;
  nest.label = "relax";
  nest.loops = {Loop{"i", 1, rows - 1, 1, true}, Loop{"j", 1, cols - 1, 1, true}};
  // The nine references of Figure 3(a); constants are row*cols + col offsets.
  for (const int64_t di : {-1ll, 0ll, 1ll}) {
    for (const int64_t dj : {-1ll, 0ll, 1ll}) {
      nest.refs.push_back(MakeRef(0, {cols, 1}, di * cols + dj, di == 0 && dj == 0));
    }
  }
  nest.compute_per_iteration = 60 * kNsec;  // nine loads, one divide
  p.nests.push_back(std::move(nest));
  p.repeat = 2;  // iterate the smoothing, as relaxation codes do
  return p;
}

SourceProgram MakeShuffle(double scale, uint64_t seed) {
  SourceProgram p;
  p.name = "SHUFFLE";
  const int64_t n = ScaledDim(4 * 1024 * 1024, scale);
  // A random mapping stands in for the transpose permutation: the page-touch
  // pattern of the scattered writes is what matters.
  auto perm = std::make_shared<std::vector<int64_t>>();
  perm->reserve(static_cast<size_t>(n));
  {
    Rng rng(seed);
    for (int64_t i = 0; i < n; ++i) {
      perm->push_back(static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n))));
    }
  }
  p.arrays = {
      {"in", 8, n, /*on_disk=*/true, nullptr},
      {"perm", 8, n, /*on_disk=*/true, perm},
      {"out", 8, n, /*on_disk=*/false, nullptr},
  };
  LoopNest nest;
  nest.label = "scatter";
  nest.loops = {Loop{"i", 0, n, 1, true}};
  ArrayRef scatter;
  scatter.array = 2;
  scatter.index_array = 1;
  scatter.affine.coeffs = {1};
  scatter.is_write = true;
  nest.refs = {
      MakeRef(0, {1}, 0),  // in[i]
      MakeRef(1, {1}, 0),  // perm[i]
      scatter,             // out[perm[i]] — indirect: prefetched, never released
  };
  nest.compute_per_iteration = 300 * kNsec;
  p.nests.push_back(std::move(nest));
  p.repeat = 1;
  return p;
}

SourceProgram MakeSortMerge(double scale) {
  SourceProgram p;
  p.name = "SORTMERGE";
  const int64_t run = ScaledDim(6 * 1024 * 1024, scale);  // elements per input run
  p.arrays = {
      {"run_a", 8, run, /*on_disk=*/true, nullptr},
      {"run_b", 8, run, /*on_disk=*/true, nullptr},
      {"merged", 8, 2 * run, /*on_disk=*/false, nullptr},
  };
  // Model the merge as one pass that consumes both runs and produces the
  // output: per output element, one input element is read (alternating runs
  // on average) and one output element written. At page granularity the three
  // streams advance together at half/half/full rate.
  LoopNest nest;
  nest.label = "merge";
  nest.loops = {Loop{"k", 0, run, 1, true}};
  nest.refs = {
      MakeRef(0, {1}, 0),              // run_a cursor
      MakeRef(1, {1}, 0),              // run_b cursor
      MakeRef(2, {2}, 0, /*write=*/true),  // merged advances twice as fast
      MakeRef(2, {2}, 1, /*write=*/true),
  };
  nest.compute_per_iteration = 350 * kNsec;  // two compares + two stores
  p.nests.push_back(std::move(nest));
  p.repeat = 1;
  return p;
}

const std::vector<WorkloadInfo>& ExtraWorkloads() {
  static const std::vector<WorkloadInfo> kExtra = {
      {"RELAX", [](double s) { return MakeRelax(s); }, "2-D stencil, known bounds (Sec. 2.4)",
       "easy"},
      {"SHUFFLE", [](double s) { return MakeShuffle(s); },
       "sequential streams + permutation scatter", "moderate"},
      {"SORTMERGE", [](double s) { return MakeSortMerge(s); },
       "three concurrent sequential streams", "easy"},
  };
  return kExtra;
}

const WorkloadInfo* FindWorkload(const std::string& name) {
  for (const WorkloadInfo& info : AllWorkloads()) {
    if (info.name == name) {
      return &info;
    }
  }
  for (const WorkloadInfo& info : ExtraWorkloads()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace tmh
