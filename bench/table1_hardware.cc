// Table 1: hardware characteristics of the (simulated) experimental platform.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/os/config.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  const tmh::MachineConfig config = tmh::BenchMachine(args.scale);
  const tmh::DiskParams& disk = config.swap.disk_params;

  tmh::PrintHeader("Table 1: hardware characteristics", args.scale);
  tmh::ReportTable table({"parameter", "value"});
  table.AddRow({"processors", std::to_string(config.num_cpus) + " (Origin 200, R10000-class)"});
  table.AddRow({"page size", std::to_string(config.page_size_bytes / 1024) + " KB"});
  table.AddRow({"memory available to user programs",
                tmh::FormatDouble(static_cast<double>(config.user_memory_bytes) / (1024 * 1024),
                                  1) + " MB (" + std::to_string(config.num_frames()) + " pages)"});
  table.AddRow({"swap disks",
                std::to_string(config.swap.num_disks) + " (Cheetah 4LP-class), striped"});
  table.AddRow({"SCSI adapters",
                std::to_string((config.swap.num_disks + config.swap.disks_per_controller - 1) /
                               config.swap.disks_per_controller)});
  table.AddRow({"disk average seek", tmh::FormatSeconds(tmh::ToSeconds(disk.avg_seek))});
  table.AddRow({"disk half rotation", tmh::FormatSeconds(tmh::ToSeconds(disk.half_rotation))});
  table.AddRow({"disk transfer rate",
                std::to_string(disk.transfer_bytes_per_sec / (1000 * 1000)) + " MB/s"});
  table.AddRow({"page read service time (random)",
                tmh::FormatSeconds(tmh::ToSeconds(disk.avg_seek + disk.half_rotation +
                                                  disk.TransferTime(config.page_size_bytes) +
                                                  disk.controller_overhead))});
  table.AddRow({"scheduler quantum", tmh::FormatSeconds(tmh::ToSeconds(config.quantum))});
  table.AddRow({"min_freemem", std::to_string(config.tunables.min_freemem_pages) + " pages"});
  table.AddRow({"paging daemon period",
                tmh::FormatSeconds(tmh::ToSeconds(config.tunables.daemon_period))});
  table.Print();
  return 0;
}
