// Extension: reactive vs pro-active memory management (Section 2.2).
//
// The paper argues that a reactive scheme (VINO-style: the OS notifies the
// application when pages are about to be reclaimed and lets it pick the
// victims) "benefits applications that can make better replacement decisions
// ... [but] will not help isolate other applications from a memory-intensive
// one — the OS still decides which processes should give up pages." This
// binary tests that argument head-to-head: version V registers an eviction
// handler that serves the compiler's release candidates on demand, instead of
// releasing pro-actively.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: reactive (V) vs pro-active (R/B) releasing", args.scale);

  tmh::ReportTable table({"benchmark", "ver", "exec(s)", "soft-faults", "daemon-stolen",
                          "reactive-evict", "interactive(ms)", "int-hf/sweep"});
  for (const char* name : {"EMBAR", "MATVEC", "BUK"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const tmh::AppVersion version :
           {tmh::AppVersion::kPrefetch, tmh::AppVersion::kReactive, tmh::AppVersion::kRelease,
            tmh::AppVersion::kBuffered}) {
        const tmh::ExperimentResult result =
            tmh::RunBench(info, args.scale, version, /*with_interactive=*/true);
        table.AddRow({info.name, tmh::VersionLabel(version),
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                      tmh::FormatCount(result.app.faults.soft_faults),
                      tmh::FormatCount(result.kernel.daemon_pages_stolen),
                      tmh::FormatCount(result.kernel.reactive_evictions),
                      tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1),
                      tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (the paper's Section 2.2 argument, verified): the reactive\n"
      "version V improves the hog's own execution over P (good self-chosen victims,\n"
      "fewer soft faults) but the paging daemon still runs and the interactive task\n"
      "still suffers; only pro-active releasing (R/B) protects it.\n");
  return 0;
}
