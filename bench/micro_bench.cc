// Micro-benchmarks (google-benchmark) for the substrate's hot paths: the
// event queue, the free list, the residency bitmap, the compiler pass, and a
// small end-to-end experiment. These guard the simulator's own performance,
// which bounds how large a paper-scale experiment is practical.

#include <benchmark/benchmark.h>

#include "src/compiler/compile.h"
#include "src/core/experiment.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/runtime_layer.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/vm/free_list.h"
#include "src/vm/residency_bitmap.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    q.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHalf(benchmark::State& state) {
  // Cancellation is O(1) (generation stamp); the cancelled items then die as
  // stale entries during the radix-wheel drain. Guards both halves.
  std::vector<EventId> ids(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      ids[static_cast<size_t>(i)] = q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    for (int i = 0; i < state.range(0); i += 2) {
      q.Cancel(ids[static_cast<size_t>(i)]);
    }
    q.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancelHalf)->Arg(10000);

void BM_FreeListChurn(benchmark::State& state) {
  const int64_t frames = state.range(0);
  FreeList list(frames);
  for (FrameId f = 0; f < frames; ++f) {
    list.PushTail(f);
  }
  Rng rng(1);
  for (auto _ : state) {
    const FrameId f = list.PopHead();
    if (rng.NextBelow(2) == 0) {
      list.PushTail(f);
    } else {
      list.PushHead(f);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreeListChurn)->Arg(4800);

void BM_BitmapSetTestClear(benchmark::State& state) {
  ResidencyBitmap bitmap(32768);
  Rng rng(2);
  for (auto _ : state) {
    const auto page = static_cast<VPage>(rng.NextBelow(32768));
    bitmap.Set(page);
    benchmark::DoNotOptimize(bitmap.Test(page));
    bitmap.Clear(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapSetTestClear);

void BM_BitmapRangeOps(benchmark::State& state) {
  // Word-wise SetRange/FindFirstResident/ClearRange over region-sized spans —
  // the paging-directed setup/teardown and rescue-scan paths.
  const int64_t pages = 32768;
  const int64_t span = state.range(0);
  ResidencyBitmap bitmap(pages);
  for (auto _ : state) {
    for (int64_t first = 0; first + span <= pages; first += span) {
      bitmap.SetRange(first, span);
      benchmark::DoNotOptimize(bitmap.FindFirstResident(first, span));
      bitmap.ClearRange(first, span);
    }
  }
  state.SetItemsProcessed(state.iterations() * (pages / span) * span * 3);
}
BENCHMARK(BM_BitmapRangeOps)->Arg(512)->Arg(37);

void BM_CompilerPass(benchmark::State& state) {
  const SourceProgram program = MakeMgrid(1.0);  // the most nests and refs
  const MachineConfig machine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileVersion(program, machine, AppVersion::kBuffered));
  }
}
BENCHMARK(BM_CompilerPass);

void BM_InterpreterThroughput(benchmark::State& state) {
  // How fast the interpreter walks a paper-scale streaming nest (ops/sec
  // bounds how large an experiment is practical).
  const SourceProgram source = MakeEmbar(1.0);
  const CompilerTarget target;
  const CompiledProgram program = Compile(source, target, CompileOptions{false, false});
  MachineConfig machine;
  for (auto _ : state) {
    Kernel kernel(machine);
    AddressSpace* as = kernel.CreateAddressSpace(
        "as", (program.layout.total_pages() + source.text_pages) * machine.page_size_bytes);
    as->AddRegion(Region{"data", 0, program.layout.total_pages(), Backing::kSwap});
    as->AddRegion(Region{"text", program.layout.total_pages(), source.text_pages,
                         Backing::kZeroFill});
    Interpreter interp(&program, as, nullptr);
    int64_t ops = 0;
    while (interp.Next(kernel).kind != Op::Kind::kExit) {
      ++ops;
    }
    state.SetItemsProcessed(state.items_processed() + ops);
  }
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void BM_RuntimeHintFiltering(benchmark::State& state) {
  // The hint-check fast path: CGM issues tens of millions of these.
  MachineConfig machine;
  machine.user_memory_bytes = 8 * 1024 * 1024;
  Kernel kernel(machine);
  kernel.StartDaemons();
  AddressSpace* as = kernel.CreateAddressSpace("as", 4 * 1024 * 1024);
  as->AddRegion(Region{"data", 0, as->num_pages(), Backing::kSwap});
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < as->num_pages(); ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  VPage page = 0;
  for (auto _ : state) {
    layer.OnReleaseHint(page, 0, 1, out);
    page = (page + 1) % as->num_pages();
    out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeHintFiltering);

void BM_RuntimeBufferedDrain(benchmark::State& state) {
  // The buffered policy at its worst: every hint buffers a page while the
  // process sits at its recommended limit, so each accept enters MaybeDrain
  // and issues from the per-tag queues (exercising the once-per-drain tag
  // resolution and the hoisted bitmap stale check).
  MachineConfig machine;
  machine.user_memory_bytes = 8 * 1024 * 1024;
  Kernel kernel(machine);
  kernel.StartDaemons();
  AddressSpace* as = kernel.CreateAddressSpace("as", 4 * 1024 * 1024);
  as->AddRegion(Region{"data", 0, as->num_pages(), Backing::kSwap});
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.buffered = true;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  const VPage num_pages = as->num_pages();
  for (VPage p = 0; p < num_pages; ++p) {
    as->bitmap()->Set(p);
  }
  // At the limit: every buffered page triggers a drain pass.
  as->bitmap()->SetHeader(num_pages, num_pages);
  std::vector<Op> out;
  VPage page = 0;
  int32_t tag = 1;
  for (auto _ : state) {
    layer.OnReleaseHint(page, /*priority=*/1, tag, out);
    page = (page + 1) % num_pages;
    tag = 1 + (tag & 3);  // rotate four tags
    out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeBufferedDrain);

void BM_EndToEndExperiment(benchmark::State& state) {
  // A small but complete experiment: compiler + runtime + kernel + disks.
  for (auto _ : state) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = MakeMatvec(0.1);
    spec.version = AppVersion::kBuffered;
    benchmark::DoNotOptimize(RunExperiment(spec));
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmh

BENCHMARK_MAIN();
