// Micro-benchmarks (google-benchmark) for the substrate's hot paths: the
// event queue, the free list, the residency bitmap, the compiler pass, and a
// small end-to-end experiment. These guard the simulator's own performance,
// which bounds how large a paper-scale experiment is practical.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/compiler/compile.h"
#include "src/core/experiment.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/runtime_layer.h"
#include "src/sim/event_queue.h"
#include "src/sim/ring_buffer.h"
#include "src/sim/rng.h"
#include "src/vm/frame_table.h"
#include "src/vm/free_list.h"
#include "src/vm/residency_bitmap.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    q.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHalf(benchmark::State& state) {
  // Cancellation is O(1) (generation stamp); the cancelled items then die as
  // stale entries during the radix-wheel drain. Guards both halves.
  std::vector<EventId> ids(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      ids[static_cast<size_t>(i)] = q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    for (int i = 0; i < state.range(0); i += 2) {
      q.Cancel(ids[static_cast<size_t>(i)]);
    }
    q.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancelHalf)->Arg(10000);

void BM_FreeListChurn(benchmark::State& state) {
  const int64_t frames = state.range(0);
  FreeList list(frames);
  for (FrameId f = 0; f < frames; ++f) {
    list.PushTail(f);
  }
  Rng rng(1);
  for (auto _ : state) {
    const FrameId f = list.PopHead();
    if (rng.NextBelow(2) == 0) {
      list.PushTail(f);
    } else {
      list.PushHead(f);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreeListChurn)->Arg(4800);

void BM_BitmapSetTestClear(benchmark::State& state) {
  ResidencyBitmap bitmap(32768);
  Rng rng(2);
  for (auto _ : state) {
    const auto page = static_cast<VPage>(rng.NextBelow(32768));
    bitmap.Set(page);
    benchmark::DoNotOptimize(bitmap.Test(page));
    bitmap.Clear(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapSetTestClear);

void BM_BitmapRangeOps(benchmark::State& state) {
  // Word-wise SetRange/FindFirstResident/ClearRange over region-sized spans —
  // the paging-directed setup/teardown and rescue-scan paths.
  const int64_t pages = 32768;
  const int64_t span = state.range(0);
  ResidencyBitmap bitmap(pages);
  for (auto _ : state) {
    for (int64_t first = 0; first + span <= pages; first += span) {
      bitmap.SetRange(first, span);
      benchmark::DoNotOptimize(bitmap.FindFirstResident(first, span));
      bitmap.ClearRange(first, span);
    }
  }
  state.SetItemsProcessed(state.iterations() * (pages / span) * span * 3);
}
BENCHMARK(BM_BitmapRangeOps)->Arg(512)->Arg(37);

void BM_FrameTableWordScan(benchmark::State& state) {
  // The paging daemon's batch-gather pattern over the SoA frame table: AND
  // the mapped and ~io_busy planes one 64-bit word at a time, then visit set
  // bits with ctz. This is the layout the AoS->SoA rewrite exists to enable;
  // items = frames examined per pass.
  const int64_t frames = state.range(0);
  FrameTable table(frames);
  Rng rng(3);
  for (FrameId f = 0; f < frames; ++f) {
    table.set_mapped(f, rng.NextBelow(4) != 0);       // ~75% mapped
    table.set_io_busy(f, rng.NextBelow(16) == 0);     // ~6% in flight
    table.set_referenced(f, rng.NextBelow(2) == 0);
  }
  const size_t words = table.num_words();
  const uint64_t* mapped = table.mapped_words();
  const uint64_t* io_busy = table.io_busy_words();
  for (auto _ : state) {
    int64_t eligible = 0;
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = mapped[w] & ~io_busy[w];
      while (bits != 0) {
        const auto f = static_cast<FrameId>(
            static_cast<int64_t>(w) * 64 + __builtin_ctzll(bits));
        bits &= bits - 1;
        eligible += table.referenced(f) ? 0 : 1;
      }
    }
    benchmark::DoNotOptimize(eligible);
  }
  state.SetItemsProcessed(state.iterations() * frames);
}
BENCHMARK(BM_FrameTableWordScan)->Arg(4800)->Arg(32768);

void BM_FrameTablePerFrameScan(benchmark::State& state) {
  // The same scan via per-frame accessor calls (no word-level fusion), kept
  // as the comparison point that shows what the word-parallel path buys.
  const int64_t frames = state.range(0);
  FrameTable table(frames);
  Rng rng(3);
  for (FrameId f = 0; f < frames; ++f) {
    table.set_mapped(f, rng.NextBelow(4) != 0);
    table.set_io_busy(f, rng.NextBelow(16) == 0);
    table.set_referenced(f, rng.NextBelow(2) == 0);
  }
  for (auto _ : state) {
    int64_t eligible = 0;
    for (FrameId f = 0; f < frames; ++f) {
      if (!table.mapped(f) || table.io_busy(f)) {
        continue;
      }
      eligible += table.referenced(f) ? 0 : 1;
    }
    benchmark::DoNotOptimize(eligible);
  }
  state.SetItemsProcessed(state.iterations() * frames);
}
BENCHMARK(BM_FrameTablePerFrameScan)->Arg(4800)->Arg(32768);

void BM_RingBufferChurn(benchmark::State& state) {
  // The release-work queue pattern: small bursts pushed by the releaser's
  // gather, drained by the worker, occupancy near zero but total traffic in
  // the millions. After warm-up the ring never allocates.
  struct Item {
    void* as;
    int64_t vpage;
  };
  RingBuffer<Item> ring;
  const int burst = static_cast<int>(state.range(0));
  int64_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      ring.push_back(Item{nullptr, next++});
    }
    while (!ring.empty()) {
      benchmark::DoNotOptimize(ring.front().vpage);
      ring.pop_front();
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_RingBufferChurn)->Arg(8)->Arg(64);

void BM_CompilerPass(benchmark::State& state) {
  const SourceProgram program = MakeMgrid(1.0);  // the most nests and refs
  const MachineConfig machine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileVersion(program, machine, AppVersion::kBuffered));
  }
}
BENCHMARK(BM_CompilerPass);

void BM_InterpreterThroughput(benchmark::State& state) {
  // How fast the interpreter walks a paper-scale streaming nest (ops/sec
  // bounds how large an experiment is practical).
  const SourceProgram source = MakeEmbar(1.0);
  const CompilerTarget target;
  const CompiledProgram program = Compile(source, target, CompileOptions{false, false});
  MachineConfig machine;
  for (auto _ : state) {
    Kernel kernel(machine);
    AddressSpace* as = kernel.CreateAddressSpace(
        "as", (program.layout.total_pages() + source.text_pages) * machine.page_size_bytes);
    as->AddRegion(Region{"data", 0, program.layout.total_pages(), Backing::kSwap});
    as->AddRegion(Region{"text", program.layout.total_pages(), source.text_pages,
                         Backing::kZeroFill});
    Interpreter interp(&program, as, nullptr);
    int64_t ops = 0;
    while (interp.Next(kernel).kind != Op::Kind::kExit) {
      ++ops;
    }
    state.SetItemsProcessed(state.items_processed() + ops);
  }
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void BM_RuntimeHintFiltering(benchmark::State& state) {
  // The hint-check fast path: CGM issues tens of millions of these.
  MachineConfig machine;
  machine.user_memory_bytes = 8 * 1024 * 1024;
  Kernel kernel(machine);
  kernel.StartDaemons();
  AddressSpace* as = kernel.CreateAddressSpace("as", 4 * 1024 * 1024);
  as->AddRegion(Region{"data", 0, as->num_pages(), Backing::kSwap});
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < as->num_pages(); ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  VPage page = 0;
  for (auto _ : state) {
    layer.OnReleaseHint(page, 0, 1, out);
    page = (page + 1) % as->num_pages();
    out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeHintFiltering);

void BM_RuntimeBufferedDrain(benchmark::State& state) {
  // The buffered policy at its worst: every hint buffers a page while the
  // process sits at its recommended limit, so each accept enters MaybeDrain
  // and issues from the per-tag queues (exercising the once-per-drain tag
  // resolution and the hoisted bitmap stale check).
  MachineConfig machine;
  machine.user_memory_bytes = 8 * 1024 * 1024;
  Kernel kernel(machine);
  kernel.StartDaemons();
  AddressSpace* as = kernel.CreateAddressSpace("as", 4 * 1024 * 1024);
  as->AddRegion(Region{"data", 0, as->num_pages(), Backing::kSwap});
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.buffered = true;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  const VPage num_pages = as->num_pages();
  for (VPage p = 0; p < num_pages; ++p) {
    as->bitmap()->Set(p);
  }
  // At the limit: every buffered page triggers a drain pass.
  as->bitmap()->SetHeader(num_pages, num_pages);
  std::vector<Op> out;
  VPage page = 0;
  int32_t tag = 1;
  for (auto _ : state) {
    layer.OnReleaseHint(page, /*priority=*/1, tag, out);
    page = (page + 1) % num_pages;
    tag = 1 + (tag & 3);  // rotate four tags
    out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeBufferedDrain);

// Emits fused kTouchRun ops (one unit-stride read stream, `steps` pages per
// run) over a cyclic window of `pages`, after an optional per-page warm-up
// phase that makes the whole range resident. The descriptor and cost array
// are reused across ops, exactly as the interpreter reuses its own.
class TouchRunProgram : public Program {
 public:
  TouchRunProgram(int64_t pages, int64_t steps, int64_t runs, bool warm)
      : pages_(pages), steps_(steps), runs_left_(runs), warm_left_(warm ? pages : 0) {
    costs_.assign(static_cast<size_t>(steps), 100);
    desc_.num_refs = 1;
    desc_.refs[0] = TouchRunRef{0, 1, false};
    desc_.steps = steps_;
    desc_.step_cost = costs_.data();
  }

  Op Next(Kernel& kernel) override {
    (void)kernel;
    if (warm_left_ > 0) {
      return Op::Touch(pages_ - warm_left_--, /*write=*/false, 0);
    }
    if (runs_left_ == 0) {
      return Op::Exit();
    }
    --runs_left_;
    desc_.refs[0].base = next_base_;
    desc_.next_step = 0;
    desc_.next_ref = 0;
    next_base_ += steps_;
    if (next_base_ + steps_ > pages_) {
      next_base_ = 0;
    }
    return Op::TouchRun(&desc_);
  }

 private:
  const int64_t pages_;
  const int64_t steps_;
  int64_t runs_left_;
  int64_t warm_left_;
  VPage next_base_ = 0;
  TouchRunDesc desc_;
  std::vector<SimDuration> costs_;
};

void BM_TouchRunResident(benchmark::State& state) {
  // DoTouchRun's bulk path: every page of the span is resident-and-valid, so
  // the kernel validates word-parallel and charges the run in one step. The
  // range is made resident once up front; items = pages validated per run.
  const int64_t pages = 16384;  // 64 MB of 4K pages on the default machine
  const int64_t steps = 64;
  const int64_t runs = 1024;
  MachineConfig machine;
  Kernel kernel(machine);
  AddressSpace* as =
      kernel.CreateAddressSpace("as", pages * machine.page_size_bytes);
  as->AddRegion(Region{"data", 0, pages, Backing::kZeroFill});
  TouchRunProgram warm(pages, steps, /*runs=*/0, /*warm=*/true);
  kernel.RunUntilThreadsDone({kernel.Spawn("warm", as, &warm)});
  std::vector<std::unique_ptr<TouchRunProgram>> programs;
  for (auto _ : state) {
    programs.push_back(
        std::make_unique<TouchRunProgram>(pages, steps, runs, /*warm=*/false));
    kernel.RunUntilThreadsDone({kernel.Spawn("t", as, programs.back().get())});
    state.SetItemsProcessed(state.items_processed() + runs * steps);
  }
}
BENCHMARK(BM_TouchRunResident)->Unit(benchmark::kMicrosecond);

void BM_TouchRunFaulting(benchmark::State& state) {
  // The degraded path: nothing is resident, so the word check fails on the
  // first step and every run is replayed page by page through the zero-fill
  // fault path. Guards the fallback's cursor plumbing and the fault hot path.
  const int64_t pages = 4096;  // 16 MB; each iteration faults every page once
  const int64_t steps = 64;
  MachineConfig machine;
  machine.user_memory_bytes = 32 * 1024 * 1024;
  for (auto _ : state) {
    Kernel kernel(machine);
    AddressSpace* as =
        kernel.CreateAddressSpace("as", pages * machine.page_size_bytes);
    as->AddRegion(Region{"data", 0, pages, Backing::kZeroFill});
    TouchRunProgram program(pages, steps, /*runs=*/pages / steps, /*warm=*/false);
    kernel.RunUntilThreadsDone({kernel.Spawn("t", as, &program)});
    state.SetItemsProcessed(state.items_processed() + pages);
  }
}
BENCHMARK(BM_TouchRunFaulting)->Unit(benchmark::kMicrosecond);

void BM_EndToEndExperiment(benchmark::State& state) {
  // A small but complete experiment: compiler + runtime + kernel + disks.
  for (auto _ : state) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes = static_cast<int64_t>(7.5 * 1024 * 1024);
    spec.workload = MakeMatvec(0.1);
    spec.version = AppVersion::kBuffered;
    benchmark::DoNotOptimize(RunExperiment(spec));
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tmh

BENCHMARK_MAIN();
