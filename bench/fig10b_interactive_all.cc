// Figure 10(b): interactive response time at a five-second sleep, normalized
// to the task running alone, for every benchmark and version.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(b): normalized interactive response, 5 s sleep", args.scale);

  tmh::InteractiveConfig config;
  config.sleep_time = 5 * tmh::kSec;
  const tmh::InteractiveMetrics alone =
      tmh::RunInteractiveAlone(tmh::BenchMachine(args.scale), config, 12);
  std::printf("baseline (alone): %.2f ms mean response\n\n", alone.mean_response_ns / 1e6);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      specs.push_back(tmh::BenchSpec(info, args.scale, version, true, config.sleep_time));
      labels.push_back(info.name + "/" + tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  size_t idx = 0;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (size_t v = 0; v < tmh::AllVersions().size(); ++v) {
      row.push_back(tmh::FormatDouble(
          results[idx++].interactive->mean_response_ns / alone.mean_response_ns, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nValues are multiples of the alone-on-machine response time. Expected shape:\n"
      "O and P degrade the response heavily (P worst); R and B sit at 1.0 — with\n"
      "the paper's one exception reproduced: FFTPDE-B fails to release enough\n"
      "memory (its releases carry false reuse priorities and sit in the buffer)\n"
      "and leaves the interactive task degraded.\n");
  return 0;
}
