// Figure 10(b): interactive response time at a five-second sleep, normalized
// to the task running alone, for every benchmark and version.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(b): normalized interactive response, 5 s sleep", args.scale);

  tmh::InteractiveConfig config;
  config.sleep_time = 5 * tmh::kSec;
  const tmh::InteractiveMetrics alone =
      tmh::RunInteractiveAlone(tmh::BenchMachine(args.scale), config, 12);
  std::printf("baseline (alone): %.2f ms mean response\n\n", alone.mean_response_ns / 1e6);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult result =
          tmh::RunBench(info, args.scale, version, true, config.sleep_time);
      row.push_back(tmh::FormatDouble(
          result.interactive->mean_response_ns / alone.mean_response_ns, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nValues are multiples of the alone-on-machine response time. Expected shape:\n"
      "O and P degrade the response heavily (P worst); R and B sit at 1.0 — with\n"
      "the paper's one exception reproduced: FFTPDE-B fails to release enough\n"
      "memory (its releases carry false reuse priorities and sit in the buffer)\n"
      "and leaves the interactive task degraded.\n");
  return 0;
}
