// Ablation A5: page size. IRIX policy modules let applications pick page
// sizes; the paper fixes 16 KB (Table 1). Larger pages amortize per-fault
// costs and lengthen disk transfers; smaller pages track working sets more
// precisely. MATVEC-B and the interactive task measure both sides.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A5: page size (MATVEC-B + interactive)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  const std::vector<int64_t> page_kbs = {4, 8, 16, 32, 64};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const int64_t kb : page_kbs) {
    tmh::ExperimentSpec spec = tmh::BenchSpec(matvec, args.scale, tmh::AppVersion::kBuffered,
                                              true, 5 * tmh::kSec);
    spec.machine.page_size_bytes = kb * 1024;
    // Keep the interactive data set at 1 MB regardless of page size.
    spec.interactive.data_pages = (1024 / kb);
    specs.push_back(spec);
    labels.push_back("MATVEC/B " + std::to_string(kb) + " KB pages");
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"page size", "exec(s)", "io-stall(s)", "swap-reads",
                          "releaser-freed", "interactive(ms)"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({std::to_string(page_kbs[i]) + " KB",
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.swap_reads),
                  tmh::FormatCount(result.kernel.releaser_pages_freed),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nSmall pages multiply the per-page costs (faults, hints, releases, disk\n"
      "positioning per transfer); large pages cut the request count but move more\n"
      "data per miss. The paper's 16 KB sits near the sweet spot for this array.\n");
  return 0;
}
