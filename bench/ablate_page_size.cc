// Ablation A5: page size. IRIX policy modules let applications pick page
// sizes; the paper fixes 16 KB (Table 1). Larger pages amortize per-fault
// costs and lengthen disk transfers; smaller pages track working sets more
// precisely. MATVEC-B and the interactive task measure both sides.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A5: page size (MATVEC-B + interactive)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  tmh::ReportTable table({"page size", "exec(s)", "io-stall(s)", "swap-reads",
                          "releaser-freed", "interactive(ms)"});
  for (const int64_t kb : {4, 8, 16, 32, 64}) {
    tmh::ExperimentSpec spec;
    spec.machine = tmh::BenchMachine(args.scale);
    spec.machine.page_size_bytes = kb * 1024;
    spec.workload = matvec.factory(args.scale);
    spec.version = tmh::AppVersion::kBuffered;
    spec.with_interactive = true;
    // Keep the interactive data set at 1 MB regardless of page size.
    spec.interactive.data_pages = (1024 / kb);
    spec.interactive.sleep_time = 5 * tmh::kSec;
    const tmh::ExperimentResult result = RunExperiment(spec);
    table.AddRow({std::to_string(kb) + " KB",
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.swap_reads),
                  tmh::FormatCount(result.kernel.releaser_pages_freed),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nSmall pages multiply the per-page costs (faults, hints, releases, disk\n"
      "positioning per transfer); large pages cut the request count but move more\n"
      "data per miss. The paper's 16 KB sits near the sweet spot for this array.\n");
  return 0;
}
