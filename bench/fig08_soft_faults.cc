// Figure 8: soft page faults caused by the paging daemon's periodic
// invalidations (software reference-bit simulation), per benchmark version.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 8: soft page faults from reference-bit invalidations", args.scale);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult result =
          tmh::RunBench(info, args.scale, version, /*with_interactive=*/false);
      row.push_back(tmh::FormatCount(result.app.faults.soft_faults));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape: O and P suffer thousands of invalidation soft faults (the\n"
      "daemon must simulate reference bits in software); with releasing (R/B) the\n"
      "daemon stays idle and the soft faults disappear (Section 4.3).\n");
  return 0;
}
