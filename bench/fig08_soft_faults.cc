// Figure 8: soft page faults caused by the paging daemon's periodic
// invalidations (software reference-bit simulation), per benchmark version.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 8: soft page faults from reference-bit invalidations", args.scale);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      specs.push_back(tmh::BenchSpec(info, args.scale, version, /*with_interactive=*/false));
      labels.push_back(info.name + "/" + tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  size_t idx = 0;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (size_t v = 0; v < tmh::AllVersions().size(); ++v) {
      row.push_back(tmh::FormatCount(results[idx++].app.faults.soft_faults));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape: O and P suffer thousands of invalidation soft faults (the\n"
      "daemon must simulate reference bits in software); with releasing (R/B) the\n"
      "daemon stays idle and the soft faults disappear (Section 4.3).\n");
  return 0;
}
