// Extension: two memory hogs sharing the machine. The paper's introduction
// motivates coexistence ("it would be far more cost-effective if these tasks
// could coexist with other applications in a multiprogrammed environment");
// its evaluation pairs one hog with one interactive task. This binary goes
// one step further: two out-of-core applications plus the interactive task,
// with and without compiler-inserted releases.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: two out-of-core applications sharing the machine", args.scale);

  const tmh::WorkloadInfo& embar = tmh::AllWorkloads()[0];
  const tmh::WorkloadInfo& buk = tmh::AllWorkloads()[2];

  tmh::ReportTable table({"mix", "EMBAR exec(s)", "BUK exec(s)", "daemon-stolen",
                          "interactive(ms)", "int-hf/sweep"});
  struct Mix {
    const char* label;
    tmh::AppVersion a;
    tmh::AppVersion b;
  };
  for (const Mix& mix : {Mix{"P + P", tmh::AppVersion::kPrefetch, tmh::AppVersion::kPrefetch},
                         Mix{"B + P", tmh::AppVersion::kBuffered, tmh::AppVersion::kPrefetch},
                         Mix{"B + B", tmh::AppVersion::kBuffered, tmh::AppVersion::kBuffered}}) {
    tmh::MultiExperimentSpec spec;
    spec.machine = tmh::BenchMachine(args.scale);
    spec.apps.push_back({embar.factory(args.scale), mix.a, {}, false});
    spec.apps.push_back({buk.factory(args.scale), mix.b, {}, false});
    spec.with_interactive = true;
    spec.interactive.sleep_time = 5 * tmh::kSec;
    const tmh::MultiExperimentResult result = RunMultiExperiment(spec);
    if (!result.completed) {
      std::fprintf(stderr, "WARNING: mix %s did not complete\n", mix.label);
    }
    table.AddRow({mix.label,
                  tmh::FormatDouble(tmh::ToSeconds(result.apps[0].times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.apps[1].times.Execution()), 1),
                  tmh::FormatCount(result.kernel.daemon_pages_stolen),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1),
                  tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: with both hogs releasing (B + B), the paging daemon stays\n"
      "idle and the interactive task is protected even under twice the pressure;\n"
      "one non-releasing hog (B + P) is enough to bring the daemon back and hurt\n"
      "everyone — the scheme's benefit is per-application but the damage is global.\n");
  return 0;
}
