// Extension: the hand-tuned oracle baseline. The paper's introduction notes
// that "performance concerns have traditionally forced programmers to
// explicitly manage the I/O in their out-of-core codes" and positions
// compiler automation as matching that effort without the burden. The oracle
// compiles with perfect knowledge — true strides, known bounds — standing in
// for the programmer who knows exactly what the code does. The gap between B
// and the oracle is the price of the analysis's blind spots.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: compiler automation (B) vs hand-tuned oracle", args.scale);

  tmh::ReportTable table({"benchmark", "variant", "exec(s)", "io-stall(s)", "hints-checked",
                          "swap-reads", "daemon-stolen"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const bool oracle : {false, true}) {
      tmh::ExperimentSpec spec;
      spec.machine = tmh::BenchMachine(args.scale);
      spec.workload = info.factory(args.scale);
      spec.version = tmh::AppVersion::kBuffered;
      spec.oracle = oracle;
      const tmh::ExperimentResult result = RunExperiment(spec);
      const tmh::RuntimeStats& rt = *result.app.runtime;
      table.AddRow({info.name, oracle ? "oracle" : "B",
                    tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                    tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                    tmh::FormatCount(rt.prefetch_hints + rt.release_hints),
                    tmh::FormatCount(result.swap_reads),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: for the analyzable benchmarks (EMBAR, MATVEC) the compiler\n"
      "already matches the oracle exactly — the paper's core automation claim. The\n"
      "gap appears where Table 2 predicts difficulty: BUK/CGM/MGRID pay hint-\n"
      "filtering floods the oracle strip-mines away. FFTPDE is the curiosity: the\n"
      "oracle releases its streams honestly and re-reads them, while B's *false*\n"
      "reuse priorities accidentally retain pages the next stage does want —\n"
      "being wrong for the right pages can beat being right.\n");
  return 0;
}
