// Ablation A1: the run-time layer's drain batch size. The paper fixes it at
// 100 pages and notes "we have not experimented with varying this parameter";
// this sweep does.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A1: buffered-release drain batch size (MATVEC, FFTPDE)", args.scale);

  const std::vector<int> batches = {10, 25, 50, 100, 200, 400};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  std::vector<std::string> names;
  for (const char* name : {"MATVEC", "FFTPDE"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const int batch : batches) {
        tmh::ExperimentSpec spec =
            tmh::BenchSpec(info, args.scale, tmh::AppVersion::kBuffered, false);
        spec.runtime.release_batch = batch;
        specs.push_back(spec);
        labels.push_back(info.name + "/B batch " + std::to_string(batch));
        names.push_back(info.name);
      }
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "batch", "exec(s)", "drains", "issued-from-buffer",
                          "stale-dropped", "daemon-stolen"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    const tmh::RuntimeStats& rt = *result.app.runtime;
    table.AddRow({names[i], std::to_string(batches[i % batches.size()]),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatCount(rt.release_drains),
                  tmh::FormatCount(rt.releases_issued_from_buffer),
                  tmh::FormatCount(rt.buffer_stale_dropped),
                  tmh::FormatCount(result.kernel.daemon_pages_stolen)});
  }
  table.Print();
  std::printf(
      "\nSmall batches drain more often but stay responsive; very large batches dump\n"
      "pages the application may still want. The paper's 100 is a reasonable middle.\n");
  return 0;
}
