// Ablation A1: the run-time layer's drain batch size. The paper fixes it at
// 100 pages and notes "we have not experimented with varying this parameter";
// this sweep does.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A1: buffered-release drain batch size (MATVEC, FFTPDE)", args.scale);

  tmh::ReportTable table({"benchmark", "batch", "exec(s)", "drains", "issued-from-buffer",
                          "stale-dropped", "daemon-stolen"});
  for (const char* name : {"MATVEC", "FFTPDE"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const int batch : {10, 25, 50, 100, 200, 400}) {
        tmh::ExperimentSpec spec;
        spec.machine = tmh::BenchMachine(args.scale);
        spec.workload = info.factory(args.scale);
        spec.version = tmh::AppVersion::kBuffered;
        spec.runtime.release_batch = batch;
        const tmh::ExperimentResult result = RunExperiment(spec);
        const tmh::RuntimeStats& rt = *result.app.runtime;
        table.AddRow({info.name, std::to_string(batch),
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                      tmh::FormatCount(rt.release_drains),
                      tmh::FormatCount(rt.releases_issued_from_buffer),
                      tmh::FormatCount(rt.buffer_stale_dropped),
                      tmh::FormatCount(result.kernel.daemon_pages_stolen)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nSmall batches drain more often but stay responsive; very large batches dump\n"
      "pages the application may still want. The paper's 100 is a reasonable middle.\n");
  return 0;
}
