// Figure 10(c): average number of hard page faults (those requiring I/O) the
// interactive task takes per sweep of its data set, per benchmark version.
// The maximum is 65: the whole 1 MB data set plus the program page.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(c): interactive hard faults per sweep, 5 s sleep", args.scale);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      specs.push_back(tmh::BenchSpec(info, args.scale, version, true, 5 * tmh::kSec));
      labels.push_back(info.name + "/" + tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  size_t idx = 0;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (size_t v = 0; v < tmh::AllVersions().size(); ++v) {
      row.push_back(tmh::FormatDouble(results[idx++].interactive->hard_faults_per_sweep, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nMaximum possible is 65 (the task's entire data set paged back in from swap).\n"
      "Expected shape: P pushes the counts toward the maximum; releasing (R/B)\n"
      "drives them to (near) zero — the primary reason for the response-time gap.\n");
  return 0;
}
