// Figure 10(c): average number of hard page faults (those requiring I/O) the
// interactive task takes per sweep of its data set, per benchmark version.
// The maximum is 65: the whole 1 MB data set plus the program page.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(c): interactive hard faults per sweep, 5 s sleep", args.scale);

  tmh::ReportTable table({"benchmark", "O", "P", "R", "B"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult result =
          tmh::RunBench(info, args.scale, version, true, 5 * tmh::kSec);
      row.push_back(tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nMaximum possible is 65 (the task's entire data set paged back in from swap).\n"
      "Expected shape: P pushes the counts toward the maximum; releasing (R/B)\n"
      "drives them to (near) zero — the primary reason for the response-time gap.\n");
  return 0;
}
