// Extension: the three additional out-of-core kernels (RELAX — the paper's
// Section 2.4 worked example, SHUFFLE, SORTMERGE) through the same four
// treatment levels as Figure 7.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/extra.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension workloads: execution breakdown (Figure 7 format)", args.scale);

  tmh::ReportTable table({"benchmark", "ver", "exec(s)", "norm", "io-stall(s)", "hard-faults",
                          "daemon-stolen", "releaser-freed"});
  for (const tmh::WorkloadInfo& info : tmh::ExtraWorkloads()) {
    double base = 0;
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult result =
          tmh::RunBench(info, args.scale, version, /*with_interactive=*/false);
      const double exec = tmh::ToSeconds(result.app.times.Execution());
      if (version == tmh::AppVersion::kOriginal) {
        base = exec;
      }
      table.AddRow({info.name, tmh::VersionLabel(version), tmh::FormatDouble(exec, 1),
                    tmh::FormatDouble(exec / base, 3),
                    tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                    tmh::FormatCount(result.app.faults.hard_faults),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen),
                    tmh::FormatCount(result.kernel.releaser_pages_freed)});
    }
  }
  table.Print();
  std::printf(
      "\nRELAX reproduces the Section 2.4 analysis in the large (one prefetch, one\n"
      "release, three-row working set); SORTMERGE is the friendliest releasing case;\n"
      "SHUFFLE's scattered half can only be managed by the daemon, even with R/B.\n");
  return 0;
}
