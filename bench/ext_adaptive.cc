// Extension: adaptive code generation — the paper's stated future work.
//
// "Ultimately, the solution to the problems experienced by MGRID and FFTPDE
// is to generate more adaptive code" (Section 4.2). With adaptive
// recompilation, an unknown-bound nest is re-specialized at entry once its
// actual trip counts are known: hint evaluation strip-mines to page crossings
// (killing the per-iteration filtering flood CGM suffers from) and the
// locality analysis sees real working-set volumes.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: adaptive recompilation of unknown-bound nests", args.scale);

  tmh::ReportTable table({"benchmark", "variant", "exec(s)", "user(s)", "hints-checked",
                          "recompiles", "swap-reads"});
  for (const char* name : {"CGM", "MGRID", "FFTPDE"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const bool adaptive : {false, true}) {
        tmh::ExperimentSpec spec;
        spec.machine = tmh::BenchMachine(args.scale);
        spec.workload = info.factory(args.scale);
        spec.version = tmh::AppVersion::kBuffered;
        spec.adaptive = adaptive;
        const tmh::ExperimentResult result = RunExperiment(spec);
        const tmh::RuntimeStats& rt = *result.app.runtime;
        table.AddRow({info.name, adaptive ? "B+adaptive" : "B (static)",
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.user), 1),
                      tmh::FormatCount(rt.prefetch_hints + rt.release_hints),
                      tmh::FormatCount(result.app.interp.adaptive_recompiles),
                      tmh::FormatCount(result.swap_reads)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: adaptive variants check orders of magnitude fewer hints\n"
      "(strip-mined emission instead of every-iteration filtering), cutting CGM's\n"
      "and MGRID's user-time overhead with unchanged page traffic. FFTPDE gets\n"
      "WORSE: its problem is a wrong dependence test, not unknown bounds, and\n"
      "specialization makes the compiler trust the bogus reuse even harder (it\n"
      "now suppresses prefetches for 'resident' data that actually streams) —\n"
      "adaptivity is no substitute for correct analysis.\n");
  return 0;
}
