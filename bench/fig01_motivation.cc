// Figure 1: impact of an out-of-core application (MATVEC) on interactive
// response time, across interactive think (sleep) times, for the original
// program and the prefetching-only version — the motivating observation that
// prefetching + global replacement puts the interactive task at a serious
// disadvantage.
//
// The whole grid — six alone-baselines plus twelve experiments — runs on one
// SweepRunner task batch (--jobs N); rows are assembled afterwards on the
// main thread, so the output is byte-identical to the serial run.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 1: interactive response time vs sleep time (MATVEC)", args.scale);

  const std::vector<tmh::SimDuration> sleeps = {0,
                                                1 * tmh::kSec,
                                                2 * tmh::kSec,
                                                5 * tmh::kSec,
                                                10 * tmh::kSec,
                                                20 * tmh::kSec};
  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];

  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  std::vector<tmh::InteractiveMetrics> alone(sleeps.size());
  std::vector<tmh::ExperimentResult> with_o(sleeps.size());
  std::vector<tmh::ExperimentResult> with_p(sleeps.size());
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < sleeps.size(); ++i) {
    const tmh::SimDuration sleep = sleeps[i];
    // Baseline: the interactive task alone on the machine.
    tasks.push_back([&, i, sleep] {
      tmh::InteractiveConfig config;
      config.sleep_time = sleep;
      alone[i] = tmh::RunInteractiveAlone(tmh::BenchMachine(args.scale), config, 12);
    });
    tasks.push_back([&, i, sleep] {
      with_o[i] = tmh::RunExperiment(
          tmh::BenchSpec(matvec, args.scale, tmh::AppVersion::kOriginal, true, sleep),
          &runner.compile_cache());
    });
    tasks.push_back([&, i, sleep] {
      with_p[i] = tmh::RunExperiment(
          tmh::BenchSpec(matvec, args.scale, tmh::AppVersion::kPrefetch, true, sleep),
          &runner.compile_cache());
    });
  }
  runner.RunTasks(std::move(tasks));

  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < sleeps.size(); ++i) {
    tmh::WarnIncomplete(matvec.name + "/O", with_o[i]);
    tmh::WarnIncomplete(matvec.name + "/P", with_p[i]);
    rows.push_back({tmh::ToSeconds(sleeps[i]), alone[i].mean_response_ns / 1e6,
                    with_o[i].interactive->mean_response_ns / 1e6,
                    with_p[i].interactive->mean_response_ns / 1e6,
                    with_o[i].interactive->mean_fault_service_ns / 1e6,
                    with_p[i].interactive->mean_fault_service_ns / 1e6});
  }
  tmh::PrintSeries("mean interactive response time (ms) vs sleep time (s)",
                   {"sleep_s", "alone_ms", "with_original_ms", "with_prefetch_ms",
                    "fault_svc_O_ms", "fault_svc_P_ms"},
                   rows);
  std::printf(
      "Expected shape: the 'alone' curve is flat and tiny; 'original' grows with the\n"
      "sleep time as the paging daemon erodes the sleeping task's pages; 'prefetch'\n"
      "rises earlier, faster, and to a higher level (Section 1.1). The fault-service\n"
      "columns show the second mechanism: under the prefetching hog, each of the\n"
      "task's page-ins also waits behind a queue of outstanding prefetch reads.\n");
  return 0;
}
