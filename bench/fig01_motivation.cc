// Figure 1: impact of an out-of-core application (MATVEC) on interactive
// response time, across interactive think (sleep) times, for the original
// program and the prefetching-only version — the motivating observation that
// prefetching + global replacement puts the interactive task at a serious
// disadvantage.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 1: interactive response time vs sleep time (MATVEC)", args.scale);

  const std::vector<tmh::SimDuration> sleeps = {0,
                                                1 * tmh::kSec,
                                                2 * tmh::kSec,
                                                5 * tmh::kSec,
                                                10 * tmh::kSec,
                                                20 * tmh::kSec};
  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];

  std::vector<std::vector<double>> rows;
  for (const tmh::SimDuration sleep : sleeps) {
    // Baseline: the interactive task alone on the machine.
    tmh::InteractiveConfig config;
    config.sleep_time = sleep;
    const tmh::InteractiveMetrics alone =
        tmh::RunInteractiveAlone(tmh::BenchMachine(args.scale), config, 12);
    const tmh::ExperimentResult with_o =
        tmh::RunBench(matvec, args.scale, tmh::AppVersion::kOriginal, true, sleep);
    const tmh::ExperimentResult with_p =
        tmh::RunBench(matvec, args.scale, tmh::AppVersion::kPrefetch, true, sleep);
    rows.push_back({tmh::ToSeconds(sleep), alone.mean_response_ns / 1e6,
                    with_o.interactive->mean_response_ns / 1e6,
                    with_p.interactive->mean_response_ns / 1e6,
                    with_o.interactive->mean_fault_service_ns / 1e6,
                    with_p.interactive->mean_fault_service_ns / 1e6});
  }
  tmh::PrintSeries("mean interactive response time (ms) vs sleep time (s)",
                   {"sleep_s", "alone_ms", "with_original_ms", "with_prefetch_ms",
                    "fault_svc_O_ms", "fault_svc_P_ms"},
                   rows);
  std::printf(
      "Expected shape: the 'alone' curve is flat and tiny; 'original' grows with the\n"
      "sleep time as the paging daemon erodes the sleeping task's pages; 'prefetch'\n"
      "rises earlier, faster, and to a higher level (Section 1.1). The fault-service\n"
      "columns show the second mechanism: under the prefetching hog, each of the\n"
      "task's page-ins also waits behind a queue of outstanding prefetch reads.\n");
  return 0;
}
