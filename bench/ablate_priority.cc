// Ablation A3: does the buffered policy's priority machinery matter, and in
// which order should a near-limit drain empty a tag's queue? Compares:
//   R          — aggressive releasing (no buffering at all)
//   B/fifo     — buffered, drains issue the oldest buffered pages (default)
//   B/mru      — buffered, drains issue the newest buffered pages
// on MATVEC (true reuse: buffering should win) and FFTPDE (false reuse:
// buffering should not help and can hurt).
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A3: release buffering and drain order", args.scale);

  struct Config {
    const char* label;
    tmh::AppVersion version;
    bool newest_first;
  };
  const std::vector<Config> configs = {{"R", tmh::AppVersion::kRelease, false},
                                       {"B/fifo", tmh::AppVersion::kBuffered, false},
                                       {"B/mru", tmh::AppVersion::kBuffered, true}};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  std::vector<std::string> names;
  for (const char* name : {"MATVEC", "FFTPDE"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const Config& config : configs) {
        tmh::ExperimentSpec spec = tmh::BenchSpec(info, args.scale, config.version, true);
        spec.runtime.drain_newest_first = config.newest_first;
        specs.push_back(spec);
        labels.push_back(info.name + "/" + config.label);
        names.push_back(info.name);
      }
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "policy", "exec(s)", "io-stall(s)", "swap-reads",
                          "rescued", "interactive(ms)"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({names[i], configs[i % configs.size()].label,
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.swap_reads),
                  tmh::FormatCount(result.kernel.rescued_release_freed),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: for MATVEC buffering avoids re-fetching the reused vector\n"
      "(fewer swap reads than R) regardless of drain order; for FFTPDE the buffered\n"
      "pages have no real reuse, so buffering buys nothing over R.\n");
  return 0;
}
