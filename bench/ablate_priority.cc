// Ablation A3: does the buffered policy's priority machinery matter, and in
// which order should a near-limit drain empty a tag's queue? Compares:
//   R          — aggressive releasing (no buffering at all)
//   B/fifo     — buffered, drains issue the oldest buffered pages (default)
//   B/mru      — buffered, drains issue the newest buffered pages
// on MATVEC (true reuse: buffering should win) and FFTPDE (false reuse:
// buffering should not help and can hurt).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A3: release buffering and drain order", args.scale);

  tmh::ReportTable table({"benchmark", "policy", "exec(s)", "io-stall(s)", "swap-reads",
                          "rescued", "interactive(ms)"});
  for (const char* name : {"MATVEC", "FFTPDE"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      struct Config {
        const char* label;
        tmh::AppVersion version;
        bool newest_first;
      };
      for (const Config& config : {Config{"R", tmh::AppVersion::kRelease, false},
                                   Config{"B/fifo", tmh::AppVersion::kBuffered, false},
                                   Config{"B/mru", tmh::AppVersion::kBuffered, true}}) {
        tmh::ExperimentSpec spec;
        spec.machine = tmh::BenchMachine(args.scale);
        spec.workload = info.factory(args.scale);
        spec.version = config.version;
        spec.runtime.drain_newest_first = config.newest_first;
        spec.with_interactive = true;
        spec.interactive.sleep_time = 5 * tmh::kSec;
        const tmh::ExperimentResult result = RunExperiment(spec);
        table.AddRow({info.name, config.label,
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                      tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                      tmh::FormatCount(result.swap_reads),
                      tmh::FormatCount(result.kernel.rescued_release_freed),
                      tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: for MATVEC buffering avoids re-fetching the reused vector\n"
      "(fewer swap reads than R) regardless of drain order; for FFTPDE the buffered\n"
      "pages have no real reuse, so buffering buys nothing over R.\n");
  return 0;
}
