// Figure 9: breakdown of outcomes for freed pages — what fraction were freed
// by the paging daemon vs by explicit releases, and how many of each were
// rescued from the free list (freed too early).
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 9: breakdown of outcomes for freed pages", args.scale);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      specs.push_back(tmh::BenchSpec(info, args.scale, version, /*with_interactive=*/false));
      labels.push_back(info.name + "/" + tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "ver", "freed-daemon", "freed-release", "%release",
                          "rescued-of-daemon", "rescued-of-release", "%rescued"});
  size_t idx = 0;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult& result = results[idx++];
      const double stolen = static_cast<double>(result.kernel.daemon_pages_stolen);
      const double released = static_cast<double>(result.kernel.releaser_pages_freed);
      const double total = stolen + released;
      const double rescued = static_cast<double>(result.kernel.rescued_daemon_freed +
                                                 result.kernel.rescued_release_freed);
      table.AddRow({info.name, tmh::VersionLabel(version),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen),
                    tmh::FormatCount(result.kernel.releaser_pages_freed),
                    tmh::FormatDouble(total > 0 ? 100.0 * released / total : 0.0, 1),
                    tmh::FormatCount(result.kernel.rescued_daemon_freed),
                    tmh::FormatCount(result.kernel.rescued_release_freed),
                    tmh::FormatDouble(total > 0 ? 100.0 * rescued / total : 0.0, 1)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: with releasing, almost all frees come from explicit releases\n"
      "and few pages are rescued — except MGRID, whose single-version code releases\n"
      "pages the next sweep reuses (large rescued-of-release), and BUK's O/P\n"
      "versions, where the daemon frees pages that were still in use (rescues).\n");
  return 0;
}
