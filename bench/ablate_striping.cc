// Ablation A6: swap stripe width. Prefetching hides latency only as far as
// the disk array's parallelism allows (Section 3.3 builds the pthread pool
// precisely to exploit it); this sweep shrinks the paper's ten-disk array.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A6: swap stripe width (MATVEC, versions O and B)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  tmh::ReportTable table({"disks", "O exec(s)", "B exec(s)", "speedup", "B io-stall(s)"});
  for (const int disks : {1, 2, 4, 6, 10}) {
    auto run = [&](tmh::AppVersion version) {
      tmh::ExperimentSpec spec;
      spec.machine = tmh::BenchMachine(args.scale);
      spec.machine.swap.num_disks = disks;
      spec.workload = matvec.factory(args.scale);
      spec.version = version;
      return RunExperiment(spec);
    };
    const tmh::ExperimentResult o = run(tmh::AppVersion::kOriginal);
    const tmh::ExperimentResult b = run(tmh::AppVersion::kBuffered);
    const double o_exec = tmh::ToSeconds(o.app.times.Execution());
    const double b_exec = tmh::ToSeconds(b.app.times.Execution());
    table.AddRow({std::to_string(disks), tmh::FormatDouble(o_exec, 1),
                  tmh::FormatDouble(b_exec, 1), tmh::FormatDouble(o_exec / b_exec, 1),
                  tmh::FormatDouble(tmh::ToSeconds(b.app.times.io_stall), 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the original version barely notices extra spindles (its\n"
      "faults are serial), while prefetch+release scales with the stripe until\n"
      "compute becomes the bottleneck — the cost-effectiveness argument for\n"
      "pairing prefetching with a wide, cheap disk array.\n");
  return 0;
}
