// Ablation A6: swap stripe width. Prefetching hides latency only as far as
// the disk array's parallelism allows (Section 3.3 builds the pthread pool
// precisely to exploit it); this sweep shrinks the paper's ten-disk array.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A6: swap stripe width (MATVEC, versions O and B)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  const std::vector<int> disk_counts = {1, 2, 4, 6, 10};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const int disks : disk_counts) {
    for (const tmh::AppVersion version :
         {tmh::AppVersion::kOriginal, tmh::AppVersion::kBuffered}) {
      tmh::ExperimentSpec spec = tmh::BenchSpec(matvec, args.scale, version, false);
      spec.machine.swap.num_disks = disks;
      specs.push_back(spec);
      labels.push_back("MATVEC/" + std::string(tmh::VersionLabel(version)) + " disks " +
                       std::to_string(disks));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"disks", "O exec(s)", "B exec(s)", "speedup", "B io-stall(s)"});
  for (size_t i = 0; i < disk_counts.size(); ++i) {
    const tmh::ExperimentResult& o = results[2 * i];
    const tmh::ExperimentResult& b = results[2 * i + 1];
    const double o_exec = tmh::ToSeconds(o.app.times.Execution());
    const double b_exec = tmh::ToSeconds(b.app.times.Execution());
    table.AddRow({std::to_string(disk_counts[i]), tmh::FormatDouble(o_exec, 1),
                  tmh::FormatDouble(b_exec, 1), tmh::FormatDouble(o_exec / b_exec, 1),
                  tmh::FormatDouble(tmh::ToSeconds(b.app.times.io_stall), 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the original version barely notices extra spindles (its\n"
      "faults are serial), while prefetch+release scales with the stripe until\n"
      "compute becomes the bottleneck — the cost-effectiveness argument for\n"
      "pairing prefetching with a wide, cheap disk array.\n");
  return 0;
}
