// Ablation A2: free-list rescue. The releaser puts freed pages at the TAIL of
// the free list so that too-early releases can be rescued before reallocation
// (Section 3.1.2). This ablation pushes them at the head instead, destroying
// most of the rescue window, and measures what that costs MGRID — the
// benchmark whose single-version code releases pages the next sweep reuses.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A2: released pages to free-list tail vs head", args.scale);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  std::vector<std::string> names;
  std::vector<bool> tails;
  for (const char* name : {"MGRID", "BUK"}) {
    for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
      if (info.name != name) {
        continue;
      }
      for (const bool to_tail : {true, false}) {
        tmh::ExperimentSpec spec =
            tmh::BenchSpec(info, args.scale, tmh::AppVersion::kRelease, false);
        spec.machine.tunables.release_to_tail = to_tail;
        specs.push_back(spec);
        labels.push_back(info.name + "/R " + (to_tail ? "tail" : "head"));
        names.push_back(info.name);
        tails.push_back(to_tail);
      }
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "insert", "exec(s)", "rescued-releases", "hard-faults",
                          "swap-reads"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({names[i], tails[i] ? "tail (paper)" : "head",
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatCount(result.kernel.rescued_release_freed),
                  tmh::FormatCount(result.app.faults.hard_faults),
                  tmh::FormatCount(result.swap_reads)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: head insertion removes the rescue window, so too-early\n"
      "releases turn into real page-ins (more hard faults and swap reads).\n");
  return 0;
}
