// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts an optional first argument: the workload scale in
// (0, 1], default 1.0 (paper scale). Smaller scales shrink both the data sets
// and the machine proportionally, preserving the out-of-core ratio, for quick
// looks at the shapes.

#ifndef TMH_BENCH_BENCH_UTIL_H_
#define TMH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workloads.h"

namespace tmh {

struct BenchArgs {
  double scale = 1.0;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  if (argc > 1) {
    args.scale = std::atof(argv[1]);
    if (args.scale <= 0.0 || args.scale > 1.0) {
      std::fprintf(stderr, "scale must be in (0, 1]; got %s\n", argv[1]);
      std::exit(2);
    }
  }
  return args;
}

// The simulated machine, shrunk with the workload so it stays out-of-core.
inline MachineConfig BenchMachine(double scale) {
  MachineConfig config;
  config.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(config.user_memory_bytes) * scale);
  return config;
}

inline ExperimentResult RunBench(const WorkloadInfo& info, double scale, AppVersion version,
                                 bool with_interactive, SimDuration sleep = 5 * kSec) {
  ExperimentSpec spec;
  spec.machine = BenchMachine(scale);
  spec.workload = info.factory(scale);
  spec.version = version;
  spec.with_interactive = with_interactive;
  spec.interactive.sleep_time = sleep;
  const ExperimentResult result = RunExperiment(spec);
  if (!result.completed) {
    std::fprintf(stderr, "WARNING: %s/%s did not complete within the event budget\n",
                 info.name.c_str(), VersionLabel(version));
  }
  return result;
}

inline void PrintHeader(const char* what, double scale) {
  std::printf("=== %s ===\n", what);
  std::printf("(simulated SGI Origin 200, %.1f MB user memory, 10-disk striped swap; "
              "workload scale %.2f)\n\n",
              75.0 * scale, scale);
}

}  // namespace tmh

#endif  // TMH_BENCH_BENCH_UTIL_H_
