// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts an optional first argument: the workload scale in
// (0, 1], default 1.0 (paper scale). Smaller scales shrink both the data sets
// and the machine proportionally, preserving the out-of-core ratio, for quick
// looks at the shapes.
//
// Binaries whose experiment grid runs on a SweepRunner additionally accept
// `--jobs N` (default: all cores). Results are always collected in submission
// order and rendered on the main thread, so the printed tables are
// byte-identical for every jobs value.

#ifndef TMH_BENCH_BENCH_UTIL_H_
#define TMH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/workloads/workloads.h"

namespace tmh {

struct BenchArgs {
  double scale = 1.0;
  int jobs = 0;  // sweep worker threads; 0 = all cores
  // --no-fuse: run the interpreter's unfused per-touch path. The fused and
  // unfused streams are bit-for-bit equivalent, so every table must come out
  // byte-identical either way — the golden_*_runpath_identical tests pin that.
  bool fuse_touch_runs = true;
  // --tiers N: total memory tiers. 1 is the degenerate {DRAM} config, which
  // must leave every table byte-identical to the tierless default (the
  // golden_*_tiers1_identical tests pin that); N > 1 adds N-1 slow tiers of
  // half the DRAM frame count each, turning releases into demotions.
  int tiers = 0;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  bool have_scale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-fuse") == 0) {
      args.fuse_touch_runs = false;
    } else if (std::strcmp(argv[i], "--tiers") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--tiers requires a value\n");
        std::exit(2);
      }
      args.tiers = std::atoi(argv[++i]);
      if (args.tiers < 1 || args.tiers > 4) {
        std::fprintf(stderr, "--tiers must be in [1, 4]; got %s\n", argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs requires a value\n");
        std::exit(2);
      }
      args.jobs = std::atoi(argv[++i]);
      if (args.jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0; got %s\n", argv[i]);
        std::exit(2);
      }
    } else if (!have_scale) {
      args.scale = std::atof(argv[i]);
      have_scale = true;
      if (args.scale <= 0.0 || args.scale > 1.0) {
        std::fprintf(stderr, "scale must be in (0, 1]; got %s\n", argv[i]);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "unexpected argument '%s' (usage: [scale] [--jobs N] [--no-fuse] "
                   "[--tiers N])\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return args;
}

// The simulated machine, shrunk with the workload so it stays out-of-core.
inline MachineConfig BenchMachine(double scale) {
  MachineConfig config;
  config.user_memory_bytes =
      static_cast<int64_t>(static_cast<double>(config.user_memory_bytes) * scale);
  return config;
}

// Applies --tiers to a bench machine: total_tiers <= 1 leaves the config
// untouched (1 = the degenerate {DRAM} entry, semantically identical to none);
// each added slow tier holds half the DRAM frame count at default costs.
inline void ApplyTierGeometry(MachineConfig& config, int total_tiers) {
  if (total_tiers < 1) {
    return;
  }
  config.tiers.push_back(TierSpec{});  // tiers[0] = DRAM
  for (int t = 1; t < total_tiers; ++t) {
    TierSpec tier;
    tier.frames = config.num_frames() / 2;
    config.tiers.push_back(tier);
  }
}

// The spec RunBench builds, exposed so grids can be batched onto a
// SweepRunner instead of run one at a time.
inline ExperimentSpec BenchSpec(const WorkloadInfo& info, double scale, AppVersion version,
                                bool with_interactive, SimDuration sleep = 5 * kSec,
                                bool fuse_touch_runs = true) {
  ExperimentSpec spec;
  spec.machine = BenchMachine(scale);
  spec.workload = info.factory(scale);
  spec.version = version;
  spec.with_interactive = with_interactive;
  spec.interactive.sleep_time = sleep;
  spec.fuse_touch_runs = fuse_touch_runs;
  return spec;
}

inline void WarnIncomplete(const std::string& label, const ExperimentResult& result) {
  if (!result.completed) {
    std::fprintf(stderr, "WARNING: %s did not complete within the event budget\n",
                 label.c_str());
  }
}

// Fans the grid out over the runner's pool and reports incompletions (on
// stderr, in submission order) once the pool has joined.
inline std::vector<ExperimentResult> RunBenchSweep(SweepRunner& runner,
                                                   const std::vector<ExperimentSpec>& specs,
                                                   const std::vector<std::string>& labels) {
  std::vector<ExperimentResult> results = runner.Run(specs);
  for (size_t i = 0; i < results.size(); ++i) {
    WarnIncomplete(i < labels.size() ? labels[i] : "experiment", results[i]);
  }
  return results;
}

inline ExperimentResult RunBench(const WorkloadInfo& info, double scale, AppVersion version,
                                 bool with_interactive, SimDuration sleep = 5 * kSec) {
  const ExperimentResult result = RunExperiment(BenchSpec(info, scale, version,
                                                          with_interactive, sleep));
  WarnIncomplete(info.name + "/" + VersionLabel(version), result);
  return result;
}

inline void PrintHeader(const char* what, double scale) {
  std::printf("=== %s ===\n", what);
  std::printf("(simulated SGI Origin 200, %.1f MB user memory, 10-disk striped swap; "
              "workload scale %.2f)\n\n",
              75.0 * scale, scale);
}

}  // namespace tmh

#endif  // TMH_BENCH_BENCH_UTIL_H_
