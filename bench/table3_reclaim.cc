// Table 3: page reclamation and allocation activity — how much work the
// paging daemon performs with and without explicit releasing.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Table 3: paging daemon vs releaser activity (O vs P+R)", args.scale);

  tmh::ReportTable table({"benchmark", "ver", "daemon-activations", "pages-stolen",
                          "releaser-pages-freed", "releases-skipped", "allocations"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version :
         {tmh::AppVersion::kOriginal, tmh::AppVersion::kRelease}) {
      const tmh::ExperimentResult result =
          tmh::RunBench(info, args.scale, version, /*with_interactive=*/false);
      table.AddRow({info.name, tmh::VersionLabel(version),
                    tmh::FormatCount(result.kernel.daemon_activations),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen),
                    tmh::FormatCount(result.kernel.releaser_pages_freed),
                    tmh::FormatCount(result.kernel.releaser_skipped),
                    tmh::FormatCount(result.kernel.allocations)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: releasing cuts the daemon's activations and stolen pages by\n"
      "a large factor (one to two orders of magnitude for the easy benchmarks), with\n"
      "the releaser doing the reclamation instead; total allocations stay similar.\n");
  return 0;
}
