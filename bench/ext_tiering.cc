// Extension: release-as-demotion on a multi-level memory hierarchy.
//
// The paper's releases drop frames to the free list; a too-early release is
// survivable only while the frame lingers there (the rescue window). On a
// tiered machine (DRAM + slower-but-cheaper tiers, CXL-style) the same hint
// can do better: demote the page's contents into a slow tier chosen by its
// Eq. 2 reuse priority, so a mispredicted release costs one promotion
// migration instead of a disk round trip. This binary re-runs the release-
// treated hogs with the interactive task across tier geometries:
//
//   flat     no slow tiers (the paper's machine; releases free frames)
//   2-tier   one slow tier of half the DRAM frame count
//   3-tier   two such tiers (releases sink by priority, evictions cascade)
//
// The figures of merit are the hog's hard faults (disk reads a demoted page
// avoided) against the promotion traffic that replaced them, and where the
// hierarchy spills (evictions, tier writebacks) once a tier fills up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/extra.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: releases as demotions on a tiered memory hierarchy",
                   args.scale);

  const struct {
    const char* label;
    int total_tiers;
  } kGeometries[] = {{"flat", 1}, {"2-tier", 2}, {"3-tier", 3}};
  const tmh::AppVersion kVersions[] = {tmh::AppVersion::kRelease,
                                       tmh::AppVersion::kBuffered};

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const char* name : {"MATVEC", "BUK"}) {
    const tmh::WorkloadInfo* info = tmh::FindWorkload(name);
    if (info == nullptr) {
      continue;
    }
    for (const tmh::AppVersion version : kVersions) {
      for (const auto& geometry : kGeometries) {
        specs.push_back(tmh::BenchSpec(*info, args.scale, version,
                                       /*with_interactive=*/true,
                                       /*sleep=*/5 * tmh::kSec, args.fuse_touch_runs));
        tmh::ApplyTierGeometry(specs.back().machine, geometry.total_tiers);
        labels.push_back(std::string(info->name) + "/" +
                         tmh::VersionLabel(version) + "/" + geometry.label);
      }
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results =
      tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "ver", "tiers", "exec(s)", "hard-faults",
                          "demotions", "promotions", "evictions", "tier-wb",
                          "swap-reads", "interactive(ms)"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    // labels[i] is "NAME/ver/geometry"; split it back apart for the table.
    const std::string& label = labels[i];
    const size_t first = label.find('/');
    const size_t second = label.find('/', first + 1);
    table.AddRow({label.substr(0, first),
                  label.substr(first + 1, second - first - 1), label.substr(second + 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatCount(result.app.faults.hard_faults),
                  tmh::FormatCount(result.kernel.tier_demotions),
                  tmh::FormatCount(result.kernel.tier_promotions),
                  tmh::FormatCount(result.kernel.tier_evictions),
                  tmh::FormatCount(result.kernel.tier_writebacks),
                  tmh::FormatCount(result.swap_reads),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: on flat machines releases free frames (zero migration\n"
      "columns). With tiers every release demotes instead; pages the app re-touches\n"
      "come back as promotions (microsecond migrations) rather than rescue-or-disk,\n"
      "so hard faults and swap reads fall. Aggressive releasing (R), which loses to\n"
      "buffering (B) on the flat machine because its mispredicted releases miss the\n"
      "rescue window, recovers most of that gap — the slow tier is a rescue window\n"
      "that does not expire. Once the working set outgrows a tier, evictions cascade\n"
      "and tier writebacks appear: the hierarchy degrades toward the flat machine\n"
      "instead of falling off a cliff.\n");
  return 0;
}
