// Figure 10(a): average interactive response time across sleep times when
// running concurrently with each version of MATVEC, against the
// alone-on-the-machine baseline.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(a): interactive response vs sleep time, MATVEC O/P/R/B",
                   args.scale);

  const std::vector<tmh::SimDuration> sleeps = {1 * tmh::kSec, 2 * tmh::kSec, 5 * tmh::kSec,
                                                10 * tmh::kSec, 20 * tmh::kSec};
  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];

  std::vector<std::vector<double>> rows;
  for (const tmh::SimDuration sleep : sleeps) {
    tmh::InteractiveConfig config;
    config.sleep_time = sleep;
    const tmh::InteractiveMetrics alone =
        tmh::RunInteractiveAlone(tmh::BenchMachine(args.scale), config, 12);
    std::vector<double> row = {tmh::ToSeconds(sleep), alone.mean_response_ns / 1e6};
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult result =
          tmh::RunBench(matvec, args.scale, version, true, sleep);
      row.push_back(result.interactive->mean_response_ns / 1e6);
    }
    rows.push_back(row);
  }
  tmh::PrintSeries("mean interactive response time (ms)",
                   {"sleep_s", "alone", "O", "P", "R", "B"}, rows);
  std::printf(
      "Expected shape: O and (worse) P inflate the response time as sleep grows;\n"
      "R and B track the 'alone' curve almost perfectly at every sleep time.\n");
  return 0;
}
