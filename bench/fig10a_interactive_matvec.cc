// Figure 10(a): average interactive response time across sleep times when
// running concurrently with each version of MATVEC, against the
// alone-on-the-machine baseline.
//
// The grid — five alone-baselines plus 5x4 experiments — runs on one
// SweepRunner task batch (--jobs N); rows are assembled afterwards on the
// main thread, so the output is byte-identical to the serial run.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 10(a): interactive response vs sleep time, MATVEC O/P/R/B",
                   args.scale);

  const std::vector<tmh::SimDuration> sleeps = {1 * tmh::kSec, 2 * tmh::kSec, 5 * tmh::kSec,
                                                10 * tmh::kSec, 20 * tmh::kSec};
  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  const std::vector<tmh::AppVersion>& versions = tmh::AllVersions();

  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  std::vector<tmh::InteractiveMetrics> alone(sleeps.size());
  std::vector<tmh::ExperimentResult> with_version(sleeps.size() * versions.size());
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < sleeps.size(); ++i) {
    const tmh::SimDuration sleep = sleeps[i];
    tasks.push_back([&, i, sleep] {
      tmh::InteractiveConfig config;
      config.sleep_time = sleep;
      tmh::MachineConfig machine = tmh::BenchMachine(args.scale);
      tmh::ApplyTierGeometry(machine, args.tiers);
      alone[i] = tmh::RunInteractiveAlone(machine, config, 12);
    });
    for (size_t v = 0; v < versions.size(); ++v) {
      const tmh::AppVersion version = versions[v];
      tasks.push_back([&, i, v, sleep, version] {
        tmh::ExperimentSpec spec = tmh::BenchSpec(matvec, args.scale, version, true, sleep);
        tmh::ApplyTierGeometry(spec.machine, args.tiers);
        with_version[i * versions.size() + v] =
            tmh::RunExperiment(spec, &runner.compile_cache());
      });
    }
  }
  runner.RunTasks(std::move(tasks));

  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < sleeps.size(); ++i) {
    std::vector<double> row = {tmh::ToSeconds(sleeps[i]), alone[i].mean_response_ns / 1e6};
    for (size_t v = 0; v < versions.size(); ++v) {
      const tmh::ExperimentResult& result = with_version[i * versions.size() + v];
      tmh::WarnIncomplete(matvec.name + "/" + tmh::VersionLabel(versions[v]), result);
      row.push_back(result.interactive->mean_response_ns / 1e6);
    }
    rows.push_back(row);
  }
  tmh::PrintSeries("mean interactive response time (ms)",
                   {"sleep_s", "alone", "O", "P", "R", "B"}, rows);
  std::printf(
      "Expected shape: O and (worse) P inflate the response time as sleep grows;\n"
      "R and B track the 'alone' curve almost perfectly at every sleep time.\n");
  return 0;
}
