// Figure 7: execution time of the out-of-core applications, normalized to the
// original program, broken into user / system / resource-stall / I/O-stall
// components, for versions O (original), P (prefetch), R (+aggressive
// release), B (+release buffering).
//
// The 6x4 grid runs on a SweepRunner (all cores by default; --jobs N to
// override); the table is rendered from the in-order results afterwards, so
// the output is byte-identical to the serial run.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Figure 7: normalized execution time breakdown", args.scale);

  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      specs.push_back(tmh::BenchSpec(info, args.scale, version, /*with_interactive=*/false,
                                     /*sleep=*/5 * tmh::kSec, args.fuse_touch_runs));
      tmh::ApplyTierGeometry(specs.back().machine, args.tiers);
      labels.push_back(info.name + "/" + tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"benchmark", "ver", "exec(s)", "norm", "user", "system", "res-stall",
                          "io-stall", "hard-faults"});
  size_t idx = 0;
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    double base = 0;
    for (const tmh::AppVersion version : tmh::AllVersions()) {
      const tmh::ExperimentResult& result = results[idx++];
      const tmh::TimeBreakdown& t = result.app.times;
      const double exec = tmh::ToSeconds(t.Execution());
      if (version == tmh::AppVersion::kOriginal) {
        base = exec;
      }
      auto frac = [&](tmh::SimDuration d) {
        return tmh::FormatDouble(tmh::ToSeconds(d) / base, 3);
      };
      table.AddRow({info.name, tmh::VersionLabel(version), tmh::FormatDouble(exec, 1),
                    tmh::FormatDouble(exec / base, 3), frac(t.user), frac(t.system),
                    frac(t.resource_stall), frac(t.io_stall),
                    tmh::FormatCount(result.app.faults.hard_faults)});
    }
  }
  table.Print();
  std::printf(
      "\nColumns user..io-stall are fractions of the ORIGINAL version's execution time\n"
      "(they sum to the 'norm' column). Expected shape: P eliminates most of O's I/O\n"
      "stall; R/B additionally remove the daemon-interference stall and soft-fault\n"
      "system time; MATVEC: aggressive releasing (R) hurts, buffering (B) shines.\n");
  return 0;
}
