// Ablation A7: demand-fault read-ahead clustering. IRIX-style klustering is
// the obvious "cheap fix" for a sequential out-of-core program: would simple
// OS read-ahead make compiler-inserted prefetching unnecessary — and does it
// do anything for the interactive task?
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A7: fault read-ahead (klustering) vs compiler prefetching",
                   args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  struct Config {
    const char* label;
    tmh::AppVersion version;
    int64_t readahead;
  };
  const std::vector<Config> configs = {{"O, no read-ahead", tmh::AppVersion::kOriginal, 0},
                                       {"O, read-ahead 2", tmh::AppVersion::kOriginal, 2},
                                       {"O, read-ahead 4", tmh::AppVersion::kOriginal, 4},
                                       {"O, read-ahead 8", tmh::AppVersion::kOriginal, 8},
                                       {"B, no read-ahead", tmh::AppVersion::kBuffered, 0}};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const Config& config : configs) {
    tmh::ExperimentSpec spec = tmh::BenchSpec(matvec, args.scale, config.version, true);
    spec.machine.tunables.fault_readahead_pages = config.readahead;
    specs.push_back(spec);
    labels.push_back(config.label);
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"configuration", "exec(s)", "io-stall(s)", "readahead-reads",
                          "interactive(ms)", "int-hf/sweep"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({configs[i].label,
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.kernel.readahead_reads),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1),
                  tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: read-ahead recovers part of prefetching's overlap for the\n"
      "hog (sequential faults pull their neighbors along), but it consumes memory\n"
      "just as fast with none of the releasing — the interactive task is hurt as\n"
      "much as ever. Only the compiler's prefetch+release pairing fixes both.\n");
  return 0;
}
