// Table 2: characteristics of the out-of-core benchmarks — data-set sizes,
// loop structure, and what the compiler pass makes of each.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/compiler/compile.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  const tmh::MachineConfig machine = tmh::BenchMachine(args.scale);

  tmh::PrintHeader("Table 2: benchmark characteristics", args.scale);
  tmh::ReportTable table({"benchmark", "data set", "loop structure", "nests", "refs",
                          "indirect", "pf hints", "rel hints", "rel w/ reuse", "difficulty"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    const tmh::SourceProgram program = info.factory(args.scale);
    const tmh::CompiledProgram compiled =
        tmh::CompileVersion(program, machine, tmh::AppVersion::kBuffered);
    int refs = 0;
    for (const tmh::LoopNest& nest : program.nests) {
      refs += static_cast<int>(nest.refs.size());
    }
    table.AddRow({info.name,
                  tmh::FormatDouble(static_cast<double>(program.TotalBytes()) / (1024 * 1024),
                                    1) + " MB",
                  info.loop_structure, std::to_string(program.nests.size()),
                  std::to_string(refs), std::to_string(compiled.stats.indirect_refs),
                  std::to_string(compiled.stats.prefetch_directives),
                  std::to_string(compiled.stats.release_directives),
                  std::to_string(compiled.stats.release_directives_with_reuse),
                  info.difficulty});
  }
  table.Print();
  std::printf(
      "\nNotes: 'rel w/ reuse' counts release directives carrying a nonzero Eq. 2\n"
      "priority; FFTPDE's are false reuse (the deceptive strides), MATVEC's is the\n"
      "genuinely reused vector x.\n");
  return 0;
}
