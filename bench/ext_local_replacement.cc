// Extension: local (per-process) replacement vs global replacement vs
// application-directed releasing — Section 2.1's policy triangle.
//
// The paper argues local replacement "helps to isolate each process from the
// paging activity of others ... [but] poor memory utilization may occur, as
// pages are not allocated to processes according to their need." This binary
// measures exactly that trade-off on MATVEC-P + the interactive task, across
// partition sizes, against the release-based solution that needs no policy
// change at all.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: local vs global replacement vs releasing (MATVEC)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  tmh::ReportTable table({"policy", "partition", "app exec(s)", "local-evict",
                          "daemon-stolen", "interactive(ms)", "int-hf/sweep"});

  auto run = [&](const char* label, tmh::AppVersion version, double partition_fraction) {
    tmh::ExperimentSpec spec;
    spec.machine = tmh::BenchMachine(args.scale);
    const int64_t frames = spec.machine.num_frames();
    if (partition_fraction > 0) {
      spec.machine.tunables.local_partition_pages =
          static_cast<int64_t>(partition_fraction * static_cast<double>(frames));
    }
    spec.workload = matvec.factory(args.scale);
    spec.version = version;
    spec.with_interactive = true;
    spec.interactive.sleep_time = 5 * tmh::kSec;
    const tmh::ExperimentResult result = RunExperiment(spec);
    table.AddRow({label,
                  partition_fraction > 0
                      ? tmh::FormatDouble(100 * partition_fraction, 0) + "% of memory"
                      : "-",
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatCount(result.kernel.local_evictions),
                  tmh::FormatCount(result.kernel.daemon_pages_stolen),
                  tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1),
                  tmh::FormatDouble(result.interactive->hard_faults_per_sweep, 1)});
  };

  run("global (default)", tmh::AppVersion::kPrefetch, 0);
  run("local", tmh::AppVersion::kPrefetch, 0.25);
  run("local", tmh::AppVersion::kPrefetch, 0.50);
  run("local", tmh::AppVersion::kPrefetch, 0.90);
  run("releasing (B)", tmh::AppVersion::kBuffered, 0);
  table.Print();
  std::printf(
      "\nExpected shape: local replacement protects the interactive task at every\n"
      "partition size (the hog can only evict itself), but the hog pays for any\n"
      "partition smaller than its working set — and someone must pick the number.\n"
      "Releasing gets the best of both without a policy change (Section 2.1).\n");
  return 0;
}
