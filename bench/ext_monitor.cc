// Extension: online access monitoring vs compiler-inserted releases.
//
// The paper's mechanism needs recompilation: the compiler inserts the release
// hints. This binary asks how far a purely OS-side scheme gets for a program
// that was never recompiled — a region-based access sampler (src/monitor)
// releases regions it observes to be cold through the same release path the
// compiler hints use. The grid re-runs the fig07/fig10-style
// hog-plus-interactive workloads at:
//
//   O        no hints, no monitor            (the paper's worst case)
//   O+mon    no hints, monitor-driven releases
//   O+mon+p  as above, plus hot-region clock protection
//   R        compiler-inserted releases      (the paper's fix)
//   R+mon    hints and monitor together      (hybrid)
//
// The figure of merit is the interactive task's hard faults per sweep: the
// fraction of the O -> R improvement that monitoring recovers with no
// compiler support at all.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/extra.h"

namespace {

struct Treatment {
  const char* label;
  tmh::AppVersion version;
  bool monitor;
  bool protect_hot;
};

}  // namespace

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Extension: monitor-driven vs compiler-inserted releases", args.scale);

  const Treatment kTreatments[] = {
      {"O", tmh::AppVersion::kOriginal, false, false},
      {"O+mon", tmh::AppVersion::kOriginal, true, false},
      {"O+mon+p", tmh::AppVersion::kOriginal, true, true},
      {"R", tmh::AppVersion::kRelease, false, false},
      {"R+mon", tmh::AppVersion::kRelease, true, false},
  };

  tmh::ReportTable table({"benchmark", "ver", "exec(s)", "mon-releases", "releaser-freed",
                          "daemon-stolen", "interactive(ms)", "int-hf/sweep"});
  std::vector<std::string> summaries;
  for (const char* name : {"MATVEC", "BUK"}) {
    const tmh::WorkloadInfo* info = tmh::FindWorkload(name);
    if (info == nullptr) {
      continue;
    }
    double hf_o = 0, hf_o_mon = 0, hf_r = 0;
    for (const Treatment& tr : kTreatments) {
      tmh::ExperimentSpec spec =
          tmh::BenchSpec(*info, args.scale, tr.version, /*with_interactive=*/true);
      spec.monitor = tr.monitor;
      spec.monitor_config.protect_hot = tr.protect_hot;
      const tmh::ExperimentResult result = tmh::RunExperiment(spec);
      tmh::WarnIncomplete(std::string(info->name) + "/" + tr.label, result);
      const double hf = result.interactive->hard_faults_per_sweep;
      if (std::string(tr.label) == "O") hf_o = hf;
      if (std::string(tr.label) == "O+mon") hf_o_mon = hf;
      if (std::string(tr.label) == "R") hf_r = hf;
      table.AddRow({info->name, tr.label,
                    tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                    tmh::FormatCount(result.kernel.monitor_releases_enqueued),
                    tmh::FormatCount(result.kernel.releaser_pages_freed),
                    tmh::FormatCount(result.kernel.daemon_pages_stolen),
                    tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1),
                    tmh::FormatDouble(hf, 1)});
    }
    if (hf_o > hf_r) {
      const double recovered = (hf_o - hf_o_mon) / (hf_o - hf_r);
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%s: monitoring alone recovers %.0f%% of the O -> R interactive "
                    "fault-rate improvement (O %.1f, O+mon %.1f, R %.1f hf/sweep)",
                    info->name.c_str(), recovered * 100.0, hf_o, hf_o_mon, hf_r);
      summaries.push_back(line);
    }
  }
  table.Print();
  for (const std::string& line : summaries) {
    std::printf("\n%s\n", line.c_str());
  }
  std::printf(
      "\nExpected shape: under O the paging daemon strip-mines the sleeping\n"
      "interactive task; monitor-driven releases keep the free list stocked from the\n"
      "hog's own cold pages, recovering most of the protection R gets from compiler\n"
      "hints — without recompiling anything. R+mon stays at R's level (the monitor\n"
      "finds little the hints did not already release).\n");
  return 0;
}
