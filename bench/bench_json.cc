// Machine-readable regression harness for the substrate's hot paths.
//
// Emits one JSON document (schema "tmh-bench-v1") with ns/op and items/s for
// the event queue, residency bitmap, free list, and hint filter, plus
// sim-events/s for a fixed Figure-7-style end-to-end run. The numbers are
// wall-clock and therefore noisy; each micro-kernel is repeated and the best
// repeat is reported, which is stable enough for the coarse regression gate in
// tools/bench_regress.py. Committed snapshots live at the repo root as
// BENCH_*.json.
//
// Usage: bench_json [output.json] [--jobs N]   (default BENCH_substrate.json;
//        the document is also printed to stdout). --jobs sets the parallel
//        leg of the sweep benchmark (default 8).

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/runtime/runtime_layer.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/vm/free_list.h"
#include "src/vm/residency_bitmap.h"
#include "src/workloads/workloads.h"

namespace tmh {
namespace {

struct BenchResult {
  std::string name;
  double ns_per_op = 0;
  double items_per_s = 0;
  uint64_t items = 0;  // per repeat
};

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

// Runs `body` (which processes `items` items) `repeats` times and keeps the
// fastest repeat — minimum wall time is the standard noise filter for
// micro-kernels of this size.
template <typename Body>
BenchResult Best(const std::string& name, uint64_t items, int repeats, Body&& body) {
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    const double start = NowSeconds();
    body();
    const double elapsed = NowSeconds() - start;
    best = elapsed < best ? elapsed : best;
  }
  BenchResult result;
  result.name = name;
  result.items = items;
  result.ns_per_op = best * 1e9 / static_cast<double>(items);
  result.items_per_s = static_cast<double>(items) / best;
  return result;
}

BenchResult EventQueueScheduleRun(int n, int repeats) {
  return Best("event_queue_schedule_run", static_cast<uint64_t>(n), repeats, [n] {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    q.RunToCompletion();
  });
}

BenchResult EventQueueCancelHalf(int n, int repeats) {
  std::vector<EventId> ids(static_cast<size_t>(n));
  return Best("event_queue_cancel_half", static_cast<uint64_t>(n), repeats, [n, &ids] {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      ids[static_cast<size_t>(i)] = q.ScheduleAt((i * 7919) % 100000, [] {});
    }
    for (int i = 0; i < n; i += 2) {
      q.Cancel(ids[static_cast<size_t>(i)]);
    }
    q.RunToCompletion();
  });
}

BenchResult BitmapRangeOps(int64_t pages, int repeats) {
  ResidencyBitmap bitmap(pages);
  const int64_t span = 512;  // a ~2 MB region at 4 KB pages
  // One sweep is only microseconds of word-wise work; loop it enough times
  // that a repeat is comfortably above the clock's resolution.
  const int passes = 200;
  const uint64_t ops = static_cast<uint64_t>(passes) * (pages / span) * span * 3;
  return Best("bitmap_range_ops", ops, repeats, [&bitmap, pages] {
    for (int pass = 0; pass < passes; ++pass) {
      for (int64_t first = 0; first + span <= pages; first += span) {
        bitmap.SetRange(first, span);
        volatile VPage found = bitmap.FindFirstResident(first, span);
        (void)found;
        bitmap.ClearRange(first, span);
      }
    }
  });
}

BenchResult FreeListChurn(int64_t frames, uint64_t iters, int repeats) {
  FreeList list(frames);
  for (FrameId f = 0; f < frames; ++f) {
    list.PushTail(f);
  }
  Rng rng(1);
  return Best("free_list_churn", iters, repeats, [&list, &rng, iters] {
    for (uint64_t i = 0; i < iters; ++i) {
      const FrameId f = list.PopHead();
      if (rng.NextBelow(2) == 0) {
        list.PushTail(f);
      } else {
        list.PushHead(f);
      }
    }
  });
}

BenchResult HintFiltering(uint64_t iters, int repeats) {
  MachineConfig machine;
  machine.user_memory_bytes = 8 * 1024 * 1024;
  Kernel kernel(machine);
  kernel.StartDaemons();
  AddressSpace* as = kernel.CreateAddressSpace("as", 4 * 1024 * 1024);
  as->AddRegion(Region{"data", 0, as->num_pages(), Backing::kSwap});
  as->AttachPagingDirected(0, as->num_pages());
  RuntimeOptions options;
  options.num_prefetch_threads = 1;
  RuntimeLayer layer(&kernel, as, options);
  for (VPage p = 0; p < as->num_pages(); ++p) {
    as->bitmap()->Set(p);
  }
  std::vector<Op> out;
  const VPage num_pages = as->num_pages();
  VPage page = 0;
  return Best("runtime_hint_filtering", iters, repeats, [&] {
    for (uint64_t i = 0; i < iters; ++i) {
      layer.OnReleaseHint(page, 0, 1, out);
      page = (page + 1) % num_pages;
      out.clear();
    }
  });
}

// Fixed Figure-7-style end-to-end run: MATVEC version B (the same
// configuration micro_bench's BM_EndToEndExperiment uses at scale 0.1).
// Reports the simulator's event throughput — the number the event-queue work
// exists to move — and the honest work rate (pages touched per wall second),
// which is invariant under op batching: fusing touch runs shrinks sim_events
// but cannot shrink the pages the program touches.
struct EndToEndResult {
  double wall_s = 0;
  uint64_t sim_events = 0;
  double sim_events_per_s = 0;
  uint64_t pages_touched = 0;
  double pages_touched_per_s = 0;
  bool completed = false;
};

EndToEndResult Fig07StyleRun(int repeats, bool monitor = false, double scale = 0.1,
                             int tiers = 0) {
  EndToEndResult best;
  best.wall_s = 1e30;
  // One untimed warm-up run so page-cache state, lazily-allocated arenas, and
  // branch predictors settle before the timed repeats.
  for (int r = -1; r < repeats; ++r) {
    ExperimentSpec spec;
    spec.machine.user_memory_bytes =
        static_cast<int64_t>(75.0 * scale * 1024 * 1024);
    // The tiering leg runs the same configuration on a tiered machine, so the
    // entry's sim_events_per_s carries the demote/promote migration overhead.
    if (tiers > 1) {
      spec.machine.tiers.push_back(TierSpec{});  // tiers[0] = DRAM
      for (int t = 1; t < tiers; ++t) {
        TierSpec tier;
        tier.frames = spec.machine.num_frames() / 2;
        spec.machine.tiers.push_back(tier);
      }
    }
    spec.workload = MakeMatvec(scale);
    // The monitor leg runs version O — the unhinted program is the monitor's
    // target population — with the sampler and schemes engine live, so the
    // entry's sim_events_per_s carries the whole monitoring overhead.
    spec.version = monitor ? AppVersion::kOriginal : AppVersion::kBuffered;
    spec.monitor = monitor;
    const double start = NowSeconds();
    const ExperimentResult result = RunExperiment(spec);
    const double elapsed = NowSeconds() - start;
    if (r >= 0 && elapsed < best.wall_s) {
      best.wall_s = elapsed;
      best.sim_events = result.sim_events;
      best.sim_events_per_s = static_cast<double>(result.sim_events) / elapsed;
      best.pages_touched = result.app.interp.page_touches;
      best.pages_touched_per_s = static_cast<double>(best.pages_touched) / elapsed;
      best.completed = result.completed;
    }
  }
  return best;
}

// SweepRunner wall-clock benchmark: the full Figure-7 grid (every workload x
// every version, scale 0.05) run serially and then on a `jobs`-thread pool.
// Wall time is machine-dependent, so bench_regress.py reports the delta but
// does not gate on it; `tables_identical` is the determinism check — the
// rendered table must not depend on the jobs count. `cpus` (the scheduler
// affinity count) and `workers` (the threads the pool actually spawned) are
// recorded so the efficiency gate holds speedup to min(jobs, cpus), the
// ceiling the machine can actually reach, instead of the requested jobs.
struct SweepBenchResult {
  double serial_wall_s = 0;
  double parallel_wall_s = 0;
  int jobs = 0;
  int cpus = 0;
  int workers = 0;
  double speedup = 0;
  bool tables_identical = false;
};

std::string RenderSweepTable(const std::vector<ExperimentResult>& results) {
  ReportTable table({"benchmark", "O", "P", "R", "B"});
  size_t idx = 0;
  for (const WorkloadInfo& info : AllWorkloads()) {
    std::vector<std::string> row = {info.name};
    for (size_t v = 0; v < AllVersions().size(); ++v) {
      row.push_back(FormatDouble(ToSeconds(results[idx++].app.times.Execution()), 1));
    }
    table.AddRow(row);
  }
  return table.ToString();
}

std::vector<ExperimentSpec> BuildFig07Grid(const std::vector<double>& scales) {
  std::vector<ExperimentSpec> specs;
  for (const double scale : scales) {
    for (const WorkloadInfo& info : AllWorkloads()) {
      for (const AppVersion version : AllVersions()) {
        ExperimentSpec spec;
        spec.machine.user_memory_bytes =
            static_cast<int64_t>(static_cast<double>(spec.machine.user_memory_bytes) * scale);
        spec.workload = info.factory(scale);
        spec.version = version;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

// Renders each scale's sub-grid as its own table and concatenates, so the
// determinism check covers every grid point at every scale.
std::string RenderSweepTables(const std::vector<ExperimentResult>& results) {
  const size_t per_grid = AllWorkloads().size() * AllVersions().size();
  std::string out;
  for (size_t first = 0; first < results.size(); first += per_grid) {
    out += RenderSweepTable(
        std::vector<ExperimentResult>(results.begin() + static_cast<ptrdiff_t>(first),
                                      results.begin() + static_cast<ptrdiff_t>(first + per_grid)));
  }
  return out;
}

SweepBenchResult SweepFig07Parallel(const std::vector<double>& scales, int jobs,
                                    int repeats) {
  const std::vector<ExperimentSpec> specs = BuildFig07Grid(scales);
  auto leg = [&specs, repeats](int leg_jobs, std::string* table_out) {
    double best = 1e30;
    for (int r = 0; r < repeats; ++r) {
      SweepRunner runner(SweepOptions{leg_jobs});  // fresh pool and compile cache per repeat
      const double start = NowSeconds();
      const std::vector<ExperimentResult> results = runner.Run(specs);
      const double elapsed = NowSeconds() - start;
      best = elapsed < best ? elapsed : best;
      *table_out = RenderSweepTables(results);
    }
    return best;
  };
  SweepBenchResult out;
  out.jobs = jobs;
  out.cpus = AvailableCpus();
  out.workers = SweepRunner(SweepOptions{jobs}).EffectiveWorkers(specs.size());
  std::string serial_table;
  std::string parallel_table;
  out.serial_wall_s = leg(1, &serial_table);
  out.parallel_wall_s = leg(jobs, &parallel_table);
  out.speedup = out.serial_wall_s / out.parallel_wall_s;
  out.tables_identical = serial_table == parallel_table;
  return out;
}

void EmitJson(std::FILE* f, const std::vector<BenchResult>& results,
              const EndToEndResult& e2e, const EndToEndResult& e2e_large,
              const EndToEndResult& monitor_e2e, const EndToEndResult& tiering_e2e,
              const SweepBenchResult& sweep, const SweepBenchResult& sweep_large) {
  std::fprintf(f, "{\n  \"schema\": \"tmh-bench-v1\",\n  \"benchmarks\": [\n");
  for (const BenchResult& r : results) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.4f, \"items_per_s\": %.0f, "
                 "\"items\": %" PRIu64 "},\n",
                 r.name.c_str(), r.ns_per_op, r.items_per_s, r.items);
  }
  auto emit_e2e = [f](const char* name, const EndToEndResult& e) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_s\": %.4f, \"sim_events\": %" PRIu64
                 ", \"sim_events_per_s\": %.0f, \"pages_touched\": %" PRIu64
                 ", \"pages_touched_per_s\": %.0f, \"completed\": %s},\n",
                 name, e.wall_s, e.sim_events, e.sim_events_per_s, e.pages_touched,
                 e.pages_touched_per_s, e.completed ? "true" : "false");
  };
  emit_e2e("fig07_matvec_b", e2e);
  emit_e2e("fig07_matvec_b_large", e2e_large);
  emit_e2e("monitor_overhead", monitor_e2e);
  emit_e2e("ext_tiering", tiering_e2e);
  auto emit_sweep = [f](const char* name, const SweepBenchResult& s, bool last) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_s\": %.4f, "
                 "\"serial_wall_s\": %.4f, \"jobs\": %d, \"cpus\": %d, "
                 "\"workers\": %d, \"speedup\": %.2f, "
                 "\"tables_identical\": %s}%s\n",
                 name, s.parallel_wall_s, s.serial_wall_s, s.jobs, s.cpus,
                 s.workers, s.speedup, s.tables_identical ? "true" : "false",
                 last ? "" : ",");
  };
  emit_sweep("sweep_fig07_parallel", sweep, /*last=*/false);
  emit_sweep("sweep_fig07_parallel_large", sweep_large, /*last=*/true);
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace
}  // namespace tmh

int main(int argc, char** argv) {
  const char* out_path = "BENCH_substrate.json";
  int jobs = 8;
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc || std::atoi(argv[i + 1]) < 1) {
        std::fprintf(stderr, "bench_json: --jobs requires a value >= 1\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
    } else if (!have_path) {
      out_path = argv[i];
      have_path = true;
    } else {
      std::fprintf(stderr, "bench_json: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }

  std::vector<tmh::BenchResult> results;
  results.push_back(tmh::EventQueueScheduleRun(10000, 5));
  results.push_back(tmh::EventQueueCancelHalf(10000, 5));
  results.push_back(tmh::BitmapRangeOps(32768, 5));
  results.push_back(tmh::FreeListChurn(4800, 100000, 5));
  results.push_back(tmh::HintFiltering(100000, 5));
  const tmh::EndToEndResult e2e = tmh::Fig07StyleRun(3);
  // Larger-scale leg of the same configuration: more pages, longer steady
  // state, so run-fusion and dispatch fast paths dominate setup costs.
  const tmh::EndToEndResult e2e_large =
      tmh::Fig07StyleRun(2, /*monitor=*/false, /*scale=*/0.25);
  const tmh::EndToEndResult monitor_e2e = tmh::Fig07StyleRun(3, /*monitor=*/true);
  // Same MATVEC B configuration as fig07_matvec_b, on a 3-tier machine:
  // releases demote, re-touches promote, evictions cascade.
  const tmh::EndToEndResult tiering_e2e =
      tmh::Fig07StyleRun(3, /*monitor=*/false, /*scale=*/0.1, /*tiers=*/3);
  const tmh::SweepBenchResult sweep = tmh::SweepFig07Parallel({0.05}, jobs, 2);
  // Larger grid (three scales) so the pool has enough independent work per
  // thread for speedup to approach the core count on multi-core machines;
  // single repeat to bound harness runtime. On a 1-core container the speedup
  // is necessarily ~1.0 regardless of grid size.
  const tmh::SweepBenchResult sweep_large =
      tmh::SweepFig07Parallel({0.04, 0.05, 0.06}, jobs, 1);

  tmh::EmitJson(stdout, results, e2e, e2e_large, monitor_e2e, tiering_e2e, sweep,
                sweep_large);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out_path);
    return 1;
  }
  tmh::EmitJson(f, results, e2e, e2e_large, monitor_e2e, tiering_e2e, sweep,
                sweep_large);
  std::fclose(f);
  return 0;
}
