// ext_scale — datacenter-scale regression benches for the kernel's per-frame
// structures (schema "tmh-bench-v1", committed snapshot BENCH_scale.json).
//
// The paper's machine has 4,800 frames; these benches hold the same kernel to
// a 10^7-frame, 8-node machine with ~100 tenants, where any per-frame or
// per-AS linear scan on a hot path stops being noise and starts being the
// bill. Four storms drive the paths that must stay O(1)-amortized:
//
//   scale_fault_storm     tenants zero-fill-fault and re-touch their working
//                         sets (allocation, fault, map/unmap)
//   scale_release_storm   touch + explicit release + re-touch (releaser
//                         frees, tail pushes, rescue from the free list)
//   scale_daemon_storm    free memory pinned below min_freemem and tight
//                         maxrss, so the paging daemon's per-node clock hands
//                         and the over-maxrss index run continuously
//   scale_tenant_churn    staggered tenant arrivals/departures (the daemon
//                         reclaims each leaver's residue while later tenants
//                         run)
//
// Each storm reports sim-events/s — gated in both directions by
// tools/bench_regress.py — plus a micro bench of the sharded frame pool and a
// footprint entry holding the per-frame metadata to its documented bound
// (FrameTable ~13.6 B/frame + FramePool 2*sizeof(FrameId) B/frame, < 24 B
// total at the default type widths). The binary exits nonzero if the bound,
// per-node allocation isolation, or storm completion fails, so the smoke
// ctest is a correctness check as well as a build check.
//
// Usage: ext_scale [output.json] [--smoke] [--nodes N]
//   --smoke    reduced machine (2^18 frames) for the <30 s ctest target;
//              prints JSON to stdout and writes no file
//   --nodes N  memory nodes for every bench (default 8, max 64)

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/os/address_space.h"
#include "src/os/config.h"
#include "src/os/kernel.h"
#include "src/os/thread.h"
#include "src/vm/frame_pool.h"

namespace tmh {
namespace {

struct ScaleParams {
  int64_t frames = 10'000'000;  // 40 GB of 4 KB pages
  int num_nodes = 8;
  int tenants = 96;
  VPage pages_per_tenant = 4096;
  int laps = 3;
  uint64_t pool_churn_iters = 5'000'000;
  uint64_t max_events = 400'000'000;
};

ScaleParams SmokeParams() {
  ScaleParams p;
  p.frames = 262'144;  // 1 GB of 4 KB pages
  p.tenants = 16;
  p.pages_per_tenant = 2048;
  p.laps = 2;
  p.pool_churn_iters = 500'000;
  return p;
}

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

MachineConfig ScaleMachine(const ScaleParams& p) {
  MachineConfig machine;
  machine.page_size_bytes = 4 * 1024;
  machine.user_memory_bytes = p.frames * machine.page_size_bytes;
  machine.num_nodes = p.num_nodes;
  return machine;
}

// Sequential reader: optional arrival sleep, then `laps` passes over
// [0, pages). First-lap touches are zero-fill faults; later laps re-touch.
class SequentialToucher : public Program {
 public:
  SequentialToucher(VPage pages, int laps, SimDuration arrival = 0)
      : pages_(pages), laps_(laps), arrival_(arrival) {}

  Op Next(Kernel&) override {
    if (arrival_ > 0) {
      const SimDuration d = arrival_;
      arrival_ = 0;
      return Op::Sleep(d);
    }
    if (page_ == pages_) {
      page_ = 0;
      if (++lap_ == laps_) {
        return Op::Exit();
      }
    }
    return Op::Touch(page_++, /*write=*/false, 0);
  }

 private:
  const VPage pages_;
  const int laps_;
  SimDuration arrival_;
  VPage page_ = 0;
  int lap_ = 0;
};

// Touch a window, release it, move on; re-touches of released-but-unfreed
// pages rescue frames from the free list (Section 3.1.2 at scale).
class ReleaseStormer : public Program {
 public:
  ReleaseStormer(VPage pages, int laps, int32_t tag)
      : pages_(pages), laps_(laps), tag_(tag) {}

  Op Next(Kernel&) override {
    if (pending_release_) {
      pending_release_ = false;
      const VPage first = page_ - kWindow;
      return Op::Release(first, kWindow, /*prio=*/0, tag_);
    }
    if (page_ == pages_) {
      page_ = 0;
      if (++lap_ == laps_) {
        return Op::Exit();
      }
    }
    const Op op = Op::Touch(page_++, /*write=*/false, 0);
    if (page_ % kWindow == 0) {
      pending_release_ = true;
    }
    return op;
  }

 private:
  static constexpr VPage kWindow = 64;
  const VPage pages_;
  const int laps_;
  const int32_t tag_;
  VPage page_ = 0;
  int lap_ = 0;
  bool pending_release_ = false;
};

struct StormResult {
  std::string name;
  double wall_s = 0;
  uint64_t sim_events = 0;
  double sim_events_per_s = 0;
  bool completed = false;
};

struct Tenant {
  AddressSpace* as = nullptr;
  std::unique_ptr<Program> program;
  Thread* thread = nullptr;
};

// Builds `tenants` identical tenants, each with its own zero-fill AS, runs
// every tenant thread to completion, and reports event throughput.
template <typename MakeProgram>
StormResult RunStorm(const std::string& name, const ScaleParams& p,
                     const MachineConfig& machine, bool attach_pm,
                     MakeProgram&& make_program, Kernel** kernel_out = nullptr,
                     std::unique_ptr<Kernel>* keep = nullptr) {
  auto kernel = std::make_unique<Kernel>(machine);
  kernel->StartDaemons();
  std::vector<Tenant> tenants(static_cast<size_t>(p.tenants));
  std::vector<Thread*> threads;
  threads.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    Tenant& t = tenants[i];
    const std::string tenant_name = "t" + std::to_string(i);
    t.as = kernel->CreateAddressSpace(
        tenant_name, p.pages_per_tenant * machine.page_size_bytes);
    t.as->AddRegion(Region{"data", 0, p.pages_per_tenant, Backing::kZeroFill});
    if (attach_pm) {
      t.as->AttachPagingDirected(0, t.as->num_pages());
    }
    t.program = make_program(static_cast<int>(i));
    t.thread = kernel->Spawn(tenant_name, t.as, t.program.get());
    threads.push_back(t.thread);
  }

  const double start = NowSeconds();
  const bool completed = kernel->RunUntilThreadsDone(threads, p.max_events);
  const double elapsed = NowSeconds() - start;

  StormResult r;
  r.name = name;
  r.wall_s = elapsed;
  r.sim_events = kernel->event_queue().ExecutedCount();
  r.sim_events_per_s = static_cast<double>(r.sim_events) / elapsed;
  r.completed = completed;
  if (kernel_out != nullptr && keep != nullptr) {
    *keep = std::move(kernel);
    *kernel_out = keep->get();
  }
  return r;
}

struct PoolChurnResult {
  double ns_per_op = 0;
  double items_per_s = 0;
  uint64_t items = 0;
};

// FramePool alone at full scale: pop from a rotating home node, push back
// alternating head/tail. Every operation must stay O(1) — one slow op in
// 5 million iterations over a 10^7-frame arena shows up immediately.
PoolChurnResult PoolChurn(const ScaleParams& p) {
  FramePool pool(p.frames, p.num_nodes);
  for (FrameId f = 0; f < p.frames; ++f) {
    pool.PushTail(f);
  }
  const double start = NowSeconds();
  uint64_t x = 0x9e3779b97f4a7c15ULL;  // cheap deterministic mixer
  for (uint64_t i = 0; i < p.pool_churn_iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const int node = static_cast<int>(x % static_cast<uint64_t>(pool.num_nodes()));
    const FrameId f = pool.PopHead(node);
    if ((x & 1) != 0) {
      pool.PushTail(f);
    } else {
      pool.PushHead(f);
    }
  }
  const double elapsed = NowSeconds() - start;
  PoolChurnResult r;
  r.items = p.pool_churn_iters;
  r.ns_per_op = elapsed * 1e9 / static_cast<double>(p.pool_churn_iters);
  r.items_per_s = static_cast<double>(p.pool_churn_iters) / elapsed;
  return r;
}

// Documented per-frame metadata bound: FrameTable's SoA planes plus the
// pool's two link arrays. Generous headroom over the ~21.6 B/frame the
// default type widths produce, tight enough to catch any per-frame field
// creeping in (one added int64 plane would blow it).
constexpr double kBytesPerFrameBound = 24.0;

bool EmitAndCheck(const ScaleParams& p, const char* out_path, bool smoke) {
  bool ok = true;

  // Kernel construction + footprint at full scale.
  const MachineConfig machine = ScaleMachine(p);
  double construct_wall = 0;
  double bytes_per_frame = 0;
  {
    const double start = NowSeconds();
    Kernel kernel(machine);
    construct_wall = NowSeconds() - start;
    const int64_t bytes = kernel.frames().MemoryFootprintBytes() +
                          kernel.free_list().MemoryFootprintBytes();
    bytes_per_frame = static_cast<double>(bytes) / static_cast<double>(p.frames);
    if (bytes_per_frame > kBytesPerFrameBound) {
      std::fprintf(stderr,
                   "ext_scale: frame metadata is %.2f B/frame, bound is %.1f\n",
                   bytes_per_frame, kBytesPerFrameBound);
      ok = false;
    }
  }

  const PoolChurnResult pool = PoolChurn(p);

  std::vector<StormResult> storms;

  {
    std::unique_ptr<Kernel> keep;
    Kernel* kernel = nullptr;
    storms.push_back(RunStorm(
        "scale_fault_storm", p, machine, /*attach_pm=*/false,
        [&p](int) {
          return std::make_unique<SequentialToucher>(p.pages_per_tenant, p.laps);
        },
        &kernel, &keep));
    // Per-node isolation: with tenants on every home node (id % nodes) and a
    // mostly-empty machine, every node must have served allocations.
    const std::vector<uint64_t>& per_node = kernel->node_allocations();
    for (size_t node = 0; node < per_node.size(); ++node) {
      if (per_node[node] == 0) {
        std::fprintf(stderr,
                     "ext_scale: node %zu served zero allocations "
                     "(home-node routing broken)\n",
                     node);
        ok = false;
      }
    }
  }

  storms.push_back(RunStorm("scale_release_storm", p, machine,
                            /*attach_pm=*/true, [&p](int i) {
                              return std::make_unique<ReleaseStormer>(
                                  p.pages_per_tenant, p.laps, i);
                            }));

  {
    // Pin free memory below min_freemem and cap maxrss below the tenant
    // working set, so the per-node clock hands and the over-maxrss index are
    // exercised for the whole run rather than just at the edges.
    MachineConfig pressured = machine;
    pressured.tunables.min_freemem_pages =
        p.frames - p.tenants * p.pages_per_tenant / 2;
    pressured.tunables.target_freemem_pages =
        p.frames - p.tenants * p.pages_per_tenant / 4;
    pressured.tunables.maxrss_pages = p.pages_per_tenant / 2;
    storms.push_back(RunStorm("scale_daemon_storm", p, pressured,
                              /*attach_pm=*/false, [&p](int) {
                                return std::make_unique<SequentialToucher>(
                                    p.pages_per_tenant, p.laps);
                              }));
  }

  storms.push_back(RunStorm("scale_tenant_churn", p, machine,
                            /*attach_pm=*/false, [&p](int i) {
                              return std::make_unique<SequentialToucher>(
                                  p.pages_per_tenant, /*laps=*/1,
                                  /*arrival=*/i * 50 * kMsec);
                            }));

  for (const StormResult& s : storms) {
    if (!s.completed) {
      std::fprintf(stderr, "ext_scale: %s hit the event budget before finishing\n",
                   s.name.c_str());
      ok = false;
    }
  }

  auto emit = [&](std::FILE* f) {
    std::fprintf(f, "{\n  \"schema\": \"tmh-bench-v1\",\n  \"benchmarks\": [\n");
    std::fprintf(f,
                 "    {\"name\": \"scale_kernel_construct\", \"wall_s\": %.4f, "
                 "\"bytes_per_frame\": %.2f, \"frames\": %" PRId64
                 ", \"nodes\": %d},\n",
                 construct_wall, bytes_per_frame, p.frames, p.num_nodes);
    std::fprintf(f,
                 "    {\"name\": \"scale_pool_churn\", \"ns_per_op\": %.4f, "
                 "\"items_per_s\": %.0f, \"items\": %" PRIu64 "},\n",
                 pool.ns_per_op, pool.items_per_s, pool.items);
    for (size_t i = 0; i < storms.size(); ++i) {
      const StormResult& s = storms[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_s\": %.4f, \"sim_events\": %" PRIu64
                   ", \"sim_events_per_s\": %.0f, \"completed\": %s}%s\n",
                   s.name.c_str(), s.wall_s, s.sim_events, s.sim_events_per_s,
                   s.completed ? "true" : "false",
                   i + 1 == storms.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
  };

  emit(stdout);
  if (!smoke) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ext_scale: cannot open %s for writing\n", out_path);
      return false;
    }
    emit(f);
    std::fclose(f);
  }
  return ok;
}

}  // namespace
}  // namespace tmh

int main(int argc, char** argv) {
  const char* out_path = "BENCH_scale.json";
  bool smoke = false;
  int nodes = 0;
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      if (i + 1 >= argc || std::atoi(argv[i + 1]) < 1 ||
          std::atoi(argv[i + 1]) > tmh::FramePool::kMaxNodes) {
        std::fprintf(stderr, "ext_scale: --nodes wants a value in [1, %d]\n",
                     tmh::FramePool::kMaxNodes);
        return 2;
      }
      nodes = std::atoi(argv[++i]);
    } else if (!have_path) {
      out_path = argv[i];
      have_path = true;
    } else {
      std::fprintf(stderr, "ext_scale: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }

  tmh::ScaleParams params = smoke ? tmh::SmokeParams() : tmh::ScaleParams{};
  if (nodes > 0) {
    params.num_nodes = nodes;
  }
  return tmh::EmitAndCheck(params, out_path, smoke) ? 0 : 1;
}
