// Ablation A4: size of the user-level prefetch thread pool. The pool is what
// converts IRIX's synchronous paging interface into asynchronous, parallel
// I/O; its size bounds the number of prefetches in flight and therefore how
// much of the ten-disk array the application can drive.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A4: prefetch thread-pool size (MATVEC, version B)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  tmh::ReportTable table({"threads", "exec(s)", "io-stall(s)", "collapsed-faults",
                          "prefetch-io"});
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    tmh::ExperimentSpec spec;
    spec.machine = tmh::BenchMachine(args.scale);
    spec.workload = matvec.factory(args.scale);
    spec.version = tmh::AppVersion::kBuffered;
    spec.runtime.num_prefetch_threads = threads;
    const tmh::ExperimentResult result = RunExperiment(spec);
    table.AddRow({std::to_string(threads),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.app.faults.collapsed_faults),
                  tmh::FormatCount(result.kernel.prefetch_io)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: I/O stall falls as the pool grows (more spindles in flight)\n"
      "and saturates once the pool can keep all ten disks busy.\n");
  return 0;
}
