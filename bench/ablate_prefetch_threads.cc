// Ablation A4: size of the user-level prefetch thread pool. The pool is what
// converts IRIX's synchronous paging interface into asynchronous, parallel
// I/O; its size bounds the number of prefetches in flight and therefore how
// much of the ten-disk array the application can drive.
//
// The grid runs on a SweepRunner (--jobs N); results are rendered in
// submission order so the table matches the serial run byte for byte.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const tmh::BenchArgs args = tmh::ParseBenchArgs(argc, argv);
  tmh::PrintHeader("Ablation A4: prefetch thread-pool size (MATVEC, version B)", args.scale);

  const tmh::WorkloadInfo& matvec = tmh::AllWorkloads()[1];
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16, 32};
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> labels;
  for (const int threads : thread_counts) {
    tmh::ExperimentSpec spec =
        tmh::BenchSpec(matvec, args.scale, tmh::AppVersion::kBuffered, false);
    spec.runtime.num_prefetch_threads = threads;
    specs.push_back(spec);
    labels.push_back("MATVEC/B threads " + std::to_string(threads));
  }
  tmh::SweepRunner runner(tmh::SweepOptions{args.jobs});
  const std::vector<tmh::ExperimentResult> results = tmh::RunBenchSweep(runner, specs, labels);

  tmh::ReportTable table({"threads", "exec(s)", "io-stall(s)", "collapsed-faults",
                          "prefetch-io"});
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    table.AddRow({std::to_string(thread_counts[i]),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
                  tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
                  tmh::FormatCount(result.app.faults.collapsed_faults),
                  tmh::FormatCount(result.kernel.prefetch_io)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: I/O stall falls as the pool grows (more spindles in flight)\n"
      "and saturates once the pool can keep all ten disks busy.\n");
  return 0;
}
