file(REMOVE_RECURSE
  "CMakeFiles/ablate_priority.dir/ablate_priority.cc.o"
  "CMakeFiles/ablate_priority.dir/ablate_priority.cc.o.d"
  "ablate_priority"
  "ablate_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
