# Empty dependencies file for fig08_soft_faults.
# This may be replaced when dependencies are built.
