file(REMOVE_RECURSE
  "CMakeFiles/fig08_soft_faults.dir/fig08_soft_faults.cc.o"
  "CMakeFiles/fig08_soft_faults.dir/fig08_soft_faults.cc.o.d"
  "fig08_soft_faults"
  "fig08_soft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_soft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
