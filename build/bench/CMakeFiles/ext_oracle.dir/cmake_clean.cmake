file(REMOVE_RECURSE
  "CMakeFiles/ext_oracle.dir/ext_oracle.cc.o"
  "CMakeFiles/ext_oracle.dir/ext_oracle.cc.o.d"
  "ext_oracle"
  "ext_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
