file(REMOVE_RECURSE
  "CMakeFiles/ablate_striping.dir/ablate_striping.cc.o"
  "CMakeFiles/ablate_striping.dir/ablate_striping.cc.o.d"
  "ablate_striping"
  "ablate_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
