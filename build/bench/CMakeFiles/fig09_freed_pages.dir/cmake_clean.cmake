file(REMOVE_RECURSE
  "CMakeFiles/fig09_freed_pages.dir/fig09_freed_pages.cc.o"
  "CMakeFiles/fig09_freed_pages.dir/fig09_freed_pages.cc.o.d"
  "fig09_freed_pages"
  "fig09_freed_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_freed_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
