# Empty compiler generated dependencies file for fig09_freed_pages.
# This may be replaced when dependencies are built.
