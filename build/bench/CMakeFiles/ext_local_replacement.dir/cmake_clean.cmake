file(REMOVE_RECURSE
  "CMakeFiles/ext_local_replacement.dir/ext_local_replacement.cc.o"
  "CMakeFiles/ext_local_replacement.dir/ext_local_replacement.cc.o.d"
  "ext_local_replacement"
  "ext_local_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_local_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
