# Empty compiler generated dependencies file for ext_local_replacement.
# This may be replaced when dependencies are built.
