# Empty dependencies file for fig10b_interactive_all.
# This may be replaced when dependencies are built.
