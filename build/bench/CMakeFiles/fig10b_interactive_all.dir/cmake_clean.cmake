file(REMOVE_RECURSE
  "CMakeFiles/fig10b_interactive_all.dir/fig10b_interactive_all.cc.o"
  "CMakeFiles/fig10b_interactive_all.dir/fig10b_interactive_all.cc.o.d"
  "fig10b_interactive_all"
  "fig10b_interactive_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_interactive_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
