# Empty dependencies file for ext_multiprog.
# This may be replaced when dependencies are built.
