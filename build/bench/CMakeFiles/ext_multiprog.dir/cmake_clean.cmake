file(REMOVE_RECURSE
  "CMakeFiles/ext_multiprog.dir/ext_multiprog.cc.o"
  "CMakeFiles/ext_multiprog.dir/ext_multiprog.cc.o.d"
  "ext_multiprog"
  "ext_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
