# Empty dependencies file for table3_reclaim.
# This may be replaced when dependencies are built.
