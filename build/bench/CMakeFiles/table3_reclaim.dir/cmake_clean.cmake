file(REMOVE_RECURSE
  "CMakeFiles/table3_reclaim.dir/table3_reclaim.cc.o"
  "CMakeFiles/table3_reclaim.dir/table3_reclaim.cc.o.d"
  "table3_reclaim"
  "table3_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
