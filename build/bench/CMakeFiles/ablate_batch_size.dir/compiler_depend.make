# Empty compiler generated dependencies file for ablate_batch_size.
# This may be replaced when dependencies are built.
