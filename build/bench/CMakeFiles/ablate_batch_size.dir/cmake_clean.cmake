file(REMOVE_RECURSE
  "CMakeFiles/ablate_batch_size.dir/ablate_batch_size.cc.o"
  "CMakeFiles/ablate_batch_size.dir/ablate_batch_size.cc.o.d"
  "ablate_batch_size"
  "ablate_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
