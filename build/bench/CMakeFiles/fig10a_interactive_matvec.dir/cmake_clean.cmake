file(REMOVE_RECURSE
  "CMakeFiles/fig10a_interactive_matvec.dir/fig10a_interactive_matvec.cc.o"
  "CMakeFiles/fig10a_interactive_matvec.dir/fig10a_interactive_matvec.cc.o.d"
  "fig10a_interactive_matvec"
  "fig10a_interactive_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_interactive_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
