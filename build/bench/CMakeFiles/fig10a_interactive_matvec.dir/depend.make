# Empty dependencies file for fig10a_interactive_matvec.
# This may be replaced when dependencies are built.
