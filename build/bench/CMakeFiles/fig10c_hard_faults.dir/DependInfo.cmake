
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10c_hard_faults.cc" "bench/CMakeFiles/fig10c_hard_faults.dir/fig10c_hard_faults.cc.o" "gcc" "bench/CMakeFiles/fig10c_hard_faults.dir/fig10c_hard_faults.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tmh_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/tmh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tmh_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tmh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tmh_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
