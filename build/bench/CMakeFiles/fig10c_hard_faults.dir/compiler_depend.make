# Empty compiler generated dependencies file for fig10c_hard_faults.
# This may be replaced when dependencies are built.
