file(REMOVE_RECURSE
  "CMakeFiles/fig10c_hard_faults.dir/fig10c_hard_faults.cc.o"
  "CMakeFiles/fig10c_hard_faults.dir/fig10c_hard_faults.cc.o.d"
  "fig10c_hard_faults"
  "fig10c_hard_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_hard_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
