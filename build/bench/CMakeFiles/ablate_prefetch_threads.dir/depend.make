# Empty dependencies file for ablate_prefetch_threads.
# This may be replaced when dependencies are built.
