file(REMOVE_RECURSE
  "CMakeFiles/ablate_prefetch_threads.dir/ablate_prefetch_threads.cc.o"
  "CMakeFiles/ablate_prefetch_threads.dir/ablate_prefetch_threads.cc.o.d"
  "ablate_prefetch_threads"
  "ablate_prefetch_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_prefetch_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
