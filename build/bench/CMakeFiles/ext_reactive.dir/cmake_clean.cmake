file(REMOVE_RECURSE
  "CMakeFiles/ext_reactive.dir/ext_reactive.cc.o"
  "CMakeFiles/ext_reactive.dir/ext_reactive.cc.o.d"
  "ext_reactive"
  "ext_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
