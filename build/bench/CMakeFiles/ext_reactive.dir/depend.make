# Empty dependencies file for ext_reactive.
# This may be replaced when dependencies are built.
