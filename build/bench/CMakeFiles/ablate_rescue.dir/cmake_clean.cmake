file(REMOVE_RECURSE
  "CMakeFiles/ablate_rescue.dir/ablate_rescue.cc.o"
  "CMakeFiles/ablate_rescue.dir/ablate_rescue.cc.o.d"
  "ablate_rescue"
  "ablate_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
