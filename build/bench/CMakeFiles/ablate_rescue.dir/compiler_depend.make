# Empty compiler generated dependencies file for ablate_rescue.
# This may be replaced when dependencies are built.
