# Empty dependencies file for tmh_vm.
# This may be replaced when dependencies are built.
