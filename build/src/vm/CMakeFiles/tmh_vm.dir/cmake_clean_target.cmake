file(REMOVE_RECURSE
  "libtmh_vm.a"
)
