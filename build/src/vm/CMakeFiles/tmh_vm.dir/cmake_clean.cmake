file(REMOVE_RECURSE
  "CMakeFiles/tmh_vm.dir/free_list.cc.o"
  "CMakeFiles/tmh_vm.dir/free_list.cc.o.d"
  "libtmh_vm.a"
  "libtmh_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
