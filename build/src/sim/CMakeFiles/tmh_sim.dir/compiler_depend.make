# Empty compiler generated dependencies file for tmh_sim.
# This may be replaced when dependencies are built.
