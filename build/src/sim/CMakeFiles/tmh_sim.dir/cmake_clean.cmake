file(REMOVE_RECURSE
  "CMakeFiles/tmh_sim.dir/event_queue.cc.o"
  "CMakeFiles/tmh_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tmh_sim.dir/rng.cc.o"
  "CMakeFiles/tmh_sim.dir/rng.cc.o.d"
  "CMakeFiles/tmh_sim.dir/stats.cc.o"
  "CMakeFiles/tmh_sim.dir/stats.cc.o.d"
  "CMakeFiles/tmh_sim.dir/trace.cc.o"
  "CMakeFiles/tmh_sim.dir/trace.cc.o.d"
  "libtmh_sim.a"
  "libtmh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
