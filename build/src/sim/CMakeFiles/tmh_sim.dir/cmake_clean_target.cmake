file(REMOVE_RECURSE
  "libtmh_sim.a"
)
