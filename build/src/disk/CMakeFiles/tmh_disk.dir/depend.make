# Empty dependencies file for tmh_disk.
# This may be replaced when dependencies are built.
