file(REMOVE_RECURSE
  "libtmh_disk.a"
)
