file(REMOVE_RECURSE
  "CMakeFiles/tmh_disk.dir/disk.cc.o"
  "CMakeFiles/tmh_disk.dir/disk.cc.o.d"
  "CMakeFiles/tmh_disk.dir/swap_space.cc.o"
  "CMakeFiles/tmh_disk.dir/swap_space.cc.o.d"
  "libtmh_disk.a"
  "libtmh_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
