file(REMOVE_RECURSE
  "libtmh_os.a"
)
