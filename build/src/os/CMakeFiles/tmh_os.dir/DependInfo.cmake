
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/tmh_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/tmh_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/paging_daemon.cc" "src/os/CMakeFiles/tmh_os.dir/paging_daemon.cc.o" "gcc" "src/os/CMakeFiles/tmh_os.dir/paging_daemon.cc.o.d"
  "/root/repo/src/os/releaser.cc" "src/os/CMakeFiles/tmh_os.dir/releaser.cc.o" "gcc" "src/os/CMakeFiles/tmh_os.dir/releaser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tmh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tmh_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tmh_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
