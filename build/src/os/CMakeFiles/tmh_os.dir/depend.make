# Empty dependencies file for tmh_os.
# This may be replaced when dependencies are built.
