file(REMOVE_RECURSE
  "CMakeFiles/tmh_os.dir/kernel.cc.o"
  "CMakeFiles/tmh_os.dir/kernel.cc.o.d"
  "CMakeFiles/tmh_os.dir/paging_daemon.cc.o"
  "CMakeFiles/tmh_os.dir/paging_daemon.cc.o.d"
  "CMakeFiles/tmh_os.dir/releaser.cc.o"
  "CMakeFiles/tmh_os.dir/releaser.cc.o.d"
  "libtmh_os.a"
  "libtmh_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
