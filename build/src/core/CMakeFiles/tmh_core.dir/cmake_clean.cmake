file(REMOVE_RECURSE
  "CMakeFiles/tmh_core.dir/experiment.cc.o"
  "CMakeFiles/tmh_core.dir/experiment.cc.o.d"
  "CMakeFiles/tmh_core.dir/html_report.cc.o"
  "CMakeFiles/tmh_core.dir/html_report.cc.o.d"
  "CMakeFiles/tmh_core.dir/report.cc.o"
  "CMakeFiles/tmh_core.dir/report.cc.o.d"
  "libtmh_core.a"
  "libtmh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
