file(REMOVE_RECURSE
  "libtmh_core.a"
)
