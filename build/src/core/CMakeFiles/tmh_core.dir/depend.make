# Empty dependencies file for tmh_core.
# This may be replaced when dependencies are built.
