
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/interpreter.cc" "src/runtime/CMakeFiles/tmh_runtime.dir/interpreter.cc.o" "gcc" "src/runtime/CMakeFiles/tmh_runtime.dir/interpreter.cc.o.d"
  "/root/repo/src/runtime/prefetch_pool.cc" "src/runtime/CMakeFiles/tmh_runtime.dir/prefetch_pool.cc.o" "gcc" "src/runtime/CMakeFiles/tmh_runtime.dir/prefetch_pool.cc.o.d"
  "/root/repo/src/runtime/runtime_layer.cc" "src/runtime/CMakeFiles/tmh_runtime.dir/runtime_layer.cc.o" "gcc" "src/runtime/CMakeFiles/tmh_runtime.dir/runtime_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/tmh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tmh_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tmh_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tmh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
