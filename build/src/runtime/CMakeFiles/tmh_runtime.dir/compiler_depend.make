# Empty compiler generated dependencies file for tmh_runtime.
# This may be replaced when dependencies are built.
