file(REMOVE_RECURSE
  "CMakeFiles/tmh_runtime.dir/interpreter.cc.o"
  "CMakeFiles/tmh_runtime.dir/interpreter.cc.o.d"
  "CMakeFiles/tmh_runtime.dir/prefetch_pool.cc.o"
  "CMakeFiles/tmh_runtime.dir/prefetch_pool.cc.o.d"
  "CMakeFiles/tmh_runtime.dir/runtime_layer.cc.o"
  "CMakeFiles/tmh_runtime.dir/runtime_layer.cc.o.d"
  "libtmh_runtime.a"
  "libtmh_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
