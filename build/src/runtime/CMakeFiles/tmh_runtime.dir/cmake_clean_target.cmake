file(REMOVE_RECURSE
  "libtmh_runtime.a"
)
