# Empty dependencies file for tmh_compiler.
# This may be replaced when dependencies are built.
