file(REMOVE_RECURSE
  "CMakeFiles/tmh_compiler.dir/analysis.cc.o"
  "CMakeFiles/tmh_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/tmh_compiler.dir/compile.cc.o"
  "CMakeFiles/tmh_compiler.dir/compile.cc.o.d"
  "CMakeFiles/tmh_compiler.dir/ir.cc.o"
  "CMakeFiles/tmh_compiler.dir/ir.cc.o.d"
  "libtmh_compiler.a"
  "libtmh_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
