file(REMOVE_RECURSE
  "libtmh_compiler.a"
)
