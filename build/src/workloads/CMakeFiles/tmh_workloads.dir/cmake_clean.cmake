file(REMOVE_RECURSE
  "CMakeFiles/tmh_workloads.dir/extra.cc.o"
  "CMakeFiles/tmh_workloads.dir/extra.cc.o.d"
  "CMakeFiles/tmh_workloads.dir/interactive.cc.o"
  "CMakeFiles/tmh_workloads.dir/interactive.cc.o.d"
  "CMakeFiles/tmh_workloads.dir/workloads.cc.o"
  "CMakeFiles/tmh_workloads.dir/workloads.cc.o.d"
  "libtmh_workloads.a"
  "libtmh_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
