# Empty dependencies file for tmh_workloads.
# This may be replaced when dependencies are built.
