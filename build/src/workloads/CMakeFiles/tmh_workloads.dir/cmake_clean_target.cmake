file(REMOVE_RECURSE
  "libtmh_workloads.a"
)
