# Empty compiler generated dependencies file for tmh_tests.
# This may be replaced when dependencies are built.
