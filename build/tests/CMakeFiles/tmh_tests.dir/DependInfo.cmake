
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chaos_test.cc" "tests/CMakeFiles/tmh_tests.dir/chaos_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/chaos_test.cc.o.d"
  "/root/repo/tests/compiler_test.cc" "tests/CMakeFiles/tmh_tests.dir/compiler_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/compiler_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/tmh_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/daemon_test.cc" "tests/CMakeFiles/tmh_tests.dir/daemon_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/daemon_test.cc.o.d"
  "/root/repo/tests/disk_test.cc" "tests/CMakeFiles/tmh_tests.dir/disk_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/disk_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/tmh_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/tmh_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/tmh_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/extra_workloads_test.cc" "tests/CMakeFiles/tmh_tests.dir/extra_workloads_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/extra_workloads_test.cc.o.d"
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/tmh_tests.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/fault_test.cc.o.d"
  "/root/repo/tests/html_report_test.cc" "tests/CMakeFiles/tmh_tests.dir/html_report_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/html_report_test.cc.o.d"
  "/root/repo/tests/interpreter_test.cc" "tests/CMakeFiles/tmh_tests.dir/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/interpreter_test.cc.o.d"
  "/root/repo/tests/kernel_test.cc" "tests/CMakeFiles/tmh_tests.dir/kernel_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/kernel_test.cc.o.d"
  "/root/repo/tests/os_edge_test.cc" "tests/CMakeFiles/tmh_tests.dir/os_edge_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/os_edge_test.cc.o.d"
  "/root/repo/tests/policy_module_test.cc" "tests/CMakeFiles/tmh_tests.dir/policy_module_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/policy_module_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tmh_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/tmh_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/runtime_layer_test.cc" "tests/CMakeFiles/tmh_tests.dir/runtime_layer_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/runtime_layer_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/tmh_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/tmh_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/vm_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/tmh_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/tmh_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tmh_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/tmh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tmh_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tmh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/tmh_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
