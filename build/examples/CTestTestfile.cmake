# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "0.08")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interactive_mix "/root/repo/build/examples/interactive_mix" "MATVEC" "B" "2" "0.08")
set_tests_properties(example_interactive_mix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_kernel "/root/repo/build/examples/custom_kernel" "0.15")
set_tests_properties(example_custom_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_tuning "/root/repo/build/examples/policy_tuning" "0.08")
set_tests_properties(example_policy_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_timeline "/root/repo/build/examples/trace_timeline" "0.08" "/root/repo/build")
set_tests_properties(example_trace_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
