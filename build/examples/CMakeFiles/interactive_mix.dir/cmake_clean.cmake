file(REMOVE_RECURSE
  "CMakeFiles/interactive_mix.dir/interactive_mix.cpp.o"
  "CMakeFiles/interactive_mix.dir/interactive_mix.cpp.o.d"
  "interactive_mix"
  "interactive_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
