# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_tmh_run_list "/root/repo/build/tools/tmh_run" "--list")
set_tests_properties(tool_tmh_run_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tmh_run_small "/root/repo/build/tools/tmh_run" "--workload" "EMBAR" "--version" "R" "--scale" "0.08")
set_tests_properties(tool_tmh_run_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tmh_run_reactive "/root/repo/build/tools/tmh_run" "--workload" "BUK" "--version" "V" "--scale" "0.08" "--interactive" "--sleep" "1")
set_tests_properties(tool_tmh_run_reactive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tmh_run_html "/root/repo/build/tools/tmh_run" "--workload" "MATVEC" "--version" "B" "--scale" "0.08" "--html" "/root/repo/build/tmh_run_test.html")
set_tests_properties(tool_tmh_run_html PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
