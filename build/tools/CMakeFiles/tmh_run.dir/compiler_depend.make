# Empty compiler generated dependencies file for tmh_run.
# This may be replaced when dependencies are built.
