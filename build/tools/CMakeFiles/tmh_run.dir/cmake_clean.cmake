file(REMOVE_RECURSE
  "CMakeFiles/tmh_run.dir/tmh_run.cc.o"
  "CMakeFiles/tmh_run.dir/tmh_run.cc.o.d"
  "tmh_run"
  "tmh_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmh_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
