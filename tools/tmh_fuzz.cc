// tmh_fuzz — seeded differential fuzzer for the VM subsystem.
//
// Each seed derives one multiprogramming scenario (MakeScenario), runs it with
// the InvariantChecker attached (kernel state cross-validated against the
// reference oracle after every event), and reports the first violation. The
// seed fully determines the scenario and the run, so any failure replays with
//
//   tmh_fuzz --seed N
//
// On failure the driver shrinks the scenario — greedily dropping apps, then
// flattening machine/app features one at a time, keeping every change that
// still fails — and prints the minimized scenario next to the replay line.
//
//   tmh_fuzz --runs 50                 fuzz seeds 1..50
//   tmh_fuzz --seed 7 --verify-determinism
//                                      run seed 7 twice, require identical
//                                      digest and failure text
//   tmh_fuzz --seed 3 --inject 5000 --expect-fail
//                                      self-test: flip a residency-bitmap bit
//                                      mid-run and require the checker to
//                                      catch it (deterministically)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/check/fuzz_scenario.h"
#include "src/check/invariants.h"

namespace {

struct Flags {
  uint64_t seed = 0;       // 0 = no single seed: fuzz a range instead
  uint64_t runs = 20;      // range mode: number of seeds
  uint64_t start = 1;      // range mode: first seed
  int max_apps = 3;
  uint64_t max_events = 0;        // 0 = ScenarioOptions default
  uint64_t check_period = 0;      // 0 = ScenarioOptions default
  uint64_t inject_after = 0;      // flip a bitmap bit after N checker events
  bool expect_fail = false;       // invert exit status (for --inject self-test)
  bool verify_determinism = false;
  bool shrink = true;
  bool quiet = false;
  bool force_tiers = false;  // give tierless scenarios a slow-tier hierarchy
};

void PrintUsage() {
  std::printf(
      "tmh_fuzz — randomized differential testing of the VM subsystem\n\n"
      "  --seed N        run exactly seed N (deterministic replay)\n"
      "  --runs N        fuzz N consecutive seeds                  [20]\n"
      "  --start N       first seed in range mode                  [1]\n"
      "  --max-apps N    cap on concurrent apps per scenario       [3]\n"
      "  --max-events N  simulation event budget per scenario\n"
      "  --check-period N  full structural pass every N mutations  [16]\n"
      "                    (the oracle is still consulted on every event)\n"
      "  --verify-determinism  run each seed twice; fail on digest mismatch\n"
      "  --force-tiers   give scenarios without slow tiers a small 2-tier\n"
      "                  hierarchy (tier-thrash sweeps over any seed range)\n"
      "  --inject N      corrupt the residency bitmap after N checker events\n"
      "  --expect-fail   exit 0 iff a violation IS detected (self-test mode)\n"
      "  --no-shrink     report failures without minimizing the scenario\n"
      "  --quiet         only print failures and the final summary\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--seed") {
      flags->seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--runs") {
      flags->runs = std::strtoull(next("--runs"), nullptr, 10);
    } else if (arg == "--start") {
      flags->start = std::strtoull(next("--start"), nullptr, 10);
    } else if (arg == "--max-apps") {
      flags->max_apps = std::atoi(next("--max-apps"));
    } else if (arg == "--max-events") {
      flags->max_events = std::strtoull(next("--max-events"), nullptr, 10);
    } else if (arg == "--check-period") {
      flags->check_period = std::strtoull(next("--check-period"), nullptr, 10);
    } else if (arg == "--inject") {
      flags->inject_after = std::strtoull(next("--inject"), nullptr, 10);
    } else if (arg == "--expect-fail") {
      flags->expect_fail = true;
    } else if (arg == "--verify-determinism") {
      flags->verify_determinism = true;
    } else if (arg == "--force-tiers") {
      flags->force_tiers = true;
    } else if (arg == "--no-shrink") {
      flags->shrink = false;
    } else if (arg == "--quiet") {
      flags->quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

tmh::ScenarioOptions ScenarioOptionsFor(const Flags& flags) {
  tmh::ScenarioOptions options;
  options.max_apps = flags.max_apps;
  if (flags.max_events > 0) options.max_events = flags.max_events;
  if (flags.check_period > 0) options.full_check_period = flags.check_period;
  return options;
}

tmh::CheckOptions CheckOptionsFor(const Flags& flags) {
  tmh::CheckOptions options;
  options.full_check_period = flags.check_period > 0
                                  ? flags.check_period
                                  : tmh::ScenarioOptions{}.full_check_period;
  options.inject_bitmap_flip_after = flags.inject_after;
  return options;
}

// Re-runs a shrink candidate and accepts it if the checker still trips.
// Any violation counts — shrinking often shifts which invariant fires first,
// and a smaller scenario that fails differently is still a better repro.
bool StillFails(const tmh::Scenario& candidate, const Flags& flags) {
  return !tmh::RunScenario(candidate, CheckOptionsFor(flags)).ok;
}

tmh::Scenario Shrink(const tmh::Scenario& original, const Flags& flags) {
  tmh::Scenario best = original;

  // Pass 1: greedily drop apps (biggest single reduction available).
  for (size_t i = 0; i < best.apps.size() && best.apps.size() > 1;) {
    tmh::Scenario candidate = best;
    candidate.apps.erase(candidate.apps.begin() + static_cast<long>(i));
    if (StillFails(candidate, flags)) {
      best = candidate;  // keep i: the next app shifted into this slot
    } else {
      ++i;
    }
  }

  // Pass 2: flatten machine features toward defaults, one at a time.
  auto try_change = [&](auto&& mutate) {
    tmh::Scenario candidate = best;
    mutate(candidate);
    if (StillFails(candidate, flags)) best = candidate;
  };
  try_change([](tmh::Scenario& s) { s.with_interactive = false; });
  try_change([](tmh::Scenario& s) { s.num_nodes = 1; });
  try_change([](tmh::Scenario& s) { s.storm_delay = 0; });
  try_change([](tmh::Scenario& s) { s.churn_stagger = 0; });
  try_change([](tmh::Scenario& s) {
    s.num_slow_tiers = 0;
    s.tier_frames = 0;
    s.tier_promote_cost = 0;
    s.tier_demote_cost = 0;
  });
  try_change([](tmh::Scenario& s) { s.monitor = false; });
  try_change([](tmh::Scenario& s) { s.monitor_protect = false; });
  try_change([](tmh::Scenario& s) { s.local_partition_divisor = 0; });
  try_change([](tmh::Scenario& s) { s.notify_threshold = 0; });
  try_change([](tmh::Scenario& s) { s.maxrss_divisor = 0; });
  try_change([](tmh::Scenario& s) { s.daemon_period = 0; });
  try_change([](tmh::Scenario& s) { s.release_to_tail = true; });
  try_change([](tmh::Scenario& s) { s.page_size_kb = 4; });

  // Pass 3: flatten per-app knobs.
  for (size_t i = 0; i < best.apps.size(); ++i) {
    try_change([i](tmh::Scenario& s) { s.apps[i].adaptive = false; });
    try_change([i](tmh::Scenario& s) { s.apps[i].oracle = false; });
    try_change([i](tmh::Scenario& s) { s.apps[i].drain_newest_first = false; });
    try_change([i](tmh::Scenario& s) { s.apps[i].num_prefetch_threads = 1; });
    try_change([i](tmh::Scenario& s) { s.apps[i].release_batch = 64; });
    try_change(
        [i](tmh::Scenario& s) { s.apps[i].version = tmh::AppVersion::kOriginal; });
  }
  return best;
}

void ReportFailure(const tmh::Scenario& scenario,
                   const tmh::ScenarioOutcome& outcome, const Flags& flags) {
  std::printf("FAIL seed=%llu\n%s\n%s\n",
              static_cast<unsigned long long>(scenario.seed),
              tmh::Describe(scenario).c_str(), outcome.failure.c_str());
  std::printf("replay: tmh_fuzz --seed %llu%s\n",
              static_cast<unsigned long long>(scenario.seed),
              flags.inject_after > 0 ? " --inject (same value)" : "");
  if (flags.shrink && flags.inject_after == 0) {
    std::printf("shrinking...\n");
    const tmh::Scenario minimized = Shrink(scenario, flags);
    const tmh::ScenarioOutcome small = tmh::RunScenario(minimized, CheckOptionsFor(flags));
    std::printf("minimized (%zu app%s):\n%s\n%s\n", minimized.apps.size(),
                minimized.apps.size() == 1 ? "" : "s",
                tmh::Describe(minimized).c_str(), small.failure.c_str());
  }
  std::fflush(stdout);
}

// Runs one seed end to end. Returns true when the run behaved as expected
// (clean normally, or detected-and-deterministic under --expect-fail).
bool RunSeed(uint64_t seed, const Flags& flags) {
  tmh::Scenario scenario = MakeScenario(seed, ScenarioOptionsFor(flags));
  if (flags.force_tiers && scenario.num_slow_tiers == 0) {
    // Small tiers on purpose: capacity-eviction cascades and disk fallout are
    // the paths a tier-thrash sweep exists to exercise.
    scenario.num_slow_tiers = 2;
    scenario.tier_frames = 128;
    scenario.tier_promote_cost = 20 * tmh::kUsec;
    scenario.tier_demote_cost = 20 * tmh::kUsec;
  }
  const tmh::ScenarioOutcome outcome =
      tmh::RunScenario(scenario, CheckOptionsFor(flags));

  if (flags.verify_determinism || flags.expect_fail) {
    // Deterministic replay is the contract that makes every failure
    // actionable, so re-run and require an identical fingerprint.
    const tmh::ScenarioOutcome again =
        tmh::RunScenario(scenario, CheckOptionsFor(flags));
    if (outcome.digest != again.digest || outcome.failure != again.failure) {
      std::printf("NONDETERMINISTIC seed=%llu: digest %s vs %s\n",
                  static_cast<unsigned long long>(seed), outcome.digest.c_str(),
                  again.digest.c_str());
      if (outcome.failure != again.failure) {
        std::printf("first run:\n%s\nsecond run:\n%s\n", outcome.failure.c_str(),
                    again.failure.c_str());
      }
      return false;
    }
  }

  if (flags.expect_fail) {
    if (outcome.ok) {
      std::printf("seed=%llu: injection NOT detected (expected a violation)\n",
                  static_cast<unsigned long long>(seed));
      return false;
    }
    if (!flags.quiet) {
      std::printf("seed=%llu: injected corruption detected deterministically\n",
                  static_cast<unsigned long long>(seed));
    }
    return true;
  }

  if (!outcome.ok) {
    ReportFailure(scenario, outcome, flags);
    return false;
  }
  if (!flags.quiet) {
    std::printf("seed=%llu ok: %llu sim events, %llu checks, digest=%s%s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(outcome.sim_events),
                static_cast<unsigned long long>(outcome.checks_run),
                outcome.digest.c_str(),
                outcome.completed ? "" : " (event budget hit)");
    std::fflush(stdout);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  uint64_t first = flags.start;
  uint64_t count = flags.runs;
  if (flags.seed != 0) {
    first = flags.seed;
    count = 1;
  }

  uint64_t failures = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (!RunSeed(first + i, flags)) ++failures;
  }
  if (count > 1 || !flags.quiet) {
    std::printf("%llu/%llu seeds %s\n",
                static_cast<unsigned long long>(count - failures),
                static_cast<unsigned long long>(count),
                flags.expect_fail ? "detected the injected corruption" : "clean");
  }
  return failures == 0 ? 0 : 1;
}
